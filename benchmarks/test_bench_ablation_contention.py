"""Ablation: how much does the Table 6 shared-bus contention term matter?

DESIGN.md calls out the contention model as one of the paper's distinctive
design choices (prior models either ignored intra-node contention or modelled
it so aggressively that communication vanished with more links).  This
ablation removes the term from the model and the queueing from the simulator
and measures what each contributes, for dual-core and quad-core nodes.
"""

from __future__ import annotations

from conftest import emit

from repro.apps.chimaera import chimaera
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.model import iteration_prediction, stack_time
from repro.core.multicore import contention_penalty
from repro.platforms import cray_xt4
from repro.simulator.wavefront import simulate_wavefront
from repro.util.tables import Table


def _ablation(cores_per_node: int):
    platform = cray_xt4(cores_per_node=cores_per_node)
    spec = chimaera(ProblemSize(64, 64, 32), htile=2, iterations=1)
    grid = ProcessorGrid(4, 4)

    model = iteration_prediction(spec, platform, grid).time_per_iteration
    # Model without the contention term: rebuild the stack time by subtracting
    # the penalty from every tile.
    penalty = contention_penalty(platform, spec, grid)
    tiles = spec.tiles_per_stack()
    model_no_contention = model - spec.nsweeps * penalty.total * tiles

    simulated = simulate_wavefront(spec, platform, grid=grid, enable_contention=True)
    simulated_free = simulate_wavefront(spec, platform, grid=grid, enable_contention=False)
    return {
        "cores_per_node": cores_per_node,
        "model_us": model,
        "model_no_contention_us": model_no_contention,
        "simulated_us": simulated.time_per_iteration_us,
        "simulated_free_us": simulated_free.time_per_iteration_us,
        "bus_queue_delay_us": simulated.stats.bus_queue_delay,
    }


def test_contention_term_ablation(benchmark, xt4):
    rows = benchmark.pedantic(
        lambda: [_ablation(2), _ablation(4)], rounds=1, iterations=1
    )
    table = Table(
        ["cores/node", "model (ms)", "model w/o contention (ms)",
         "simulated (ms)", "simulated w/o bus queueing (ms)"],
        title="Ablation: Table 6 contention term (Chimaera 64x64x32, 16 cores)",
    )
    for row in rows:
        table.add_row(
            row["cores_per_node"],
            row["model_us"] / 1000.0,
            row["model_no_contention_us"] / 1000.0,
            row["simulated_us"] / 1000.0,
            row["simulated_free_us"] / 1000.0,
        )
    emit(table.render())

    for row in rows:
        # Contention is a real effect in the simulation...
        assert row["simulated_us"] >= row["simulated_free_us"]
        # ...and the model term moves the prediction in the same direction.
        assert row["model_us"] > row["model_no_contention_us"]
        # With the term, the model tracks the contended simulation within the
        # paper's multicore band; the stripped model likewise tracks the
        # queueing-free simulation - i.e. each model variant matches the
        # machine it describes.
        with_term_error = abs(row["model_us"] - row["simulated_us"]) / row["simulated_us"]
        without_term_error = (
            abs(row["model_no_contention_us"] - row["simulated_free_us"])
            / row["simulated_free_us"]
        )
        assert with_term_error < 0.12
        assert without_term_error < 0.12

    # The model charges quad-core nodes a larger contention term than
    # dual-core nodes (Table 6: I on all four operations vs two).
    dual, quad = rows
    dual_term = dual["model_us"] - dual["model_no_contention_us"]
    quad_term = quad["model_us"] - quad["model_no_contention_us"]
    assert quad_term > dual_term
