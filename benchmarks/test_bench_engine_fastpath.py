"""Engine benchmark: exact StartP walk vs the fast prediction engine.

The Section 5 studies repeatedly evaluate the model at up to 131,072
processors (a 512 x 256 logical array), where the exact ``StartP`` recurrence
walks ~131k grid cells in pure Python.  The fast engine replaces the walk with
a closed-form expression (single-core) or a period-folded evaluation
(multi-core) and memoises repeated ``predict`` calls; this benchmark records
the speedup and asserts the engine contract:

* fast and exact agree to within 1e-9 relative at the largest study size, and
* the fast path (with the caches cleared up front) is at least 10x faster
  than the exact walk on the 131,072-processor ``fill_times`` evaluation.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.apps.workloads import sweep3d_production_1billion
from repro.core.comm import clear_comm_cost_cache
from repro.core.decomposition import decompose
from repro.core.model import fill_times
from repro.core.predictor import clear_prediction_cache, predict, prediction_cache_info
from repro.util.tables import Table

TOTAL_CORES = 131072
REL_TOL = 1e-9


def _time_fill(spec, platform, grid, method: str, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fill_times(spec, platform, grid, method=method)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_engine_fastpath_speedup_131072(benchmark, xt4, xt4_single):
    spec = sweep3d_production_1billion()
    grid = decompose(TOTAL_CORES)
    clear_comm_cost_cache()
    clear_prediction_cache()

    table = Table(
        ["platform", "exact (ms)", "fast (ms)", "speedup", "rel. error"],
        title=f"StartP engine at P={TOTAL_CORES} ({grid.n}x{grid.m} array)",
    )
    speedups = {}
    for platform in (xt4, xt4_single):
        exact_s, exact = _time_fill(spec, platform, grid, "exact")
        fast_s, fast = _time_fill(spec, platform, grid, "fast")
        rel = abs(fast.tfullfill - exact.tfullfill) / abs(exact.tfullfill)
        assert rel <= REL_TOL
        rel_diag = abs(fast.tdiagfill - exact.tdiagfill) / max(1.0, abs(exact.tdiagfill))
        assert rel_diag <= REL_TOL
        speedups[platform.name] = exact_s / fast_s
        table.add_row(
            platform.name,
            round(exact_s * 1e3, 3),
            round(fast_s * 1e3, 3),
            round(exact_s / fast_s, 1),
            f"{rel:.2e}",
        )
    emit(table.render())

    # The engine contract: >= 10x on the 131,072-processor evaluation.
    for name, speedup in speedups.items():
        assert speedup >= 10.0, f"{name}: fast path only {speedup:.1f}x faster"

    # Steady-state fast-path timing for the regression record.
    benchmark(fill_times, spec, xt4, grid, method="fast")


def test_engine_prediction_cache_makes_repeats_free(benchmark, xt4):
    """Sweep-style traffic: revisiting a configuration must hit the memo."""
    spec = sweep3d_production_1billion()
    clear_prediction_cache()

    counts = (16384, 32768, 65536, 131072)
    for cores in counts:  # populate
        predict(spec, xt4, total_cores=cores)
    misses_after_populate = prediction_cache_info().misses

    def revisit():
        return [predict(spec, xt4, total_cores=cores) for cores in counts]

    results = benchmark(revisit)
    assert len(results) == len(counts)
    assert prediction_cache_info().misses == misses_after_populate
    assert prediction_cache_info().hits > 0

    # A cached revisit of the whole sweep must be far under a millisecond.
    start = time.perf_counter()
    revisit()
    elapsed = time.perf_counter() - start
    assert elapsed < 0.01


def test_engine_exact_reference_still_available(xt4):
    """The reference evaluator stays reachable for cross-checking."""
    spec = sweep3d_production_1billion()
    prediction = predict(spec, xt4, total_cores=4096, method="exact")
    fast = predict(spec, xt4, total_cores=4096, method="fast")
    assert abs(
        prediction.time_per_iteration_us - fast.time_per_iteration_us
    ) <= REL_TOL * prediction.time_per_iteration_us
