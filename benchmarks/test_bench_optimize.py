"""Optimizer benchmark: golden-section vs exhaustive on the Htile axis.

The optimizer's value proposition is finding the paper's design optima
without paying for the whole grid.  This benchmark pins that down as a
contract over *model evaluations* (the currency that matters when the
backend is the discrete-event simulator or a fine-grained sweep):

* on a fine 201-value Htile grid (Chimaera, P=4096, the Figure 5 regime)
  golden-section finds the same optimum as exhaustive search - within one
  grid step and with no worse an objective - using **>= 10x fewer** model
  evaluations;
* on the paper's own coarse grid (Sweep3D, Figure 5 x-axis) it recovers
  the exhaustive optimum exactly (within one grid step), demonstrating the
  acceptance-criterion configuration end to end.

A machine-readable record is written to ``BENCH_optimize.json`` (committed
at the repo root); ``tests/test_bench_records.py`` re-asserts the recorded
contracts in tier-1 so a stale or regressed record fails CI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.optimize import OptimizationSpace, optimize
from repro.util.tables import Table

MIN_EVAL_RATIO = 10.0
#: Ceiling on golden_best / exhaustive_best: equal quality within 1%.
MAX_QUALITY_RATIO = 1.01
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_optimize.json"

#: Fine grid: 201 tile heights in [1, 11] (0.05 steps) - the regime where
#: exhaustive sweeps get expensive and log-time search pays off.
FINE_GRID = tuple(round(1.0 + 0.05 * k, 2) for k in range(201))

#: The paper's Figure 5 x-axis (all realisable as Sweep3D mk blockings).
PAPER_GRID = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0)


def _grid_distance(grid: tuple, a: float, b: float) -> int:
    values = sorted(grid)
    return abs(values.index(a) - values.index(b))


def _run_case(app: str, total_cores: int, grid: tuple, assert_ratio: bool) -> dict:
    space = OptimizationSpace.from_workload(
        app, "cray-xt4", htiles=grid, total_cores=(total_cores,)
    )
    start = time.perf_counter()
    exhaustive = optimize(space, strategy="exhaustive")
    exhaustive_s = time.perf_counter() - start
    start = time.perf_counter()
    golden = optimize(space, strategy="golden-section")
    golden_s = time.perf_counter() - start

    ratio = exhaustive.evaluations / golden.evaluations
    distance = _grid_distance(
        grid, exhaustive.best.point.htile, golden.best.point.htile
    )

    # Equal-quality contract: the guided search lands within one grid step
    # of the exhaustive optimum AND its objective is within 1% of it (a
    # one-step-off result on a fine grid is tolerated positionally, but
    # never a materially worse optimum).
    assert distance <= 1, (
        f"{app}: golden-section Htile {golden.best.point.htile:g} is "
        f"{distance} grid steps from the exhaustive optimum "
        f"{exhaustive.best.point.htile:g}"
    )
    quality_ratio = golden.best_value / exhaustive.best_value
    assert quality_ratio <= MAX_QUALITY_RATIO, (
        f"{app}: golden-section optimum is {100 * (quality_ratio - 1):.2f}% "
        "slower than the exhaustive optimum"
    )
    if assert_ratio:
        assert ratio >= MIN_EVAL_RATIO, (
            f"{app}: golden-section used {golden.evaluations} evaluations vs "
            f"{exhaustive.evaluations} exhaustive - only {ratio:.1f}x fewer"
        )

    return {
        "app": app,
        "platform": "cray-xt4",
        "total_cores": total_cores,
        "strategy": "golden-section",
        "grid_size": len(grid),
        "exhaustive_evaluations": exhaustive.evaluations,
        "golden_evaluations": golden.evaluations,
        "eval_ratio": ratio,
        "best_htile_exhaustive": exhaustive.best.point.htile,
        "best_htile_golden": golden.best.point.htile,
        "grid_step_distance": distance,
        "best_time_s_exhaustive": exhaustive.best_value,
        "best_time_s_golden": golden.best_value,
        "quality_ratio": quality_ratio,
        "exhaustive_wall_s": exhaustive_s,
        "golden_wall_s": golden_s,
        "assert_eval_ratio": assert_ratio,
    }


def test_golden_section_needs_10x_fewer_evaluations(benchmark):
    cases = [
        _run_case("chimaera-240", 4096, FINE_GRID, assert_ratio=True),
        _run_case("sweep3d-20m", 4096, PAPER_GRID, assert_ratio=False),
    ]

    table = Table(
        [
            "application",
            "grid",
            "exhaustive evals",
            "golden evals",
            "ratio",
            "best Htile (exh / golden)",
        ],
        title="golden-section vs exhaustive Htile optimisation at P=4096",
    )
    for case in cases:
        table.add_row(
            case["app"],
            case["grid_size"],
            case["exhaustive_evaluations"],
            case["golden_evaluations"],
            f"{case['eval_ratio']:.1f}x",
            f"{case['best_htile_exhaustive']:g} / {case['best_htile_golden']:g}",
        )
    emit(table.render())

    record = {
        "benchmark": "optimize",
        "contract_min_eval_ratio": MIN_EVAL_RATIO,
        "contract_max_grid_step_distance": 1,
        "contract_max_quality_ratio": MAX_QUALITY_RATIO,
        "cases": cases,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(f"wrote {RECORD_PATH.name}: ratio={cases[0]['eval_ratio']:.1f}x")

    # Steady-state golden-section timing for the regression record (the
    # prediction caches are warm, so this times the search logic itself).
    space = OptimizationSpace.from_workload(
        "chimaera-240", "cray-xt4", htiles=FINE_GRID, total_cores=(4096,)
    )
    benchmark(optimize, space, strategy="golden-section")
