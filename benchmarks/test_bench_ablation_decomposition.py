"""Ablation: processor-array aspect ratio and parameter sensitivity.

Two model applications beyond the paper's explicit figures, exercising the
"evaluate design changes quickly" use-case:

* the data-decomposition study (which ``n x m`` factorisation of P is best -
  near-square for cubic problems, as assumed throughout the paper);
* the parameter-sensitivity study (which platform/application parameter
  dominates the runtime at a given scale - ``Wg`` below the Figure 11
  crossover, the communication overhead ``o`` above it).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.decomposition_study import decomposition_study
from repro.analysis.sensitivity import dominant_parameter, sensitivity_study
from repro.apps.workloads import chimaera_240cubed
from repro.util.tables import Table


def test_decomposition_aspect_ratio_study(benchmark, xt4):
    spec = chimaera_240cubed(htile=2)
    points = benchmark(
        decomposition_study, spec, xt4, 4096, max_aspect_ratio=256.0
    )
    points = sorted(points, key=lambda p: p.aspect_ratio)
    table = Table(
        ["grid", "aspect", "iteration (ms)", "pipeline fill (ms)"],
        title="Ablation: processor-array shape for Chimaera 240^3 on 4096 cores",
    )
    for point in points:
        table.add_row(
            f"{point.grid.n}x{point.grid.m}",
            round(point.aspect_ratio, 3),
            point.time_per_iteration_us / 1000.0,
            point.pipeline_fill_us / 1000.0,
        )
    emit(table.render())

    best = min(points, key=lambda p: p.time_per_iteration_us)
    worst = max(points, key=lambda p: p.time_per_iteration_us)
    # The near-square decomposition the paper assumes is (close to) optimal.
    assert max(best.grid.n / best.grid.m, best.grid.m / best.grid.n) <= 2
    # Extreme aspect ratios are much worse - the decomposition matters.
    assert worst.time_per_iteration_us > 1.5 * best.time_per_iteration_us


def test_parameter_sensitivity_study(benchmark, xt4):
    spec = chimaera_240cubed(htile=2)

    def run():
        return {
            1024: sensitivity_study(spec, xt4, 1024),
            32768: sensitivity_study(spec, xt4, 32768),
        }

    studies = benchmark(run)
    table = Table(
        ["parameter", "kind", "elasticity @1K cores", "elasticity @32K cores"],
        title="Ablation: runtime elasticity to +10% in each parameter",
    )
    for name in studies[1024]:
        table.add_row(
            name,
            studies[1024][name].kind,
            round(studies[1024][name].elasticity, 3),
            round(studies[32768][name].elasticity, 3),
        )
    emit(table.render())

    # Below the Figure 11 crossover the per-cell work dominates...
    assert dominant_parameter(studies[1024], kind="application").parameter == "wg"
    assert studies[1024]["wg"].elasticity > 0.5
    # ...and above it the communication overhead matters more than it did,
    # while Wg matters less.
    assert studies[32768]["overhead"].elasticity > studies[1024]["overhead"].elasticity
    assert studies[32768]["wg"].elasticity < studies[1024]["wg"].elasticity
    # Latency is never the bottleneck on the XT4 (the paper's observation that
    # synchronisation/latency effects are negligible).
    assert abs(studies[32768]["latency"].elasticity) < 0.05
