"""Figure 12: pipeline-fill overhead and the pipelined-energy-group redesign.

Weak-scaling configuration (4 x 4 x 1000 cells per processor, 30 energy
groups, 10^4 time steps): the pipeline-fill share of the run grows with the
machine size, and re-ordering the sweeps so that all energy groups share one
pipeline fill eliminates nearly all of that overhead.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.redesign import energy_group_redesign_study
from repro.util.tables import Table

PROCESSOR_COUNTS = (1024, 4096, 16384, 65536)


def test_fig12_pipelined_energy_groups(benchmark, xt4):
    points = benchmark.pedantic(
        energy_group_redesign_study,
        args=(xt4, PROCESSOR_COUNTS),
        rounds=1,
        iterations=1,
    )
    table = Table(
        ["P", "sequential (days)", "fill (days)", "pipelined (days)", "saving"],
        title="Figure 12: sequential vs pipelined energy groups (4x4x1000 cells/PE)",
    )
    for point in points:
        table.add_row(
            point.total_cores,
            round(point.sequential_days, 1),
            round(point.sequential_fill_days, 1),
            round(point.pipelined_days, 1),
            f"{point.improvement:.0%}",
        )
    emit(table.render())

    # Fill overhead grows with the machine (weak scaling lengthens the pipeline).
    fill_fractions = [p.fill_fraction_sequential for p in points]
    assert fill_fractions == sorted(fill_fractions)
    assert fill_fractions[-1] > 0.15

    for point in points:
        # The redesign always helps, and recovers most of the fill overhead.
        assert point.pipelined_days < point.sequential_days
        saved = point.sequential_days - point.pipelined_days
        assert saved > 0.6 * point.sequential_fill_days

    # The pipelined curve is nearly flat (the fill no longer grows with P).
    pipelined = [p.pipelined_days for p in points]
    assert max(pipelined) / min(pipelined) < 1.15
    # The sequential curve is not flat.
    sequential = [p.sequential_days for p in points]
    assert max(sequential) / min(sequential) > 1.15


def test_fig12_with_convergence_penalty(benchmark, xt4):
    """If pipelining the groups costs 10% more iterations, it must still win
    at scale (where fill dominates) - the decision the model lets users make."""
    points = benchmark.pedantic(
        energy_group_redesign_study,
        args=(xt4, (65536,)),
        kwargs={"extra_iteration_factor": 1.1},
        rounds=1,
        iterations=1,
    )
    point = points[0]
    print(
        f"P=65536 with a 10% iteration penalty: sequential {point.sequential_days:.1f} days, "
        f"pipelined {point.pipelined_days:.1f} days"
    )
    assert point.pipelined_days < point.sequential_days
