"""Figure 7: time steps solved per problem per month vs partition count.

(a) Sweep3D 10^9 cells on 32K-128K processors; (b) Chimaera 240^3 on
16K-32K processors.  Partitioning the machine lowers each job's rate but
raises the machine's aggregate throughput; at 128K cores two half-machine
Sweep3D jobs each run at roughly 7/8 the rate of a single full-machine job.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.partitioning import throughput_study
from repro.apps.workloads import chimaera_240cubed, sweep3d_production_1billion
from repro.util.tables import Table

JOB_COUNTS = (1, 2, 4, 8)


def _render(points, title):
    table = Table(
        ["P total", "jobs", "partition", "steps/month/job", "steps/month total"],
        title=title,
    )
    for point in points:
        table.add_row(
            point.total_cores,
            point.parallel_jobs,
            point.partition_cores,
            round(point.time_steps_per_month_per_job),
            round(point.total_time_steps_per_month),
        )
    emit(table.render())


def test_fig7a_sweep3d_throughput(benchmark, xt4):
    spec = sweep3d_production_1billion()
    points = benchmark(
        throughput_study, spec, xt4, (32768, 65536, 131072), parallel_jobs_options=JOB_COUNTS
    )
    _render(points, "Figure 7(a): Sweep3D 10^9 cells")

    by_key = {(p.total_cores, p.parallel_jobs): p for p in points}
    for total in (32768, 65536, 131072):
        rates = [by_key[(total, jobs)].time_steps_per_month_per_job for jobs in JOB_COUNTS]
        aggregates = [by_key[(total, jobs)].total_time_steps_per_month for jobs in JOB_COUNTS]
        # Per-job rate falls, aggregate rises, as the machine is partitioned.
        assert rates == sorted(rates, reverse=True)
        assert aggregates == sorted(aggregates)
    # The 7/8 observation at 128K cores.
    ratio = (
        by_key[(131072, 2)].time_steps_per_month_per_job
        / by_key[(131072, 1)].time_steps_per_month_per_job
    )
    print(f"two half-machine jobs at 128K run at {ratio:.2f} of the full-machine rate")
    assert 0.70 < ratio < 0.98


def test_fig7b_chimaera_throughput(benchmark, xt4):
    spec = chimaera_240cubed(htile=2, time_steps=1)
    points = benchmark(
        throughput_study, spec, xt4, (16384, 32768), parallel_jobs_options=(1, 2, 4, 8, 16)
    )
    _render(points, "Figure 7(b): Chimaera 240^3")

    by_key = {(p.total_cores, p.parallel_jobs): p for p in points}
    # Section 5.2: a single 240^3 problem on 32K processors is barely faster
    # than two problems on 16K each.
    single = by_key[(32768, 1)].time_steps_per_month_per_job
    halved = by_key[(32768, 2)].time_steps_per_month_per_job
    assert halved > 0.75 * single
    # ...while four partitions of 4096 are much better per problem than
    # sixteen partitions of 1024 on a 16K machine (better than 50% reduction
    # in execution time per problem, i.e. more than 2x the rate).
    four = by_key[(16384, 4)].time_steps_per_month_per_job
    sixteen = by_key[(16384, 16)].time_steps_per_month_per_job
    assert four > 2.0 * sixteen
