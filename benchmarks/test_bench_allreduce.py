"""MPI all-reduce model (equation (9)) vs the simulated collective.

The paper reports < 2% error against the real XT4 MPI_Allreduce on up to
1024 dual-core nodes.  Our "measurement" is a simulated recursive-doubling
all-reduce built from the same point-to-point machinery, which follows the
model's shape (logarithmic growth, on-chip first rounds) but is not the
vendor implementation, so the tolerance here is looser (see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import emit

from repro.util.tables import Table
from repro.validation.compare import validate_allreduce

CORE_COUNTS = (4, 16, 64, 256, 1024, 2048)


def test_allreduce_model_vs_simulation(benchmark, xt4):
    results = benchmark.pedantic(
        validate_allreduce, args=(xt4, CORE_COUNTS), rounds=1, iterations=1
    )
    table = Table(
        ["cores", "model eq.(9) (us)", "simulated (us)", "error"],
        title="All-reduce: equation (9) vs simulated recursive doubling (dual-core nodes)",
    )
    for result in results:
        table.add_row(
            result.total_cores,
            result.model_us,
            result.simulated_us,
            f"{result.relative_error:+.1%}",
        )
    emit(table.render())
    # Shape: both grow logarithmically (roughly constant increment per doubling
    # of the core count beyond the on-chip rounds).
    model = [r.model_us for r in results]
    simulated = [r.simulated_us for r in results]
    assert model == sorted(model)
    assert simulated == sorted(simulated)
    # Agreement band (relaxed relative to the paper's 2% against real MPI).
    for result in results[1:]:
        assert abs(result.relative_error) < 0.5
    # Absolute magnitude: tens to a couple of hundred microseconds - negligible
    # against iteration times of tens of milliseconds (the paper's conclusion
    # that synchronisation/collective costs are negligible on the XT4).
    assert max(simulated) < 1000.0


def test_allreduce_single_core_matches_log_p(benchmark, xt4_single):
    """With one core per node the simulated exchange does not overlap the two
    directions of each recursive-doubling round, so the model (which assumes
    log2(P) fully pipelined rounds) undershoots by up to ~50%; the absolute
    difference stays below 100 us (see EXPERIMENTS.md)."""
    results = benchmark.pedantic(
        validate_allreduce, args=(xt4_single, (16, 64, 256)), rounds=1, iterations=1
    )
    for result in results:
        assert abs(result.relative_error) < 0.55
        assert abs(result.model_us - result.simulated_us) < 100.0
