"""Model validation (Tables 4/5/6 + Section 4/5 accuracy claims).

The paper validates the plug-and-play model against measured execution times
on the XT3/XT4 for LU, Sweep3D and Chimaera, reporting < 5% error for LU and
< 10% for the transport benchmarks on high-performance configurations.  Here
the discrete-event simulator supplies the "measured" times; the matrix spans
the three applications, single- and dual-core nodes and several processor
counts (scaled down so one iteration simulates in seconds).
"""

from __future__ import annotations

from conftest import emit

from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.core.decomposition import ProblemSize
from repro.util.tables import Table
from repro.validation.compare import validate_matrix


def _build_cases(xt4, xt4_single):
    problem = ProblemSize(96, 96, 48)
    specs = {
        "lu": lambda: lu(problem, iterations=1),
        "sweep3d": lambda: sweep3d(problem, config=Sweep3DConfig(mk=4), iterations=1),
        "chimaera": lambda: chimaera(problem, htile=2, iterations=1),
    }
    cases = []
    for build in specs.values():
        for cores in (16, 64, 144):
            cases.append((build(), xt4_single, cores))
        for cores in (16, 64):
            cases.append((build(), xt4, cores))
    return cases


def test_validation_error_matrix(benchmark, xt4, xt4_single):
    cases = _build_cases(xt4, xt4_single)
    summary = benchmark.pedantic(validate_matrix, args=(cases,), rounds=1, iterations=1)

    table = Table(
        ["application", "platform", "P", "model (ms)", "simulated (ms)", "error"],
        title="Plug-and-play model vs discrete-event simulation (one iteration)",
    )
    for result in summary.results:
        table.add_row(
            result.application,
            result.platform,
            result.total_cores,
            result.model_us / 1000.0,
            result.simulated_us / 1000.0,
            f"{result.relative_error:+.1%}",
        )
    emit(table.render())
    worst = summary.worst()
    print(
        f"worst case: {worst.application} on {worst.platform} at P={worst.total_cores}: "
        f"{worst.relative_error:+.1%}"
    )

    # Paper's headline accuracy claims.
    lu_summary = summary.by_application("lu")
    single_core = [r for r in summary.results if r.cores_per_node == 1]
    dual_core = [r for r in summary.results if r.cores_per_node == 2]
    assert max(r.absolute_relative_error for r in single_core) < 0.05
    assert lu_summary.max_error < 0.10
    assert max(r.absolute_relative_error for r in dual_core) < 0.10
    assert summary.max_error < 0.10


def test_validation_error_lu_single_core_under_five_percent(benchmark, xt4_single):
    """The tightest claim: LU under 5% (single-core-per-node configurations)."""
    problem = ProblemSize(96, 96, 48)
    cases = [(lu(problem, iterations=1), xt4_single, cores) for cores in (16, 64, 144, 256)]
    summary = benchmark.pedantic(validate_matrix, args=(cases,), rounds=1, iterations=1)
    table = Table(["P", "model (ms)", "simulated (ms)", "error"], title="LU validation")
    for result in summary.results:
        table.add_row(
            result.total_cores,
            result.model_us / 1000.0,
            result.simulated_us / 1000.0,
            f"{result.relative_error:+.1%}",
        )
    emit(table.render())
    assert summary.max_error < 0.05
