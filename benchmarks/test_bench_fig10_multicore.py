"""Figure 10: execution time on multi-core nodes (Sweep3D 10^9, 10^4 steps).

The paper varies the number of cores per node (1-16, all on one shared bus)
for 8K-128K nodes and concludes that (a) more cores per node help but with
diminishing returns, (b) two cores on N nodes slightly beat four cores on N/2
nodes, (c) beyond four cores per bus the contention erases the gains, and
(d) a 16-core node with a separate bus/NIC per group of four cores recovers
the quad-core behaviour.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.multicore_design import cores_per_node_study
from repro.apps.workloads import sweep3d_production_1billion
from repro.util.tables import Table

NODE_COUNTS = (8192, 16384, 32768, 65536, 131072)
CORE_OPTIONS = (1, 2, 4, 8, 16)


def test_fig10_cores_per_node_study(benchmark, xt4):
    spec = sweep3d_production_1billion()
    points = benchmark.pedantic(
        cores_per_node_study,
        args=(spec, xt4, NODE_COUNTS),
        kwargs={"cores_per_node_options": CORE_OPTIONS},
        rounds=1,
        iterations=1,
    )
    lookup = {(p.nodes, p.cores_per_node): p.total_time_days for p in points}

    table = Table(
        ["nodes"] + [f"{c} cores/node" for c in CORE_OPTIONS],
        title="Figure 10: execution time (days) vs number of nodes and cores per node",
    )
    for nodes in NODE_COUNTS:
        table.add_row(nodes, *(round(lookup[(nodes, c)], 1) for c in CORE_OPTIONS))
    emit(table.render())

    for nodes in NODE_COUNTS:
        days = [lookup[(nodes, c)] for c in CORE_OPTIONS]
        # Going from one to two cores per node helps while there is still
        # computation left to share; at the very largest node counts the
        # curves converge (and can cross slightly) because the run is almost
        # entirely communication and pipeline fill.
        if nodes <= 65536:
            assert days[1] < days[0]
        else:
            assert days[1] < 1.15 * days[0]
        # ...but the gain per doubling shrinks (shared-bus contention), and
        # sixteen cores on a single bus is never better than eight.
        gain_1_2 = days[0] / days[1]
        gain_2_4 = days[1] / days[2]
        gain_8_16 = days[3] / days[4]
        assert gain_1_2 > gain_2_4
        assert gain_2_4 > gain_8_16
        # Beyond 4 cores on one bus the returns are marginal or negative.
        assert gain_8_16 < 1.05

    # Four cores per node still pays off while the nodes are few enough for
    # computation to dominate (the smaller half of the node range).
    assert lookup[(8192, 4)] < lookup[(8192, 2)]
    assert lookup[(16384, 4)] < lookup[(16384, 2)]
    # At the largest node counts, piling cores onto one bus turns negative:
    # 16 cores/node is worse than 4 cores/node.
    assert lookup[(131072, 16)] > lookup[(131072, 4)]

    # Two cores on N nodes vs four cores on N/2 nodes (same total cores).
    assert lookup[(65536, 2)] <= lookup[(32768, 4)]
    assert lookup[(32768, 2)] <= lookup[(16384, 4)]


def test_fig10_sixteen_core_with_four_buses(benchmark, xt4):
    """The alternative node design: one bus/NIC per group of four cores."""
    spec = sweep3d_production_1billion()

    def study():
        single_bus = cores_per_node_study(
            spec, xt4, (8192,), cores_per_node_options=(16,), buses_per_node=1
        )[0]
        four_bus = cores_per_node_study(
            spec, xt4, (8192,), cores_per_node_options=(16,), buses_per_node=4
        )[0]
        quad_core = cores_per_node_study(
            spec, xt4, (32768,), cores_per_node_options=(4,), buses_per_node=1
        )[0]
        return single_bus, four_bus, quad_core

    single_bus, four_bus, quad_core = benchmark(study)
    print(
        f"8192 nodes x 16 cores: single bus {single_bus.total_time_days:.1f} days, "
        f"four buses {four_bus.total_time_days:.1f} days; "
        f"32K quad-core nodes: {quad_core.total_time_days:.1f} days"
    )
    # Splitting the bus recovers most of the loss...
    assert four_bus.total_time_days < single_bus.total_time_days
    # ...and lands close to the 32K-node quad-core system with the same
    # total number of cores (the paper says "the same"; we allow a small gap
    # because the on-chip/off-node mix differs slightly for a 4x4 rectangle).
    assert abs(four_bus.total_time_days - quad_core.total_time_days) / quad_core.total_time_days < 0.15
