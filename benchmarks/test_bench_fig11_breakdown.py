"""Figure 11: cost breakdown for Chimaera 240^3 (total, computation,
communication time vs processor count, 10^4 time steps).

The crossover point - where communication begins to dominate - marks the end
of worthwhile strong scaling for the configuration.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.bottleneck import communication_crossover, cost_breakdown
from repro.apps.workloads import chimaera_240cubed
from repro.util.tables import Table

PROCESSOR_COUNTS = (1024, 2048, 4096, 8192, 16384, 32768)


def test_fig11_cost_breakdown(benchmark, xt4):
    spec = chimaera_240cubed(htile=2, time_steps=10_000)
    points = benchmark(cost_breakdown, spec, xt4, PROCESSOR_COUNTS)

    table = Table(
        ["P", "total (days)", "computation (days)", "communication (days)", "comm share"],
        title="Figure 11: Chimaera 240^3 cost breakdown (10^4 time steps)",
    )
    for point in points:
        table.add_row(
            point.total_cores,
            round(point.total_time_days, 2),
            round(point.computation_days, 2),
            round(point.communication_days, 2),
            f"{point.communication_days / point.total_time_days:.0%}",
        )
    emit(table.render())
    crossover = communication_crossover(points)
    print(f"communication overtakes computation at P = {crossover}")

    by_p = {p.total_cores: p for p in points}
    # Computation time falls ~linearly with P; communication time does not.
    comp = [by_p[p].computation_days for p in PROCESSOR_COUNTS]
    assert comp == sorted(comp, reverse=True)
    assert by_p[1024].computation_days / by_p[16384].computation_days > 8
    comm_drop = by_p[1024].communication_days / by_p[32768].communication_days
    assert comm_drop < 3  # communication barely improves with more processors
    # Total time flattens out: the last doubling buys almost nothing.
    assert by_p[16384].total_time_days / by_p[32768].total_time_days < 1.15
    # A crossover exists inside the studied range (the paper's conclusion that
    # beyond it only better interconnects - not more processors - can help).
    assert crossover is not None
    assert 1024 < crossover <= 32768
    # Consistency of the decomposition.
    for point in points:
        assert point.computation_days + point.communication_days == (
            __import__("pytest").approx(point.total_time_days)
        )
