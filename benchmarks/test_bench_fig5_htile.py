"""Figure 5: execution time vs Htile (Chimaera 240^3 and Sweep3D 20M cells).

The paper finds that Htile in the 2-5 range minimises execution time on the
XT4 (versus 5-10 on the SP/2 with its far more expensive messages), and that
the blocking parameter is worth implementing in Chimaera (~20% gain at 16K
processors for the elongated problem).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.htile import htile_study
from repro.apps.workloads import chimaera_240cubed, chimaera_elongated, sweep3d_20m
from repro.platforms import ibm_sp2
from repro.util.tables import Table

HTILE_VALUES = (1, 2, 3, 4, 5, 6, 8, 10)


def _figure5(xt4):
    curves = {}
    for label, builder, cores in (
        ("chimaera-240^3 @4K", lambda h: chimaera_240cubed(htile=h), 4096),
        ("chimaera-240^3 @16K", lambda h: chimaera_240cubed(htile=h), 16384),
        ("sweep3d-20M @4K", lambda h: sweep3d_20m(htile=h), 4096),
        ("sweep3d-20M @16K", lambda h: sweep3d_20m(htile=h), 16384),
    ):
        curves[label] = htile_study(builder, xt4, cores, HTILE_VALUES)
    return curves


def test_fig5_htile_curves(benchmark, xt4):
    curves = benchmark(_figure5, xt4)
    table = Table(
        ["Htile"] + list(curves.keys()),
        title="Figure 5: execution time per time step (seconds) vs Htile",
    )
    for index, htile in enumerate(HTILE_VALUES):
        table.add_row(
            htile,
            *(round(curves[label].points[index].time_per_time_step_s, 2) for label in curves),
        )
    emit(table.render())
    for label, study in curves.items():
        print(f"optimal Htile for {label}: {study.optimal.htile}")

    for label, study in curves.items():
        best = study.optimal.htile
        # The optimum is never at Htile = 1 (blocking always helps on the XT4)
        # and never at the largest tested tile (fill costs eventually dominate).
        assert 2 <= best <= 8, label
        # The curve is convex-ish: the endpoints are worse than the optimum.
        times = {p.htile: p.time_per_time_step_s for p in study.points}
        assert times[1] > times[best]
        assert times[10] > times[best]

    # The paper's headline: Htile in 2..5 minimises the 240^3 problem.
    chim_4k = curves["chimaera-240^3 @4K"]
    assert 2 <= chim_4k.optimal.htile <= 5


def test_fig5_chimaera_blocking_gain_at_16k(benchmark, xt4):
    """Section 5.1: Htile = 2..5 gives ~20% improvement over Htile = 1 for the
    elongated 240x240x960 Chimaera problem on 16K processors."""
    study = benchmark(
        htile_study, lambda h: chimaera_elongated(htile=h), xt4, 16384, HTILE_VALUES
    )
    gain = study.improvement_over(1.0)
    print(f"Chimaera 240x240x960 @16K: optimal Htile {study.optimal.htile}, gain {gain:.0%}")
    assert gain > 0.12
    assert 2 <= study.optimal.htile <= 6


def test_fig5_sp2_prefers_taller_tiles(benchmark, xt4):
    """Contrast with prior SP/2 results: expensive messages push the optimum up."""
    def optima():
        xt4_study = htile_study(lambda h: sweep3d_20m(htile=h), xt4, 4096, HTILE_VALUES)
        sp2_study = htile_study(lambda h: sweep3d_20m(htile=h), ibm_sp2(), 4096, HTILE_VALUES)
        return xt4_study.optimal.htile, sp2_study.optimal.htile

    xt4_best, sp2_best = benchmark(optima)
    print(f"optimal Htile: XT4 {xt4_best}, SP/2 {sp2_best}")
    assert sp2_best >= 5
    assert sp2_best >= xt4_best
