"""Figure 9: the optimal number of parallel simulations vs machine size.

For each available machine size (16K-128K cores) the paper reports the number
of parallel Sweep3D 10^9 simulations that optimises each of the two criteria;
min(R/X) always runs at least as many jobs as min(R^2/X), and the optimal job
count does not decrease as the machine grows.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.partitioning import optimal_parallel_jobs
from repro.apps.workloads import sweep3d_production_1billion
from repro.util.tables import Table

AVAILABLE_SIZES = (16384, 32768, 65536, 131072)


def _figure9(xt4):
    spec = sweep3d_production_1billion()
    rows = []
    for available in AVAILABLE_SIZES:
        rx = optimal_parallel_jobs(
            spec, xt4, available, criterion="r_over_x", min_partition_cores=2048
        )
        r2x = optimal_parallel_jobs(
            spec, xt4, available, criterion="r2_over_x", min_partition_cores=2048
        )
        rows.append((available, rx, r2x))
    return rows


def test_fig9_optimal_job_counts(benchmark, xt4):
    rows = benchmark(_figure9, xt4)
    table = Table(
        ["available P", "jobs min(R/X)", "partition", "jobs min(R^2/X)", "partition"],
        title="Figure 9: optimal number of parallel Sweep3D simulations",
    )
    for available, rx, r2x in rows:
        table.add_row(
            available, rx.parallel_jobs, rx.partition_cores, r2x.parallel_jobs, r2x.partition_cores
        )
    emit(table.render())

    for available, rx, r2x in rows:
        # Throughput criterion always runs at least as many jobs.
        assert rx.parallel_jobs >= r2x.parallel_jobs
        # Both criteria use the whole machine.
        assert rx.parallel_jobs * rx.partition_cores == available
        assert r2x.parallel_jobs * r2x.partition_cores == available
        # On the largest machines, partitioning becomes worthwhile under R/X
        # (our calibration reaches this point a little later than the paper's,
        # which already favours 8 jobs at 128K - see EXPERIMENTS.md).
        if available >= 65536:
            assert rx.parallel_jobs >= 2

    # The optimal job count under R/X does not shrink as the machine grows.
    rx_jobs = [rx.parallel_jobs for _, rx, _ in rows]
    assert rx_jobs == sorted(rx_jobs)
    assert rx_jobs[-1] >= 4
