"""Figure 8: optimising the partition size with the R/X and R^2/X metrics.

For Sweep3D 10^9 cells on a 128K-core machine the paper finds R/X minimised
at 16K-core partitions (8 parallel jobs) and R^2/X at 64K-core partitions.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.partitioning import partition_tradeoff
from repro.apps.workloads import sweep3d_production_1billion
from repro.util.tables import Table

AVAILABLE = 131072
PARTITIONS = (131072, 65536, 32768, 16384, 8192, 4096)


def test_fig8_partition_size_optimisation(benchmark, xt4):
    spec = sweep3d_production_1billion()
    points = benchmark(partition_tradeoff, spec, xt4, AVAILABLE, PARTITIONS)

    min_rx = min(p.r_over_x for p in points)
    min_r2x = min(p.r2_over_x for p in points)
    table = Table(
        ["partition", "jobs", "runtime (days)", "R/X (normalised)", "R^2/X (normalised)"],
        title="Figure 8: partition-size trade-off on 128K cores (Sweep3D 10^9)",
    )
    for point in points:
        table.add_row(
            point.partition_cores,
            point.parallel_jobs,
            round(point.runtime_s / 86400.0, 1),
            round(point.r_over_x / min_rx, 3),
            round(point.r2_over_x / min_r2x, 3),
        )
    emit(table.render())

    best_rx = min(points, key=lambda p: p.r_over_x)
    best_r2x = min(points, key=lambda p: p.r2_over_x)
    print(
        f"R/X optimum: {best_rx.partition_cores}-core partitions ({best_rx.parallel_jobs} jobs); "
        f"R^2/X optimum: {best_r2x.partition_cores}-core partitions ({best_r2x.parallel_jobs} jobs)"
    )

    # Shape claims from the paper:
    # - the throughput-weighted metric favours smaller partitions than the
    #   turnaround-weighted one;
    assert best_rx.partition_cores < best_r2x.partition_cores
    # - R/X is not minimised by giving one job the whole machine;
    assert best_rx.parallel_jobs >= 4
    # - R^2/X is minimised by a large partition (at least a quarter machine).
    assert best_r2x.partition_cores >= AVAILABLE // 4
