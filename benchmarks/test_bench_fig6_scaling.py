"""Figure 6: execution time vs system size (Sweep3D 10^9 cells, 10^4 time
steps, 30 energy groups, Htile = 2) - model curve plus simulated "measured"
points.

The paper shows ~1200 days at 1K processors falling with diminishing returns
to ~150 days at 16K and below 100 beyond 64K, with measured points within
about 10% of the prediction.  Here the discrete-event simulator provides the
measured points at the sizes it can simulate in a few tens of seconds.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.scaling import strong_scaling
from repro.apps.workloads import sweep3d_production_1billion
from repro.simulator.wavefront import simulate_wavefront
from repro.util.tables import Table

MODEL_COUNTS = (1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072)
SIMULATED_COUNTS = (64, 144)


def test_fig6_model_scaling_curve(benchmark, xt4):
    spec = sweep3d_production_1billion()
    curve = benchmark(strong_scaling, spec, xt4, MODEL_COUNTS)
    table = Table(
        ["P", "predicted total time (days)", "speed-up vs 1024"],
        title="Figure 6: Sweep3D 10^9 cells, 10^4 time steps, 30 energy groups",
    )
    speedups = dict(curve.speedup())
    for point in curve.points:
        table.add_row(point.total_cores, round(point.total_time_days, 1), round(speedups[point.total_cores], 2))
    emit(table.render())

    days = {p.total_cores: p.total_time_days for p in curve.points}
    # Monotone decrease.
    ordered = [days[p] for p in MODEL_COUNTS]
    assert ordered == sorted(ordered, reverse=True)
    # Magnitudes in the paper's regime: O(1000) days at 1K, O(100) at 16K.
    assert 400 < days[1024] < 4000
    assert 50 < days[16384] < 400
    assert days[131072] < days[16384]
    # Diminishing returns: each doubling beyond 16K buys less than 1.6x.
    assert days[16384] / days[32768] < 1.7
    assert days[65536] / days[131072] < 1.4
    # Early doublings are close to ideal.
    assert days[1024] / days[2048] > 1.75


def test_fig6_measured_points_within_ten_percent(benchmark, xt4):
    """Simulated 'measured' points vs the model at sizes we can simulate."""
    spec = sweep3d_production_1billion()

    def measure():
        rows = []
        for cores in SIMULATED_COUNTS:
            simulated = simulate_wavefront(spec, xt4, total_cores=cores, iterations=1)
            rows.append((cores, simulated.time_per_iteration_us))
        return rows

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    curve = strong_scaling(spec, xt4, SIMULATED_COUNTS)
    table = Table(
        ["P", "predicted iteration (s)", "simulated iteration (s)", "error"],
        title="Figure 6 measured points (discrete-event simulation)",
    )
    for (cores, simulated_us), point in zip(measured, curve.points):
        predicted_us = point.prediction.time_per_iteration_us
        error = (predicted_us - simulated_us) / simulated_us
        table.add_row(cores, predicted_us / 1e6, simulated_us / 1e6, f"{error:+.1%}")
        assert abs(error) < 0.10
    emit(table.render())
