"""Fault-tolerance benchmark: time-to-solution vs MTBF x checkpoint interval.

The dynamic-failure scenario layer (``repro.core.faults``, the simulator's
fault injection and the analytic bounded expected-rework correction - see
``docs/faults.md``) carries two contracts this benchmark measures and
records:

* **fault-free limit** - attaching a *null* fault model (infinite MTBF, no
  dump cost) to a platform is bit-identical to the plain platform on every
  backend: max abs deviation exactly 0.0;
* **fault-tolerance curve** - at a fixed checkpoint interval, the analytic
  time-to-solution is *strictly increasing* as the MTBF drops (more
  failures -> more rework, never less).

It also records the simulator's injected-failure behaviour in a
failure-dominated regime (failures actually fire and cost time) and the
checkpoint-interval sweep whose interior optimum reproduces the classic
Daly/Young trade-off (short intervals pay dumps, long intervals pay
rework).

A machine-readable record is written to ``BENCH_faults.json`` so downstream
tooling can track the curves across revisions (guarded by
``tests/test_bench_records.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import emit

from repro.apps.workloads import lu_class
from repro.backends import get_backend
from repro.backends.simulator import SimulatorBackend, clear_simulation_cache
from repro.core.decomposition import decompose
from repro.core.faults import FaultModel
from repro.core.predictor import clear_prediction_cache
from repro.platforms import cray_xt4, parse_fault_model
from repro.util.tables import Table

TOTAL_CORES = 16

#: MTBF sweep (fixed checkpoint interval) - the fault-tolerance curve.
MTBF_SWEEP_US = (1e9, 1e8, 1e7)
FIXED_FAULTS = "repair:1e6/restart:1e5/interval:1e6/dump:5e3"

#: Checkpoint-interval sweep in the regime where the Daly optimum
#: ``sqrt(2 * dump * MTBF)`` ~ 4.5e3 us sits inside the sweep.
INTERVAL_SWEEP_US = (1e3, 2e3, 5e3, 1e4, 1e5)
INTERVAL_FAULTS = FaultModel(mtbf_us=1e5, checkpoint_cost_us=100.0)

#: Failure-dominated regime for the simulator: MTBF comparable to the
#: per-iteration time, so injected failures actually fire.
HARSH_FAULTS = FaultModel(
    mtbf_us=1e4, repair_us=5e3, checkpoint_interval_us=2e3, checkpoint_cost_us=50.0
)
FAULT_SEED = 0

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def _time_us(backend, spec, platform, grid) -> float:
    return backend.evaluate(spec, platform, grid).time_per_iteration_us


def test_fault_layer_contracts(benchmark, xt4):
    spec = lu_class("A")
    grid = decompose(TOTAL_CORES)
    clear_prediction_cache()
    clear_simulation_cache()

    # -- fault-free limit: null knobs are bit-identical on every backend ----
    null_platform = xt4.with_faults(FaultModel())
    backends = {
        "analytic-fast": get_backend("analytic-fast"),
        "analytic-vec": get_backend("analytic-vec"),
        "simulator": SimulatorBackend(),
    }
    deviations = {
        name: abs(
            _time_us(backend, spec, xt4, grid)
            - _time_us(backend, spec, null_platform, grid)
        )
        for name, backend in backends.items()
    }
    max_abs_deviation = max(deviations.values())

    # -- fault-tolerance curve: analytic time vs MTBF at fixed interval -----
    analytic = backends["analytic-fast"]
    mtbf_curve = []
    for mtbf in MTBF_SWEEP_US:
        faults = parse_fault_model(f"mtbf:{mtbf:g}/{FIXED_FAULTS}")
        mtbf_curve.append(
            {
                "mtbf_us": mtbf,
                "analytic_time_us": _time_us(
                    analytic, spec, xt4.with_faults(faults), grid
                ),
            }
        )

    # -- checkpoint-interval sweep: the Daly/Young interior optimum ---------
    interval_curve = []
    for interval in INTERVAL_SWEEP_US:
        faults = FaultModel(
            mtbf_us=INTERVAL_FAULTS.mtbf_us,
            checkpoint_interval_us=interval,
            checkpoint_cost_us=INTERVAL_FAULTS.checkpoint_cost_us,
        )
        interval_curve.append(
            {
                "checkpoint_interval_us": interval,
                "analytic_time_us": _time_us(
                    analytic, spec, xt4.with_faults(faults), grid
                ),
            }
        )
    interval_times = [point["analytic_time_us"] for point in interval_curve]
    optimum_index = interval_times.index(min(interval_times))

    # -- simulator fault injection in the failure-dominated regime ----------
    sim = SimulatorBackend(fault_seed=FAULT_SEED)
    fault_free_us = _time_us(sim, spec, xt4, grid)
    harsh_result = sim.evaluate(spec, xt4.with_faults(HARSH_FAULTS), grid)
    harsh_us = harsh_result.time_per_iteration_us
    ranks = harsh_result.simulation.stats.ranks
    injected_failures = sum(rank.failures for rank in ranks)
    checkpoints = sum(rank.checkpoints for rank in ranks)

    table = Table(
        ["MTBF (s)", "analytic time/iter (ms)"],
        title=f"lu-classA on {xt4.name}, P={TOTAL_CORES}, interval 1 s",
    )
    for point in mtbf_curve:
        table.add_row(point["mtbf_us"] / 1e6, point["analytic_time_us"] / 1e3)
    emit(table.render())
    table = Table(
        ["interval (ms)", "analytic time/iter (ms)"],
        title=f"checkpoint-interval sweep (MTBF {INTERVAL_FAULTS.mtbf_us / 1e6:g} s)",
    )
    for point in interval_curve:
        table.add_row(
            point["checkpoint_interval_us"] / 1e3, point["analytic_time_us"] / 1e3
        )
    emit(table.render())
    emit(
        f"fault-free-limit max abs deviation: {max_abs_deviation:.2e} us; "
        f"harsh simulator run: {injected_failures} failures, "
        f"{checkpoints} checkpoints, {harsh_us / 1e3:.1f} ms vs "
        f"{fault_free_us / 1e3:.1f} ms fault-free"
    )

    # The fault-layer contracts.
    assert max_abs_deviation == 0.0, (
        f"null fault model is not bit-identical: {deviations}"
    )
    times = [point["analytic_time_us"] for point in mtbf_curve]
    assert all(a < b for a, b in zip(times, times[1:])), (
        f"time-to-solution is not strictly increasing as MTBF drops: {times}"
    )
    assert 0 < optimum_index < len(interval_curve) - 1, (
        "checkpoint-interval sweep has no interior optimum: "
        f"{interval_times}"
    )
    assert injected_failures > 0, "harsh regime injected no failures"
    assert harsh_us > fault_free_us

    record = {
        "benchmark": "fault_tolerance",
        "application": "lu-classA",
        "platform": xt4.name,
        "total_cores": TOTAL_CORES,
        "fault_free_limit_max_abs_deviation_us": max_abs_deviation,
        "mtbf_curve": mtbf_curve,
        "interval_curve": interval_curve,
        "interval_optimum_index": optimum_index,
        "harsh_simulator": {
            "fault_model": "mtbf:1e4/repair:5e3/interval:2e3/dump:50",
            "fault_seed": FAULT_SEED,
            "fault_free_time_us": fault_free_us,
            "faulty_time_us": harsh_us,
            "injected_failures": injected_failures,
            "checkpoints": checkpoints,
        },
        "contract_fault_free_max_abs_deviation_us": 0.0,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(f"wrote {RECORD_PATH.name}")

    # Steady-state timing of the full fault-injecting event-engine run.
    faulty_platform = xt4.with_faults(HARSH_FAULTS)

    def _faulty_round():
        clear_simulation_cache()
        return sim.evaluate(spec, faulty_platform, grid)

    benchmark(_faulty_round)
