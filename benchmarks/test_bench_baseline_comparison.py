"""Table 4 baseline: the Sundaram-Stukel & Vernon Sweep3D model vs the
plug-and-play model (and the Hoisie-style single-sweep model).

The paper's argument is that the reusable model loses no accuracy relative to
the application-specific model it generalises; this bench quantifies the gap
over a range of processor counts.
"""

from __future__ import annotations

from conftest import emit

from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.baselines.hoisie import hoisie_iteration_time
from repro.baselines.sundaram_vernon import sundaram_vernon_iteration_time
from repro.core.decomposition import ProblemSize, decompose
from repro.core.model import iteration_prediction
from repro.util.tables import Table

PROCESSOR_COUNTS = (64, 256, 1024, 4096, 16384)


def _compare(xt4_single):
    spec = sweep3d(ProblemSize.of_total(20e6), config=Sweep3DConfig(mk=4), iterations=1)
    rows = []
    for cores in PROCESSOR_COUNTS:
        grid = decompose(cores)
        reusable = iteration_prediction(spec, xt4_single, grid).time_per_iteration
        # The Table 4 model carries the SP/2-era synchronisation terms
        # ((m-1)L, (n-2)L per k-block) whose form the paper could not verify
        # on the XT4 and which the reusable model therefore omits; compare
        # both without them (the headline comparison) and with them.
        table4 = sundaram_vernon_iteration_time(
            spec, xt4_single, grid, include_sync_terms=False
        ).iteration_time
        table4_sync = sundaram_vernon_iteration_time(
            spec, xt4_single, grid, include_sync_terms=True
        ).iteration_time
        hoisie = hoisie_iteration_time(spec, xt4_single, grid)
        rows.append((cores, reusable, table4, table4_sync, hoisie))
    return rows


def test_baseline_model_comparison(benchmark, xt4_single):
    rows = benchmark(_compare, xt4_single)
    table = Table(
        ["P", "plug-and-play (ms)", "Table 4 model (ms)", "Table 4 + sync (ms)",
         "Hoisie-style (ms)", "vs Table 4", "vs Hoisie"],
        title="Sweep3D 20M cells: reusable model vs application-specific baselines",
    )
    for cores, reusable, table4, table4_sync, hoisie in rows:
        table.add_row(
            cores,
            reusable / 1000.0,
            table4 / 1000.0,
            table4_sync / 1000.0,
            hoisie / 1000.0,
            f"{(reusable - table4) / table4:+.1%}",
            f"{(reusable - hoisie) / hoisie:+.1%}",
        )
    emit(table.render())

    for cores, reusable, table4, table4_sync, hoisie in rows:
        # Generality costs (essentially) nothing relative to the Table 4 model
        # while computation dominates; at very large P the two differ by the
        # 1-2 per-tile receive/send operations that Table 4's corner-processor
        # critical path omits and the reusable model charges every stack
        # (Section 4.2's "all processors compute their tiles at the same
        # rate" argument).  See EXPERIMENTS.md.
        relative_gap = abs(reusable - table4) / table4
        if cores <= 256:
            assert relative_gap < 0.05
        assert relative_gap < 0.30
        # Table 4 tracks a corner processor that performs fewer per-tile
        # operations, so it never exceeds the reusable model's estimate.
        assert reusable >= table4
        # The SP/2 synchronisation terms only ever add time.
        assert table4_sync >= table4
        # The coarser single-sweep model stays within a factor but deviates more.
        assert 0.5 < reusable / hoisie < 2.0
