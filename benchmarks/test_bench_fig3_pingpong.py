"""Figure 3: measured vs modelled MPI end-to-end communication times.

(a) off-node (inter-node) and (b) on-chip (intra-node) half round-trip time
as a function of message size, comparing the simulated "measurement" against
the Table 1 LogGP model.
"""

from __future__ import annotations

from conftest import emit

from repro.core.comm import total_comm
from repro.simulator.pingpong import DEFAULT_MESSAGE_SIZES, ping_pong_sweep
from repro.util.tables import Table


def _figure3(platform, on_chip: bool):
    samples = ping_pong_sweep(
        platform, on_chip=on_chip, message_sizes=DEFAULT_MESSAGE_SIZES, repetitions=3
    )
    rows = []
    for sample in samples:
        model = total_comm(platform, sample.message_bytes, on_chip=on_chip)
        error = (model - sample.one_way_time_us) / sample.one_way_time_us
        rows.append((sample.message_bytes, sample.one_way_time_us, model, error))
    return rows


def _assert_figure3_shape(rows, *, jump_at=1024, jump_factor=3.0):
    by_size = {size: measured for size, measured, _, _ in rows}
    # Monotone growth with message size.
    sizes = sorted(by_size)
    values = [by_size[s] for s in sizes]
    assert values == sorted(values)
    # Discontinuity at the protocol switch (rendezvous off-node, DMA setup
    # on-chip; the on-chip jump is smaller, hence the configurable factor).
    assert by_size[jump_at + 1] - by_size[jump_at] > jump_factor * (
        by_size[1024] - by_size[512]
    )
    # Model within a few percent of the measurement everywhere.
    assert max(abs(err) for *_rest, err in rows) < 0.05


def test_fig3a_offnode_pingpong(benchmark, xt4):
    rows = benchmark(_figure3, xt4, False)
    table = Table(
        ["bytes", "measured (us)", "model (us)", "error"],
        title="Figure 3(a): off-node MPI end-to-end time",
    )
    for size, measured, model, error in rows:
        table.add_row(size, measured, model, f"{error:+.2%}")
    emit(table.render())
    _assert_figure3_shape(rows)


def test_fig3b_onchip_pingpong(benchmark, xt4):
    rows = benchmark(_figure3, xt4, True)
    table = Table(
        ["bytes", "measured (us)", "model (us)", "error"],
        title="Figure 3(b): on-chip MPI end-to-end time",
    )
    for size, measured, model, error in rows:
        table.add_row(size, measured, model, f"{error:+.2%}")
    emit(table.render())
    _assert_figure3_shape(rows, jump_factor=2.0)
    # On-chip specific shape: the slope above 1 KiB (DMA) is *smaller* than
    # below (memory copy) - Section 3.2.
    by_size = {size: measured for size, measured, _, _ in rows}
    slope_small = (by_size[1024] - by_size[256]) / (1024 - 256)
    slope_large = (by_size[12288] - by_size[2048]) / (12288 - 2048)
    assert slope_large < slope_small


def test_fig3_onchip_faster_than_offnode(benchmark, xt4):
    def compare():
        off = {s.message_bytes: s.one_way_time_us for s in ping_pong_sweep(xt4, on_chip=False, repetitions=2)}
        on = {s.message_bytes: s.one_way_time_us for s in ping_pong_sweep(xt4, on_chip=True, repetitions=2)}
        return off, on

    off, on = benchmark(compare)
    for size in off:
        assert on[size] < off[size]
