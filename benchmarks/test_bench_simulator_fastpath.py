"""Simulator engine benchmark: per-rank events vs the diagonal-aggregated path.

The discrete-event simulator is the "measurement" side of every validation
matrix; at 4096 cores the per-rank engine processes tens of millions of heap
events in pure Python and dominates the matrix wall-clock.  The aggregated
engine advances each wavefront diagonal as a group through an arithmetic
recurrence that reproduces the event timings exactly (see
``repro/simulator/fastpath.py``).  This benchmark records the speedup and
asserts the engine contract:

* aggregated and per-rank agree to within 1e-9 relative at 4096 cores, and
* the aggregated engine is at least 10x faster there.

A machine-readable record is written to ``BENCH_simulator.json`` so that
downstream tooling can track the speedup across revisions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.apps.chimaera import chimaera
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.simulator.wavefront import simulate_wavefront
from repro.util.tables import Table

TOTAL_CORES = 4096
GRID = ProcessorGrid(64, 64)
REL_TOL = 1e-9
MIN_SPEEDUP = 10.0
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def _spec():
    # 4096-core validation-matrix configuration: the per-processor subdomain
    # is 2x2 cells (communication-dominated, the hard regime for the model)
    # and the stack holds 24 tiles, keeping the per-rank reference run in
    # tens of seconds rather than minutes.
    return chimaera(ProblemSize(128, 128, 24), iterations=1)


def _time_once(spec, platform, engine: str) -> tuple[float, object]:
    start = time.perf_counter()
    result = simulate_wavefront(spec, platform, grid=GRID, engine=engine)
    return time.perf_counter() - start, result


def test_simulator_fastpath_speedup_4096(benchmark, xt4_single):
    spec = _spec()
    event_s, event = _time_once(spec, xt4_single, "event")
    fast_s, fast = _time_once(spec, xt4_single, "aggregated")

    rel = abs(fast.makespan_us - event.makespan_us) / event.makespan_us
    speedup = event_s / fast_s

    table = Table(
        ["engine", "wall (s)", "events", "makespan (ms)"],
        title=f"wavefront simulation at P={TOTAL_CORES} ({GRID.n}x{GRID.m}, "
        f"{spec.tiles_per_stack():.0f} tiles, {spec.nsweeps} sweeps)",
    )
    table.add_row("per-rank events", round(event_s, 2), event.stats.events, event.makespan_us / 1e3)
    table.add_row("diagonal-aggregated", round(fast_s, 3), fast.stats.events, fast.makespan_us / 1e3)
    emit(table.render())
    emit(f"speedup: {speedup:.1f}x, relative makespan difference: {rel:.2e}")

    # The engine contract.
    assert rel <= REL_TOL, f"aggregated engine diverges: {rel:.2e}"
    assert speedup >= MIN_SPEEDUP, f"aggregated engine only {speedup:.1f}x faster"

    record = {
        "benchmark": "simulator_fastpath",
        "total_cores": TOTAL_CORES,
        "grid": f"{GRID.n}x{GRID.m}",
        "tiles": spec.tiles_per_stack(),
        "nsweeps": spec.nsweeps,
        "event_engine_s": event_s,
        "aggregated_engine_s": fast_s,
        "speedup": speedup,
        "relative_error": rel,
        "contract_min_speedup": MIN_SPEEDUP,
        "contract_rel_tol": REL_TOL,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(f"wrote {RECORD_PATH.name}: speedup={speedup:.1f}x")

    # Steady-state aggregated-engine timing for the regression record.
    benchmark(simulate_wavefront, spec, xt4_single, grid=GRID, engine="aggregated")


def test_simulator_backend_matrix_reuses_evaluations(xt4_single):
    """The batch layer's dedup + memo make repeated matrix entries free."""
    from repro.backends import (
        PredictionRequest,
        clear_simulation_cache,
        predict_many,
        simulation_cache_info,
    )

    spec = chimaera(ProblemSize(32, 32, 16), iterations=1)
    requests = [PredictionRequest(spec, xt4_single, total_cores=16)] * 6
    clear_simulation_cache()
    first = predict_many(requests, backend="simulator")
    misses = simulation_cache_info().misses
    assert misses == 1  # six requests, one simulation

    start = time.perf_counter()
    second = predict_many(requests, backend="simulator")
    elapsed = time.perf_counter() - start
    assert simulation_cache_info().misses == misses
    assert elapsed < 0.05
    assert second[0].time_per_iteration_us == first[0].time_per_iteration_us
