"""Table 2: XT4 communication parameters re-derived from (simulated) ping-pong.

The Section 3 procedure - measure half round-trip times, fit the Table 1
equations - must recover the platform's LogGP constants.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.calibration.fitting import derive_platform_parameters
from repro.platforms.xt4 import (
    XT4_G,
    XT4_G_COPY,
    XT4_G_DMA,
    XT4_L,
    XT4_O,
    XT4_O_COPY,
    XT4_O_ONCHIP,
)
from repro.util.tables import Table

PAPER_VALUES = {
    "G (us/byte)": XT4_G,
    "L (us)": XT4_L,
    "o (us)": XT4_O,
    "Gcopy (us/byte)": XT4_G_COPY,
    "Gdma (us/byte)": XT4_G_DMA,
    "o_onchip (us)": XT4_O_ONCHIP,
    "ocopy (us)": XT4_O_COPY,
}


def test_table2_parameter_recovery(benchmark, xt4):
    fitted = benchmark(derive_platform_parameters, xt4, repetitions=3)
    table = Table(
        ["parameter", "fitted", "paper (Table 2)", "error"],
        title="Table 2: XT4 communication parameters (fitted from simulated ping-pong)",
    )
    for name, value in fitted.table2_rows():
        reference = PAPER_VALUES[name]
        error = (value - reference) / reference
        table.add_row(name, value, reference, f"{error:+.2%}")
        assert value == pytest.approx(reference, rel=1e-3), name
    emit(table.render())
    assert fitted.off_node_quality.max_relative_error < 1e-6
    assert fitted.on_chip_quality.max_relative_error < 1e-6


def test_table2_derived_bandwidth(benchmark, xt4):
    """1/G corresponds to the paper's quoted 2.5 GB/s inter-node bandwidth."""
    fitted = benchmark(derive_platform_parameters, xt4, repetitions=2)
    bandwidth_gb_s = 1.0 / fitted.off_node.gap_per_byte / 1000.0
    assert bandwidth_gb_s == pytest.approx(2.5, rel=0.01)
