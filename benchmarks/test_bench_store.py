"""Sharded result-store benchmark: open cost, group commit, kill/resume.

The campaign store's performance claims are structural, not incidental, and
this benchmark pins each one down with a number in ``BENCH_store.json``:

* **open is O(index)**: reopening a populated store parses only the index
  sidecars; the benchmark times that against a full-body parse (what the
  version-1 single-file loader had to do) over the same records and asserts
  the sidecar path is at least ``MIN_OPEN_RATIO`` times faster.
* **group commit beats per-record fsync**: the runner's batch loop lands
  whole ``put_many`` batches at one ``fsync`` per touched segment; the
  benchmark measures the records/s against one-record-per-commit writes
  (the before/after of the runner change) and asserts the speedup.
* **shard merge wall-clock**: folding the scratch stores of a sharded run
  back into the main store is timed at reduced scale.
* **kill/resume**: a real ``--shards`` campaign subprocess is SIGKILLed
  mid-run; ``resume=True`` must salvage the scratch commits and a final
  re-run must compute exactly zero points.

``tests/test_bench_records.py`` guards the committed record's schema and
re-asserts these contracts.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from conftest import emit

from repro.campaigns import CampaignSpec, ResultStore, run_campaign
from repro.campaigns.segments import SEGMENT_NAMES
from repro.util.tables import Table

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"
REPO_ROOT = RECORD_PATH.parent

#: Synthetic store size for the open-time and merge measurements.
OPEN_RECORDS = 20_000
#: Records per side of the commit-throughput comparison (per-record commits
#: pay two fsyncs each, so this leg is deliberately small).
COMMIT_RECORDS = 256
MIN_OPEN_RATIO = 2.0
MIN_PUT_MANY_SPEEDUP = 3.0
MERGE_SHARDS = 4

#: The kill/resume campaign: enough moderately-priced simulator points that
#: a SIGKILL reliably lands mid-run, spread over 4 worker processes.
KILL_SPEC = {
    "name": "store-kill-resume",
    "apps": ["lu-classA"],
    "total_cores": [16, 64],
    "backends": ["simulator"],
    "noise_models": ["sampled:0.1"],
    "noise_seeds": list(range(10)),
}
KILL_SHARDS = 4


def _record(i: int) -> tuple[str, dict]:
    # Bodies sized like real campaign records (~700 bytes of point+result
    # fields); the index sidecar row for the same record is ~40 bytes, which
    # is exactly the asymmetry the O(index) open exploits.
    key = f"{i % 16:x}{i:015x}"
    return key, {
        "point": {"app": "synthetic", "index": i},
        "result": {
            "time_per_iteration_us": float(i),
            "fields": {f"metric_{j}": float(i + j) for j in range(24)},
            "padding": "x" * 240,
        },
    }


def _build_store(path: Path, count: int) -> ResultStore:
    store = ResultStore(path)
    store.put_many(_record(i) for i in range(count))
    store.close()
    return store


def _time_sidecar_open(path: Path) -> tuple[float, int]:
    start = time.perf_counter()
    store = ResultStore(path)
    elapsed = time.perf_counter() - start
    loaded = len(store)
    store.close()
    return elapsed, loaded


def _time_full_parse(path: Path) -> tuple[float, int]:
    """What a v1-style open costs: parse every record body in the store."""
    start = time.perf_counter()
    loaded = 0
    for name in SEGMENT_NAMES:
        segment = path / f"seg-{name}.jsonl"
        if not segment.exists():
            continue
        with segment.open("rb") as handle:
            for line in handle:
                json.loads(line)
                loaded += 1
    return time.perf_counter() - start, loaded


def _measure_open_ratio() -> dict:
    path = Path(tempfile.mkdtemp(prefix="bench-store-")) / "open.store"
    _build_store(path, OPEN_RECORDS)
    full_s, full_n = _time_full_parse(path)
    open_s, open_n = _time_sidecar_open(path)
    assert open_n == full_n == OPEN_RECORDS
    return {
        "records": OPEN_RECORDS,
        "open_sidecar_s": open_s,
        "open_fullparse_s": full_s,
        "open_ratio": full_s / open_s,
    }


def _measure_commit_throughput() -> dict:
    root = Path(tempfile.mkdtemp(prefix="bench-store-"))
    items = [_record(i) for i in range(COMMIT_RECORDS)]

    per_record = ResultStore(root / "per-record.store")
    start = time.perf_counter()
    for key, record in items:
        per_record.put(key, record)  # one lock + two fsyncs per record
    per_record_s = time.perf_counter() - start
    per_record.close()

    grouped = ResultStore(root / "grouped.store")
    start = time.perf_counter()
    grouped.put_many(items)  # one lock + two fsyncs per touched segment
    group_s = time.perf_counter() - start
    grouped.close()

    return {
        "commit_records": COMMIT_RECORDS,
        "per_record_commit_s": per_record_s,
        "group_commit_s": group_s,
        "per_record_records_per_s": COMMIT_RECORDS / per_record_s,
        "group_commit_records_per_s": COMMIT_RECORDS / group_s,
        "put_many_speedup": per_record_s / group_s,
    }


def _measure_shard_merge() -> dict:
    root = Path(tempfile.mkdtemp(prefix="bench-store-"))
    main_store = ResultStore(root / "merged.store")
    per_shard = OPEN_RECORDS // MERGE_SHARDS
    scratch_paths = []
    for shard in range(MERGE_SHARDS):
        scratch = ResultStore(main_store.scratch_root() / f"shard-{shard}.store")
        scratch.put_many(
            _record(i) for i in range(shard * per_shard, (shard + 1) * per_shard)
        )
        scratch.close()
        scratch_paths.append(scratch.path)

    start = time.perf_counter()
    merged = sum(main_store.merge_from(path) for path in scratch_paths)
    wall_s = time.perf_counter() - start
    assert merged == len(main_store) == per_shard * MERGE_SHARDS
    return {
        "shards": MERGE_SHARDS,
        "records": merged,
        "wall_s": wall_s,
    }


def _scratch_record_count(store_path: Path) -> int:
    count = 0
    shards_root = store_path / "shards"
    if not shards_root.exists():
        return 0
    for scratch in shards_root.iterdir():
        for name in SEGMENT_NAMES:
            segment = scratch / f"seg-{name}.jsonl"
            if segment.exists():
                count += segment.read_bytes().count(b"\n")
    return count


def _measure_kill_resume() -> dict:
    root = Path(tempfile.mkdtemp(prefix="bench-store-"))
    spec_path = root / "spec.json"
    spec_path.write_text(json.dumps(KILL_SPEC))
    store_path = root / "kill.store"
    spec = CampaignSpec.from_dict(KILL_SPEC)
    total = len(spec.points())

    # A real worker fleet in its own session: batch_size=1 so scratch
    # commits land continuously and the SIGKILL window is wide.
    child_code = (
        "import json, sys\n"
        "from repro.campaigns import load_campaign_file, run_campaign\n"
        "run_campaign(load_campaign_file(sys.argv[1]), store=sys.argv[2], "
        f"shards={KILL_SHARDS}, batch_size=1)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", child_code, str(spec_path), str(store_path)],
        env=env,
        start_new_session=True,  # the SIGKILL must take the shard workers too
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if child.poll() is not None:
            break
        if _scratch_record_count(store_path) >= KILL_SHARDS:
            break
        time.sleep(0.05)
    child_finished = child.poll() is not None
    if not child_finished:
        os.killpg(child.pid, signal.SIGKILL)
    child.wait()

    start = time.perf_counter()
    resumed = run_campaign(spec, store=store_path, shards=KILL_SHARDS, resume=True)
    resume_wall_s = time.perf_counter() - start
    rerun = run_campaign(spec, store=store_path, shards=KILL_SHARDS)

    # The resumed run computes only the delta; the re-run computes nothing.
    assert resumed.computed + resumed.cached == total
    if not child_finished:
        assert resumed.salvaged >= 1, "SIGKILL landed before any scratch commit"
        assert resumed.computed < total
    assert rerun.computed == 0 and rerun.cached == total

    return {
        "total_points": total,
        "shards": KILL_SHARDS,
        "child_finished_before_kill": child_finished,
        "salvaged": resumed.salvaged,
        "resumed_computed": resumed.computed,
        "resume_wall_s": resume_wall_s,
        "rerun_computed": rerun.computed,
    }


def test_store_open_commit_and_resume_contracts(benchmark):
    open_stats = _measure_open_ratio()
    commit_stats = _measure_commit_throughput()
    merge_stats = _measure_shard_merge()
    kill_stats = _measure_kill_resume()

    table = Table(
        ["measurement", "value"],
        title=f"sharded store, {OPEN_RECORDS} records",
    )
    table.add_row("sidecar open (s)", round(open_stats["open_sidecar_s"], 4))
    table.add_row("full-parse open (s)", round(open_stats["open_fullparse_s"], 4))
    table.add_row("open ratio", round(open_stats["open_ratio"], 1))
    table.add_row(
        "per-record commit (rec/s)",
        round(commit_stats["per_record_records_per_s"]),
    )
    table.add_row(
        "group commit (rec/s)", round(commit_stats["group_commit_records_per_s"])
    )
    table.add_row("put_many speedup", round(commit_stats["put_many_speedup"], 1))
    table.add_row(
        f"{MERGE_SHARDS}-shard merge (s)", round(merge_stats["wall_s"], 3)
    )
    table.add_row("kill/resume salvaged", kill_stats["salvaged"])
    table.add_row("re-run computed", kill_stats["rerun_computed"])
    emit(table.render())

    # The store contracts.
    assert open_stats["open_ratio"] >= MIN_OPEN_RATIO, (
        f"sidecar open only {open_stats['open_ratio']:.1f}x faster than a "
        "full-body parse"
    )
    assert commit_stats["put_many_speedup"] >= MIN_PUT_MANY_SPEEDUP, (
        f"put_many only {commit_stats['put_many_speedup']:.1f}x faster than "
        "per-record commits"
    )
    assert kill_stats["rerun_computed"] == 0

    record = {
        "benchmark": "store",
        **open_stats,
        **commit_stats,
        "shard_merge": merge_stats,
        "kill_resume": kill_stats,
        "contract_min_open_ratio": MIN_OPEN_RATIO,
        "contract_min_put_many_speedup": MIN_PUT_MANY_SPEEDUP,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(
        f"wrote {RECORD_PATH.name}: open_ratio="
        f"{open_stats['open_ratio']:.1f}x, put_many_speedup="
        f"{commit_stats['put_many_speedup']:.1f}x"
    )

    # Steady-state open timing for the regression harness.
    steady = Path(tempfile.mkdtemp(prefix="bench-store-")) / "steady.store"
    _build_store(steady, OPEN_RECORDS)

    def _open_round():
        store = ResultStore(steady)
        store.close()
        return len(store)

    benchmark(_open_round)
