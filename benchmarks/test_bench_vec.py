"""Vectorized-backend benchmark: ``analytic-vec`` vs ``analytic-fast``.

Design-space sweeps price the same application on thousands of (htile,
core-count) configurations; per-point evaluation through the scalar fast
path re-walks the cost tables and the ``StartP`` corners for every point.
The ``analytic-vec`` backend receives the whole design matrix through the
batch protocol (``evaluate_batch``) and prices it as struct-of-arrays
operations, sharing the per-(platform, mapping) cost tables and folding the
pipeline-fill corner walks of a whole sub-group into single passes.  This
benchmark records the speedup on a 10,000-point grid and asserts the
backend contract:

* ``analytic-vec`` and ``analytic-fast`` agree within 1e-9 (absolute, in
  µs; the two paths are in fact bit-identical), and
* ``analytic-vec`` is at least 10x faster on the full grid.

A machine-readable record is written to ``BENCH_vec.json`` so downstream
tooling can track the speedup across revisions (guarded by
``tests/test_bench_records.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.apps.workloads import chimaera_240cubed
from repro.backends import PredictionRequest, predict_many
from repro.core.predictor import clear_prediction_cache
from repro.platforms import cray_xt4_quad_chip
from repro.util.tables import Table

#: 1000 htile values x 10 machine sizes = a 10,000-point design matrix.
HTILE_POINTS = 1000
CORE_COUNTS = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
)
ABS_TOL = 1e-9
MIN_SPEEDUP = 10.0
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_vec.json"


def _design_matrix(platform):
    base = chimaera_240cubed()
    requests = []
    for k in range(HTILE_POINTS):
        spec = base.with_htile(1.0 + k * 0.001)
        for cores in CORE_COUNTS:
            requests.append(PredictionRequest(spec, platform, total_cores=cores))
    return requests


def _time_backend(requests, backend: str) -> tuple[float, list]:
    clear_prediction_cache()
    start = time.perf_counter()
    results = predict_many(requests, backend=backend)
    return time.perf_counter() - start, results


def test_vec_backend_speedup_10k_grid(benchmark):
    platform = cray_xt4_quad_chip()
    requests = _design_matrix(platform)
    fast_s, fast = _time_backend(requests, "analytic-fast")
    vec_s, vec = _time_backend(requests, "analytic-vec")

    max_abs_deviation = max(
        abs(a.time_per_iteration_us - b.time_per_iteration_us)
        for a, b in zip(fast, vec)
    )
    speedup = fast_s / vec_s

    table = Table(
        ["backend", "wall (s)", "points/s"],
        title=f"{len(requests)}-point design matrix on {platform.name} "
        f"({HTILE_POINTS} htile values x {len(CORE_COUNTS)} machine sizes)",
    )
    table.add_row("analytic-fast", round(fast_s, 3), round(len(requests) / fast_s))
    table.add_row("analytic-vec", round(vec_s, 3), round(len(requests) / vec_s))
    emit(table.render())
    emit(
        f"speedup: {speedup:.1f}x, max abs deviation: {max_abs_deviation:.2e} us"
    )

    # The backend contract.
    assert max_abs_deviation <= ABS_TOL, (
        f"analytic-vec diverges from analytic-fast by {max_abs_deviation:.2e} us"
    )
    assert speedup >= MIN_SPEEDUP, f"analytic-vec only {speedup:.1f}x faster"

    record = {
        "benchmark": "vec_backend",
        "platform": platform.name,
        "points": len(requests),
        "htile_points": HTILE_POINTS,
        "core_counts": list(CORE_COUNTS),
        "analytic_fast_s": fast_s,
        "analytic_vec_s": vec_s,
        "speedup": speedup,
        "max_abs_deviation_us": max_abs_deviation,
        "contract_min_speedup": MIN_SPEEDUP,
        "contract_abs_tol_us": ABS_TOL,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(f"wrote {RECORD_PATH.name}: speedup={speedup:.1f}x")

    # Steady-state vec timing (memo cleared each round) for the regression
    # record.
    def _vec_round():
        clear_prediction_cache()
        return predict_many(requests, backend="analytic-vec")

    benchmark(_vec_round)
