"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
outcomes).  Each benchmark

* computes the figure's rows/series through the public API,
* prints them (run ``pytest benchmarks/ --benchmark-only -s`` to see the
  tables),
* asserts the qualitative shape the paper reports (who wins, where the
  crossover/optimum sits), and
* times the computation via the ``benchmark`` fixture so the harness doubles
  as a performance regression check for the library itself.
"""

from __future__ import annotations

import pytest

from repro.platforms import cray_xt4, cray_xt4_single_core


@pytest.fixture(scope="session")
def xt4():
    return cray_xt4()


@pytest.fixture(scope="session")
def xt4_single():
    return cray_xt4_single_core()


def emit(text: str) -> None:
    """Print a rendered table with surrounding blank lines."""
    print()
    print(text)
    print()
