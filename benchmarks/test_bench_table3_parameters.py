"""Table 3: model application parameters for LU, Sweep3D and Chimaera."""

from __future__ import annotations

from conftest import emit

from repro.apps.workloads import chimaera_240cubed, lu_class, sweep3d_20m
from repro.util.tables import Table


def _build_rows():
    specs = [lu_class("C"), sweep3d_20m(), chimaera_240cubed()]
    return [spec.table3_row() for spec in specs]


def test_table3_application_parameters(benchmark):
    rows = benchmark(_build_rows)
    lu_row, sweep_row, chimaera_row = rows
    table = Table(
        ["parameter", "LU", "Sweep3D", "Chimaera"],
        title="Table 3: model application parameters",
    )
    for key in lu_row:
        table.add_row(key, str(lu_row[key]), str(sweep_row[key]), str(chimaera_row[key]))
    emit(table.render())

    # The published parameter values.
    assert (lu_row["nsweeps"], lu_row["nfull"], lu_row["ndiag"]) == (2, 2, 0)
    assert (sweep_row["nsweeps"], sweep_row["nfull"], sweep_row["ndiag"]) == (8, 2, 2)
    assert (chimaera_row["nsweeps"], chimaera_row["nfull"], chimaera_row["ndiag"]) == (8, 4, 2)
    assert lu_row["Wg,pre (us)"] > 0
    assert sweep_row["Wg,pre (us)"] == 0 and chimaera_row["Wg,pre (us)"] == 0
    assert lu_row["Htile"] == 1.0 and chimaera_row["Htile"] == 1.0
    assert sweep_row["Htile"] == 2.0  # mk=4, mmi=3, mmo=6
    assert "stencil" in lu_row["Tnonwavefront"]
    assert "2 x allreduce" == sweep_row["Tnonwavefront"]
    assert "1 x allreduce" == chimaera_row["Tnonwavefront"]
    # Message-size constants: 40 B/cell for LU, 8 * #angles for the transport codes.
    assert lu_row["boundary bytes/cell"] == 40
    assert sweep_row["boundary bytes/cell"] == 48
    assert chimaera_row["boundary bytes/cell"] == 80
