#!/usr/bin/env python
"""Model a brand-new wavefront application with plug-and-play parameters.

The whole point of the paper is that a user should not have to derive model
equations for their own wavefront code: the Table 3 parameters are enough.
This example defines a hypothetical production code ("HYDRA-sn") that differs
from the three benchmarks in every parameter:

* six sweeps per iteration with a precedence structure of its own,
* per-cell pre-computation before the receives (like LU),
* 4 angles and 32-byte boundary values per cell,
* a stencil *and* an all-reduce between iterations.

It then (1) checks the analytic model against the discrete-event simulator,
(2) finds the best Htile on the XT4 and on the older SP/2, and (3) projects
strong scaling - all without writing a single model equation.

Run with::

    python examples/custom_wavefront_application.py
"""

from __future__ import annotations

from repro import cray_xt4, cray_xt4_single_core, ibm_sp2, predict
from repro.analysis.htile import htile_study
from repro.apps.base import (
    AllReduceNonWavefront,
    FillClass,
    SweepPhase,
    SweepSchedule,
    WavefrontSpec,
)
from repro.core.decomposition import Corner, ProblemSize
from repro.util.tables import Table
from repro.validation.compare import validate_configuration


def hydra_sn(problem: ProblemSize, *, htile: float = 1.0) -> WavefrontSpec:
    """A hypothetical 6-sweep wavefront code described purely by parameters."""
    schedule = SweepSchedule.from_phases(
        [
            SweepPhase(Corner.NORTH_WEST, FillClass.NONE),
            SweepPhase(Corner.NORTH_WEST, FillClass.DIAG),
            SweepPhase(Corner.SOUTH_WEST, FillClass.FULL),
            SweepPhase(Corner.SOUTH_EAST, FillClass.NONE),
            SweepPhase(Corner.SOUTH_EAST, FillClass.DIAG),
            SweepPhase(Corner.NORTH_EAST, FillClass.FULL),
        ]
    )
    return WavefrontSpec(
        name="hydra-sn",
        problem=problem,
        wg_us=0.45,
        wg_pre_us=0.05,
        htile=htile,
        schedule=schedule,
        boundary_bytes_per_cell=32.0,
        iterations=200,
        nonwavefront=AllReduceNonWavefront(count=1),
    )


def check_against_simulator() -> None:
    spec = hydra_sn(ProblemSize(64, 64, 32), htile=2).with_iterations(1)
    print("Model vs simulator for the custom code (no equations were written):")
    for platform in (cray_xt4_single_core(), cray_xt4()):
        result = validate_configuration(spec, platform, total_cores=64)
        print(
            f"  {platform.name:16s} model={result.model_us/1000:8.3f} ms  "
            f"simulated={result.simulated_us/1000:8.3f} ms  error={result.relative_error:+.1%}"
        )
    print()


def htile_design_study() -> None:
    problem = ProblemSize(256, 256, 256)
    values = (1, 2, 3, 4, 5, 6, 8, 10)
    table = Table(
        ["platform", "optimal Htile", "gain vs Htile=1"],
        title="Blocking-factor design study for hydra-sn (4096 cores)",
    )
    for platform in (cray_xt4(), ibm_sp2()):
        study = htile_study(
            lambda h: hydra_sn(problem, htile=h), platform, 4096, values
        )
        table.add_row(
            platform.name,
            study.optimal.htile,
            f"{study.improvement_over(1.0):.0%}",
        )
    print(table.render())
    print()


def scaling_projection() -> None:
    problem = ProblemSize(256, 256, 256)
    table = Table(
        ["P", "time/time-step (s)", "pipeline fill share", "comm share"],
        title="Strong scaling projection for hydra-sn on the XT4 (Htile = 2)",
    )
    for cores in (256, 1024, 4096, 16384, 65536):
        prediction = predict(hydra_sn(problem, htile=2), cray_xt4(), total_cores=cores)
        fill_share = (
            prediction.pipeline_fill_per_iteration_us / prediction.time_per_iteration_us
        )
        table.add_row(
            cores,
            round(prediction.time_per_time_step_s, 2),
            f"{fill_share:.0%}",
            f"{prediction.communication_fraction:.0%}",
        )
    print(table.render())


if __name__ == "__main__":
    check_against_simulator()
    htile_design_study()
    scaling_projection()
