#!/usr/bin/env python
"""Calibration workflow: measure platform and application parameters, then predict.

This example follows the full Section 3 / Table 3 parameterisation procedure
a user would apply to their own machine and code:

1. run the ping-pong microbenchmark (simulated here; on a real cluster the
   same (size, time) samples would come from mpi4py) and fit the LogGP
   constants - reproducing Table 2;
2. measure the per-cell work rate ``Wg`` by timing the real numpy transport
   kernel, and demonstrate that the decomposed (wavefront-ordered, threaded)
   execution of that kernel reproduces the whole-grid result exactly;
3. plug both into the model and predict a run.

Run with::

    python examples/calibrate_from_measurements.py
"""

from __future__ import annotations

import numpy as np

from repro import cray_xt4, predict
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.calibration.fitting import derive_platform_parameters
from repro.calibration.workrate import measure_transport_wg
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.loggp import NodeArchitecture, Platform
from repro.kernels.executor import distributed_transport_sweep
from repro.kernels.transport import AngleSet, sweep_full_grid
from repro.util.tables import Table


def fit_platform() -> Platform:
    reference = cray_xt4()
    fitted = derive_platform_parameters(reference, repetitions=3)
    table = Table(["parameter", "fitted", "reference"], title="Table 2: fitted vs reference")
    reference_values = {
        "G (us/byte)": reference.off_node.gap_per_byte,
        "L (us)": reference.off_node.latency,
        "o (us)": reference.off_node.overhead,
        "Gcopy (us/byte)": reference.on_chip.gap_per_byte_copy,
        "Gdma (us/byte)": reference.on_chip.gap_per_byte_dma,
        "o_onchip (us)": reference.on_chip.overhead,
        "ocopy (us)": reference.on_chip.copy_overhead,
    }
    for name, value in fitted.table2_rows():
        table.add_row(name, value, reference_values[name])
    print(table.render())
    print()
    return Platform(
        name="xt4-fitted",
        off_node=fitted.off_node,
        on_chip=fitted.on_chip,
        node=NodeArchitecture(cores_per_node=2),
    )


def measure_work_rate() -> float:
    measurement = measure_transport_wg(cells_per_side=8, angles=6, repetitions=2)
    print(
        f"Measured transport work rate on this machine: {measurement.wg_us:.2f} us/cell "
        f"({measurement.cells} cells x {measurement.repetitions} repetitions)"
    )

    # Correctness of the decomposed execution: the wavefront-ordered, threaded
    # run must match the whole-grid sweep bit for bit.
    rng = np.random.default_rng(0)
    source = rng.random((16, 16, 8))
    sigma = rng.random((16, 16, 8)) + 0.5
    angles = AngleSet.uniform(6)
    reference = sweep_full_grid(source, sigma, angles)
    flux, report = distributed_transport_sweep(
        source, sigma, angles, ProcessorGrid(4, 2), htile=2, threads=4
    )
    assert np.allclose(flux, reference.scalar_flux)
    print(
        f"Decomposed sweep matches the reference ({report.tasks_executed} tasks, "
        f"{report.pipeline_steps} pipeline steps, mode={report.mode})."
    )
    print()
    return measurement.wg_us


def predict_with_calibration(platform: Platform, wg_us: float) -> None:
    spec = sweep3d(
        ProblemSize.of_total(20e6),
        config=Sweep3DConfig.for_htile(2),
        iterations=480,
        wg_us=wg_us,
    )
    table = Table(
        ["P", "time/time-step (s)"],
        title=f"Sweep3D 20M cells with the measured Wg = {wg_us:.2f} us/cell",
    )
    for cores in (1024, 4096, 16384):
        prediction = predict(spec, platform, total_cores=cores)
        table.add_row(cores, round(prediction.time_per_time_step_s, 1))
    print(table.render())
    print(
        "\n(The measured Wg reflects *this* machine's Python kernels, so absolute"
        "\ntimes differ from the paper's XT4 numbers; the workflow is identical.)"
    )


if __name__ == "__main__":
    fitted_platform = fit_platform()
    measured_wg = measure_work_rate()
    predict_with_calibration(fitted_platform, measured_wg)
