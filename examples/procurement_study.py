#!/usr/bin/env python
"""Procurement and configuration study (the paper's Section 5.2 workflow).

Given a production particle-transport problem (Sweep3D, 10^9 cells, 30 energy
groups, 10^4 time steps), this example answers the questions a site asks when
buying or partitioning a machine:

* How does the total run time fall as the machine grows (Figure 6)?
* If several simulations must run, how much throughput does partitioning the
  machine buy, and what does it cost each individual job (Figure 7)?
* Where do the R/X and R^2/X criteria place the sweet spot (Figures 8 and 9)?

Run with::

    python examples/procurement_study.py
"""

from __future__ import annotations

from repro import cray_xt4
from repro.analysis.partitioning import optimal_parallel_jobs, partition_tradeoff, throughput_study
from repro.analysis.scaling import strong_scaling
from repro.apps.workloads import sweep3d_production_1billion
from repro.util.tables import Table


def scaling_curve(platform) -> None:
    spec = sweep3d_production_1billion()
    curve = strong_scaling(spec, platform, (1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072))
    table = Table(
        ["P", "total time (days)", "speed-up", "comm share"],
        title="Figure 6 analogue: Sweep3D 10^9 cells, 30 groups, 10^4 time steps",
    )
    speedups = dict(curve.speedup())
    for point in curve.points:
        table.add_row(
            point.total_cores,
            round(point.total_time_days, 1),
            round(speedups[point.total_cores], 2),
            f"{point.communication_fraction:.0%}",
        )
    print(table.render())
    print()


def throughput_tradeoff(platform) -> None:
    spec = sweep3d_production_1billion()
    table = Table(
        ["P total", "parallel jobs", "partition", "steps/month/job", "steps/month total"],
        title="Figure 7 analogue: throughput when partitioning the machine",
    )
    for point in throughput_study(spec, platform, (32768, 65536, 131072)):
        table.add_row(
            point.total_cores,
            point.parallel_jobs,
            point.partition_cores,
            round(point.time_steps_per_month_per_job),
            round(point.total_time_steps_per_month),
        )
    print(table.render())
    print()


def partition_criteria(platform) -> None:
    spec = sweep3d_production_1billion()
    sizes = (131072, 65536, 32768, 16384, 8192, 4096)
    points = partition_tradeoff(spec, platform, 131072, sizes)
    table = Table(
        ["partition", "jobs", "runtime (days)", "R/X (norm.)", "R^2/X (norm.)"],
        title="Figure 8 analogue: R/X vs R^2/X on a 128K-core machine",
    )
    min_rx = min(p.r_over_x for p in points)
    min_r2x = min(p.r2_over_x for p in points)
    for point in points:
        table.add_row(
            point.partition_cores,
            point.parallel_jobs,
            round(point.runtime_s / 86400.0, 1),
            round(point.r_over_x / min_rx, 2),
            round(point.r2_over_x / min_r2x, 2),
        )
    print(table.render())
    print()

    table9 = Table(
        ["available P", "jobs (min R/X)", "jobs (min R^2/X)"],
        title="Figure 9 analogue: optimal number of parallel simulations",
    )
    for available in (16384, 32768, 65536, 131072):
        rx = optimal_parallel_jobs(spec, platform, available, criterion="r_over_x")
        r2x = optimal_parallel_jobs(spec, platform, available, criterion="r2_over_x")
        table9.add_row(available, rx.parallel_jobs, r2x.parallel_jobs)
    print(table9.render())


if __name__ == "__main__":
    xt4 = cray_xt4()
    scaling_curve(xt4)
    throughput_tradeoff(xt4)
    partition_criteria(xt4)
