#!/usr/bin/env python
"""Run a declarative experiment campaign: define, run, interrupt, resume, report.

This example walks the full campaign life-cycle on a deliberately small
matrix so it finishes in seconds:

1. declare a ``CampaignSpec`` (a validation matrix: model vs simulator);
2. run it into a persistent sharded result store;
3. simulate an interruption by rebuilding a store that holds only the first
   three results, then re-run and watch the runner compute *only* the
   missing points;
4. render the Markdown report with the paper-style error columns, and
   write the CSV data files.

The same flow is available from the command line::

    PYTHONPATH=src python -m repro.cli campaign run --name paper-validation --store /tmp/s
    PYTHONPATH=src python -m repro.cli campaign report --store /tmp/s

Run with::

    PYTHONPATH=src python examples/run_campaign.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaigns import (
    CampaignSpec,
    ResultStore,
    campaign_report,
    run_campaign,
    write_report,
)

# 1. Declare the matrix: one transport code and LU, two machine sizes,
#    model and "measurement" backends, with the simulator as the error
#    baseline (exactly the shape of the paper's Tables 4-7).
spec = CampaignSpec(
    name="example-validation",
    description="Model vs simulated measurement on a laptop-sized matrix.",
    apps=("lu-classA", "sweep3d-20m"),
    platforms=("cray-xt4",),
    total_cores=(16, 64),
    backends=("analytic-fast", "simulator"),
    baseline="simulator",
)

workdir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
store_path = workdir / "example-validation.store"

# 2. First run: every point is computed and persisted as it lands.
summary = run_campaign(spec, store=store_path)
print(f"first run:  computed {summary.computed}, cached {summary.cached}")

# 3. Simulate an interrupted campaign: build a second store holding only
#    the spec header and the first three results - exactly what a run
#    killed after three commits leaves behind - then re-run against it.
#    Only the five lost points are recomputed; the store is keyed by a
#    content hash of each point.
full = ResultStore(store_path)
interrupted_path = workdir / "interrupted.store"
interrupted = ResultStore(interrupted_path)
interrupted.set_spec(spec.to_dict())
interrupted.put_many(
    (point.key(), full.get(point.key())) for point in spec.points()[:3]
)
summary = run_campaign(spec, store=interrupted_path)
print(f"resumed:    computed {summary.computed}, cached {summary.cached}")
store_path = interrupted_path

# A third run performs zero backend computations.
summary = run_campaign(spec, store=store_path)
print(f"re-run:     computed {summary.computed}, cached {summary.cached}")

# 4. Report: Markdown to stdout, CSV data files next to it.
print()
print(campaign_report(store_path))
for path in write_report(ResultStore(store_path), workdir / "report"):
    print(f"wrote {path}")
