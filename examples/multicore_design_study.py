#!/usr/bin/env python
"""Platform design study: cores per node and application bottlenecks.

Reproduces the Section 5.3 / 5.4 / 5.5 analyses:

* how many cores per node are worthwhile for particle transport (Figure 10),
  including the alternative 16-core node with one bus per four cores;
* where the computation / communication crossover sits for Chimaera
  (Figure 11);
* how much of the run is pipeline fill and what the pipelined-energy-group
  redesign would recover (Figure 12).

Run with::

    python examples/multicore_design_study.py
"""

from __future__ import annotations

from repro import cray_xt4
from repro.analysis.bottleneck import communication_crossover, cost_breakdown
from repro.analysis.multicore_design import cores_per_node_study
from repro.analysis.redesign import energy_group_redesign_study
from repro.apps.workloads import chimaera_240cubed, sweep3d_production_1billion
from repro.util.tables import Table


def cores_per_node(platform) -> None:
    spec = sweep3d_production_1billion()
    node_counts = (8192, 16384, 32768, 65536)
    points = cores_per_node_study(
        spec, platform, node_counts, cores_per_node_options=(1, 2, 4, 8, 16)
    )
    table = Table(
        ["nodes"] + [f"{c} cores/node" for c in (1, 2, 4, 8, 16)],
        title="Figure 10 analogue: run time (days) vs nodes and cores per node",
    )
    lookup = {(p.nodes, p.cores_per_node): p.total_time_days for p in points}
    for nodes in node_counts:
        table.add_row(nodes, *(round(lookup[(nodes, c)], 1) for c in (1, 2, 4, 8, 16)))
    print(table.render())

    # The Section 5.3 alternative: 16 cores per node, one bus per 4 cores.
    alt = cores_per_node_study(
        spec, platform, (8192,), cores_per_node_options=(16,), buses_per_node=4
    )[0]
    single_bus = lookup[(8192, 16)]
    print(
        f"\n16-core node, 8192 nodes: single bus = {single_bus:.1f} days, "
        f"four buses = {alt.total_time_days:.1f} days "
        f"(recovers the quad-core-per-bus behaviour)\n"
    )


def bottleneck(platform) -> None:
    spec = chimaera_240cubed(htile=2, time_steps=10_000)
    counts = (1024, 2048, 4096, 8192, 16384, 32768)
    points = cost_breakdown(spec, platform, counts)
    table = Table(
        ["P", "total (days)", "computation (days)", "communication (days)"],
        title="Figure 11 analogue: Chimaera 240^3 cost breakdown",
    )
    for point in points:
        table.add_row(
            point.total_cores,
            round(point.total_time_days, 2),
            round(point.computation_days, 2),
            round(point.communication_days, 2),
        )
    print(table.render())
    crossover = communication_crossover(points)
    print(f"\ncommunication overtakes computation at P = {crossover}\n")


def redesign(platform) -> None:
    counts = (1024, 4096, 16384, 65536)
    points = energy_group_redesign_study(platform, counts)
    table = Table(
        ["P", "sequential (days)", "fill share", "pipelined (days)", "saving"],
        title="Figure 12 analogue: pipelining the energy groups (weak scaling)",
    )
    for point in points:
        table.add_row(
            point.total_cores,
            round(point.sequential_days, 1),
            f"{point.fill_fraction_sequential:.0%}",
            round(point.pipelined_days, 1),
            f"{point.improvement:.0%}",
        )
    print(table.render())


if __name__ == "__main__":
    xt4 = cray_xt4()
    cores_per_node(xt4)
    bottleneck(xt4)
    redesign(xt4)
