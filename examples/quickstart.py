#!/usr/bin/env python
"""Quickstart: predict a wavefront application's runtime in a few lines.

The first section below is the README's quickstart block, mirrored
verbatim (a test asserts the two stay identical); the rest extends it:

1. pick a platform (the Cray XT4 the paper validates on) and a workload
   (Chimaera on its 240^3 benchmark problem),
2. call :func:`repro.predict` for a processor count of interest,
3. evaluate the same configuration on any *backend* (here the
   discrete-event simulator, the reproduction's "measurement"),
4. read off scaling behaviour and cross-check model against simulator.

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

# --- README quickstart (mirrored in README.md; asserted by tests/test_docs.py) ---
from repro import cray_xt4, predict, predict_one
from repro.apps.workloads import chimaera_240cubed

# The paper's headline configuration: Chimaera 240^3 on the Cray XT4.
spec = chimaera_240cubed(htile=2)
prediction = predict(spec, cray_xt4(), total_cores=4096)
print(prediction.time_per_time_step_s)      # seconds per time step
print(prediction.summary())                 # headline numbers as a dict

# Any prediction backend through one call: here the discrete-event
# simulator plays the role of a measurement at a simulable size.
measured = predict_one(spec, cray_xt4(), total_cores=256, backend="simulator")
print(measured.time_per_iteration_us)       # the "measured" iteration time
# --- end README quickstart ---

from repro.util.tables import Table
from repro.validation.compare import validate_configuration


def scaling_at_a_glance() -> None:
    """How does the time per time step change with the processor count?"""
    table = Table(
        ["P", "time/time-step (s)", "communication share"],
        title="Strong scaling (model only - instant to evaluate)",
    )
    for cores in (1024, 2048, 4096, 8192, 16384, 32768):
        point = predict(spec, cray_xt4(), total_cores=cores)
        table.add_row(
            cores,
            round(point.time_per_time_step_s, 2),
            f"{point.communication_fraction:.0%}",
        )
    print()
    print(table.render())


def sanity_check_against_simulator() -> None:
    """Model vs discrete-event simulation on the quickstart's configuration."""
    result = validate_configuration(spec, cray_xt4(), total_cores=256)
    print()
    print("Model vs simulator (Chimaera 240^3, 256 cores, one iteration):")
    print(f"  model:     {result.model_us / 1000:.3f} ms")
    print(f"  simulated: {result.simulated_us / 1000:.3f} ms")
    print(f"  error:     {result.relative_error:+.1%}")


if __name__ == "__main__":
    scaling_at_a_glance()
    sanity_check_against_simulator()
