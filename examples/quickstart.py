#!/usr/bin/env python
"""Quickstart: predict a wavefront application's runtime in a few lines.

This example covers the library's core loop:

1. pick a platform (the Cray XT4 the paper validates on),
2. pick an application workload (Chimaera on its 240^3 benchmark problem),
3. call :func:`repro.predict` for a processor count of interest,
4. read off execution time, scaling behaviour and the cost breakdown,
5. cross-check the model against the discrete-event simulator at a size
   small enough to simulate in a second or two.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import cray_xt4, predict
from repro.apps.workloads import chimaera_240cubed
from repro.core.decomposition import ProblemSize
from repro.apps.chimaera import chimaera
from repro.util.tables import Table
from repro.validation.compare import validate_configuration


def headline_prediction() -> None:
    """Predict the paper's headline configuration: Chimaera 240^3 on 4K cores."""
    platform = cray_xt4()
    spec = chimaera_240cubed(htile=2)
    prediction = predict(spec, platform, total_cores=4096)

    table = Table(["quantity", "value"], title="Chimaera 240^3 on the Cray XT4, P = 4096")
    for key, value in prediction.summary().items():
        table.add_row(key, value)
    print(table.render())
    print()


def scaling_at_a_glance() -> None:
    """How does the time per time step change with the processor count?"""
    platform = cray_xt4()
    spec = chimaera_240cubed(htile=2)
    table = Table(
        ["P", "time/time-step (s)", "communication share"],
        title="Strong scaling (model only - instant to evaluate)",
    )
    for cores in (1024, 2048, 4096, 8192, 16384, 32768):
        prediction = predict(spec, platform, total_cores=cores)
        table.add_row(
            cores,
            round(prediction.time_per_time_step_s, 2),
            f"{prediction.communication_fraction:.0%}",
        )
    print(table.render())
    print()


def sanity_check_against_simulator() -> None:
    """Model vs discrete-event simulation on a small configuration."""
    spec = chimaera(ProblemSize(64, 64, 32), iterations=1)
    result = validate_configuration(spec, cray_xt4(), total_cores=64)
    print("Model vs simulator (64x64x32 cells, 64 cores, one iteration):")
    print(f"  model:     {result.model_us / 1000:.3f} ms")
    print(f"  simulated: {result.simulated_us / 1000:.3f} ms")
    print(f"  error:     {result.relative_error:+.1%}")


if __name__ == "__main__":
    headline_prediction()
    scaling_at_a_glance()
    sanity_check_against_simulator()
