"""Tests for the design-space optimizer (repro.optimize)."""

from __future__ import annotations

import json

import pytest

from repro.apps.workloads import chimaera_240cubed, lu_class
from repro.backends.base import PredictionRequest
from repro.backends.registry import register_backend
from repro.backends.service import predict_many
from repro.optimize import (
    OBJECTIVES,
    CoordinateDescent,
    DesignPoint,
    Evaluator,
    ExhaustiveSearch,
    GoldenSectionSearch,
    OptimizationSpace,
    SearchStrategy,
    available_strategies,
    get_strategy,
    grid_for_ratio,
    load_space_file,
    objective_value,
    optimize,
    pareto_front,
)
from repro.platforms import cray_xt4


def chimaera_space(**overrides):
    axes = {"htiles": (1.0, 2.0, 4.0, 8.0), "total_cores": (64, 256)}
    axes.update(overrides)
    return OptimizationSpace(
        spec_builder=chimaera_240cubed().with_htile,
        platform=cray_xt4(),
        **axes,
    )


# --------------------------------------------------------------------------
# Design points and grids
# --------------------------------------------------------------------------

class TestDesignPoint:
    def test_label_lists_set_knobs(self):
        point = DesignPoint(
            total_cores=32, htile=2.0, nodes=16, cores_per_node=2,
            placement="rowwise", aspect_ratio=4.0,
        )
        assert point.label == (
            "P=32, nodes=16, cores/node=2, Htile=2, placement=rowwise, aspect=4"
        )

    def test_to_dict_omits_unset_knobs(self):
        assert DesignPoint(total_cores=64).to_dict() == {"total_cores": 64}
        assert DesignPoint(total_cores=64, htile=2.0).to_dict() == {
            "total_cores": 64,
            "htile": 2.0,
        }


class TestGridForRatio:
    @pytest.mark.parametrize(
        "total,ratio,expected",
        [(64, 1.0, (8, 8)), (64, 4.0, (16, 4)), (64, 0.25, (4, 16)), (64, 64.0, (64, 1))],
    )
    def test_closest_factorisation(self, total, ratio, expected):
        grid = grid_for_ratio(total, ratio)
        assert (grid.n, grid.m) == expected

    def test_prime_totals_degrade_to_line(self):
        grid = grid_for_ratio(13, 1.0)
        assert {grid.n, grid.m} == {13, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_for_ratio(0, 1.0)
        with pytest.raises(ValueError):
            grid_for_ratio(16, 0.0)


# --------------------------------------------------------------------------
# Space expansion
# --------------------------------------------------------------------------

class TestOptimizationSpace:
    def test_points_take_product_order(self):
        space = chimaera_space()
        assert [(p.htile, p.total_cores) for p in space.points()] == [
            (1.0, 64), (1.0, 256), (2.0, 64), (2.0, 256),
            (4.0, 64), (4.0, 256), (8.0, 64), (8.0, 256),
        ]
        assert len(space) == 8

    def test_node_counts_cross_cores_per_node(self):
        space = chimaera_space(
            total_cores=(), node_counts=(4, 8), cores_per_node=(1, 2), htiles=(1.0,)
        )
        assert [(p.nodes, p.cores_per_node, p.total_cores) for p in space.points()] == [
            (4, 1, 4), (4, 2, 8), (8, 1, 8), (8, 2, 16),
        ]

    def test_node_counts_with_default_cores_per_node(self):
        # None uses the platform's cores-per-node (2 on the dual-core XT4).
        space = chimaera_space(
            total_cores=(), node_counts=(4,), cores_per_node=(None,), htiles=(1.0,)
        )
        assert space.points()[0].total_cores == 8

    def test_budget_filters_and_reports_empty(self):
        space = chimaera_space()
        capped = space.with_core_budget(64)
        assert {p.total_cores for p in capped.points()} == {64}
        with pytest.raises(ValueError, match="budget"):
            space.with_core_budget(2).points()

    def test_requires_exactly_one_machine_axis(self):
        with pytest.raises(ValueError, match="exactly one"):
            chimaera_space(total_cores=(), node_counts=())
        with pytest.raises(ValueError, match="exactly one"):
            chimaera_space(node_counts=(4,))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"total_cores": (0,)},
            {"cores_per_node": (0,)},
            {"buses_per_node": 0},
            {"htiles": ()},
            {"core_budget": 0},
        ],
    )
    def test_axis_validation(self, overrides):
        with pytest.raises(ValueError):
            chimaera_space(**overrides)

    def test_string_axis_rejected(self):
        with pytest.raises(TypeError, match="sequence"):
            chimaera_space(placements="rowwise")

    def test_request_applies_every_knob(self):
        space = chimaera_space(
            htiles=(4.0,),
            total_cores=(64,),
            cores_per_node=(4,),
            buses_per_node=2,
            placements=("rowwise",),
            aspect_ratios=(4.0,),
        )
        request = space.request_for(space.points()[0])
        assert request.spec.htile == 4.0
        assert request.platform.node.cores_per_node == 4
        assert request.platform.node.buses_per_node == 2
        assert (request.grid.n, request.grid.m) == (16, 4)
        assert request.core_mapping.cores_per_node == 4
        results = predict_many([request])
        assert results[0].time_per_iteration_us > 0

    def test_default_point_uses_near_square_decomposition(self):
        space = chimaera_space(htiles=(1.0,), total_cores=(64,))
        request = space.request_for(space.points()[0])
        assert request.total_cores == 64
        assert request.grid is None


class TestSpaceLoading:
    def test_from_workload_rejects_unknown_app(self):
        with pytest.raises(KeyError, match="chimaera-240"):
            OptimizationSpace.from_workload("nope", "cray-xt4", total_cores=(4,))

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="htile_values"):
            OptimizationSpace.from_dict(
                {"app": "lu-classA", "total_cores": [4], "htile_values": [1]}
            )

    def test_from_dict_requires_app(self):
        with pytest.raises(ValueError, match="app"):
            OptimizationSpace.from_dict({"total_cores": [4]})

    def test_load_space_file_roundtrip(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(
            json.dumps(
                {
                    "app": "sweep3d-20m",
                    "platform": "cray-xt4",
                    "htiles": [1, 2, 4],
                    "total_cores": [64],
                    "core_budget": 64,
                }
            )
        )
        space = load_space_file(path)
        assert [p.htile for p in space.points()] == [1.0, 2.0, 4.0]
        # Sweep3D's blocking constraint is honoured by the builder.
        assert space.request_for(space.points()[1]).spec.htile == 2.0

    def test_load_space_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_space_file(path)
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_space_file(path)


# --------------------------------------------------------------------------
# Results, objectives, Pareto
# --------------------------------------------------------------------------

class TestResultTypes:
    def test_objective_values_are_consistent(self):
        result = optimize(chimaera_space())
        point = result.evaluated[0]
        assert objective_value(point, "time") == point.time_per_time_step_s
        assert objective_value(point, "total-time") == point.total_time_days
        assert objective_value(point, "core-hours") == point.core_hours
        with pytest.raises(ValueError, match="objective"):
            objective_value(point, "latency")

    def test_best_minimises_each_objective(self):
        for objective in OBJECTIVES:
            result = optimize(chimaera_space(), objective=objective)
            values = [objective_value(p, objective) for p in result.evaluated]
            assert result.best_value == min(values)

    def test_pareto_front_is_nondominated_and_complete(self):
        result = optimize(chimaera_space())
        front = result.pareto_front()
        assert front  # never empty for a non-empty result
        # No front member dominates another; no evaluated point dominates a member.
        for member in front:
            for other in result.evaluated:
                dominates = (
                    other.time_per_time_step_s <= member.time_per_time_step_s
                    and other.core_hours <= member.core_hours
                    and (
                        other.time_per_time_step_s < member.time_per_time_step_s
                        or other.core_hours < member.core_hours
                    )
                )
                assert not dominates
        assert front == pareto_front(result.evaluated)

    def test_to_dict_is_json_serialisable(self):
        result = optimize(chimaera_space(), strategy="golden-section")
        record = json.loads(json.dumps(result.to_dict()))
        assert record["strategy"] == "golden-section"
        assert record["backend"] == "analytic-fast"
        assert record["evaluations"] == len(record["evaluated"])
        assert record["best"]["point"]["htile"] in (1.0, 2.0, 4.0, 8.0)


# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

class CountingBackend:
    """Wraps the analytic backend, counting evaluate() calls."""

    name = "counting"

    def __init__(self):
        from repro.backends.analytic import AnalyticBackend

        self.inner = AnalyticBackend()
        self.calls = 0

    def evaluate(self, spec, platform, grid, core_mapping=None):
        self.calls += 1
        return self.inner.evaluate(spec, platform, grid, core_mapping)


class TestEvaluator:
    def test_memoises_and_counts_distinct_points(self):
        space = chimaera_space()
        backend = CountingBackend()
        evaluator = Evaluator(space, backend=backend)
        points = space.points()
        first = evaluator.evaluate(points + points)  # duplicates in one batch
        assert len(first) == 2 * len(points)
        assert evaluator.evaluations == len(points)
        evaluator.evaluate(points)  # repeats across batches are free
        assert evaluator.evaluations == len(points)
        assert backend.calls == len(points)
        assert len(evaluator.evaluated) == len(points)


class CountingBatchBackend:
    """Batch-protocol wrapper over the analytic backend, counting calls."""

    name = "counting-batch"

    def __init__(self):
        from repro.backends.analytic import AnalyticBackend

        self.inner = AnalyticBackend()
        self.batch_calls = 0
        self.scalar_calls = 0
        self.points_seen = 0

    def evaluate(self, spec, platform, grid, core_mapping=None):
        self.scalar_calls += 1
        return self.inner.evaluate(spec, platform, grid, core_mapping)

    def evaluate_batch(self, resolved):
        resolved = list(resolved)
        self.batch_calls += 1
        self.points_seen += len(resolved)
        return [self.inner.evaluate(*config) for config in resolved]


class TestBatchRouting:
    """Optimisation inherits the batch protocol with no API change."""

    def test_exhaustive_search_routes_through_evaluate_batch(self):
        space = chimaera_space()
        backend = CountingBatchBackend()
        batched = optimize(space, backend=backend)
        assert backend.batch_calls == 1  # the whole space in one batch
        assert backend.scalar_calls == 0
        assert backend.points_seen == batched.space_size == 8

        reference = optimize(space)  # default scalar analytic-fast
        assert batched.best.point == reference.best.point
        assert (
            batched.best.time_per_time_step_s
            == reference.best.time_per_time_step_s
        )

    def test_exhaustive_search_vec_matches_scalar(self):
        space = chimaera_space()
        reference = optimize(space)
        vec = optimize(space, backend="analytic-vec")
        assert vec.best.point == reference.best.point
        assert vec.best.time_per_time_step_s == pytest.approx(
            reference.best.time_per_time_step_s, rel=1e-9
        )


class TestStrategies:
    def test_registry(self):
        assert available_strategies() == [
            "coordinate-descent",
            "exhaustive",
            "golden-section",
        ]
        assert isinstance(get_strategy("exhaustive"), ExhaustiveSearch)
        instance = GoldenSectionSearch()
        assert get_strategy(instance) is instance
        assert isinstance(instance, SearchStrategy)
        with pytest.raises(KeyError, match="golden-section"):
            get_strategy("simulated-annealing")
        with pytest.raises(TypeError):
            get_strategy(42)

    def test_exhaustive_evaluates_everything(self):
        space = chimaera_space()
        result = optimize(space)
        assert result.evaluations == result.space_size == 8

    def test_coordinate_descent_matches_exhaustive_here(self):
        space = chimaera_space(htiles=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0))
        exhaustive = optimize(space)
        descent = optimize(space, strategy="coordinate-descent")
        assert descent.best.point == exhaustive.best.point
        assert descent.evaluations <= exhaustive.evaluations

    def test_coordinate_descent_budget_fallback_start(self):
        # The centre of the cores axis is over budget; descent restarts from
        # the cheapest machine and still finds the in-budget optimum.
        space = chimaera_space(total_cores=(16, 64, 256)).with_core_budget(16)
        descent = optimize(space, strategy="coordinate-descent")
        exhaustive = optimize(space)
        assert descent.best.point == exhaustive.best.point

    def test_coordinate_descent_rejects_impossible_budget(self):
        space = chimaera_space()
        with pytest.raises(ValueError, match="budget"):
            CoordinateDescent().search(
                space.with_core_budget(2), Evaluator(space.with_core_budget(2)), "time"
            )

    def test_coordinate_descent_budget_fallback_with_default_cores_per_node(self):
        # Regression: the centre picks cores_per_node=4 (over budget on the
        # dual-core XT4's 4 nodes = 16 cores), but the None default (2
        # cores/node, total 8) is affordable - descent must restart there
        # instead of declaring the budget impossible.
        space = chimaera_space(
            total_cores=(), node_counts=(4,), cores_per_node=(None, 4), htiles=(1.0,)
        ).with_core_budget(8)
        descent = optimize(space, strategy="coordinate-descent")
        assert descent.best.point == optimize(space).best.point

    def test_golden_section_matches_exhaustive_on_unimodal_grid(self):
        space = chimaera_space(
            htiles=tuple(float(h) for h in (1, 2, 3, 4, 5, 6, 8, 10)),
            total_cores=(256,),
        )
        exhaustive = optimize(space)
        golden = optimize(space, strategy="golden-section")
        assert golden.best.point.htile == exhaustive.best.point.htile
        assert golden.evaluations < exhaustive.evaluations

    def test_golden_section_requires_a_numeric_htile_axis(self):
        with pytest.raises(ValueError, match="Htile axis"):
            optimize(chimaera_space(htiles=(2.0,)), strategy="golden-section")
        with pytest.raises(ValueError, match="Htile axis"):
            optimize(chimaera_space(htiles=(None, 2.0)), strategy="golden-section")

    def test_golden_section_skips_over_budget_combos(self):
        space = chimaera_space().with_core_budget(64)
        golden = optimize(space, strategy="golden-section")
        assert golden.best.total_cores == 64

    def test_golden_section_rejects_impossible_budget(self):
        space = chimaera_space()
        capped = space.with_core_budget(2)
        with pytest.raises(ValueError, match="budget"):
            GoldenSectionSearch().search(capped, Evaluator(capped), "time")

    def test_strategies_never_beat_exhaustive(self):
        space = chimaera_space(htiles=(1.0, 2.0, 4.0, 6.0, 10.0))
        exhaustive = optimize(space)
        for strategy in ("coordinate-descent", "golden-section"):
            guided = optimize(space, strategy=strategy)
            assert guided.best_value >= exhaustive.best_value - 1e-12


class TestOptimizeFunction:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            optimize(chimaera_space(), objective="fastest")

    def test_custom_backend_instances_work(self):
        backend = CountingBackend()
        register_backend("counting-optimize-test", lambda: backend)
        result = optimize(chimaera_space(htiles=(1.0, 2.0), total_cores=(16,)),
                          backend="counting-optimize-test")
        assert result.backend == "counting"
        assert backend.calls == 2

    def test_workers_fan_out_matches_serial(self):
        space = chimaera_space()
        serial = optimize(space)
        pooled = optimize(space, workers=2, executor="thread")
        assert pooled.best.point == serial.best.point
        assert [p.point for p in pooled.evaluated] == [p.point for p in serial.evaluated]


# --------------------------------------------------------------------------
# The re-expressed analysis studies keep their contracts
# --------------------------------------------------------------------------

class TestAnalysisIntegration:
    def test_htile_study_handles_duplicate_values(self):
        from repro.analysis.htile import htile_study

        study = htile_study(
            chimaera_240cubed().with_htile, cray_xt4(), 64, [1, 2, 2, 4]
        )
        assert [p.htile for p in study.points] == [1.0, 2.0, 2.0, 4.0]
        assert study.points[1].time_per_time_step_s == study.points[2].time_per_time_step_s

    def test_optimal_htile_strategies_agree(self):
        from repro.analysis.htile import optimal_htile

        grid = [1, 2, 3, 4, 5, 6, 8, 10]
        exhaustive = optimal_htile(chimaera_240cubed().with_htile, cray_xt4(), 256, grid)
        golden = optimal_htile(
            chimaera_240cubed().with_htile, cray_xt4(), 256, grid,
            strategy="golden-section",
        )
        assert golden == exhaustive

    def test_cores_per_node_study_order_is_unchanged(self):
        from repro.analysis.multicore_design import cores_per_node_study

        points = cores_per_node_study(
            lu_class("A"), cray_xt4(), [8, 16], cores_per_node_options=(1, 2)
        )
        assert [(p.nodes, p.cores_per_node, p.total_cores) for p in points] == [
            (8, 1, 8), (16, 1, 16), (8, 2, 16), (16, 2, 32),
        ]
        assert all(p.total_time_days > 0 for p in points)
