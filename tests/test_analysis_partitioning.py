"""Tests for repro.analysis.partitioning (Figures 7-9)."""

import pytest

from repro.analysis.partitioning import (
    halving_partition_sizes,
    optimal_parallel_jobs,
    partition_tradeoff,
    throughput_study,
)
from repro.apps.workloads import chimaera_240cubed, sweep3d_production_1billion


@pytest.fixture
def production_spec():
    return sweep3d_production_1billion()


class TestThroughputStudy:
    def test_points_cover_requested_partitionings(self, xt4, production_spec):
        points = throughput_study(
            production_spec, xt4, (32768,), parallel_jobs_options=(1, 2, 4, 8)
        )
        assert [p.parallel_jobs for p in points] == [1, 2, 4, 8]
        assert all(p.total_cores == 32768 for p in points)
        assert points[1].partition_cores == 16384

    def test_indivisible_partitionings_skipped(self, xt4, production_spec):
        points = throughput_study(
            production_spec, xt4, (24576,), parallel_jobs_options=(5,)
        )
        assert points == []

    def test_per_job_rate_drops_with_smaller_partitions(self, xt4, production_spec):
        """Each of the parallel problems progresses more slowly than a single
        problem using the whole machine."""
        points = throughput_study(production_spec, xt4, (32768,))
        rates = {p.parallel_jobs: p.time_steps_per_month_per_job for p in points}
        assert rates[1] > rates[2] > rates[8]

    def test_aggregate_rate_rises_with_partitioning(self, xt4, production_spec):
        """...but the machine as a whole completes more time steps (Figure 7)."""
        points = throughput_study(production_spec, xt4, (32768,))
        aggregate = {p.parallel_jobs: p.total_time_steps_per_month for p in points}
        assert aggregate[8] > aggregate[2] > aggregate[1]

    def test_two_half_size_jobs_are_nearly_as_fast(self, xt4, production_spec):
        """Figure 7(a): at 128K cores, two parallel simulations each run at
        roughly 7/8 the rate of a single one."""
        points = throughput_study(production_spec, xt4, (131072,), parallel_jobs_options=(1, 2))
        rate = {p.parallel_jobs: p.time_steps_per_month_per_job for p in points}
        ratio = rate[2] / rate[1]
        assert 0.70 < ratio < 0.98

    def test_degenerate_zero_step_time_fails_loudly(self, xt4, production_spec, monkeypatch):
        """Regression: the monthly rate goes through rate_per_month, so a
        zero-time prediction raises instead of dividing by zero."""
        import repro.analysis.partitioning as partitioning

        monkeypatch.setattr(partitioning, "_time_per_time_step_s", lambda *args: 0.0)
        with pytest.raises(ValueError, match="time_per_item_s"):
            throughput_study(production_spec, xt4, (1024,), parallel_jobs_options=(1,))

    def test_workers_match_serial(self, xt4, production_spec):
        serial = throughput_study(production_spec, xt4, (16384, 32768))
        threaded = throughput_study(production_spec, xt4, (16384, 32768), workers=4)
        assert threaded == serial


class TestPartitionTradeoff:
    def test_r_over_x_and_r2_over_x_definitions(self, xt4, production_spec):
        points = partition_tradeoff(production_spec, xt4, 32768, (32768, 16384))
        for point in points:
            assert point.r_over_x == pytest.approx(point.runtime_s / point.throughput_per_s)
            assert point.r2_over_x == pytest.approx(point.runtime_s**2 / point.throughput_per_s)

    def test_invalid_partitions_raise(self, xt4, production_spec):
        with pytest.raises(ValueError):
            partition_tradeoff(production_spec, xt4, 32768, (999,))

    def test_r2_over_x_prefers_larger_partitions(self, xt4, production_spec):
        """Figure 8: the R^2/X criterion is optimised by larger partitions
        than the R/X criterion."""
        sizes = (131072, 65536, 32768, 16384, 8192, 4096)
        points = partition_tradeoff(production_spec, xt4, 131072, sizes)
        best_rx = min(points, key=lambda p: p.r_over_x)
        best_r2x = min(points, key=lambda p: p.r2_over_x)
        assert best_r2x.partition_cores >= best_rx.partition_cores

    def test_r_over_x_not_optimised_by_whole_machine(self, xt4, production_spec):
        sizes = (131072, 65536, 32768, 16384, 8192, 4096)
        points = partition_tradeoff(production_spec, xt4, 131072, sizes)
        best_rx = min(points, key=lambda p: p.r_over_x)
        assert best_rx.partition_cores < 131072
        assert best_rx.parallel_jobs > 1


class TestOptimalParallelJobs:
    def test_criteria_validated(self, xt4, production_spec):
        with pytest.raises(ValueError):
            optimal_parallel_jobs(production_spec, xt4, 32768, criterion="nonsense")

    def test_returns_power_of_two_partitioning(self, xt4, production_spec):
        best = optimal_parallel_jobs(production_spec, xt4, 65536, criterion="r_over_x")
        assert best.available_cores == 65536
        assert best.parallel_jobs & (best.parallel_jobs - 1) == 0

    def test_throughput_criterion_runs_at_least_as_many_jobs(self, xt4, production_spec):
        """Figure 9: min(R/X) always selects at least as many parallel jobs as
        min(R^2/X)."""
        for available in (16384, 65536):
            rx = optimal_parallel_jobs(
                production_spec, xt4, available, criterion="r_over_x"
            )
            r2x = optimal_parallel_jobs(
                production_spec, xt4, available, criterion="r2_over_x"
            )
            assert rx.parallel_jobs >= r2x.parallel_jobs

    def test_min_partition_respected(self, xt4):
        spec = chimaera_240cubed(htile=2)
        best = optimal_parallel_jobs(
            spec, xt4, 16384, criterion="r_over_x", min_partition_cores=4096
        )
        assert best.partition_cores >= 4096

    def test_machine_below_min_partition_raises_clearly(self, xt4, production_spec):
        """Regression: available_cores < min_partition_cores used to surface the
        unrelated 'no valid partition sizes were supplied' error."""
        with pytest.raises(ValueError, match="min_partition_cores"):
            optimal_parallel_jobs(
                production_spec, xt4, 512, criterion="r_over_x", min_partition_cores=1024
            )

    def test_odd_available_cores_stops_halving_cleanly(self, xt4):
        """Regression: a non-power-of-two machine halves only while even, so
        every candidate divides the machine exactly."""
        spec = chimaera_240cubed(htile=2)
        best = optimal_parallel_jobs(
            spec, xt4, 6144, criterion="r_over_x", min_partition_cores=1024
        )
        assert best.available_cores % best.partition_cores == 0

    def test_workers_match_serial(self, xt4, production_spec):
        serial = optimal_parallel_jobs(production_spec, xt4, 16384)
        threaded = optimal_parallel_jobs(production_spec, xt4, 16384, workers=4)
        assert threaded == serial


class TestHalvingPartitionSizes:
    def test_power_of_two_machine(self):
        assert halving_partition_sizes(8192, 1024) == [8192, 4096, 2048, 1024]

    def test_odd_machine_is_its_own_only_partition(self):
        assert halving_partition_sizes(1025, 1024) == [1025]

    def test_non_power_of_two_machine_divides_exactly(self):
        # 6144 = 3 * 2048: every candidate must divide the machine.
        sizes = halving_partition_sizes(6144, 1024)
        assert sizes == [6144, 3072, 1536]
        assert all(6144 % size == 0 for size in sizes)

    def test_halving_stops_at_odd_size(self):
        # 96 = 3 * 32: the odd factor 3 ends the halving explicitly.
        assert halving_partition_sizes(96, 2) == [96, 48, 24, 12, 6, 3]

    def test_machine_below_minimum_raises(self):
        with pytest.raises(ValueError, match="min_partition_cores"):
            halving_partition_sizes(512, 1024)

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            halving_partition_sizes(0, 1024)
        with pytest.raises(ValueError):
            halving_partition_sizes(1024, 0)
