"""Tests for the application parameterisations (Table 3): LU, Sweep3D, Chimaera."""

import pytest

from repro.apps.base import (
    AllReduceNonWavefront,
    FillClass,
    NoNonWavefront,
    StencilNonWavefront,
    SweepPhase,
    SweepSchedule,
    WavefrontSpec,
)
from repro.apps.chimaera import CHIMAERA_ANGLES, chimaera, chimaera_schedule
from repro.apps.lu import LU_BOUNDARY_BYTES_PER_CELL, lu, lu_schedule
from repro.apps.sweep3d import Sweep3DConfig, sweep3d, sweep3d_schedule
from repro.core.decomposition import Corner, ProblemSize, ProcessorGrid


class TestSweepSchedule:
    def test_counts(self):
        schedule = SweepSchedule.from_phases(
            [
                SweepPhase(Corner.NORTH_WEST, FillClass.NONE),
                SweepPhase(Corner.NORTH_WEST, FillClass.DIAG),
                SweepPhase(Corner.SOUTH_EAST, FillClass.FULL),
            ]
        )
        assert schedule.nsweeps == 3
        assert schedule.ndiag == 1
        assert schedule.nfull == 1

    def test_last_sweep_must_be_full(self):
        with pytest.raises(ValueError):
            SweepSchedule.from_phases([SweepPhase(Corner.NORTH_WEST, FillClass.NONE)])

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            SweepSchedule(phases=())

    def test_repeated_keeps_precedence_counts(self):
        base = sweep3d_schedule()
        repeated = base.repeated(30)
        assert repeated.nsweeps == 8 * 30
        assert repeated.nfull == base.nfull
        assert repeated.ndiag == base.ndiag

    def test_repeated_once_is_identity(self):
        base = lu_schedule()
        assert base.repeated(1) is base

    def test_repeated_rejects_zero(self):
        with pytest.raises(ValueError):
            lu_schedule().repeated(0)


class TestTable3Parameters:
    """The headline Table 3 rows: nsweeps / nfull / ndiag per benchmark."""

    def test_lu(self):
        schedule = lu_schedule()
        assert (schedule.nsweeps, schedule.nfull, schedule.ndiag) == (2, 2, 0)

    def test_sweep3d(self):
        schedule = sweep3d_schedule()
        assert (schedule.nsweeps, schedule.nfull, schedule.ndiag) == (8, 2, 2)

    def test_chimaera(self):
        schedule = chimaera_schedule()
        assert (schedule.nsweeps, schedule.nfull, schedule.ndiag) == (8, 4, 2)

    def test_lu_has_precomputation_and_stencil(self):
        spec = lu(ProblemSize.cube(64))
        assert spec.wg_pre_us > 0
        assert isinstance(spec.nonwavefront, StencilNonWavefront)

    def test_transport_codes_have_no_precomputation(self):
        assert sweep3d(ProblemSize.cube(64)).wg_pre_us == 0.0
        assert chimaera(ProblemSize.cube(64)).wg_pre_us == 0.0

    def test_sweep3d_two_allreduces_chimaera_one(self):
        s = sweep3d(ProblemSize.cube(64))
        c = chimaera(ProblemSize.cube(64))
        assert isinstance(s.nonwavefront, AllReduceNonWavefront) and s.nonwavefront.count == 2
        assert isinstance(c.nonwavefront, AllReduceNonWavefront) and c.nonwavefront.count == 1

    def test_table3_row_contents(self):
        row = chimaera(ProblemSize.cube(240)).table3_row()
        assert row["nsweeps"] == 8
        assert row["nfull"] == 4
        assert row["ndiag"] == 2
        assert row["Nx,Ny,Nz"] == (240, 240, 240)


class TestMessageSizes:
    def test_lu_message_sizes_formula(self):
        """Table 3: LU sends 40 * Ny/m east-west and 40 * Nx/n north-south."""
        spec = lu(ProblemSize(160, 120, 40))
        grid = ProcessorGrid(8, 4)
        assert spec.message_size_ew(grid) == pytest.approx(40 * 120 / 4)
        assert spec.message_size_ns(grid) == pytest.approx(40 * 160 / 8)
        assert LU_BOUNDARY_BYTES_PER_CELL == 40

    def test_sweep3d_message_sizes_formula(self):
        """Table 3: 8 * Htile * #angles * Ny/m bytes east-west."""
        config = Sweep3DConfig(mk=4, mmi=3, mmo=6)  # Htile = 2
        spec = sweep3d(ProblemSize(120, 60, 40), config=config)
        grid = ProcessorGrid(4, 2)
        expected_ew = 8 * 2 * 6 * (60 / 2)
        expected_ns = 8 * 2 * 6 * (120 / 4)
        assert spec.message_size_ew(grid) == pytest.approx(expected_ew)
        assert spec.message_size_ns(grid) == pytest.approx(expected_ns)

    def test_chimaera_message_sizes_use_ten_angles(self):
        spec = chimaera(ProblemSize(100, 100, 100))
        grid = ProcessorGrid(10, 10)
        assert CHIMAERA_ANGLES == 10
        assert spec.message_size_ew(grid) == pytest.approx(8 * 1 * 10 * 10)

    def test_message_size_scales_with_htile(self):
        grid = ProcessorGrid(4, 4)
        small = chimaera(ProblemSize.cube(64), htile=1).message_size_ew(grid)
        large = chimaera(ProblemSize.cube(64), htile=4).message_size_ew(grid)
        assert large == pytest.approx(4 * small)


class TestSweep3DConfig:
    def test_htile_formula(self):
        assert Sweep3DConfig(mk=10, mmi=3, mmo=6).htile == pytest.approx(5.0)
        assert Sweep3DConfig(mk=1, mmi=6, mmo=6).htile == pytest.approx(1.0)

    def test_for_htile_roundtrip(self):
        for htile in (1, 2, 3, 4, 5, 10):
            config = Sweep3DConfig.for_htile(htile)
            assert config.htile == pytest.approx(htile)

    def test_for_htile_unrepresentable(self):
        with pytest.raises(ValueError):
            Sweep3DConfig.for_htile(0.25)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            Sweep3DConfig(mk=0)
        with pytest.raises(ValueError):
            Sweep3DConfig(mk=1, mmi=4, mmo=6)  # mmo not a multiple of mmi
        with pytest.raises(ValueError):
            Sweep3DConfig(mk=1, mmi=7, mmo=6)  # mmi > mmo


class TestWavefrontSpecDerived:
    def test_work_per_tile_formula(self, xt4):
        """Equation (r1b): W = Wg * Htile * Nx/n * Ny/m."""
        spec = chimaera(ProblemSize(128, 64, 32), htile=2)
        grid = ProcessorGrid(8, 4)
        expected = spec.wg_us * 2 * (128 / 8) * (64 / 4)
        assert spec.work_per_tile(grid, xt4) == pytest.approx(expected)

    def test_pre_work_per_tile_formula(self, xt4):
        spec = lu(ProblemSize(128, 64, 32))
        grid = ProcessorGrid(8, 4)
        expected = spec.wg_pre_us * 1 * (128 / 8) * (64 / 4)
        assert spec.pre_work_per_tile(grid, xt4) == pytest.approx(expected)

    def test_tiles_per_stack(self):
        assert chimaera(ProblemSize.cube(240), htile=2).tiles_per_stack() == pytest.approx(120)
        assert lu(ProblemSize.cube(162)).tiles_per_stack() == pytest.approx(162)

    def test_with_htile_returns_new_spec(self):
        spec = chimaera(ProblemSize.cube(64))
        other = spec.with_htile(4)
        assert other.htile == 4 and spec.htile == 1
        assert other.name == spec.name

    def test_with_wg(self):
        spec = lu(ProblemSize.cube(64))
        updated = spec.with_wg(9.0, 1.0)
        assert updated.wg_us == 9.0 and updated.wg_pre_us == 1.0

    def test_validation_rejects_bad_values(self):
        problem = ProblemSize.cube(8)
        schedule = lu_schedule()
        with pytest.raises(ValueError):
            WavefrontSpec(
                name="bad", problem=problem, wg_us=0.0, schedule=schedule,
                boundary_bytes_per_cell=8,
            )
        with pytest.raises(ValueError):
            WavefrontSpec(
                name="bad", problem=problem, wg_us=1.0, schedule=schedule,
                boundary_bytes_per_cell=8, htile=0,
            )
        with pytest.raises(ValueError):
            WavefrontSpec(
                name="bad", problem=problem, wg_us=1.0, schedule=schedule,
                boundary_bytes_per_cell=8, iterations=0,
            )


class TestNonWavefrontModels:
    def test_none_is_zero(self, xt4, small_grid):
        spec = chimaera(ProblemSize.cube(48))
        assert NoNonWavefront().evaluate(xt4, spec, small_grid) == 0.0
        assert NoNonWavefront().evaluate_components(xt4, spec, small_grid) == (0.0, 0.0)

    def test_allreduce_scales_with_count(self, xt4, small_grid):
        spec = chimaera(ProblemSize.cube(48))
        one = AllReduceNonWavefront(count=1).evaluate(xt4, spec, small_grid)
        two = AllReduceNonWavefront(count=2).evaluate(xt4, spec, small_grid)
        assert two == pytest.approx(2 * one)

    def test_allreduce_is_pure_communication(self, xt4, small_grid):
        spec = chimaera(ProblemSize.cube(48))
        work, comm = AllReduceNonWavefront(count=2).evaluate_components(xt4, spec, small_grid)
        assert work == 0.0 and comm > 0.0

    def test_stencil_components_split(self, xt4, small_grid):
        spec = lu(ProblemSize.cube(48))
        work, comm = spec.nonwavefront.evaluate_components(xt4, spec, small_grid)
        assert work > 0.0 and comm > 0.0
        assert spec.nonwavefront.evaluate(xt4, spec, small_grid) == pytest.approx(work + comm)

    def test_stencil_work_scales_with_subdomain(self, xt4):
        spec = lu(ProblemSize.cube(48))
        small = spec.nonwavefront.evaluate(xt4, spec, ProcessorGrid(8, 8))
        large = spec.nonwavefront.evaluate(xt4, spec, ProcessorGrid(2, 2))
        assert large > small

    def test_describe_strings(self, xt4):
        assert "allreduce" in AllReduceNonWavefront(count=2).describe()
        assert "stencil" in StencilNonWavefront(wg_stencil_us=0.1).describe()
        assert NoNonWavefront().describe() == "none"
