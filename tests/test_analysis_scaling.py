"""Tests for repro.analysis.scaling (Figure 6 style scaling curves)."""

import pytest

from repro.analysis.scaling import parallel_efficiency, strong_scaling, weak_scaling
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.apps.workloads import chimaera_240cubed, sweep3d_production_1billion
from repro.core.decomposition import ProblemSize


PROCESSOR_COUNTS = (1024, 2048, 4096, 8192, 16384, 32768)


class TestStrongScaling:
    def test_curve_has_one_point_per_count(self, xt4):
        curve = strong_scaling(chimaera_240cubed(), xt4, (1024, 4096))
        assert [p.total_cores for p in curve.points] == [1024, 4096]
        assert curve.mode == "strong"

    def test_empty_counts_rejected(self, xt4):
        with pytest.raises(ValueError):
            strong_scaling(chimaera_240cubed(), xt4, [])

    def test_pool_executors_match_serial(self, xt4):
        serial = strong_scaling(chimaera_240cubed(), xt4, (1024, 4096))
        threaded = strong_scaling(chimaera_240cubed(), xt4, (1024, 4096), workers=2)
        forked = strong_scaling(
            chimaera_240cubed(), xt4, (1024, 4096), workers=2, executor="process"
        )
        assert threaded == serial
        assert forked == serial

    def test_time_decreases_monotonically(self, xt4):
        curve = strong_scaling(sweep3d_production_1billion(), xt4, PROCESSOR_COUNTS)
        days = [p.total_time_days for p in curve.points]
        assert days == sorted(days, reverse=True)

    def test_simulator_backend_runs_same_study(self, xt4_single, chimaera_small):
        """Any study can be cross-checked against the simulator backend."""
        analytic = strong_scaling(chimaera_small, xt4_single, (4, 16))
        measured = strong_scaling(
            chimaera_small, xt4_single, (4, 16), backend="simulator"
        )
        assert [p.total_cores for p in measured.points] == [4, 16]
        for model_point, sim_point in zip(analytic.points, measured.points):
            assert sim_point.prediction is None
            assert sim_point.pipeline_fill_fraction is None
            rel = abs(
                model_point.time_per_time_step_s - sim_point.time_per_time_step_s
            ) / sim_point.time_per_time_step_s
            assert rel < 0.05

    def test_diminishing_returns_beyond_16k(self, xt4):
        """Figure 6: speed-up per doubling shrinks as P grows."""
        curve = strong_scaling(sweep3d_production_1billion(), xt4, PROCESSOR_COUNTS)
        days = {p.total_cores: p.total_time_days for p in curve.points}
        early_gain = days[1024] / days[2048]
        late_gain = days[16384] / days[32768]
        assert early_gain > late_gain
        assert early_gain > 1.7  # near-ideal halving at small P
        assert late_gain < 1.7   # clearly sub-ideal at large P

    def test_production_run_magnitudes_match_paper_regime(self, xt4):
        """Figure 6 reports O(1000) days at 1K processors falling to O(100)
        days at 16K for the 10^9-cell, 30-group, 10^4-step run."""
        curve = strong_scaling(sweep3d_production_1billion(), xt4, (1024, 16384))
        days = {p.total_cores: p.total_time_days for p in curve.points}
        assert 400 < days[1024] < 4000
        assert 50 < days[16384] < 400
        assert days[1024] / days[16384] > 5

    def test_speedup_and_efficiency(self, xt4):
        curve = strong_scaling(chimaera_240cubed(htile=2), xt4, (1024, 4096, 16384))
        speedups = dict(curve.speedup())
        assert speedups[1024] == pytest.approx(1.0)
        assert speedups[4096] > 1.0
        efficiency = dict(parallel_efficiency(curve))
        assert efficiency[1024] == pytest.approx(1.0)
        assert 0 < efficiency[16384] < efficiency[4096] <= 1.01

    def test_point_lookup(self, xt4):
        curve = strong_scaling(chimaera_240cubed(), xt4, (1024, 4096))
        assert curve.point(4096).total_cores == 4096
        with pytest.raises(KeyError):
            curve.point(999)

    def test_communication_fraction_rises_with_p(self, xt4):
        curve = strong_scaling(chimaera_240cubed(htile=2), xt4, (1024, 16384))
        assert curve.point(16384).communication_fraction > curve.point(1024).communication_fraction


class TestWeakScaling:
    def builder(self, grid):
        problem = ProblemSize(4 * grid.n, 4 * grid.m, 1000)
        return sweep3d(
            problem, config=Sweep3DConfig.for_htile(2), iterations=12, time_steps=1
        )

    def test_weak_scaling_time_grows_slowly(self, xt4):
        curve = weak_scaling(self.builder, xt4, (256, 1024, 4096))
        assert curve.mode == "weak"
        times = [p.time_per_time_step_s for p in curve.points]
        # Time grows (pipeline fill) but far less than the 16x problem growth.
        assert times[-1] > times[0]
        assert times[-1] < 4 * times[0]

    def test_pipeline_fill_fraction_grows_with_p(self, xt4):
        """The Figure 12 motivation: fill overhead dominates weak scaling."""
        curve = weak_scaling(self.builder, xt4, (256, 4096))
        fills = [p.pipeline_fill_fraction for p in curve.points]
        assert fills[1] > fills[0]

    def test_efficiency_rejects_weak_curves(self, xt4):
        curve = weak_scaling(self.builder, xt4, (256, 1024))
        with pytest.raises(ValueError):
            parallel_efficiency(curve)
