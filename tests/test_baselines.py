"""Tests for the baseline models (Table 4 and the Hoisie single-sweep model)."""

import pytest

from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.baselines.hoisie import (
    hoisie_iteration_time,
    hoisie_single_sweep_time,
    hoisie_stage_time,
)
from repro.baselines.sundaram_vernon import sundaram_vernon_iteration_time
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.model import iteration_prediction


@pytest.fixture
def spec():
    return sweep3d(ProblemSize(64, 64, 48), config=Sweep3DConfig(mk=4), iterations=1)


@pytest.fixture
def grid():
    return ProcessorGrid(8, 8)


class TestSundaramVernonBaseline:
    def test_agrees_with_reusable_model_for_sweep3d(self, spec, grid, xt4_single):
        """The plug-and-play model was derived from Table 4; for Sweep3D on one
        core per node the two should agree closely (the paper's argument that
        generality does not cost accuracy)."""
        baseline = sundaram_vernon_iteration_time(spec, xt4_single, grid)
        reusable = iteration_prediction(spec, xt4_single, grid)
        relative = abs(baseline.iteration_time - reusable.time_per_iteration) / (
            reusable.time_per_iteration
        )
        assert relative < 0.05

    def test_structure_of_intermediate_terms(self, spec, grid, xt4_single):
        baseline = sundaram_vernon_iteration_time(spec, xt4_single, grid)
        assert baseline.start_p_diag < baseline.start_p_near_full
        assert baseline.time_56 < baseline.time_78
        assert baseline.sweeps_time == pytest.approx(2 * (baseline.time_56 + baseline.time_78))
        assert baseline.iteration_time == pytest.approx(
            baseline.sweeps_time + baseline.nonwavefront
        )

    def test_sync_terms_negligible_on_xt4(self, spec, grid, xt4_single):
        """The (m-1)L / (n-2)L synchronisation terms hardly matter on the XT4."""
        with_sync = sundaram_vernon_iteration_time(spec, xt4_single, grid)
        without = sundaram_vernon_iteration_time(
            spec, xt4_single, grid, include_sync_terms=False
        )
        assert with_sync.iteration_time > without.iteration_time
        difference = (with_sync.iteration_time - without.iteration_time) / with_sync.iteration_time
        assert difference < 0.05

    def test_sync_terms_matter_on_sp2(self, spec, grid, sp2):
        """On the SP/2 (L = 23 µs) the same terms are a visible fraction."""
        with_sync = sundaram_vernon_iteration_time(spec, sp2, grid)
        without = sundaram_vernon_iteration_time(spec, sp2, grid, include_sync_terms=False)
        difference = (with_sync.iteration_time - without.iteration_time) / with_sync.iteration_time
        assert difference > 0.05

    def test_sync_fraction_larger_on_sp2_than_xt4(self, spec, grid, sp2, xt4_single):
        def sync_fraction(platform):
            with_sync = sundaram_vernon_iteration_time(spec, platform, grid)
            without = sundaram_vernon_iteration_time(
                spec, platform, grid, include_sync_terms=False
            )
            return (with_sync.iteration_time - without.iteration_time) / with_sync.iteration_time

        assert sync_fraction(sp2) > 3 * sync_fraction(xt4_single)

    def test_rejects_precomputation_specs(self, grid, xt4_single):
        with pytest.raises(ValueError):
            sundaram_vernon_iteration_time(lu(ProblemSize.cube(64)), xt4_single, grid)

    def test_nonwavefront_flag(self, spec, grid, xt4_single):
        with_nw = sundaram_vernon_iteration_time(spec, xt4_single, grid)
        without_nw = sundaram_vernon_iteration_time(
            spec, xt4_single, grid, include_nonwavefront=False
        )
        assert without_nw.nonwavefront == 0.0
        assert with_nw.iteration_time > without_nw.iteration_time


class TestHoisieBaseline:
    def test_stage_time_components(self, spec, grid, xt4_single):
        stage = hoisie_stage_time(spec, xt4_single, grid)
        assert stage > spec.work_per_tile(grid, xt4_single)

    def test_single_sweep_pipeline_formula(self, spec, grid, xt4_single):
        stage = hoisie_stage_time(spec, xt4_single, grid)
        expected = (grid.n + grid.m - 2 + spec.tiles_per_stack()) * stage
        assert hoisie_single_sweep_time(spec, xt4_single, grid) == pytest.approx(expected)

    def test_single_sweep_close_to_reusable_model_fill_plus_stack(self, spec, grid, xt4_single):
        """One sweep's duration (fill + stack) should be in the same ballpark."""
        reusable = iteration_prediction(spec, xt4_single, grid)
        single_sweep = reusable.tfullfill + reusable.tstack
        hoisie = hoisie_single_sweep_time(spec, xt4_single, grid)
        assert abs(hoisie - single_sweep) / single_sweep < 0.25

    def test_iteration_time_within_factor_of_reusable_model(self, spec, grid, xt4_single):
        reusable = iteration_prediction(spec, xt4_single, grid).time_per_iteration
        hoisie = hoisie_iteration_time(spec, xt4_single, grid)
        assert 0.5 * reusable < hoisie < 2.0 * reusable

    def test_iteration_time_monotone_in_sweeps(self, grid, xt4_single):
        problem = ProblemSize(64, 64, 48)
        two_sweeps = lu(problem, iterations=1)
        eight_sweeps = sweep3d(problem, config=Sweep3DConfig(mk=2), iterations=1)
        assert hoisie_iteration_time(eight_sweeps, xt4_single, grid) > hoisie_iteration_time(
            two_sweeps, xt4_single, grid
        )
