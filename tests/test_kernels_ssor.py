"""Tests for repro.kernels.ssor (LU's triangular sweeps)."""

import numpy as np
import pytest

from repro.kernels.ssor import (
    SsorParameters,
    lower_sweep_block,
    ssor_iteration,
    upper_sweep_block,
)


@pytest.fixture
def field():
    rng = np.random.default_rng(5)
    return rng.random((5, 4, 3)), rng.random((5, 4, 3))


class TestSsorParameters:
    def test_defaults_valid(self):
        params = SsorParameters()
        assert 0 < params.omega < 2

    def test_invalid_omega(self):
        with pytest.raises(ValueError):
            SsorParameters(omega=2.5)
        with pytest.raises(ValueError):
            SsorParameters(omega=0.0)

    def test_invalid_diagonal(self):
        with pytest.raises(ValueError):
            SsorParameters(diagonal=0.0)


class TestSweeps:
    def test_lower_sweep_output_shapes(self, field):
        values, rhs = field
        out, face_x, face_y, face_z = lower_sweep_block(values, rhs)
        assert out.shape == values.shape
        assert face_x.shape == (4, 3)
        assert face_y.shape == (5, 3)
        assert face_z.shape == (5, 4)

    def test_lower_sweep_does_not_modify_input(self, field):
        values, rhs = field
        original = values.copy()
        lower_sweep_block(values, rhs)
        assert np.array_equal(values, original)

    def test_faces_are_boundary_planes(self, field):
        values, rhs = field
        out, face_x, face_y, face_z = lower_sweep_block(values, rhs)
        assert np.array_equal(face_x, out[-1, :, :])
        assert np.array_equal(face_y, out[:, -1, :])
        assert np.array_equal(face_z, out[:, :, -1])
        out_u, face_xu, face_yu, face_zu = upper_sweep_block(values, rhs)
        assert np.array_equal(face_xu, out_u[0, :, :])

    def test_deterministic(self, field):
        values, rhs = field
        a, *_ = lower_sweep_block(values, rhs)
        b, *_ = lower_sweep_block(values, rhs)
        assert np.array_equal(a, b)

    def test_upper_differs_from_lower(self, field):
        values, rhs = field
        lower, *_ = lower_sweep_block(values, rhs)
        upper, *_ = upper_sweep_block(values, rhs)
        assert not np.array_equal(lower, upper)

    def test_incoming_faces_affect_first_cells(self, field):
        values, rhs = field
        vacuum, *_ = lower_sweep_block(values, rhs)
        inflow = np.ones((values.shape[1], values.shape[2]))
        lit, *_ = lower_sweep_block(values, rhs, incoming_x=inflow)
        assert lit[0, 0, 0] != vacuum[0, 0, 0]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            lower_sweep_block(np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            lower_sweep_block(np.zeros((2, 2, 2)), np.zeros((3, 2, 2)))
        with pytest.raises(ValueError):
            lower_sweep_block(
                np.zeros((2, 2, 2)), np.zeros((2, 2, 2)), incoming_x=np.zeros((5, 5))
            )

    def test_blockwise_composition_matches_monolithic(self):
        """Splitting the domain in x and passing the east face reproduces the
        whole-domain lower sweep exactly."""
        rng = np.random.default_rng(6)
        values = rng.random((6, 4, 3))
        rhs = rng.random((6, 4, 3))
        whole, *_ = lower_sweep_block(values, rhs)
        first, face_x, _, _ = lower_sweep_block(values[:3], rhs[:3])
        second, *_ = lower_sweep_block(values[3:], rhs[3:], incoming_x=face_x)
        combined = np.concatenate([first, second], axis=0)
        assert np.array_equal(combined, whole)


class TestSsorIteration:
    def test_iteration_converges_toward_fixed_point(self):
        """Repeated SSOR iterations on a diagonally dominant model problem
        should reduce the update magnitude (contraction)."""
        rng = np.random.default_rng(7)
        values = rng.random((6, 6, 6))
        rhs = rng.random((6, 6, 6))
        first = ssor_iteration(values, rhs)
        second = ssor_iteration(first, rhs)
        third = ssor_iteration(second, rhs)
        delta_1 = np.abs(second - first).max()
        delta_2 = np.abs(third - second).max()
        assert delta_2 < delta_1

    def test_iteration_equals_lower_then_upper(self):
        rng = np.random.default_rng(8)
        values = rng.random((4, 4, 4))
        rhs = rng.random((4, 4, 4))
        lower, *_ = lower_sweep_block(values, rhs)
        upper, *_ = upper_sweep_block(lower, rhs)
        assert np.array_equal(ssor_iteration(values, rhs), upper)
