"""Tests for repro.analysis.multicore_design (Figure 10) and bottleneck (Figure 11)."""

import pytest

from repro.analysis.bottleneck import communication_crossover, cost_breakdown
from repro.analysis.multicore_design import cores_per_node_study, equivalent_node_counts
from repro.apps.workloads import chimaera_240cubed, sweep3d_production_1billion
from repro.platforms import cray_xt4


@pytest.fixture
def production_spec():
    return sweep3d_production_1billion()


class TestCoresPerNodeStudy:
    def test_design_space_enumeration(self, xt4, production_spec):
        points = cores_per_node_study(
            production_spec, xt4, node_counts=(8192,), cores_per_node_options=(1, 2, 4)
        )
        assert [(p.cores_per_node, p.nodes) for p in points] == [(1, 8192), (2, 8192), (4, 8192)]
        assert points[1].total_cores == 16384

    def test_more_cores_per_node_reduces_time_with_diminishing_returns(self, xt4, production_spec):
        """Figure 10: on a fixed node count, 2 and 4 cores/node help, but the
        gain per doubling shrinks (shared-bus contention)."""
        points = cores_per_node_study(
            production_spec, xt4, node_counts=(16384,), cores_per_node_options=(1, 2, 4, 8)
        )
        days = {p.cores_per_node: p.total_time_days for p in points}
        assert days[2] < days[1]
        assert days[4] < days[2]
        gain_1_2 = days[1] / days[2]
        gain_4_8 = days[4] / days[8]
        assert gain_1_2 > gain_4_8

    def test_two_cores_on_n_nodes_beats_four_cores_on_half(self, xt4, production_spec):
        """Section 5.3: 2 cores on 64K nodes slightly outperforms 4 cores on
        32K nodes (same total cores) because of the shared bus."""
        points = cores_per_node_study(
            production_spec,
            xt4,
            node_counts=(32768, 65536),
            cores_per_node_options=(2, 4),
        )
        lookup = {(p.cores_per_node, p.nodes): p.total_time_days for p in points}
        assert lookup[(2, 65536)] <= lookup[(4, 32768)]

    def test_sixteen_cores_single_bus_worse_than_four_buses(self, xt4, production_spec):
        """Section 5.3: a 16-core node with one bus per 4 cores recovers the
        quad-core behaviour; a single shared bus degrades it."""
        single_bus = cores_per_node_study(
            production_spec, xt4, node_counts=(8192,), cores_per_node_options=(16,),
            buses_per_node=1,
        )[0]
        four_bus = cores_per_node_study(
            production_spec, xt4, node_counts=(8192,), cores_per_node_options=(16,),
            buses_per_node=4,
        )[0]
        assert four_bus.total_time_days < single_bus.total_time_days

    def test_labels(self, xt4, production_spec):
        point = cores_per_node_study(
            production_spec, xt4, node_counts=(1024,), cores_per_node_options=(16,),
            buses_per_node=4,
        )[0]
        assert "16 cores/node" in point.label and "4 buses" in point.label

    def test_equivalent_node_counts_filter(self, xt4, production_spec):
        points = cores_per_node_study(
            production_spec, xt4, node_counts=(8192, 16384, 32768),
            cores_per_node_options=(1, 2, 4),
        )
        target = next(
            p for p in points if p.cores_per_node == 1 and p.nodes == 32768
        ).total_time_days
        matches = equivalent_node_counts(points, target, tolerance=0.15)
        assert any(p.cores_per_node > 1 and p.nodes < 32768 for p in matches)
        with pytest.raises(ValueError):
            equivalent_node_counts(points, 0.0)


class TestCostBreakdown:
    def test_components_sum_to_total(self, xt4):
        points = cost_breakdown(chimaera_240cubed(htile=2, time_steps=100), xt4, (1024, 4096))
        for point in points:
            assert point.computation_days + point.communication_days == pytest.approx(
                point.total_time_days
            )
            assert point.pipeline_fill_days < point.total_time_days

    def test_computation_share_falls_with_p(self, xt4):
        points = cost_breakdown(chimaera_240cubed(htile=2), xt4, (1024, 4096, 16384, 32768))
        comp = [p.computation_days / p.total_time_days for p in points]
        assert comp == sorted(comp, reverse=True)

    def test_crossover_detected_in_paper_range(self, xt4):
        """Figure 11: communication overtakes computation somewhere between
        1K and 32K processors for Chimaera 240^3."""
        points = cost_breakdown(
            chimaera_240cubed(htile=2), xt4, (1024, 2048, 4096, 8192, 16384, 32768)
        )
        crossover = communication_crossover(points)
        assert crossover is not None
        assert 1024 < crossover <= 32768

    def test_no_crossover_for_compute_dominated_configs(self, xt4, production_spec):
        points = cost_breakdown(production_spec, xt4, (1024, 2048))
        assert communication_crossover(points) is None
