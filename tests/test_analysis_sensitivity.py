"""Tests for repro.analysis.sensitivity and repro.analysis.decomposition_study."""

import pytest

from repro.analysis.decomposition_study import (
    all_factorisations,
    best_decomposition,
    decomposition_study,
)
from repro.analysis.sensitivity import (
    APPLICATION_PARAMETERS,
    PLATFORM_PARAMETERS,
    dominant_parameter,
    perturb_application,
    perturb_platform,
    sensitivity_study,
)
from repro.apps.chimaera import chimaera
from repro.apps.workloads import chimaera_240cubed, chimaera_elongated
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.predictor import predict


class TestPerturbPlatform:
    def test_each_platform_parameter_changes_something(self, xt4):
        for parameter in PLATFORM_PARAMETERS:
            perturbed = perturb_platform(xt4, parameter, 2.0)
            assert perturbed != xt4 or parameter in ("onchip_overhead", "onchip_gap")

    def test_latency_scaling(self, xt4):
        doubled = perturb_platform(xt4, "latency", 2.0)
        assert doubled.off_node.latency == pytest.approx(2 * xt4.off_node.latency)
        assert doubled.off_node.overhead == xt4.off_node.overhead

    def test_compute_factor_speeds_up_work(self, xt4):
        faster = perturb_platform(xt4, "compute", 2.0)
        assert faster.compute_scale == pytest.approx(0.5)

    def test_onchip_parameters_noop_on_single_core_platform(self, sp2):
        assert perturb_platform(sp2, "onchip_overhead", 2.0) is sp2

    def test_unknown_parameter(self, xt4):
        with pytest.raises(ValueError):
            perturb_platform(xt4, "magic", 2.0)
        with pytest.raises(ValueError):
            perturb_platform(xt4, "latency", 0.0)


class TestPerturbApplication:
    def test_wg_scaling(self):
        spec = chimaera(ProblemSize.cube(64))
        assert perturb_application(spec, "wg", 1.5).wg_us == pytest.approx(1.5 * spec.wg_us)

    def test_message_bytes_scaling(self):
        spec = chimaera(ProblemSize.cube(64))
        bumped = perturb_application(spec, "message_bytes", 2.0)
        assert bumped.boundary_bytes_per_cell == pytest.approx(160)

    def test_iterations_rounds_to_int(self):
        spec = chimaera(ProblemSize.cube(64), iterations=10)
        assert perturb_application(spec, "iterations", 1.26).iterations == 13

    def test_unknown_parameter(self):
        spec = chimaera(ProblemSize.cube(64))
        with pytest.raises(ValueError):
            perturb_application(spec, "colour", 2.0)


class TestSensitivityStudy:
    def test_all_parameters_reported(self, xt4):
        results = sensitivity_study(chimaera_240cubed(htile=2), xt4, 4096)
        assert set(results) == set(PLATFORM_PARAMETERS) | set(APPLICATION_PARAMETERS)
        for result in results.values():
            assert result.baseline_us > 0 and result.perturbed_us > 0

    def test_wg_elasticity_dominates_at_small_p(self, xt4):
        """At modest processor counts the run is compute-bound: Wg is the lever."""
        results = sensitivity_study(chimaera_240cubed(htile=2), xt4, 1024)
        top_app = dominant_parameter(results, kind="application")
        assert top_app.parameter == "wg"
        assert results["wg"].elasticity > 0.5
        # Latency is negligible on the XT4 at this scale.
        assert abs(results["latency"].elasticity) < 0.05

    def test_overhead_matters_more_at_large_p(self, xt4):
        small = sensitivity_study(chimaera_240cubed(htile=2), xt4, 1024)
        large = sensitivity_study(chimaera_240cubed(htile=2), xt4, 32768)
        assert large["overhead"].elasticity > small["overhead"].elasticity
        assert large["wg"].elasticity < small["wg"].elasticity

    def test_compute_speed_elasticity_is_negative(self, xt4):
        results = sensitivity_study(chimaera_240cubed(htile=2), xt4, 1024)
        assert results["compute"].elasticity < 0

    def test_invalid_factor(self, xt4):
        with pytest.raises(ValueError):
            sensitivity_study(chimaera_240cubed(), xt4, 1024, factor=1.0)

    def test_dominant_parameter_requires_candidates(self, xt4):
        with pytest.raises(ValueError):
            dominant_parameter({}, kind=None)


class TestDecompositionStudy:
    def test_all_factorisations(self):
        grids = all_factorisations(12)
        assert len(grids) == 6
        assert all(g.total_processors == 12 for g in grids)

    def test_all_factorisations_rejects_bad_input(self):
        with pytest.raises(ValueError):
            all_factorisations(0)

    def test_study_filters_extreme_aspect_ratios(self, xt4):
        spec = chimaera(ProblemSize.cube(64), iterations=1)
        points = decomposition_study(spec, xt4, 1024, max_aspect_ratio=4.0)
        assert all(
            max(p.grid.n / p.grid.m, p.grid.m / p.grid.n) <= 4.0 for p in points
        )

    def test_grid_mismatch_rejected(self, xt4):
        spec = chimaera(ProblemSize.cube(64), iterations=1)
        with pytest.raises(ValueError):
            decomposition_study(spec, xt4, 16, grids=[ProcessorGrid(4, 2)])

    def test_cubic_problem_prefers_near_square_array(self, xt4):
        spec = chimaera_240cubed(htile=2)
        best = best_decomposition(spec, xt4, 4096)
        ratio = max(best.grid.n / best.grid.m, best.grid.m / best.grid.n)
        assert ratio <= 4

    def test_best_never_worse_than_default_decomposition(self, xt4):
        spec = chimaera_240cubed(htile=2)
        best = best_decomposition(spec, xt4, 4096)
        default = predict(spec, xt4, total_cores=4096)
        assert best.time_per_iteration_us <= default.time_per_iteration_us * (1 + 1e-9)

    def test_elongated_array_hurts_cubic_problem(self, xt4):
        spec = chimaera_240cubed(htile=2)
        points = decomposition_study(
            spec,
            xt4,
            4096,
            grids=[ProcessorGrid(64, 64), ProcessorGrid(1024, 4)],
            max_aspect_ratio=None,
        )
        by_shape = {(p.grid.n, p.grid.m): p.time_per_iteration_us for p in points}
        assert by_shape[(64, 64)] < by_shape[(1024, 4)]
