"""Tests for the declarative campaign subsystem (spec, store, runner, report, CLI)."""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, replace

import pytest

from repro.backends.analytic import AnalyticBackend
from repro.backends.registry import _FACTORIES, register_backend
from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    builtin_campaigns,
    campaign_report,
    get_campaign,
    load_campaign_file,
    partition_points,
    run_campaign,
    shard_of,
    write_report,
)
from repro.campaigns.segments import SegmentCorruption, segment_of
from repro.campaigns.spec import CampaignPoint
from repro.campaigns.store import (
    CACHE_DIR_ENV,
    default_store_path,
    find_project_root,
    repro_cache_dir,
)
from repro.cli import main

# -- a counting backend: the instrument for the resumability contract ------------------

_CALLS: list[tuple[str, int]] = []


@dataclass(frozen=True)
class _CountingBackend:
    """Delegates to the analytic engine, recording every evaluate() call."""

    @property
    def name(self) -> str:
        return "counting-analytic"

    def evaluate(self, spec, platform, grid, core_mapping=None):
        _CALLS.append((spec.name, grid.total_processors))
        result = AnalyticBackend().evaluate(spec, platform, grid, core_mapping)
        return replace(result, backend=self.name)


@pytest.fixture
def counting_backend():
    register_backend("counting-analytic", _CountingBackend, replace=True)
    _CALLS.clear()
    yield "counting-analytic"
    _FACTORIES.pop("counting-analytic", None)
    _CALLS.clear()


@pytest.fixture
def small_spec():
    return CampaignSpec(
        name="small",
        apps=("lu-classA",),
        total_cores=(4, 16, 64),
        htiles=(1.0, 2.0),
        backends=("counting-analytic",),
    )


# -- spec ------------------------------------------------------------------------------


class TestCampaignSpec:
    def test_expansion_order_and_count(self):
        spec = CampaignSpec(
            name="demo",
            apps=("lu-classA", "sweep3d-20m"),
            total_cores=(4, 16),
            backends=("analytic-fast", "analytic-exact"),
        )
        points = spec.points()
        assert len(points) == len(spec) == 8
        assert [p.app for p in points[:4]] == ["lu-classA"] * 4
        assert [(p.total_cores, p.backend) for p in points[:4]] == [
            (4, "analytic-fast"),
            (4, "analytic-exact"),
            (16, "analytic-fast"),
            (16, "analytic-exact"),
        ]

    def test_seeds_normalised_for_deterministic_backends(self):
        spec = CampaignSpec(
            name="seeds",
            apps=("lu-classA",),
            total_cores=(4,),
            backends=("analytic-fast", "simulator"),
            noise_seeds=(0, 1, 2),
            compute_noise=0.05,
        )
        points = spec.points()
        analytic = [p for p in points if p.backend == "analytic-fast"]
        simulator = [p for p in points if p.backend == "simulator"]
        # Seeds only differentiate noisy simulator points.
        assert len(analytic) == 1 and analytic[0].noise_seed is None
        assert sorted(p.noise_seed for p in simulator) == [0, 1, 2]
        assert all(p.compute_noise == 0.05 for p in simulator)

    def test_seeds_collapse_without_noise(self):
        spec = CampaignSpec(
            name="noiseless",
            apps=("lu-classA",),
            total_cores=(4,),
            backends=("simulator",),
            noise_seeds=(0, 1, 2),
        )
        assert len(spec.points()) == 1

    def test_round_trip_through_dict(self):
        spec = get_campaign("paper-validation")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign field"):
            CampaignSpec.from_dict(
                {"name": "x", "apps": ["lu-classA"], "total_cores": [4], "typo": 1}
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="apps"):
            CampaignSpec(name="x", apps=(), total_cores=(4,))

    def test_baseline_must_be_a_backend(self):
        with pytest.raises(ValueError, match="baseline"):
            CampaignSpec(
                name="x", apps=("lu-classA",), total_cores=(4,), baseline="simulator"
            )

    def test_with_max_cores(self):
        spec = get_campaign("paper-validation")
        assert spec.with_max_cores(64).total_cores == (16, 64)
        # Never empty: the smallest size survives an aggressive cap.
        assert spec.with_max_cores(1).total_cores == (16,)

    def test_point_key_is_content_hash(self):
        point = CampaignPoint(
            app="lu-classA", platform="cray-xt4", total_cores=16,
            htile=None, backend="analytic-fast",
        )
        same = CampaignPoint.from_dict(point.to_dict())
        assert point.key() == same.key()
        other = replace(point, total_cores=64)
        assert point.key() != other.key()

    def test_unknown_app_fails_with_known_names(self):
        point = CampaignPoint(
            app="not-an-app", platform="cray-xt4", total_cores=4,
            htile=None, backend="analytic-fast",
        )
        with pytest.raises(KeyError, match="chimaera-240"):
            point.build_spec()

    def test_load_campaign_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"name": "f", "apps": ["lu-classA"], "total_cores": [4]}))
        assert load_campaign_file(path).name == "f"
        path.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_campaign_file(path)


# -- store -----------------------------------------------------------------------------


def _segment_file(store_path, key):
    """The segment file a key's record line lands in."""
    return store_path / f"seg-{segment_of(key)}.jsonl"


class TestResultStore:
    def test_put_get_persists_across_instances(self, tmp_path):
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put("k1", {"point": {}, "result": {"x": 1}})
        assert "k1" in store and len(store) == 1
        reopened = ResultStore(path)
        assert reopened.get("k1")["result"]["x"] == 1

    def test_put_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put("k", {"result": {"x": 1}})
        store.put("k", {"result": {"x": 2}})
        assert store.get("k")["result"]["x"] == 1
        assert len(_segment_file(path, "k").read_text().splitlines()) == 1

    def test_put_many_group_commits_and_skips_existing(self, tmp_path):
        store = ResultStore(tmp_path / "s.store")
        store.put("a0a0", {"result": {"x": 0}})
        added = store.put_many(
            [
                ("a0a0", {"result": {"x": 99}}),   # already stored: skipped
                ("b1b1", {"result": {"x": 1}}),
                ("b1b1", {"result": {"x": 2}}),    # duplicate in batch: skipped
                ("c2c2", {"result": {"x": 3}}),
            ]
        )
        assert added == 2
        assert store.get("a0a0")["result"]["x"] == 0
        assert store.get("b1b1")["result"]["x"] == 1
        assert len(store) == 3

    def test_put_rejects_malformed_keys(self, tmp_path):
        store = ResultStore(tmp_path / "s.store")
        with pytest.raises(ValueError, match="non-empty and space-free"):
            store.put("bad key", {"result": {}})
        with pytest.raises(ValueError, match="non-empty and space-free"):
            store.put("", {"result": {}})

    def test_open_parses_sidecars_not_record_bodies(self, tmp_path):
        """Reopening trusts the index sidecars: a garbled body (same byte
        length, so the index still matches) goes unnoticed until read."""
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put("a1a1", {"result": {"x": 1}})
        seg = _segment_file(path, "a1a1")
        original = seg.read_bytes()
        seg.write_bytes(b"#" * (len(original) - 1) + b"\n")
        reopened = ResultStore(path)
        assert reopened.keys() == ["a1a1"]          # open never parsed the body
        with pytest.raises(SegmentCorruption, match="compact"):
            reopened.get("a1a1")                     # the read does

    def test_truncated_final_line_ignored(self, tmp_path):
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put("a111", {"result": {}})
        store.put("a222", {"result": {}})
        # Simulate a crash mid-append: torn bytes past the indexed region.
        with _segment_file(path, "a999").open("ab") as seg:
            seg.write(b'{"kind": "result", "key": "a999", "res')
        reopened = ResultStore(path)
        assert sorted(reopened.keys()) == ["a111", "a222"]
        assert reopened.quarantined == 0

    def test_unindexed_tail_is_recovered_on_open(self, tmp_path):
        """A crash between the data fsync and the index append loses no
        records: the tail is rescanned and re-indexed."""
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put("a111", {"result": {"x": 1}})
        store.put("a222", {"result": {"x": 2}})
        sidecar = path / f"seg-{segment_of('a222')}.idx"
        lines = sidecar.read_text().splitlines(keepends=True)
        sidecar.write_text(lines[0])  # drop the second index entry
        reopened = ResultStore(path)
        assert sorted(reopened.keys()) == ["a111", "a222"]
        assert reopened.get("a222")["result"]["x"] == 2
        # The repair is persisted: the sidecar is whole again.
        assert len(sidecar.read_text().splitlines()) == 2

    def test_corrupt_middle_line_costs_exactly_one_record(self, tmp_path, caplog):
        """The torn-write regression: a garbled interior line is quarantined,
        every record around it is salvaged."""
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put_many(
            [(key, {"result": {"key": key}}) for key in ("a111", "a222", "a333")]
        )
        seg = _segment_file(path, "a111")
        good, mangled, also_good = seg.read_bytes().splitlines(keepends=True)
        mangled = b"#" * (len(mangled) - 1) + b"\n"
        seg.write_bytes(good + mangled + also_good)
        (path / f"seg-{segment_of('a111')}.idx").unlink()  # force the rescan
        with caplog.at_level(logging.WARNING, logger="repro.campaigns.store"):
            reopened = ResultStore(path)
        assert sorted(reopened.keys()) == ["a111", "a333"]
        assert reopened.get("a333")["result"]["key"] == "a333"
        assert reopened.quarantined == 1
        quarantined = json.loads(reopened.quarantine_path.read_text())
        assert quarantined["line"].startswith("#")
        assert any("quarantined 1" in record.getMessage() for record in caplog.records)

    def test_corrupt_line_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put_many([(key, {"result": {}}) for key in ("a111", "a222")])
        seg = _segment_file(path, "a111")
        first, second = seg.read_bytes().splitlines(keepends=True)
        seg.write_bytes(first + b"#" * (len(second) - 1) + b"\n")
        (path / f"seg-{segment_of('a111')}.idx").unlink()
        with pytest.raises(SegmentCorruption, match="unparsable line"):
            ResultStore(path, strict=True)
        # Salvage mode still works on the very same store afterwards.
        assert ResultStore(path).keys() == ["a111"]

    def test_concurrent_duplicate_appends_resolve_last_wins(self, tmp_path):
        """Two writers that raced the same key leave two lines; the loader
        keeps the later one and compact() reclaims the dead bytes."""
        path = tmp_path / "s.store"
        first = ResultStore(path)
        second = ResultStore(path)  # opened before `first` wrote anything
        first.put("a1f3", {"result": {"x": 1}})
        second.put("a1f3", {"result": {"x": 2}})
        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.get("a1f3")["result"]["x"] == 2
        stats = reopened.compact()
        assert stats["records"] == 1
        assert stats["bytes_reclaimed"] > 0
        assert ResultStore(path).get("a1f3")["result"]["x"] == 2

    def test_compact_drops_quarantine_and_preserves_records(self, tmp_path):
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put_many([(key, {"result": {"key": key}}) for key in ("a111", "b222")])
        seg = _segment_file(path, "a111")
        with seg.open("ab") as handle:
            handle.write(b"garbage\n")
        (path / f"seg-{segment_of('a111')}.idx").unlink()
        reopened = ResultStore(path)
        assert reopened.quarantined == 1
        reopened.compact()
        assert not reopened.quarantine_path.exists()
        final = ResultStore(path)
        assert sorted(final.keys()) == ["a111", "b222"]
        assert final.quarantined == 0

    def test_merge_from_copies_missing_records_and_spec(self, tmp_path):
        main_store = ResultStore(tmp_path / "main.store")
        main_store.put("a111", {"result": {"x": 1}})
        scratch = ResultStore(tmp_path / "scratch.store")
        scratch.set_spec({"name": "merged"})
        scratch.put_many(
            [("a111", {"result": {"x": 99}}), ("b222", {"result": {"x": 2}})]
        )
        assert main_store.merge_from(scratch) == 1
        assert main_store.get("a111")["result"]["x"] == 1   # existing wins
        assert main_store.get("b222")["result"]["x"] == 2
        assert main_store.spec_dict == {"name": "merged"}

    def test_spec_header_round_trip(self, tmp_path):
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.set_spec({"name": "x"})
        store.set_spec({"name": "x"})  # unchanged: header untouched
        assert json.loads((path / "header.json").read_text())["spec"] == {"name": "x"}
        assert ResultStore(path).spec_dict == {"name": "x"}

    def test_clean_removes_store_directory(self, tmp_path):
        path = tmp_path / "s.store"
        store = ResultStore(path)
        store.put("a1", {"result": {}})
        assert store.clean() is True
        assert not path.exists()
        assert ResultStore(path).clean() is False

    def test_clean_refuses_directories_that_are_not_stores(self, tmp_path):
        path = tmp_path / "precious"
        path.mkdir()
        (path / "thesis.txt").write_text("do not delete")
        with pytest.raises(ValueError, match="does not look"):
            ResultStore(path).clean()
        assert (path / "thesis.txt").exists()

    def test_clean_prunes_empty_repro_cache_dir(self, tmp_path):
        cache = tmp_path / ".repro-cache"
        first = ResultStore(cache / "a.store")
        first.put("a1", {"result": {}})
        second = ResultStore(cache / "b.store")
        second.put("b2", {"result": {}})
        assert first.clean() is True
        assert cache.is_dir()            # b.store still lives there
        assert second.clean() is True
        assert not cache.exists()        # last store out turns off the lights


class TestLegacyMigration:
    def _legacy_file(self, tmp_path, lines):
        path = tmp_path / "old.jsonl"
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def test_v1_file_migrates_in_place(self, tmp_path):
        path = self._legacy_file(
            tmp_path,
            [
                json.dumps({"kind": "campaign", "spec": {"name": "legacy"}}),
                json.dumps({"kind": "result", "key": "a111", "result": {"x": 1}}),
                json.dumps({"kind": "result", "key": "b222", "result": {"x": 2}}),
            ],
        )
        store = ResultStore(path)
        assert path.is_dir()
        assert sorted(store.keys()) == ["a111", "b222"]
        assert store.get("a111")["result"]["x"] == 1
        assert store.spec_dict == {"name": "legacy"}
        assert (path / "legacy-v1.jsonl.migrated").is_file()
        # A reopen is a plain v2 open: nothing migrates twice.
        assert sorted(ResultStore(path).keys()) == ["a111", "b222"]

    def test_v1_corrupt_line_is_quarantined_by_default(self, tmp_path):
        path = self._legacy_file(
            tmp_path,
            [
                json.dumps({"kind": "result", "key": "a111", "result": {}}),
                "garbage",
                json.dumps({"kind": "result", "key": "b222", "result": {}}),
            ],
        )
        store = ResultStore(path)
        assert sorted(store.keys()) == ["a111", "b222"]
        assert store.quarantined == 1
        quarantined = [
            json.loads(line)
            for line in store.quarantine_path.read_text().splitlines()
        ]
        assert quarantined == [
            {"source": "old.jsonl", "line_number": 2, "line": "garbage"}
        ]

    def test_v1_corrupt_line_raises_in_strict_mode(self, tmp_path):
        path = self._legacy_file(
            tmp_path,
            ["garbage", json.dumps({"kind": "result", "key": "a1", "result": {}})],
        )
        with pytest.raises(SegmentCorruption, match="corrupt at line 1"):
            ResultStore(path, strict=True)
        assert path.is_file()  # strict failure leaves the original untouched

    def test_v1_truncated_final_line_is_dropped_silently(self, tmp_path):
        path = self._legacy_file(
            tmp_path,
            [json.dumps({"kind": "result", "key": "a111", "result": {}})],
        )
        with path.open("a") as handle:
            handle.write('{"kind": "result", "key": "b222", "res')
        store = ResultStore(path)
        assert store.keys() == ["a111"]
        assert not store.quarantine_path.exists()


class TestDefaultStorePath:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert repro_cache_dir() == tmp_path / "elsewhere"
        assert default_store_path("c") == tmp_path / "elsewhere" / "c.store"

    def test_two_working_directories_hit_the_same_store(self, tmp_path, monkeypatch):
        """The CWD-relative store bug: running from a subdirectory used to
        silently recompute into a second store."""
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        sub = tmp_path / "docs" / "deep"
        sub.mkdir(parents=True)
        monkeypatch.chdir(tmp_path)
        from_root = default_store_path("c")
        monkeypatch.chdir(sub)
        assert default_store_path("c") == from_root
        assert find_project_root() == tmp_path

    def test_falls_back_to_cwd_without_a_root(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        lonely = tmp_path / "lonely"
        lonely.mkdir()
        monkeypatch.chdir(lonely)
        if find_project_root() is None:  # tmp dirs can sit under markers
            assert repro_cache_dir() == lonely / ".repro-cache"

    def test_existing_legacy_file_is_preferred(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        legacy = tmp_path / "c.jsonl"
        legacy.write_text("")
        assert default_store_path("c") == legacy
        (tmp_path / "c.store").mkdir()
        assert default_store_path("c") == tmp_path / "c.store"


# -- runner: the resumability contract -------------------------------------------------


class TestCampaignRunner:
    def test_full_run_then_rerun_computes_zero(self, tmp_path, counting_backend, small_spec):
        store_path = tmp_path / "small.store"
        summary = run_campaign(small_spec, store=store_path)
        assert (summary.total_points, summary.computed, summary.cached) == (6, 6, 0)
        assert len(_CALLS) == 6

        summary = run_campaign(small_spec, store=store_path)
        assert (summary.computed, summary.cached) == (0, 6)
        assert len(_CALLS) == 6  # zero new backend invocations

    def test_interrupted_run_computes_only_the_delta(
        self, tmp_path, counting_backend, small_spec
    ):
        # Reference: an uninterrupted run in store A.
        store_a = tmp_path / "a.store"
        run_campaign(small_spec, store=store_a)
        reference_report = campaign_report(store_a)

        # Store B holds what a run killed after 2 committed results leaves:
        # the spec header plus the first 2 records of the reference store.
        reference = ResultStore(store_a)
        keys = [point.key() for point in small_spec.points()]
        kept = 2
        store_b = tmp_path / "b.store"
        partial = ResultStore(store_b)
        partial.set_spec(small_spec.to_dict())
        partial.put_many((key, reference.get(key)) for key in keys[:kept])
        partial.close()

        _CALLS.clear()
        summary = run_campaign(small_spec, store=store_b)
        # Only the missing points execute...
        assert (summary.computed, summary.cached) == (6 - kept, kept)
        assert len(_CALLS) == 6 - kept
        # ...and the final report is byte-identical to the uninterrupted run.
        assert campaign_report(store_b) == reference_report

    def test_campaign_routes_through_evaluate_batch(self, tmp_path):
        """A batch-protocol backend gets the whole campaign in one call,
        with results identical to the scalar analytic path."""
        batches: list[int] = []

        @dataclass(frozen=True)
        class _CountingBatchBackend:
            @property
            def name(self) -> str:
                return "counting-batch"

            def evaluate(self, spec, platform, grid, core_mapping=None):
                result = AnalyticBackend().evaluate(spec, platform, grid, core_mapping)
                return replace(result, backend=self.name)

            def evaluate_batch(self, resolved):
                resolved = list(resolved)
                batches.append(len(resolved))
                return [self.evaluate(*config) for config in resolved]

        register_backend("counting-batch", _CountingBatchBackend, replace=True)
        try:
            spec = CampaignSpec(
                name="batched",
                apps=("lu-classA",),
                total_cores=(4, 16, 64),
                htiles=(1.0, 2.0),
                backends=("counting-batch",),
            )
            summary = run_campaign(spec, store=tmp_path / "batched.store")
            assert (summary.total_points, summary.computed) == (6, 6)
            assert batches == [6]  # one evaluate_batch call, whole campaign

            reference = run_campaign(
                replace(spec, backends=("analytic-fast",)),
                store=tmp_path / "reference.store",
            )
            assert reference.computed == 6
            batched_report = campaign_report(tmp_path / "batched.store")
            reference_report = campaign_report(tmp_path / "reference.store")
            assert (
                batched_report.replace("counting-batch", "analytic-fast")
                == reference_report
            )
        finally:
            _FACTORIES.pop("counting-batch", None)

    def test_pending_lists_missing_points(self, tmp_path, counting_backend, small_spec):
        store = ResultStore(tmp_path / "p.store")
        runner = CampaignRunner(small_spec, store)
        assert len(runner.pending()) == 6
        runner.run()
        assert runner.pending() == []

    def test_invalid_point_fails_before_any_computation(
        self, tmp_path, counting_backend
    ):
        """An unrealisable Sweep3D Htile aborts the run with zero results."""
        spec = CampaignSpec(
            name="bad-htile",
            apps=("lu-classA", "sweep3d-20m"),
            total_cores=(4,),
            htiles=(2.2,),   # fine for LU, unrealisable for Sweep3D
            backends=("counting-analytic",),
        )
        store_path = tmp_path / "bad.store"
        with pytest.raises(ValueError, match="not representable"):
            run_campaign(spec, store=store_path)
        assert len(_CALLS) == 0                      # nothing was computed
        assert len(ResultStore(store_path)) == 0     # nothing was persisted

    def test_overlapping_campaigns_share_results(self, tmp_path, counting_backend):
        store_path = tmp_path / "shared.store"
        first = CampaignSpec(
            name="first", apps=("lu-classA",), total_cores=(4, 16),
            backends=("counting-analytic",),
        )
        wider = CampaignSpec(
            name="wider", apps=("lu-classA",), total_cores=(4, 16, 64),
            backends=("counting-analytic",),
        )
        run_campaign(first, store=store_path)
        assert len(_CALLS) == 2
        summary = run_campaign(wider, store=store_path)
        assert (summary.computed, summary.cached) == (1, 2)
        assert len(_CALLS) == 3

    def test_runner_rejects_bad_shards_and_batch_size(self, tmp_path, small_spec):
        with pytest.raises(ValueError, match="shards"):
            CampaignRunner(small_spec, tmp_path / "x.store", shards=0)
        with pytest.raises(ValueError, match="batch_size"):
            CampaignRunner(small_spec, tmp_path / "x.store", batch_size=0)


# -- sharded fan-out -------------------------------------------------------------------


class TestShardPartitioning:
    def test_shard_of_is_stable_content_hash_arithmetic(self):
        assert shard_of("000000000000000f", 4) == 15 % 4
        assert shard_of("a0", 3) == int("a0", 16) % 3
        assert shard_of("not-hex", 5) == shard_of("not-hex", 5)  # deterministic
        assert 0 <= shard_of("not-hex", 5) < 5
        with pytest.raises(ValueError, match="positive"):
            shard_of("a0", 0)

    def test_partition_points_is_stable_and_complete(self):
        spec = get_campaign("paper-validation")
        points = spec.points()
        partitions = partition_points(points, 4)
        assert len(partitions) == 4
        assert sorted(p.key() for part in partitions for p in part) == sorted(
            p.key() for p in points
        )
        for shard, part in enumerate(partitions):
            for point in part:
                assert shard_of(point.key(), 4) == shard
                assert point.shard(4) == shard
        # Stable: a second expansion partitions identically.
        assert [
            [p.key() for p in part] for part in partition_points(spec.points(), 4)
        ] == [[p.key() for p in part] for part in partitions]

    def test_partition_points_keeps_empty_partitions(self):
        assert partition_points([], 3) == [[], [], []]


class TestShardedRunner:
    def test_sharded_run_matches_single_process(self, tmp_path, counting_backend, small_spec):
        reference_path = tmp_path / "reference.store"
        run_campaign(small_spec, store=reference_path)
        reference_report = campaign_report(reference_path)

        sharded_path = tmp_path / "sharded.store"
        summary = run_campaign(small_spec, store=sharded_path, shards=2)
        assert (summary.total_points, summary.computed, summary.cached) == (6, 6, 0)
        assert summary.shards == 2
        assert campaign_report(sharded_path) == reference_report
        # No scratch left behind after a clean merge.
        assert not (sharded_path / "shards").exists()

        rerun = run_campaign(small_spec, store=sharded_path, shards=2)
        assert (rerun.computed, rerun.cached) == (0, 6)

    def test_resume_salvages_scratch_of_a_killed_run(
        self, tmp_path, counting_backend, small_spec
    ):
        """A killed --shards run leaves scratch stores; --resume folds their
        committed records in and computes only the true delta."""
        reference_path = tmp_path / "reference.store"
        run_campaign(small_spec, store=reference_path)
        reference = ResultStore(reference_path)
        keys = [point.key() for point in small_spec.points()]

        # Fabricate the aftermath of a kill: 2 records parked in one shard's
        # scratch store, nothing in the main store.
        main_store = ResultStore(tmp_path / "killed.store")
        scratch = ResultStore(main_store.scratch_root() / "shard-0.store")
        scratch.put_many((key, reference.get(key)) for key in keys[:2])
        scratch.close()

        _CALLS.clear()
        summary = run_campaign(
            small_spec, store=main_store, shards=2, resume=True
        )
        assert summary.salvaged == 2
        assert (summary.computed, summary.cached) == (4, 2)
        assert not main_store.scratch_root().exists()
        assert campaign_report(tmp_path / "killed.store") == campaign_report(
            reference_path
        )

    def test_without_resume_scratch_is_discarded(
        self, tmp_path, counting_backend, small_spec
    ):
        reference_path = tmp_path / "reference.store"
        run_campaign(small_spec, store=reference_path)
        reference = ResultStore(reference_path)
        keys = [point.key() for point in small_spec.points()]

        main_store = ResultStore(tmp_path / "fresh.store")
        scratch = ResultStore(main_store.scratch_root() / "shard-1.store")
        scratch.put_many((key, reference.get(key)) for key in keys[:3])
        scratch.close()

        summary = run_campaign(small_spec, store=main_store)  # no resume
        assert summary.salvaged == 0
        assert (summary.computed, summary.cached) == (6, 0)
        assert not main_store.scratch_root().exists()


# -- report ----------------------------------------------------------------------------


class TestReport:
    def test_report_sections(self, tmp_path, counting_backend):
        spec = CampaignSpec(
            name="sections",
            apps=("chimaera-240",),
            total_cores=(16, 64),
            htiles=(1.0, 2.0),
            backends=("counting-analytic", "analytic-fast"),
            baseline="analytic-fast",
        )
        store_path = tmp_path / "sections.store"
        run_campaign(spec, store=store_path)
        report = campaign_report(store_path)
        assert report.splitlines()[0] == "# Campaign report: sections"
        assert "## Results" in report
        assert "## Model vs measurement (baseline: analytic-fast)" in report
        assert "## Strong scaling (Figure 6 view)" in report
        assert "## Htile sweeps (Figure 5 view)" in report
        assert "Optimal Htile:" in report
        # counting-analytic delegates to the analytic engine: zero error.
        assert "max |error| 0.00%" in report

    def test_incomplete_store_is_flagged(self, tmp_path, counting_backend, small_spec):
        store_path = tmp_path / "partial.store"
        run_campaign(small_spec, store=store_path)
        full = ResultStore(store_path)
        keys = [point.key() for point in small_spec.points()]
        partial_path = tmp_path / "cut.store"
        partial = ResultStore(partial_path)
        partial.set_spec(small_spec.to_dict())
        partial.put_many((key, full.get(key)) for key in keys[:2])
        partial.close()
        assert "**Incomplete:** 4 of 6" in campaign_report(partial_path)

    def test_write_report_emits_figure_files(self, tmp_path, counting_backend):
        spec = CampaignSpec(
            name="files",
            apps=("chimaera-240",),
            total_cores=(16, 64),
            htiles=(1.0, 2.0),
            backends=("counting-analytic",),
        )
        store_path = tmp_path / "files.store"
        run_campaign(spec, store=store_path)
        written = {p.name for p in write_report(store_path, tmp_path / "out")}
        assert written == {
            "report.md",
            "results.csv",
            "figure6_scaling.csv",
            "figure5_htile.csv",
        }
        scaling = (tmp_path / "out" / "figure6_scaling.csv").read_text().splitlines()
        assert scaling[0].startswith(
            "application,platform,backend,htile,scenario,total_cores"
        )
        assert len(scaling) == 1 + 4  # 2 htile curves x 2 core counts

    def test_empty_store_reports_gracefully(self, tmp_path):
        report = campaign_report(tmp_path / "empty.store")
        assert "no results yet" in report

    def test_noisy_baseline_pairs_every_seed(self, tmp_path):
        """A deterministic candidate is diffed against each noisy replica."""
        spec = CampaignSpec(
            name="noisy",
            apps=("lu-classA",),
            total_cores=(4,),
            backends=("analytic-fast", "simulator"),
            baseline="simulator",
            noise_seeds=(0, 1),
            compute_noise=0.05,
        )
        store_path = tmp_path / "noisy.store"
        run_campaign(spec, store=store_path)
        report = campaign_report(store_path)
        assert "## Model vs measurement (baseline: simulator)" in report
        # One analytic candidate x two simulator seeds = two error rows.
        assert "Across 2 configuration(s)" in report
        assert "| seed |" in report
        validation = (
            write_report(store_path, tmp_path / "out") and
            (tmp_path / "out" / "validation.csv").read_text().splitlines()
        )
        assert validation[0].split(",")[6] == "noise_seed"
        assert len(validation) == 1 + 2

    def test_write_report_removes_stale_files(self, tmp_path, counting_backend):
        out = tmp_path / "out"
        with_baseline = CampaignSpec(
            name="stale", apps=("lu-classA",), total_cores=(4,),
            backends=("counting-analytic", "analytic-fast"),
            baseline="analytic-fast",
        )
        store_a = tmp_path / "a.jsonl"
        run_campaign(with_baseline, store=store_a)
        write_report(store_a, out)
        assert (out / "validation.csv").exists()

        without_baseline = CampaignSpec(
            name="stale2", apps=("lu-classA",), total_cores=(4,),
            backends=("counting-analytic",),
        )
        store_b = tmp_path / "b.jsonl"
        run_campaign(without_baseline, store=store_b)
        write_report(store_b, out)
        assert not (out / "validation.csv").exists()  # stale file dropped
        assert (out / "report.md").exists()


# -- built-ins -------------------------------------------------------------------------


class TestBuiltins:
    def test_expected_campaigns_ship(self):
        assert set(builtin_campaigns()) == {
            "paper-validation",
            "strong-scaling-sweep",
            "htile-sweep",
            "multicore-design",
            "heterogeneity-study",
            "optimization-study",
            "fault-tolerance-study",
        }

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="paper-validation"):
            get_campaign("no-such-campaign")

    def test_every_builtin_point_is_buildable(self):
        # Expansion + request construction must work for every point (no
        # evaluation: this is a schema check, not a run).
        for spec in builtin_campaigns().values():
            points = spec.points()
            assert points, spec.name
            for point in points:
                request = point.request()
                assert request.total_cores == point.total_cores

    def test_paper_validation_has_error_baseline(self):
        spec = get_campaign("paper-validation")
        assert spec.baseline == "simulator"
        assert "simulator" in spec.backends and "analytic-fast" in spec.backends


# -- CLI (the ISSUE acceptance flow) ---------------------------------------------------


class TestCampaignCLI:
    def test_acceptance_run_rerun_report(self, tmp_path, capsys):
        """`campaign run --name paper-validation --store S` twice, then report.

        The second run must perform zero new backend computations and the
        report must emit the Markdown validation tables.
        """
        store = str(tmp_path / "s.jsonl")
        args = ["campaign", "run", "--name", "paper-validation", "--store", store,
                "--max-cores", "16", "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["campaign"] == "paper-validation"
        assert first["computed"] == first["total_points"] > 0

        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["computed"] == 0
        assert second["cached"] == first["total_points"]

        assert main(["campaign", "report", "--store", store]) == 0
        report = capsys.readouterr().out
        assert report.splitlines()[0] == "# Campaign report: paper-validation"
        assert "## Model vs measurement (baseline: simulator)" in report
        assert "| application | platform | P |" in report

    def test_run_with_spec_file_and_default_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        spec_file = tmp_path / "c.json"
        spec_file.write_text(
            json.dumps({"name": "from-file", "apps": ["lu-classA"], "total_cores": [4]})
        )
        assert main(["campaign", "run", "--spec", str(spec_file), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["computed"] == 1
        assert (tmp_path / ".repro-cache" / "from-file.store").is_dir()

    def test_run_with_shards_and_resume_flags(self, tmp_path, capsys):
        store = str(tmp_path / "s.store")
        args = ["campaign", "run", "--name", "paper-validation", "--store", store,
                "--max-cores", "16", "--shards", "2", "--resume", "--json"]
        assert main(args) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shards"] == 2
        assert summary["salvaged"] == 0
        assert summary["computed"] == summary["total_points"] > 0

        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["computed"] == 0

    def test_report_output_directory(self, tmp_path, capsys):
        store = str(tmp_path / "s.jsonl")
        main(["campaign", "run", "--name", "htile-sweep", "--store", store,
              "--max-cores", "4096"])
        capsys.readouterr()
        out_dir = tmp_path / "report"
        assert main(["campaign", "report", "--store", store, "--output", str(out_dir)]) == 0
        printed = capsys.readouterr().out.splitlines()
        assert (out_dir / "report.md").exists()
        assert (out_dir / "figure5_htile.csv").exists()
        assert any("report.md" in line for line in printed)

    def test_list_names_builtins(self, capsys):
        assert main(["campaign", "list", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert "paper-validation" in listed
        assert listed["paper-validation"]["points"] == 36

    def test_clean_removes_store(self, tmp_path, capsys):
        store = str(tmp_path / "s.jsonl")
        main(["campaign", "run", "--name", "htile-sweep", "--store", store,
              "--max-cores", "1"])
        capsys.readouterr()
        assert main(["campaign", "clean", "--store", store]) == 0
        assert "removed" in capsys.readouterr().out
        assert not (tmp_path / "s.jsonl").exists()

    def test_report_and_clean_resolve_default_store_from_spec_file(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        spec_file = tmp_path / "c.json"
        spec_file.write_text(
            json.dumps({"name": "spec-store", "apps": ["lu-classA"], "total_cores": [4]})
        )
        main(["campaign", "run", "--spec", str(spec_file)])
        capsys.readouterr()
        assert main(["campaign", "report", "--spec", str(spec_file)]) == 0
        assert capsys.readouterr().out.startswith("# Campaign report: spec-store")
        assert main(["campaign", "clean", "--spec", str(spec_file)]) == 0
        assert "removed" in capsys.readouterr().out
        assert not (tmp_path / ".repro-cache" / "spec-store.store").exists()
        # The last store out also removes the now-empty cache directory.
        assert not (tmp_path / ".repro-cache").exists()

    def test_unknown_campaign_name_fails_helpfully(self):
        with pytest.raises(SystemExit, match="paper-validation"):
            main(["campaign", "run", "--name", "nope", "--store", "/tmp/x"])

    def test_run_requires_name_or_spec(self):
        with pytest.raises(SystemExit, match="--name NAME or --spec FILE"):
            main(["campaign", "run", "--store", "/tmp/x"])
