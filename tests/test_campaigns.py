"""Tests for the declarative campaign subsystem (spec, store, runner, report, CLI)."""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

import pytest

from repro.backends.analytic import AnalyticBackend
from repro.backends.registry import _FACTORIES, register_backend
from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    builtin_campaigns,
    campaign_report,
    get_campaign,
    load_campaign_file,
    run_campaign,
    write_report,
)
from repro.campaigns.spec import CampaignPoint
from repro.cli import main

# -- a counting backend: the instrument for the resumability contract ------------------

_CALLS: list[tuple[str, int]] = []


@dataclass(frozen=True)
class _CountingBackend:
    """Delegates to the analytic engine, recording every evaluate() call."""

    @property
    def name(self) -> str:
        return "counting-analytic"

    def evaluate(self, spec, platform, grid, core_mapping=None):
        _CALLS.append((spec.name, grid.total_processors))
        result = AnalyticBackend().evaluate(spec, platform, grid, core_mapping)
        return replace(result, backend=self.name)


@pytest.fixture
def counting_backend():
    register_backend("counting-analytic", _CountingBackend, replace=True)
    _CALLS.clear()
    yield "counting-analytic"
    _FACTORIES.pop("counting-analytic", None)
    _CALLS.clear()


@pytest.fixture
def small_spec():
    return CampaignSpec(
        name="small",
        apps=("lu-classA",),
        total_cores=(4, 16, 64),
        htiles=(1.0, 2.0),
        backends=("counting-analytic",),
    )


# -- spec ------------------------------------------------------------------------------


class TestCampaignSpec:
    def test_expansion_order_and_count(self):
        spec = CampaignSpec(
            name="demo",
            apps=("lu-classA", "sweep3d-20m"),
            total_cores=(4, 16),
            backends=("analytic-fast", "analytic-exact"),
        )
        points = spec.points()
        assert len(points) == len(spec) == 8
        assert [p.app for p in points[:4]] == ["lu-classA"] * 4
        assert [(p.total_cores, p.backend) for p in points[:4]] == [
            (4, "analytic-fast"),
            (4, "analytic-exact"),
            (16, "analytic-fast"),
            (16, "analytic-exact"),
        ]

    def test_seeds_normalised_for_deterministic_backends(self):
        spec = CampaignSpec(
            name="seeds",
            apps=("lu-classA",),
            total_cores=(4,),
            backends=("analytic-fast", "simulator"),
            noise_seeds=(0, 1, 2),
            compute_noise=0.05,
        )
        points = spec.points()
        analytic = [p for p in points if p.backend == "analytic-fast"]
        simulator = [p for p in points if p.backend == "simulator"]
        # Seeds only differentiate noisy simulator points.
        assert len(analytic) == 1 and analytic[0].noise_seed is None
        assert sorted(p.noise_seed for p in simulator) == [0, 1, 2]
        assert all(p.compute_noise == 0.05 for p in simulator)

    def test_seeds_collapse_without_noise(self):
        spec = CampaignSpec(
            name="noiseless",
            apps=("lu-classA",),
            total_cores=(4,),
            backends=("simulator",),
            noise_seeds=(0, 1, 2),
        )
        assert len(spec.points()) == 1

    def test_round_trip_through_dict(self):
        spec = get_campaign("paper-validation")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign field"):
            CampaignSpec.from_dict(
                {"name": "x", "apps": ["lu-classA"], "total_cores": [4], "typo": 1}
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="apps"):
            CampaignSpec(name="x", apps=(), total_cores=(4,))

    def test_baseline_must_be_a_backend(self):
        with pytest.raises(ValueError, match="baseline"):
            CampaignSpec(
                name="x", apps=("lu-classA",), total_cores=(4,), baseline="simulator"
            )

    def test_with_max_cores(self):
        spec = get_campaign("paper-validation")
        assert spec.with_max_cores(64).total_cores == (16, 64)
        # Never empty: the smallest size survives an aggressive cap.
        assert spec.with_max_cores(1).total_cores == (16,)

    def test_point_key_is_content_hash(self):
        point = CampaignPoint(
            app="lu-classA", platform="cray-xt4", total_cores=16,
            htile=None, backend="analytic-fast",
        )
        same = CampaignPoint.from_dict(point.to_dict())
        assert point.key() == same.key()
        other = replace(point, total_cores=64)
        assert point.key() != other.key()

    def test_unknown_app_fails_with_known_names(self):
        point = CampaignPoint(
            app="not-an-app", platform="cray-xt4", total_cores=4,
            htile=None, backend="analytic-fast",
        )
        with pytest.raises(KeyError, match="chimaera-240"):
            point.build_spec()

    def test_load_campaign_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"name": "f", "apps": ["lu-classA"], "total_cores": [4]}))
        assert load_campaign_file(path).name == "f"
        path.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_campaign_file(path)


# -- store -----------------------------------------------------------------------------


class TestResultStore:
    def test_put_get_persists_across_instances(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put("k1", {"point": {}, "result": {"x": 1}})
        assert "k1" in store and len(store) == 1
        reopened = ResultStore(path)
        assert reopened.get("k1")["result"]["x"] == 1

    def test_put_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put("k", {"result": {"x": 1}})
        store.put("k", {"result": {"x": 2}})
        assert store.get("k")["result"]["x"] == 1
        assert len(path.read_text().splitlines()) == 1

    def test_truncated_final_line_ignored(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put("k1", {"result": {}})
        store.put("k2", {"result": {}})
        # Simulate a crash mid-append.
        path.write_text(path.read_text() + '{"kind": "result", "key": "k3", "res')
        reopened = ResultStore(path)
        assert sorted(reopened.keys()) == ["k1", "k2"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('garbage\n{"kind": "result", "key": "k"}\n')
        with pytest.raises(ValueError, match="corrupt at line 1"):
            ResultStore(path)

    def test_spec_header_round_trip(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.set_spec({"name": "x"})
        store.set_spec({"name": "x"})  # unchanged: no extra header line
        assert len(path.read_text().splitlines()) == 1
        assert ResultStore(path).spec_dict == {"name": "x"}

    def test_clean_removes_file(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put("k", {"result": {}})
        assert store.clean() is True
        assert not path.exists()
        assert ResultStore(path).clean() is False


# -- runner: the resumability contract -------------------------------------------------


class TestCampaignRunner:
    def test_full_run_then_rerun_computes_zero(self, tmp_path, counting_backend, small_spec):
        store_path = tmp_path / "small.jsonl"
        summary = run_campaign(small_spec, store=store_path)
        assert (summary.total_points, summary.computed, summary.cached) == (6, 6, 0)
        assert len(_CALLS) == 6

        summary = run_campaign(small_spec, store=store_path)
        assert (summary.computed, summary.cached) == (0, 6)
        assert len(_CALLS) == 6  # zero new backend invocations

    def test_interrupted_run_computes_only_the_delta(
        self, tmp_path, counting_backend, small_spec
    ):
        # Reference: an uninterrupted run in store A.
        store_a = tmp_path / "a.jsonl"
        run_campaign(small_spec, store=store_a)
        reference_report = campaign_report(store_a)

        # Store B: run fully, then "kill" it after 2 results.
        store_b = tmp_path / "b.jsonl"
        run_campaign(small_spec, store=store_b)
        lines = store_b.read_text().splitlines()
        assert lines[0].startswith('{"kind": "campaign"')
        kept = 2
        store_b.write_text("\n".join(lines[: 1 + kept]) + "\n")

        _CALLS.clear()
        summary = run_campaign(small_spec, store=store_b)
        # Only the missing points execute...
        assert (summary.computed, summary.cached) == (6 - kept, kept)
        assert len(_CALLS) == 6 - kept
        # ...and the final report is byte-identical to the uninterrupted run.
        assert campaign_report(store_b) == reference_report

    def test_campaign_routes_through_evaluate_batch(self, tmp_path):
        """A batch-protocol backend gets the whole campaign in one call,
        with results identical to the scalar analytic path."""
        batches: list[int] = []

        @dataclass(frozen=True)
        class _CountingBatchBackend:
            @property
            def name(self) -> str:
                return "counting-batch"

            def evaluate(self, spec, platform, grid, core_mapping=None):
                result = AnalyticBackend().evaluate(spec, platform, grid, core_mapping)
                return replace(result, backend=self.name)

            def evaluate_batch(self, resolved):
                resolved = list(resolved)
                batches.append(len(resolved))
                return [self.evaluate(*config) for config in resolved]

        register_backend("counting-batch", _CountingBatchBackend, replace=True)
        try:
            spec = CampaignSpec(
                name="batched",
                apps=("lu-classA",),
                total_cores=(4, 16, 64),
                htiles=(1.0, 2.0),
                backends=("counting-batch",),
            )
            summary = run_campaign(spec, store=tmp_path / "batched.jsonl")
            assert (summary.total_points, summary.computed) == (6, 6)
            assert batches == [6]  # one evaluate_batch call, whole campaign

            reference = run_campaign(
                replace(spec, backends=("analytic-fast",)),
                store=tmp_path / "reference.jsonl",
            )
            assert reference.computed == 6
            batched_report = campaign_report(tmp_path / "batched.jsonl")
            reference_report = campaign_report(tmp_path / "reference.jsonl")
            assert (
                batched_report.replace("counting-batch", "analytic-fast")
                == reference_report
            )
        finally:
            _FACTORIES.pop("counting-batch", None)

    def test_pending_lists_missing_points(self, tmp_path, counting_backend, small_spec):
        store = ResultStore(tmp_path / "p.jsonl")
        runner = CampaignRunner(small_spec, store)
        assert len(runner.pending()) == 6
        runner.run()
        assert runner.pending() == []

    def test_invalid_point_fails_before_any_computation(
        self, tmp_path, counting_backend
    ):
        """An unrealisable Sweep3D Htile aborts the run with zero results."""
        spec = CampaignSpec(
            name="bad-htile",
            apps=("lu-classA", "sweep3d-20m"),
            total_cores=(4,),
            htiles=(2.2,),   # fine for LU, unrealisable for Sweep3D
            backends=("counting-analytic",),
        )
        store_path = tmp_path / "bad.jsonl"
        with pytest.raises(ValueError, match="not representable"):
            run_campaign(spec, store=store_path)
        assert len(_CALLS) == 0                      # nothing was computed
        assert len(ResultStore(store_path)) == 0     # nothing was persisted

    def test_overlapping_campaigns_share_results(self, tmp_path, counting_backend):
        store_path = tmp_path / "shared.jsonl"
        first = CampaignSpec(
            name="first", apps=("lu-classA",), total_cores=(4, 16),
            backends=("counting-analytic",),
        )
        wider = CampaignSpec(
            name="wider", apps=("lu-classA",), total_cores=(4, 16, 64),
            backends=("counting-analytic",),
        )
        run_campaign(first, store=store_path)
        assert len(_CALLS) == 2
        summary = run_campaign(wider, store=store_path)
        assert (summary.computed, summary.cached) == (1, 2)
        assert len(_CALLS) == 3


# -- report ----------------------------------------------------------------------------


class TestReport:
    def test_report_sections(self, tmp_path, counting_backend):
        spec = CampaignSpec(
            name="sections",
            apps=("chimaera-240",),
            total_cores=(16, 64),
            htiles=(1.0, 2.0),
            backends=("counting-analytic", "analytic-fast"),
            baseline="analytic-fast",
        )
        store_path = tmp_path / "sections.jsonl"
        run_campaign(spec, store=store_path)
        report = campaign_report(store_path)
        assert report.splitlines()[0] == "# Campaign report: sections"
        assert "## Results" in report
        assert "## Model vs measurement (baseline: analytic-fast)" in report
        assert "## Strong scaling (Figure 6 view)" in report
        assert "## Htile sweeps (Figure 5 view)" in report
        assert "Optimal Htile:" in report
        # counting-analytic delegates to the analytic engine: zero error.
        assert "max |error| 0.00%" in report

    def test_incomplete_store_is_flagged(self, tmp_path, counting_backend, small_spec):
        store_path = tmp_path / "partial.jsonl"
        run_campaign(small_spec, store=store_path)
        lines = store_path.read_text().splitlines()
        store_path.write_text("\n".join(lines[:3]) + "\n")
        assert "**Incomplete:** 4 of 6" in campaign_report(store_path)

    def test_write_report_emits_figure_files(self, tmp_path, counting_backend):
        spec = CampaignSpec(
            name="files",
            apps=("chimaera-240",),
            total_cores=(16, 64),
            htiles=(1.0, 2.0),
            backends=("counting-analytic",),
        )
        store_path = tmp_path / "files.jsonl"
        run_campaign(spec, store=store_path)
        written = {p.name for p in write_report(store_path, tmp_path / "out")}
        assert written == {
            "report.md",
            "results.csv",
            "figure6_scaling.csv",
            "figure5_htile.csv",
        }
        scaling = (tmp_path / "out" / "figure6_scaling.csv").read_text().splitlines()
        assert scaling[0].startswith(
            "application,platform,backend,htile,scenario,total_cores"
        )
        assert len(scaling) == 1 + 4  # 2 htile curves x 2 core counts

    def test_empty_store_reports_gracefully(self, tmp_path):
        report = campaign_report(tmp_path / "empty.jsonl")
        assert "no results yet" in report

    def test_noisy_baseline_pairs_every_seed(self, tmp_path):
        """A deterministic candidate is diffed against each noisy replica."""
        spec = CampaignSpec(
            name="noisy",
            apps=("lu-classA",),
            total_cores=(4,),
            backends=("analytic-fast", "simulator"),
            baseline="simulator",
            noise_seeds=(0, 1),
            compute_noise=0.05,
        )
        store_path = tmp_path / "noisy.jsonl"
        run_campaign(spec, store=store_path)
        report = campaign_report(store_path)
        assert "## Model vs measurement (baseline: simulator)" in report
        # One analytic candidate x two simulator seeds = two error rows.
        assert "Across 2 configuration(s)" in report
        assert "| seed |" in report
        validation = (
            write_report(store_path, tmp_path / "out") and
            (tmp_path / "out" / "validation.csv").read_text().splitlines()
        )
        assert validation[0].split(",")[6] == "noise_seed"
        assert len(validation) == 1 + 2

    def test_write_report_removes_stale_files(self, tmp_path, counting_backend):
        out = tmp_path / "out"
        with_baseline = CampaignSpec(
            name="stale", apps=("lu-classA",), total_cores=(4,),
            backends=("counting-analytic", "analytic-fast"),
            baseline="analytic-fast",
        )
        store_a = tmp_path / "a.jsonl"
        run_campaign(with_baseline, store=store_a)
        write_report(store_a, out)
        assert (out / "validation.csv").exists()

        without_baseline = CampaignSpec(
            name="stale2", apps=("lu-classA",), total_cores=(4,),
            backends=("counting-analytic",),
        )
        store_b = tmp_path / "b.jsonl"
        run_campaign(without_baseline, store=store_b)
        write_report(store_b, out)
        assert not (out / "validation.csv").exists()  # stale file dropped
        assert (out / "report.md").exists()


# -- built-ins -------------------------------------------------------------------------


class TestBuiltins:
    def test_expected_campaigns_ship(self):
        assert set(builtin_campaigns()) == {
            "paper-validation",
            "strong-scaling-sweep",
            "htile-sweep",
            "multicore-design",
            "heterogeneity-study",
            "optimization-study",
            "fault-tolerance-study",
        }

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="paper-validation"):
            get_campaign("no-such-campaign")

    def test_every_builtin_point_is_buildable(self):
        # Expansion + request construction must work for every point (no
        # evaluation: this is a schema check, not a run).
        for spec in builtin_campaigns().values():
            points = spec.points()
            assert points, spec.name
            for point in points:
                request = point.request()
                assert request.total_cores == point.total_cores

    def test_paper_validation_has_error_baseline(self):
        spec = get_campaign("paper-validation")
        assert spec.baseline == "simulator"
        assert "simulator" in spec.backends and "analytic-fast" in spec.backends


# -- CLI (the ISSUE acceptance flow) ---------------------------------------------------


class TestCampaignCLI:
    def test_acceptance_run_rerun_report(self, tmp_path, capsys):
        """`campaign run --name paper-validation --store S` twice, then report.

        The second run must perform zero new backend computations and the
        report must emit the Markdown validation tables.
        """
        store = str(tmp_path / "s.jsonl")
        args = ["campaign", "run", "--name", "paper-validation", "--store", store,
                "--max-cores", "16", "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["campaign"] == "paper-validation"
        assert first["computed"] == first["total_points"] > 0

        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["computed"] == 0
        assert second["cached"] == first["total_points"]

        assert main(["campaign", "report", "--store", store]) == 0
        report = capsys.readouterr().out
        assert report.splitlines()[0] == "# Campaign report: paper-validation"
        assert "## Model vs measurement (baseline: simulator)" in report
        assert "| application | platform | P |" in report

    def test_run_with_spec_file_and_default_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        spec_file = tmp_path / "c.json"
        spec_file.write_text(
            json.dumps({"name": "from-file", "apps": ["lu-classA"], "total_cores": [4]})
        )
        assert main(["campaign", "run", "--spec", str(spec_file), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["computed"] == 1
        assert (tmp_path / ".repro-cache" / "from-file.jsonl").exists()

    def test_report_output_directory(self, tmp_path, capsys):
        store = str(tmp_path / "s.jsonl")
        main(["campaign", "run", "--name", "htile-sweep", "--store", store,
              "--max-cores", "4096"])
        capsys.readouterr()
        out_dir = tmp_path / "report"
        assert main(["campaign", "report", "--store", store, "--output", str(out_dir)]) == 0
        printed = capsys.readouterr().out.splitlines()
        assert (out_dir / "report.md").exists()
        assert (out_dir / "figure5_htile.csv").exists()
        assert any("report.md" in line for line in printed)

    def test_list_names_builtins(self, capsys):
        assert main(["campaign", "list", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert "paper-validation" in listed
        assert listed["paper-validation"]["points"] == 36

    def test_clean_removes_store(self, tmp_path, capsys):
        store = str(tmp_path / "s.jsonl")
        main(["campaign", "run", "--name", "htile-sweep", "--store", store,
              "--max-cores", "1"])
        capsys.readouterr()
        assert main(["campaign", "clean", "--store", store]) == 0
        assert "removed" in capsys.readouterr().out
        assert not (tmp_path / "s.jsonl").exists()

    def test_report_and_clean_resolve_default_store_from_spec_file(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        spec_file = tmp_path / "c.json"
        spec_file.write_text(
            json.dumps({"name": "spec-store", "apps": ["lu-classA"], "total_cores": [4]})
        )
        main(["campaign", "run", "--spec", str(spec_file)])
        capsys.readouterr()
        assert main(["campaign", "report", "--spec", str(spec_file)]) == 0
        assert capsys.readouterr().out.startswith("# Campaign report: spec-store")
        assert main(["campaign", "clean", "--spec", str(spec_file)]) == 0
        assert "removed" in capsys.readouterr().out
        assert not (tmp_path / ".repro-cache" / "spec-store.jsonl").exists()

    def test_unknown_campaign_name_fails_helpfully(self):
        with pytest.raises(SystemExit, match="paper-validation"):
            main(["campaign", "run", "--name", "nope", "--store", "/tmp/x"])

    def test_run_requires_name_or_spec(self):
        with pytest.raises(SystemExit, match="--name NAME or --spec FILE"):
            main(["campaign", "run", "--store", "/tmp/x"])
