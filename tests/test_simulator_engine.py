"""Tests for repro.simulator.engine (the discrete-event kernel)."""

import pytest

from repro.simulator.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule_at(5.0, lambda: order.append("b"))
    sim.schedule_at(1.0, lambda: order.append("a"))
    sim.schedule_at(9.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule_at(3.0, lambda label=label: order.append(label))
    sim.run()
    assert order == ["a", "b", "c"]


def test_schedule_after_is_relative():
    sim = Simulator()
    times = []
    sim.schedule_at(10.0, lambda: sim.schedule_after(5.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [15.0]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_after(-1.0, lambda: None)


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 5:
            sim.schedule_after(1.0, lambda: chain(depth + 1))

    sim.schedule_at(0.0, lambda: chain(0))
    sim.run()
    assert seen == list(range(6))
    assert sim.now == 5.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule_at(1.0, lambda: seen.append(1))
    sim.schedule_at(100.0, lambda: seen.append(100))
    sim.run(until=10.0)
    assert seen == [1]
    assert sim.pending_events == 1


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule_after(1.0, forever)

    sim.schedule_at(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for t in range(5):
        sim.schedule_at(float(t), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_time_never_goes_backwards():
    sim = Simulator()
    observed = []
    for t in (3.0, 1.0, 2.0, 2.0, 5.0):
        sim.schedule_at(t, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
