"""Fixture-snippet tests for every lint rule.

Each rule gets at least: a violating snippet, a clean snippet, a
suppressed snippet, and an unused-suppression snippet.  Module rules run
through :func:`repro.devtools.lint.lint_source`; the cross-file RPR005
rule runs through :func:`repro.devtools.lint.lint_paths` on a tmp tree.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools.lint import (
    available_rules,
    lint_paths,
    lint_source,
)


def ids(findings):
    return [f.rule_id for f in findings]


def check(source: str, path: str = "src/snippet.py", rules=None):
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


# ---------------------------------------------------------------------------
# registry


def test_all_seven_rules_registered():
    assert list(available_rules()) == [
        "RPR001",
        "RPR002",
        "RPR003",
        "RPR004",
        "RPR005",
        "RPR006",
        "RPR007",
    ]


def test_unknown_rule_spec_raises():
    with pytest.raises(KeyError):
        check("x = 1\n", rules=["RPR999"])


def test_rules_narrowing_runs_only_selected():
    source = """\
    import random
    x = random.random()
    y = x == 1.0
    """
    assert ids(check(source)) == ["RPR001", "RPR004"]
    assert ids(check(source, rules=["RPR004"])) == ["RPR004"]


# ---------------------------------------------------------------------------
# RPR001 - unseeded randomness


def test_rpr001_flags_module_level_random_calls():
    assert ids(check("import random\nx = random.random()\n")) == ["RPR001"]


def test_rpr001_flags_unseeded_random_instance():
    assert ids(check("import random\nrng = random.Random()\n")) == ["RPR001"]


def test_rpr001_flags_numpy_global_state():
    source = """\
    import numpy as np
    np.random.seed(0)
    """
    assert ids(check(source)) == ["RPR001"]


def test_rpr001_clean_seeded_rng():
    source = """\
    import random
    rng = random.Random(42)
    value = rng.random()
    """
    assert ids(check(source)) == []


def test_rpr001_suppressed():
    source = (
        "import random\n"
        "x = random.random()  # repro: noqa[RPR001] demo snippet, determinism irrelevant\n"
    )
    assert ids(check(source)) == []


def test_rpr001_not_applied_outside_src_scope():
    source = "import random\nx = random.random()\n"
    assert ids(check(source, path="tests/test_snippet.py")) == []


# ---------------------------------------------------------------------------
# RPR002 - caches without a registered clearer


def test_rpr002_flags_lru_cache_without_clearer():
    source = """\
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def f(x):
        return x * 2
    """
    assert ids(check(source)) == ["RPR002"]


def test_rpr002_clean_with_registered_clearer():
    source = """\
    from functools import lru_cache

    from repro.util.caching import register_cache_clearer

    @lru_cache(maxsize=None)
    def f(x):
        return x * 2

    @register_cache_clearer
    def _clear_f():
        f.cache_clear()
    """
    assert ids(check(source)) == []


def test_rpr002_clean_when_drain_entry_point_clears():
    # A function calling clear_registered_caches IS the drain entry point;
    # caches it clears directly are covered (predictor.py pattern).
    source = """\
    from functools import lru_cache

    from repro.util.caching import clear_registered_caches

    @lru_cache(maxsize=4096)
    def _predict(x):
        return x

    def clear_everything():
        _predict.cache_clear()
        clear_registered_caches()
    """
    assert ids(check(source)) == []


def test_rpr002_flags_module_level_cache_dict():
    assert ids(check("_results_cache = {}\n")) == ["RPR002"]


def test_rpr002_flags_uncleared_instance_memo():
    source = """\
    class Evaluator:
        def __init__(self):
            self._memo = {}
    """
    assert ids(check(source)) == ["RPR002"]


def test_rpr002_clean_instance_memo_with_clear_method():
    source = """\
    class Evaluator:
        def __init__(self):
            self._memo = {}

        def reset(self):
            self._memo.clear()
    """
    assert ids(check(source)) == []


def test_rpr002_suppressed_with_justification():
    source = (
        "class Evaluator:\n"
        "    def __init__(self):\n"
        "        self._memo = {}  # repro: noqa[RPR002] lifetime bounded by one run\n"
    )
    assert ids(check(source)) == []


# ---------------------------------------------------------------------------
# RPR003 - unpicklable callables at pool boundaries


def test_rpr003_flags_lambda_into_parallel_map():
    source = """\
    from repro.util.parallel import parallel_map

    out = parallel_map(lambda x: x + 1, [1, 2], executor="process")
    """
    assert ids(check(source)) == ["RPR003"]


def test_rpr003_flags_local_def_into_predict_many():
    source = """\
    from repro.backends.service import predict_many

    def study(requests):
        def tweak(r):
            return r
        return predict_many([tweak(r) for r in requests], workers=4)
    """
    # the comprehension call is fine; passing the local function itself is not
    assert ids(check(source)) == []


def test_rpr003_flags_local_function_reference():
    source = """\
    from repro.util.parallel import parallel_map

    def study(items):
        def score(item):
            return item * 2
        return parallel_map(score, items, workers=4)
    """
    assert ids(check(source)) == ["RPR003"]


def test_rpr003_thread_executor_is_exempt():
    source = """\
    from repro.util.parallel import parallel_map

    out = parallel_map(lambda x: x + 1, [1, 2], executor="thread")
    """
    assert ids(check(source)) == []


def test_rpr003_clean_partial_over_module_function():
    source = """\
    from functools import partial

    from repro.util.parallel import parallel_map

    def scale(factor, x):
        return factor * x

    out = parallel_map(partial(scale, 3.0), [1, 2], executor="process")
    """
    assert ids(check(source)) == []


def test_rpr003_sweep_run_with_pool_kwargs():
    source = """\
    def study(sweep):
        return sweep.run(lambda p: p.total_us, workers=2, executor="process")
    """
    assert ids(check(source)) == ["RPR003"]


# ---------------------------------------------------------------------------
# RPR004 - float equality


def test_rpr004_flags_float_equality():
    source = """\
    def close(a: float) -> bool:
        return a == 1.0
    """
    assert ids(check(source)) == ["RPR004"]


def test_rpr004_flags_not_equal_too():
    source = """\
    def scaled(w: float, factor: float) -> float:
        if factor != 1.0:
            w *= factor
        return w
    """
    assert ids(check(source)) == ["RPR004"]


def test_rpr004_clean_tolerance_comparison():
    source = """\
    def close(a: float) -> bool:
        return abs(a - 1.0) < 1e-9
    """
    assert ids(check(source)) == []


def test_rpr004_integer_equality_is_fine():
    assert ids(check("def f(n: int) -> bool:\n    return n == 0\n")) == []


def test_rpr004_suppressed_sentinel():
    source = (
        "def fmt(v: float) -> str:\n"
        "    if v == 0.0:  # repro: noqa[RPR004] exact-zero display sentinel\n"
        "        return '0'\n"
        "    return str(v)\n"
    )
    assert ids(check(source)) == []


# ---------------------------------------------------------------------------
# RPR005 - registry and docs consistency (cross-file, needs a tmp tree)


def _write_tree(tmp_path, module_source: str, docs: str):
    src = tmp_path / "src"
    src.mkdir()
    (src / "backends.py").write_text(textwrap.dedent(module_source), encoding="utf-8")
    docs_dir = tmp_path / "docs"
    docs_dir.mkdir()
    (docs_dir / "cli.md").write_text(docs, encoding="utf-8")
    return src


_BACKEND_CLASS = """\
class FancyBackend:
    name = "fancy"

    def evaluate(self, request):
        return request
"""


def test_rpr005_flags_unregistered_backend_class(tmp_path):
    src = _write_tree(tmp_path, _BACKEND_CLASS, "docs\n")
    report = lint_paths([src], rules=["RPR005"], project_root=tmp_path)
    assert ids(report.findings) == ["RPR005"]
    assert "never registered" in report.findings[0].message


def test_rpr005_registered_and_documented_is_clean(tmp_path):
    source = _BACKEND_CLASS + (
        "\n\ndef register_backend(name, factory):\n"
        "    pass\n\n"
        "register_backend(\"fancy\", FancyBackend)\n"
    )
    src = _write_tree(tmp_path, source, "The `fancy` backend.\n")
    report = lint_paths([src], rules=["RPR005"], project_root=tmp_path)
    assert ids(report.findings) == []


def test_rpr005_registered_but_undocumented_name(tmp_path):
    source = _BACKEND_CLASS + (
        "\n\ndef register_backend(name, factory):\n"
        "    pass\n\n"
        "register_backend(\"fancy\", FancyBackend)\n"
    )
    src = _write_tree(tmp_path, source, "no names here\n")
    report = lint_paths([src], rules=["RPR005"], project_root=tmp_path)
    assert ids(report.findings) == ["RPR005"]
    assert "not documented" in report.findings[0].message


def test_rpr005_strategy_table_counts_as_registration(tmp_path):
    source = """\
    class GreedySearch:
        name = "greedy"

        def search(self, space, evaluator, objective):
            return None

    _STRATEGIES = {"greedy": GreedySearch}
    """
    src = _write_tree(tmp_path, source, "The `greedy` strategy.\n")
    report = lint_paths([src], rules=["RPR005"], project_root=tmp_path)
    assert ids(report.findings) == []


def test_rpr005_private_and_protocol_classes_exempt(tmp_path):
    source = """\
    from typing import Protocol


    class SearchStrategy(Protocol):
        name: str

        def search(self, space, evaluator, objective):
            ...


    class _ScratchBackend:
        name = "scratch"

        def evaluate(self, request):
            return request
    """
    src = _write_tree(tmp_path, source, "docs\n")
    report = lint_paths([src], rules=["RPR005"], project_root=tmp_path)
    assert ids(report.findings) == []


# ---------------------------------------------------------------------------
# RPR006 - __all__ consistency


def test_rpr006_flags_phantom_export():
    assert ids(check('__all__ = ["missing"]\n')) == ["RPR006"]


def test_rpr006_flags_duplicate_entry():
    source = """\
    __all__ = ["f", "f"]

    def f():
        return 1
    """
    assert ids(check(source)) == ["RPR006"]


def test_rpr006_init_reexport_must_be_listed():
    source = """\
    from os.path import join

    __all__ = []
    """
    assert ids(check(source, path="src/pkg/__init__.py")) == ["RPR006"]


def test_rpr006_clean_init():
    source = """\
    from os.path import join

    __all__ = ["join", "helper"]

    def helper():
        return join("a", "b")
    """
    assert ids(check(source, path="src/pkg/__init__.py")) == []


def test_rpr006_no_all_declared_is_fine():
    assert ids(check("def f():\n    return 1\n")) == []


# ---------------------------------------------------------------------------
# RPR007 - hygiene


def test_rpr007_flags_mutable_default():
    assert ids(check("def f(x, acc=[]):\n    return acc\n")) == ["RPR007"]


def test_rpr007_flags_dict_call_default():
    assert ids(check("def f(x, opts=dict()):\n    return opts\n")) == ["RPR007"]


def test_rpr007_flags_bare_except():
    source = """\
    def f():
        try:
            return 1
        except:
            return 0
    """
    assert ids(check(source)) == ["RPR007"]


def test_rpr007_clean_none_default_and_typed_except():
    source = """\
    def f(x, acc=None):
        if acc is None:
            acc = []
        try:
            return acc
        except ValueError:
            return []
    """
    assert ids(check(source)) == []


# ---------------------------------------------------------------------------
# suppression machinery (meta rules)


def test_unused_suppression_reported():
    source = "x = 1  # repro: noqa[RPR004] nothing here triggers it\n"
    assert ids(check(source)) == ["LINT001"]


def test_unjustified_suppression_reported():
    source = (
        "def f(v: float) -> bool:\n"
        "    return v == 1.0  # repro: noqa[RPR004]\n"
    )
    assert ids(check(source)) == ["LINT002"]


def test_suppression_for_unselected_rule_not_flagged_unused():
    # Narrowing the run with --rules must not punish suppressions that
    # belong to rules outside the selection.
    source = (
        "import random\n"
        "x = random.random()  # repro: noqa[RPR001] demo value\n"
        "y = 1.0 == x\n"
    )
    assert ids(check(source, rules=["RPR004"])) == ["RPR004"]


def test_one_comment_can_suppress_multiple_rules():
    source = (
        "import random\n"
        "x = random.random() == 0.5"
        "  # repro: noqa[RPR001, RPR004] demo: exact draw comparison\n"
    )
    assert ids(check(source)) == []


def test_syntax_error_becomes_lint000(tmp_path):
    bad = tmp_path / "src"
    bad.mkdir()
    (bad / "broken.py").write_text("def f(:\n", encoding="utf-8")
    report = lint_paths([bad], project_root=tmp_path)
    assert ids(report.findings) == ["LINT000"]
    assert report.files == 1
