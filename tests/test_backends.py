"""Tests for repro.backends (protocol, registry, batch service)."""

import pytest

from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.backends import (
    AnalyticBackend,
    BackendResult,
    PredictionRequest,
    SimulatorBackend,
    available_backends,
    clear_simulation_cache,
    get_backend,
    predict_many,
    predict_one,
    register_backend,
    simulation_cache_info,
)
from repro.backends.registry import _FACTORIES
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.predictor import predict
from repro.simulator.wavefront import simulate_wavefront


@pytest.fixture
def spec():
    return chimaera(ProblemSize(32, 32, 16), iterations=1)


class TestRegistry:
    def test_builtins_available(self):
        names = available_backends()
        assert "analytic-fast" in names
        assert "analytic-exact" in names
        assert "simulator" in names

    def test_get_backend_by_name(self):
        backend = get_backend("analytic-fast")
        assert backend.name == "analytic-fast"
        assert get_backend("simulator").name == "simulator"

    def test_get_backend_passthrough_instance(self):
        instance = SimulatorBackend(iterations=2)
        assert get_backend(instance) is instance

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError) as excinfo:
            get_backend("no-such-backend")
        assert "analytic-fast" in str(excinfo.value)

    def test_invalid_spec_type(self):
        with pytest.raises(TypeError):
            get_backend(42)

    def test_register_custom_backend(self):
        register_backend("analytic-auto-test", lambda: AnalyticBackend(method="auto"))
        try:
            assert "analytic-auto-test" in available_backends()
            backend = get_backend("analytic-auto-test")
            assert backend.method == "auto"
        finally:
            _FACTORIES.pop("analytic-auto-test", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("analytic-fast", lambda: AnalyticBackend())

    def test_replace_allows_override(self):
        original = _FACTORIES["analytic-fast"]
        try:
            register_backend(
                "analytic-fast", lambda: AnalyticBackend(method="fast"), replace=True
            )
            assert get_backend("analytic-fast").name == "analytic-fast"
        finally:
            _FACTORIES["analytic-fast"] = original


class TestPredictionRequest:
    def test_requires_exactly_one_shape(self, spec, xt4_single):
        with pytest.raises(ValueError):
            PredictionRequest(spec, xt4_single)
        with pytest.raises(ValueError):
            PredictionRequest(
                spec, xt4_single, total_cores=16, grid=ProcessorGrid(4, 4)
            )

    def test_resolve_decomposes_cores(self, spec, xt4_single):
        _spec, _platform, grid, mapping = PredictionRequest(
            spec, xt4_single, total_cores=16
        ).resolve()
        assert grid.total_processors == 16
        assert mapping.cores_per_node == 1


class TestAnalyticBackend:
    def test_matches_predict(self, spec, xt4_single):
        result = predict_one(spec, xt4_single, total_cores=16, backend="analytic-fast")
        prediction = predict(spec, xt4_single, total_cores=16, method="fast")
        assert result.time_per_iteration_us == prediction.time_per_iteration_us
        assert result.total_time_days == prediction.total_time_days
        assert result.computation_fraction == prediction.computation_fraction
        assert result.prediction is prediction  # shared lru cache
        assert result.backend == "analytic-fast"

    def test_exact_and_fast_agree(self, spec, xt4):
        fast = predict_one(spec, xt4, total_cores=16, backend="analytic-fast")
        exact = predict_one(spec, xt4, total_cores=16, backend="analytic-exact")
        assert fast.time_per_iteration_us == pytest.approx(
            exact.time_per_iteration_us, rel=1e-9
        )

    def test_phase_breakdown_sums_to_total(self, spec, xt4_single):
        result = predict_one(spec, xt4_single, total_cores=16)
        assert sum(value for _, value in result.phases) == pytest.approx(
            result.time_per_iteration_us
        )

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            AnalyticBackend(method="bogus")


class TestSimulatorBackend:
    def test_matches_simulate_wavefront(self, spec, xt4_single):
        result = predict_one(spec, xt4_single, total_cores=16, backend="simulator")
        simulation = simulate_wavefront(spec, xt4_single, total_cores=16)
        assert result.time_per_iteration_us == simulation.time_per_iteration_us
        assert result.simulation is not None
        assert result.prediction is None
        assert result.pipeline_fill_per_iteration_us is None
        assert result.pipeline_fill_fraction is None

    def test_phases_cover_iteration_time(self, spec, xt4_single):
        result = predict_one(spec, xt4_single, total_cores=16, backend="simulator")
        assert sum(value for _, value in result.phases) == pytest.approx(
            result.time_per_iteration_us, abs=1e-6
        )
        assert result.computation_per_iteration_us > 0

    def test_evaluations_are_cached(self, spec, xt4_single):
        clear_simulation_cache()
        predict_one(spec, xt4_single, total_cores=16, backend="simulator")
        misses = simulation_cache_info().misses
        predict_one(spec, xt4_single, total_cores=16, backend="simulator")
        assert simulation_cache_info().misses == misses
        assert simulation_cache_info().hits >= 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SimulatorBackend(iterations=0)
        with pytest.raises(ValueError):
            SimulatorBackend(engine="warp-drive")


class _CountingBackend:
    """Minimal protocol implementation used to observe service behaviour."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def evaluate(self, spec, platform, grid, core_mapping=None):
        self.calls += 1
        return get_backend("analytic-fast").evaluate(spec, platform, grid, core_mapping)


class TestPredictMany:
    def test_results_in_request_order(self, spec, xt4_single):
        requests = [
            PredictionRequest(spec, xt4_single, total_cores=c) for c in (64, 16, 4)
        ]
        results = predict_many(requests)
        assert [r.total_cores for r in results] == [64, 16, 4]

    def test_duplicates_evaluated_once(self, spec, xt4_single):
        backend = _CountingBackend()
        requests = [
            PredictionRequest(spec, xt4_single, total_cores=16),
            PredictionRequest(spec, xt4_single, total_cores=64),
            PredictionRequest(spec, xt4_single, total_cores=16),
        ]
        results = predict_many(requests, backend=backend)
        assert backend.calls == 2
        assert results[0] is results[2]

    def test_accepts_triples(self, spec, xt4_single):
        results = predict_many([(spec, xt4_single, 16)])
        assert results[0].total_cores == 16

    def test_parallel_workers_match_serial(self, spec, xt4_single):
        requests = [
            PredictionRequest(spec, xt4_single, total_cores=c) for c in (4, 16, 64)
        ]
        serial = predict_many(requests)
        threaded = predict_many(requests, workers=2, executor="thread")
        assert [r.time_per_iteration_us for r in serial] == [
            r.time_per_iteration_us for r in threaded
        ]

    def test_two_backends_same_codepath_diff(self, xt4_single):
        """The acceptance shape: one matrix, two backends, comparable output."""
        specs = [
            chimaera(ProblemSize(32, 32, 16), iterations=1),
            lu(ProblemSize(32, 32, 16), iterations=1),
        ]
        requests = [PredictionRequest(s, xt4_single, total_cores=16) for s in specs]
        analytic = predict_many(requests, backend="analytic-fast")
        simulated = predict_many(requests, backend="simulator")
        for a, s in zip(analytic, simulated):
            assert isinstance(a, BackendResult) and isinstance(s, BackendResult)
            rel = abs(a.time_per_iteration_us - s.time_per_iteration_us)
            assert rel / s.time_per_iteration_us < 0.05


class _CountingBatchBackend:
    """Batch-protocol implementation recording what the service hands it."""

    name = "counting-batch"

    def __init__(self):
        self.batches = []

    def evaluate(self, spec, platform, grid, core_mapping=None):
        from repro.core.multicore import resolve_core_mapping

        mapping = resolve_core_mapping(platform, core_mapping)
        return self.evaluate_batch([(spec, platform, grid, mapping)])[0]

    def evaluate_batch(self, resolved):
        resolved = list(resolved)
        self.batches.append(resolved)
        fast = get_backend("analytic-fast")
        return [fast.evaluate(*config) for config in resolved]


class TestBatchProtocol:
    """The optional ``evaluate_batch`` protocol through ``predict_many``."""

    def test_protocol_detection(self):
        from repro.backends import BatchPredictionBackend, VectorizedAnalyticBackend

        assert isinstance(VectorizedAnalyticBackend(), BatchPredictionBackend)
        assert isinstance(_CountingBatchBackend(), BatchPredictionBackend)
        assert not isinstance(AnalyticBackend(), BatchPredictionBackend)

    def test_one_deduplicated_batch_in_request_order(self, spec, xt4_single):
        backend = _CountingBatchBackend()
        requests = [
            PredictionRequest(spec, xt4_single, total_cores=c)
            for c in (16, 64, 16, 4)
        ]
        results = predict_many(requests, backend=backend)
        # One evaluate_batch call carrying only the distinct configurations,
        # in first-seen order.
        assert len(backend.batches) == 1
        assert [grid.total_processors for _s, _p, grid, _m in backend.batches[0]] == [
            16, 64, 4,
        ]
        # Results expand back to request order, duplicates shared.
        assert [r.total_cores for r in results] == [16, 64, 16, 4]
        assert results[0] is results[2]

    def test_workers_ignored_for_batch_backends(self, spec, xt4_single):
        backend = _CountingBatchBackend()
        requests = [
            PredictionRequest(spec, xt4_single, total_cores=c) for c in (4, 16, 64)
        ]
        results = predict_many(requests, backend=backend, workers=2)
        assert len(backend.batches) == 1  # still one batch, no per-point pool
        assert [r.total_cores for r in results] == [4, 16, 64]

    def test_batch_and_scalar_backends_agree(self, spec, xt4_single):
        requests = [
            PredictionRequest(spec, xt4_single, total_cores=c) for c in (4, 16, 64)
        ]
        scalar = predict_many(requests, backend="analytic-fast")
        batched = predict_many(requests, backend="analytic-vec")
        assert [r.time_per_iteration_us for r in scalar] == [
            r.time_per_iteration_us for r in batched
        ]

    def test_short_batch_result_is_an_error(self, spec, xt4_single):
        class _Broken(_CountingBatchBackend):
            def evaluate_batch(self, resolved):
                return super().evaluate_batch(resolved)[:-1]

        requests = [
            PredictionRequest(spec, xt4_single, total_cores=c) for c in (4, 16)
        ]
        with pytest.raises(ValueError, match="batch of"):
            predict_many(requests, backend=_Broken())

    def test_unhashable_specs_skip_dedup(self, xt4_single):
        from dataclasses import fields

        base = chimaera(ProblemSize(32, 32, 16), iterations=1)

        class _UnhashableSpec(type(base)):
            __hash__ = None

        unhashable = _UnhashableSpec(
            **{f.name: getattr(base, f.name) for f in fields(base) if f.init}
        )
        backend = _CountingBatchBackend()
        requests = [
            PredictionRequest(unhashable, xt4_single, total_cores=16),
            PredictionRequest(unhashable, xt4_single, total_cores=16),
        ]
        results = predict_many(requests, backend=backend)
        # Dedup needs hashing; unhashable configs fall back to the full
        # undeduplicated batch, still through one evaluate_batch call.
        assert len(backend.batches) == 1
        assert len(backend.batches[0]) == 2
        assert results[0].time_per_iteration_us == results[1].time_per_iteration_us

    def test_process_executor_regression_non_batch(self, spec, xt4_single):
        """Scalar backends keep the per-point pool path bit-for-bit."""
        requests = [
            PredictionRequest(spec, xt4_single, total_cores=c) for c in (4, 16, 64)
        ]
        serial = predict_many(requests, backend="analytic-fast")
        pooled = predict_many(
            requests, backend="analytic-fast", workers=2, executor="process"
        )
        assert [r.time_per_iteration_us for r in serial] == [
            r.time_per_iteration_us for r in pooled
        ]


class TestBackendResult:
    def test_aggregates_follow_spec(self, xt4_single):
        spec = chimaera(ProblemSize(32, 32, 16), iterations=1).with_time_steps(3)
        result = predict_one(spec, xt4_single, total_cores=16)
        assert result.iterations_per_time_step == spec.iterations * spec.energy_groups
        assert result.total_time_us == pytest.approx(
            result.time_per_time_step_us * 3
        )

    def test_summary_round_trips_to_json(self, spec, xt4_single):
        import json

        for backend in ("analytic-fast", "simulator"):
            summary = predict_one(
                spec, xt4_single, total_cores=16, backend=backend
            ).summary()
            parsed = json.loads(json.dumps(summary))
            assert parsed["backend"] == backend
            assert parsed["processors"] == 16
