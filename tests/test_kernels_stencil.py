"""Tests for repro.kernels.stencil."""

import numpy as np
import pytest

from repro.kernels.stencil import residual_norm, seven_point_stencil


class TestSevenPointStencil:
    def test_preserves_shape_and_input(self):
        rng = np.random.default_rng(1)
        values = rng.random((5, 6, 7))
        original = values.copy()
        out = seven_point_stencil(values)
        assert out.shape == values.shape
        assert np.array_equal(values, original)

    def test_constant_interior_value(self):
        """For a constant field the interior update is beta*v - alpha*v."""
        values = np.full((5, 5, 5), 2.0)
        out = seven_point_stencil(values, alpha=0.6, beta=1.0)
        interior = out[2, 2, 2]
        assert interior == pytest.approx(2.0 - 0.6 * 2.0)

    def test_boundary_cells_see_fewer_neighbours(self):
        values = np.ones((4, 4, 4))
        out = seven_point_stencil(values, alpha=0.6, beta=1.0)
        # A corner cell has only three neighbours, so less is subtracted.
        assert out[0, 0, 0] > out[2, 2, 2]

    def test_zero_alpha_is_scaling_only(self):
        rng = np.random.default_rng(2)
        values = rng.random((3, 3, 3))
        out = seven_point_stencil(values, alpha=0.0, beta=2.0)
        assert np.allclose(out, 2.0 * values)

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            seven_point_stencil(np.zeros((3, 3)))

    def test_linear_in_input(self):
        rng = np.random.default_rng(3)
        a = rng.random((4, 4, 4))
        b = rng.random((4, 4, 4))
        combined = seven_point_stencil(a + b)
        separate = seven_point_stencil(a) + seven_point_stencil(b)
        assert np.allclose(combined, separate)


class TestResidualNorm:
    def test_zero_for_identical_arrays(self):
        values = np.ones((3, 3, 3))
        assert residual_norm(values, values) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2, 2))
        b = np.full((2, 2, 2), 3.0)
        assert residual_norm(a, b) == pytest.approx(3.0)

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        a, b = rng.random((3, 3, 3)), rng.random((3, 3, 3))
        assert residual_norm(a, b) == pytest.approx(residual_norm(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            residual_norm(np.zeros((2, 2, 2)), np.zeros((3, 2, 2)))
