"""Golden-value regression against the paper-validation campaign inputs.

``tests/data/golden_predictions.json`` pins the model's current numbers for
every configuration of the ``paper-validation`` built-in campaign (the
Tables 4-7 matrix): the analytic prediction for all 18 configurations, and
the simulated "measurement" for the 16-core subset (kept small so the suite
stays fast).  A fault-scenario block pins the analytic entries of the
``fault-tolerance-study`` campaign - the checkpoint-dump inflation and
bounded expected-rework numbers of ``docs/faults.md``.  Any refactor that
silently drifts the model - a reordered
floating-point expression, a changed constant, a broken cost table - fails
here with the exact configuration and quantity that moved.

Regenerating after an *intentional* model change::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

then review the diff of ``tests/data/golden_predictions.json`` like any
other code change (the file is version-controlled precisely so the diff is
reviewable).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.backends.service import predict_one
from repro.campaigns.builtin import get_campaign

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_predictions.json"

#: Deterministic engines reproduce to fp-reassociation noise; anything
#: beyond this is a genuine model change.
GOLDEN_REL_TOL = 1e-9

#: The quantities pinned per configuration.
PINNED_FIELDS = (
    "time_per_iteration_us",
    "computation_per_iteration_us",
    "time_per_time_step_s",
)

#: Simulator entries are restricted to this many cores to keep the test
#: cheap; the analytic entries cover the full campaign matrix.
SIMULATOR_MAX_CORES = 16


def _golden_points():
    """The pinned subset of the paper-validation campaign, in spec order."""
    for point in get_campaign("paper-validation").points():
        if point.backend == "simulator" and point.total_cores > SIMULATOR_MAX_CORES:
            continue
        yield point


def _fault_scenario_points():
    """The analytic entries of the fault-tolerance-study campaign.

    These pin the checkpoint-dump inflation and the bounded expected-rework
    correction (``docs/faults.md``) - the deterministic analytic numbers
    for every fault model the built-in campaign sweeps.  The simulator's
    fault injection is seeded (covered by ``tests/test_determinism.py``),
    so only the seed-free analytic side is pinned here.
    """
    for point in get_campaign("fault-tolerance-study").points():
        if point.backend != "analytic-fast" or point.fault_model is None:
            continue
        if point.total_cores > SIMULATOR_MAX_CORES:
            continue
        yield point


def _entry_key(point) -> str:
    key = f"{point.app}|{point.platform}|P{point.total_cores}|{point.backend}"
    if point.fault_model is not None:
        key += f"|faults={point.fault_model}"
    return key


def _evaluate(point) -> dict[str, float]:
    request = point.request()
    result = predict_one(
        request.spec,
        request.platform,
        total_cores=point.total_cores,
        backend=point.backend,
    )
    return {field: getattr(result, field) for field in PINNED_FIELDS}


def _current_values() -> dict[str, dict[str, float]]:
    entries = {_entry_key(point): _evaluate(point) for point in _golden_points()}
    entries.update(
        {_entry_key(point): _evaluate(point) for point in _fault_scenario_points()}
    )
    return entries


def test_golden_predictions(update_golden):
    current = _current_values()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.skip(f"regenerated {GOLDEN_PATH}")

    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} is missing; generate it with "
        "`pytest tests/test_golden.py --update-golden`"
    )
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    assert sorted(golden) == sorted(current), (
        "the paper-validation matrix changed; regenerate the golden file "
        "with --update-golden and review the diff"
    )
    drifted = []
    for key, fields in golden.items():
        for field, pinned in fields.items():
            value = current[key][field]
            if value != pytest.approx(pinned, rel=GOLDEN_REL_TOL):
                drifted.append(f"{key}.{field}: pinned {pinned!r}, got {value!r}")
    assert not drifted, "model drift detected:\n" + "\n".join(drifted)


def test_golden_file_is_complete():
    """Every pinned entry carries every pinned field (guards hand edits)."""
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert golden, "golden file is empty"
    for key, fields in golden.items():
        assert sorted(fields) == sorted(PINNED_FIELDS), key
        assert all(isinstance(value, float) for value in fields.values()), key
