"""Seeded-randomness determinism contracts.

The stochastic pieces of the library - the simulator's sampled noise,
whether expressed through the legacy ``compute_noise`` amplitude or a
:class:`~repro.core.hetero.SampledNoise` platform model - must be
bit-identical given a seed, regardless of *how* the evaluation is executed:

* the same request list through ``predict_many`` with a thread pool and a
  process pool;
* an uninterrupted campaign run versus an interrupted-then-resumed one;
* repeated in-process evaluations (cache cleared in between).

Deterministic noise (fixed-quantum OS jitter) must additionally be
seed-*independent*.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.workloads import lu_class
from repro.backends.base import PredictionRequest
from repro.backends.service import predict_many
from repro.backends.simulator import SimulatorBackend, clear_simulation_cache
from repro.campaigns.runner import run_campaign
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.core.faults import FaultModel
from repro.core.hetero import FixedQuantumNoise, SampledNoise, SpeedProfile
from repro.core.predictor import clear_prediction_cache
from repro.platforms import cray_xt4


def _noisy_requests():
    platform = cray_xt4().with_noise(SampledNoise(0.1))
    return [
        PredictionRequest(lu_class("A"), platform, total_cores=cores)
        for cores in (4, 16, 4)
    ]


class TestExecutorBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_thread_vs_process_pools(self, seed):
        backend = SimulatorBackend(noise_seed=seed)
        threaded = predict_many(
            _noisy_requests(), backend=backend, workers=2, executor="thread"
        )
        clear_prediction_cache()  # process-pool workers start cold anyway
        pooled = predict_many(
            _noisy_requests(), backend=backend, workers=2, executor="process"
        )
        for a, b in zip(threaded, pooled):
            assert a.time_per_iteration_us == b.time_per_iteration_us
            assert a.computation_per_iteration_us == b.computation_per_iteration_us

    def test_serial_matches_pooled(self):
        backend = SimulatorBackend(noise_seed=3)
        serial = predict_many(_noisy_requests(), backend=backend)
        pooled = predict_many(
            _noisy_requests(), backend=backend, workers=2, executor="process"
        )
        assert [r.time_per_iteration_us for r in serial] == [
            r.time_per_iteration_us for r in pooled
        ]


class TestSeedSemantics:
    def test_same_seed_bit_identical_across_cache_clears(self):
        platform = cray_xt4().with_noise(SampledNoise(0.08))
        backend = SimulatorBackend(noise_seed=11)
        first = predict_many([(lu_class("A"), platform, 16)], backend=backend)[0]
        clear_simulation_cache()
        second = predict_many([(lu_class("A"), platform, 16)], backend=backend)[0]
        assert first.time_per_iteration_us == second.time_per_iteration_us

    def test_different_seeds_differ(self):
        platform = cray_xt4().with_noise(SampledNoise(0.08))
        a = predict_many(
            [(lu_class("A"), platform, 16)], backend=SimulatorBackend(noise_seed=1)
        )[0]
        b = predict_many(
            [(lu_class("A"), platform, 16)], backend=SimulatorBackend(noise_seed=2)
        )[0]
        assert a.time_per_iteration_us != b.time_per_iteration_us

    def test_fixed_quantum_noise_is_seed_independent(self):
        platform = cray_xt4().with_noise(FixedQuantumNoise(50.0, 1000.0))
        a = predict_many(
            [(lu_class("A"), platform, 16)], backend=SimulatorBackend(noise_seed=1)
        )[0]
        b = predict_many(
            [(lu_class("A"), platform, 16)], backend=SimulatorBackend(noise_seed=2)
        )[0]
        assert a.time_per_iteration_us == b.time_per_iteration_us

    def test_platform_noise_matches_legacy_compute_noise(self):
        """SampledNoise(a) with seed s == the historical compute_noise=a, s."""
        plain = cray_xt4()
        legacy = predict_many(
            [(lu_class("A"), plain, 16)],
            backend=SimulatorBackend(compute_noise=0.1, noise_seed=5),
        )[0]
        modelled = predict_many(
            [(lu_class("A"), plain.with_noise(SampledNoise(0.1)), 16)],
            backend=SimulatorBackend(noise_seed=5),
        )[0]
        assert legacy.time_per_iteration_us == modelled.time_per_iteration_us


class TestCampaignResumeBitIdentity:
    def _spec(self):
        return CampaignSpec(
            name="det-noise",
            apps=("lu-classA",),
            total_cores=(4, 16),
            backends=("simulator",),
            noise_models=("sampled:0.1",),
            speed_profiles=("none", "stragglers:1x2.0"),
            noise_seeds=(0, 1),
        )

    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        spec = self._spec()
        full_path = tmp_path / "full.store"
        run_campaign(spec, store=full_path)
        full_store = ResultStore(full_path)
        full = {
            record["key"]: record["result"] for record in full_store.records()
        }
        assert len(full) == len(spec.points())

        # Interrupt: keep the spec header plus the first three results.
        resumed_path = tmp_path / "resumed.store"
        partial = ResultStore(resumed_path)
        partial.set_spec(spec.to_dict())
        partial.put_many(
            (point.key(), full_store.get(point.key()))
            for point in spec.points()[:3]
        )
        partial.close()
        clear_prediction_cache()  # the resumed run starts in a fresh process

        summary = run_campaign(spec, store=resumed_path)
        assert summary.cached == 3
        assert summary.computed == len(spec.points()) - 3

        resumed = {
            record["key"]: record["result"]
            for record in ResultStore(resumed_path).records()
        }
        assert resumed.keys() == full.keys()
        for key in full:
            assert json.dumps(resumed[key], sort_keys=True) == json.dumps(
                full[key], sort_keys=True
            ), f"resumed record {key} drifted"

    def test_legacy_compute_noise_conflicts_with_noise_models_axis(self):
        # The legacy amplitude would shadow every noise_models value on
        # simulator points, silently producing identical rows under
        # different labels - reject the combination outright.
        with pytest.raises(ValueError, match="sampled:<amplitude>"):
            CampaignSpec(
                name="conflict",
                apps=("lu-classA",),
                total_cores=(4,),
                backends=("simulator",),
                compute_noise=0.05,
                noise_models=("quantum:50/1000",),
            )

    def test_seeds_expand_only_for_stochastic_points(self):
        spec = CampaignSpec(
            name="seed-normalisation",
            apps=("lu-classA",),
            total_cores=(4,),
            backends=("analytic-fast", "simulator"),
            noise_models=("none", "quantum:50/1000", "sampled:0.1"),
            noise_seeds=(0, 1),
        )
        points = spec.points()
        # Analytic: 3 noise models, seed-free.  Simulator: none + quantum are
        # deterministic (seed-free), sampled gets both seeds.
        analytic = [p for p in points if p.backend == "analytic-fast"]
        simulator = [p for p in points if p.backend == "simulator"]
        assert len(analytic) == 3
        assert all(p.noise_seed is None for p in analytic)
        assert len(simulator) == 4
        sampled = [p for p in simulator if p.noise_model == "sampled:0.1"]
        assert sorted(p.noise_seed for p in sampled) == [0, 1]


class TestFaultDeterminism:
    """Seeded fault schedules are bit-identical and noise-independent.

    The failure streams are drawn from ``Random(fault_seed * 2_000_003 +
    rank)`` - a different prime stride from the noise streams - so the same
    fault seed replays the same failure schedule regardless of executor,
    process, or what the noise layer is doing (``docs/faults.md``).
    """

    #: Failure-dominated regime: MTBF comparable to the per-iteration time,
    #: so the injected schedule actually shapes the result.
    HARSH = FaultModel(
        mtbf_us=1e4, repair_us=5e3, checkpoint_interval_us=2e3, checkpoint_cost_us=50.0
    )

    def _faulty_requests(self):
        platform = cray_xt4().with_faults(self.HARSH)
        return [
            PredictionRequest(lu_class("A"), platform, total_cores=cores)
            for cores in (4, 16, 4)
        ]

    @pytest.mark.parametrize("seed", [0, 7])
    def test_fault_schedules_thread_vs_process_pools(self, seed):
        backend = SimulatorBackend(fault_seed=seed)
        threaded = predict_many(
            self._faulty_requests(), backend=backend, workers=2, executor="thread"
        )
        clear_prediction_cache()  # process-pool workers start cold anyway
        pooled = predict_many(
            self._faulty_requests(), backend=backend, workers=2, executor="process"
        )
        for a, b in zip(threaded, pooled):
            assert a.time_per_iteration_us == b.time_per_iteration_us
            assert a.computation_per_iteration_us == b.computation_per_iteration_us

    def test_same_fault_seed_bit_identical_across_cache_clears(self):
        platform = cray_xt4().with_faults(self.HARSH)
        backend = SimulatorBackend(fault_seed=11)
        first = predict_many([(lu_class("A"), platform, 16)], backend=backend)[0]
        clear_simulation_cache()
        second = predict_many([(lu_class("A"), platform, 16)], backend=backend)[0]
        assert first.time_per_iteration_us == second.time_per_iteration_us

    def test_different_fault_seeds_differ(self):
        platform = cray_xt4().with_faults(self.HARSH)
        a = predict_many(
            [(lu_class("A"), platform, 16)], backend=SimulatorBackend(fault_seed=1)
        )[0]
        b = predict_many(
            [(lu_class("A"), platform, 16)], backend=SimulatorBackend(fault_seed=2)
        )[0]
        assert a.time_per_iteration_us != b.time_per_iteration_us

    def test_fault_streams_independent_of_noise_streams(self):
        """Changing the noise seed never changes a noise-free faulty run,
        and changing the fault seed never changes a fault-free noisy run."""
        faulty = cray_xt4().with_faults(self.HARSH)
        a = predict_many(
            [(lu_class("A"), faulty, 16)],
            backend=SimulatorBackend(fault_seed=3, noise_seed=1),
        )[0]
        b = predict_many(
            [(lu_class("A"), faulty, 16)],
            backend=SimulatorBackend(fault_seed=3, noise_seed=2),
        )[0]
        assert a.time_per_iteration_us == b.time_per_iteration_us

        noisy = cray_xt4().with_noise(SampledNoise(0.1))
        c = predict_many(
            [(lu_class("A"), noisy, 16)],
            backend=SimulatorBackend(noise_seed=3, fault_seed=1),
        )[0]
        d = predict_many(
            [(lu_class("A"), noisy, 16)],
            backend=SimulatorBackend(noise_seed=3, fault_seed=2),
        )[0]
        assert c.time_per_iteration_us == d.time_per_iteration_us

    def test_combined_noise_and_faults_reproducible(self):
        platform = cray_xt4().with_noise(SampledNoise(0.05)).with_faults(self.HARSH)
        backend = SimulatorBackend(noise_seed=5, fault_seed=7)
        first = predict_many([(lu_class("A"), platform, 16)], backend=backend)[0]
        clear_simulation_cache()
        second = predict_many([(lu_class("A"), platform, 16)], backend=backend)[0]
        assert first.time_per_iteration_us == second.time_per_iteration_us


class TestFaultCampaignResume:
    def _spec(self):
        return CampaignSpec(
            name="det-faults",
            apps=("lu-classA",),
            total_cores=(4, 16),
            backends=("simulator",),
            fault_models=("none", "mtbf:1e4/repair:5e3/interval:2e3/dump:50"),
            fault_seeds=(0, 1),
        )

    def test_resumed_fault_campaign_matches_uninterrupted(self, tmp_path):
        spec = self._spec()
        full_path = tmp_path / "full.store"
        run_campaign(spec, store=full_path)
        full_store = ResultStore(full_path)
        full = {
            record["key"]: record["result"] for record in full_store.records()
        }
        assert len(full) == len(spec.points())

        # Interrupt: keep the spec header plus the first three results.
        resumed_path = tmp_path / "resumed.store"
        partial = ResultStore(resumed_path)
        partial.set_spec(spec.to_dict())
        partial.put_many(
            (point.key(), full_store.get(point.key()))
            for point in spec.points()[:3]
        )
        partial.close()
        clear_prediction_cache()  # the resumed run starts in a fresh process

        summary = run_campaign(spec, store=resumed_path)
        assert summary.cached == 3
        assert summary.computed == len(spec.points()) - 3

        resumed = {
            record["key"]: record["result"]
            for record in ResultStore(resumed_path).records()
        }
        assert resumed.keys() == full.keys()
        for key in full:
            assert json.dumps(resumed[key], sort_keys=True) == json.dumps(
                full[key], sort_keys=True
            ), f"resumed record {key} drifted"

    def test_fault_seeds_expand_only_for_stochastic_points(self):
        spec = CampaignSpec(
            name="fault-seed-normalisation",
            apps=("lu-classA",),
            total_cores=(4,),
            backends=("analytic-fast", "simulator"),
            fault_models=("none", "mtbf:1e8/repair:1e6/interval:1e6/dump:5e3"),
            fault_seeds=(0, 1),
        )
        points = spec.points()
        # Analytic: expected-rework correction is deterministic, seed-free.
        # Simulator: the null model is seed-free, the failing one gets both.
        analytic = [p for p in points if p.backend == "analytic-fast"]
        simulator = [p for p in points if p.backend == "simulator"]
        assert len(analytic) == 2
        assert all(p.fault_seed is None for p in analytic)
        assert len(simulator) == 3
        failing = [p for p in simulator if p.fault_model is not None]
        assert sorted(p.fault_seed for p in failing) == [0, 1]


class TestStragglerDeterminism:
    def test_speed_profiles_are_deterministic(self):
        platform = cray_xt4().with_speed_profile(SpeedProfile.stragglers(1, 2.0))
        first = predict_many([(lu_class("A"), platform, 16)], backend="simulator")[0]
        clear_prediction_cache()
        second = predict_many([(lu_class("A"), platform, 16)], backend="simulator")[0]
        assert first.time_per_iteration_us == second.time_per_iteration_us
