"""Tests for repro.kernels.transport (discrete-ordinates sweep kernel)."""

import numpy as np
import pytest

from repro.kernels.transport import AngleSet, sweep_cell_block, sweep_full_grid


@pytest.fixture
def angles():
    return AngleSet.uniform(4)


@pytest.fixture
def small_block():
    rng = np.random.default_rng(3)
    source = rng.random((5, 4, 3))
    sigma = rng.random((5, 4, 3)) + 0.5
    return source, sigma


class TestAngleSet:
    def test_uniform_has_requested_count(self):
        assert AngleSet.uniform(6).count == 6

    def test_direction_cosines_are_unit_vectors(self):
        angles = AngleSet.uniform(5)
        norms = np.sqrt(angles.mu**2 + angles.eta**2 + angles.xi**2)
        assert np.allclose(norms, 1.0)

    def test_weights_sum_to_one(self):
        assert AngleSet.uniform(7).weights.sum() == pytest.approx(1.0)

    def test_rejects_zero_angles(self):
        with pytest.raises(ValueError):
            AngleSet.uniform(0)

    def test_rejects_non_positive_cosines(self):
        with pytest.raises(ValueError):
            AngleSet(
                mu=np.array([0.0]), eta=np.array([1.0]), xi=np.array([1.0]),
                weights=np.array([1.0]),
            )

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            AngleSet(
                mu=np.array([0.5, 0.5]), eta=np.array([0.5]), xi=np.array([0.5]),
                weights=np.array([0.5]),
            )


class TestSweepCellBlock:
    def test_output_shapes(self, small_block, angles):
        source, sigma = small_block
        result = sweep_cell_block(source, sigma, angles)
        assert result.scalar_flux.shape == source.shape
        assert result.outgoing_x.shape == (4, 3, angles.count)
        assert result.outgoing_y.shape == (5, 3, angles.count)
        assert result.outgoing_z.shape == (5, 4, angles.count)

    def test_flux_is_nonnegative_and_finite(self, small_block, angles):
        source, sigma = small_block
        result = sweep_cell_block(source, sigma, angles)
        assert np.all(result.scalar_flux >= 0)
        assert np.all(np.isfinite(result.scalar_flux))

    def test_zero_source_zero_inflow_gives_zero_flux(self, angles):
        source = np.zeros((3, 3, 3))
        sigma = np.ones((3, 3, 3))
        result = sweep_cell_block(source, sigma, angles)
        assert np.allclose(result.scalar_flux, 0.0)
        assert np.allclose(result.outgoing_x, 0.0)

    def test_incoming_flux_increases_solution(self, small_block, angles):
        source, sigma = small_block
        vacuum = sweep_cell_block(source, sigma, angles)
        ny, nz = source.shape[1], source.shape[2]
        inflow = np.ones((ny, nz, angles.count))
        lit = sweep_cell_block(source, sigma, angles, incoming_x=inflow)
        assert lit.scalar_flux.sum() > vacuum.scalar_flux.sum()
        # Cells closest to the incoming face respond the most.
        assert lit.scalar_flux[0].sum() > vacuum.scalar_flux[0].sum()

    def test_stronger_absorption_lowers_flux(self, small_block, angles):
        source, _ = small_block
        weak = sweep_cell_block(source, np.full(source.shape, 0.5), angles)
        strong = sweep_cell_block(source, np.full(source.shape, 5.0), angles)
        assert strong.scalar_flux.sum() < weak.scalar_flux.sum()

    def test_deterministic(self, small_block, angles):
        source, sigma = small_block
        a = sweep_cell_block(source, sigma, angles)
        b = sweep_cell_block(source, sigma, angles)
        assert np.array_equal(a.scalar_flux, b.scalar_flux)

    def test_shape_validation(self, angles):
        with pytest.raises(ValueError):
            sweep_cell_block(np.zeros((2, 2)), np.zeros((2, 2)), angles)
        with pytest.raises(ValueError):
            sweep_cell_block(np.zeros((2, 2, 2)), np.zeros((3, 2, 2)), angles)

    def test_incoming_shape_validation(self, small_block, angles):
        source, sigma = small_block
        with pytest.raises(ValueError):
            sweep_cell_block(source, sigma, angles, incoming_x=np.zeros((1, 1, 1)))

    def test_full_grid_alias(self, small_block, angles):
        source, sigma = small_block
        assert np.array_equal(
            sweep_full_grid(source, sigma, angles).scalar_flux,
            sweep_cell_block(source, sigma, angles).scalar_flux,
        )

    def test_blockwise_composition_matches_monolithic_in_x(self, angles):
        """Sweeping two x-halves, passing the boundary flux between them,
        reproduces the single-block sweep exactly - the property that makes the
        distributed wavefront decomposition valid."""
        rng = np.random.default_rng(11)
        source = rng.random((6, 4, 3))
        sigma = rng.random((6, 4, 3)) + 0.5
        whole = sweep_cell_block(source, sigma, angles)
        first = sweep_cell_block(source[:3], sigma[:3], angles)
        second = sweep_cell_block(
            source[3:], sigma[3:], angles, incoming_x=first.outgoing_x
        )
        combined = np.concatenate([first.scalar_flux, second.scalar_flux], axis=0)
        assert np.array_equal(combined, whole.scalar_flux)

    def test_blockwise_composition_matches_monolithic_in_z(self, angles):
        """Tiling in z (the Htile direction) composes exactly as well."""
        rng = np.random.default_rng(12)
        source = rng.random((4, 4, 6))
        sigma = rng.random((4, 4, 6)) + 0.5
        whole = sweep_cell_block(source, sigma, angles)
        bottom = sweep_cell_block(source[:, :, :2], sigma[:, :, :2], angles)
        top = sweep_cell_block(
            source[:, :, 2:], sigma[:, :, 2:], angles, incoming_z=bottom.outgoing_z
        )
        combined = np.concatenate([bottom.scalar_flux, top.scalar_flux], axis=2)
        assert np.array_equal(combined, whole.scalar_flux)
