"""Tests for repro.core.predictor (the high-level predict() API)."""

import dataclasses

import pytest

from repro.apps.base import NoNonWavefront
from repro.apps.chimaera import chimaera
from repro.apps.workloads import chimaera_240cubed, sweep3d_1billion
from repro.core.decomposition import CoreMapping, ProblemSize, ProcessorGrid
from repro.core.predictor import (
    clear_prediction_cache,
    predict,
    prediction_cache_info,
)
from repro.platforms import cray_xt4, cray_xt4_single_core


@pytest.fixture
def spec():
    return chimaera(ProblemSize(64, 64, 32), iterations=10, time_steps=3)


class TestPredictArguments:
    def test_requires_exactly_one_of_cores_or_grid(self, spec, xt4):
        with pytest.raises(ValueError):
            predict(spec, xt4)
        with pytest.raises(ValueError):
            predict(spec, xt4, total_cores=16, grid=ProcessorGrid(4, 4))

    def test_total_cores_decomposed_near_square(self, spec, xt4):
        prediction = predict(spec, xt4, total_cores=32)
        assert prediction.grid.total_processors == 32
        assert prediction.grid.n == 8 and prediction.grid.m == 4

    def test_explicit_grid_respected(self, spec, xt4):
        grid = ProcessorGrid(16, 2)
        prediction = predict(spec, xt4, grid=grid)
        assert prediction.grid is grid

    def test_rejects_non_positive_cores(self, spec, xt4):
        with pytest.raises(ValueError):
            predict(spec, xt4, total_cores=0)

    def test_core_mapping_override(self, spec, xt4):
        prediction = predict(spec, xt4, total_cores=16, core_mapping=CoreMapping(2, 1))
        assert (prediction.core_mapping.cx, prediction.core_mapping.cy) == (2, 1)


class TestPredictionAggregation:
    def test_time_step_multiplies_iterations_and_energy_groups(self, xt4):
        spec = chimaera(ProblemSize(64, 64, 32), iterations=10, energy_groups=3)
        prediction = predict(spec, xt4, total_cores=16)
        assert prediction.iterations_per_time_step == 30
        assert prediction.time_per_time_step_us == pytest.approx(
            30 * prediction.time_per_iteration_us
        )

    def test_total_time_multiplies_time_steps(self, spec, xt4):
        prediction = predict(spec, xt4, total_cores=16)
        assert prediction.total_time_us == pytest.approx(
            prediction.time_per_time_step_us * spec.time_steps
        )

    def test_units_conversion(self, spec, xt4):
        prediction = predict(spec, xt4, total_cores=16)
        assert prediction.total_time_s == pytest.approx(prediction.total_time_us / 1e6)
        assert prediction.total_time_days == pytest.approx(
            prediction.total_time_s / 86400.0
        )

    def test_fractions_sum_to_one(self, spec, xt4):
        prediction = predict(spec, xt4, total_cores=64)
        assert prediction.computation_fraction + prediction.communication_fraction == pytest.approx(1.0)
        assert 0.0 < prediction.computation_fraction < 1.0

    def test_scaled_total_overrides(self, spec, xt4):
        prediction = predict(spec, xt4, total_cores=16)
        doubled = prediction.scaled_total_us(time_steps=2 * spec.time_steps)
        assert doubled == pytest.approx(2 * prediction.total_time_us)
        groups = prediction.scaled_total_us(energy_groups=30)
        assert groups == pytest.approx(30 * prediction.total_time_us / spec.energy_groups)

    def test_summary_keys(self, spec, xt4):
        summary = predict(spec, xt4, total_cores=16).summary()
        for key in (
            "application",
            "platform",
            "processors",
            "time_per_time_step_s",
            "total_time_days",
            "communication_fraction",
        ):
            assert key in summary
        assert summary["application"] == "chimaera"
        assert summary["processors"] == 16


class TestPredictionPhysics:
    """Qualitative behaviours the paper relies on."""

    def test_strong_scaling_monotone_but_diminishing(self, xt4):
        spec = chimaera_240cubed(htile=2)
        times = [
            predict(spec, xt4, total_cores=p).time_per_time_step_s
            for p in (1024, 4096, 16384)
        ]
        assert times[0] > times[1] > times[2]
        speedup_1 = times[0] / times[1]
        speedup_2 = times[1] / times[2]
        assert speedup_2 < speedup_1  # diminishing returns

    def test_sp2_slower_than_xt4(self, sp2, xt4_single):
        spec = chimaera(ProblemSize(64, 64, 32), iterations=1)
        slow = predict(spec, sp2, total_cores=64)
        fast = predict(spec, xt4_single, total_cores=64)
        assert slow.time_per_iteration_us > fast.time_per_iteration_us

    def test_single_core_versus_dual_core_same_total_cores(self):
        """Using both cores of fewer nodes is slower per core than one core of
        more nodes (bus contention + on-chip path), but not dramatically."""
        spec = chimaera_240cubed(htile=2)
        dual = predict(spec, cray_xt4(), total_cores=4096)
        single = predict(spec, cray_xt4_single_core(), total_cores=4096)
        assert dual.time_per_iteration_us >= single.time_per_iteration_us
        assert dual.time_per_iteration_us < 1.5 * single.time_per_iteration_us

    def test_energy_groups_scale_linearly(self, xt4):
        base = predict(sweep3d_1billion(), xt4, total_cores=1024)
        production = predict(
            sweep3d_1billion().with_energy_groups(30), xt4, total_cores=1024
        )
        assert production.time_per_time_step_us == pytest.approx(
            30 * base.time_per_time_step_us
        )

    def test_faster_compute_reduces_computation_only(self, xt4):
        spec = chimaera(ProblemSize(64, 64, 32), iterations=1)
        normal = predict(spec, xt4, total_cores=64)
        faster = predict(spec, xt4.with_compute_scale(0.5), total_cores=64)
        assert faster.time_per_iteration_us < normal.time_per_iteration_us
        assert faster.communication_fraction > normal.communication_fraction


class TestPredictionCache:
    def test_repeat_calls_hit_the_cache(self, spec, xt4):
        clear_prediction_cache()
        first = predict(spec, xt4, total_cores=64)
        before = prediction_cache_info().hits
        second = predict(spec, xt4, total_cores=64)
        assert second is first  # frozen value object, shared from the memo
        assert prediction_cache_info().hits == before + 1

    def test_value_equal_inputs_share_cache_entries(self, xt4):
        clear_prediction_cache()
        first = predict(chimaera(ProblemSize(64, 64, 32), iterations=1), xt4, total_cores=64)
        second = predict(chimaera(ProblemSize(64, 64, 32), iterations=1), cray_xt4(), total_cores=64)
        assert second is first

    def test_distinct_methods_cached_separately(self, spec, xt4):
        clear_prediction_cache()
        fast = predict(spec, xt4, total_cores=64, method="fast")
        exact = predict(spec, xt4, total_cores=64, method="exact")
        assert fast is not exact
        assert fast.time_per_iteration_us == pytest.approx(exact.time_per_iteration_us)

    def test_clear_prediction_cache_resets_statistics(self, spec, xt4):
        predict(spec, xt4, total_cores=64)
        clear_prediction_cache()
        info = prediction_cache_info()
        assert info.hits == 0 and info.misses == 0 and info.currsize == 0

    def test_unhashable_spec_component_still_predicts(self, xt4):
        """A custom non-wavefront model holding a mutable object bypasses the
        memo but must still evaluate correctly."""

        class UnhashableNonWavefront(NoNonWavefront):
            __hash__ = None  # type: ignore[assignment]

        spec = chimaera(ProblemSize(64, 64, 32), iterations=1)
        custom = dataclasses.replace(spec, nonwavefront=UnhashableNonWavefront())
        baseline = dataclasses.replace(spec, nonwavefront=NoNonWavefront())
        prediction = predict(custom, xt4, total_cores=64)
        expected = predict(baseline, xt4, total_cores=64)
        assert prediction.time_per_iteration_us == pytest.approx(
            expected.time_per_iteration_us
        )
