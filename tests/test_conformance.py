"""Cross-backend conformance suite.

Three families of contracts over the registered prediction backends:

* **fast = exact**: the closed-form/period-folded analytic engine agrees
  with the reference grid walk to 1e-9 relative on every matrix entry,
  including heterogeneous scenario platforms;
* **vec = fast**: the vectorized batch backend (``analytic-vec``)
  reproduces the scalar fast path to 1e-9 relative on the same matrix and
  scenario platforms - on the numpy path *and* on the pure-stdlib
  fallback (``model_vec._np = None``);
* **analytic vs simulator**: on the noise-free homogeneous matrix the
  analytic model stays within a pinned tolerance of the discrete-event
  "measurement" (the paper's <5%/<10% validation claim, with head-room for
  the small grids exercised here);
* **homogeneous limit**: a heterogeneous platform description whose knobs
  are all trivial - speed multipliers 1.0, null noise, one chip per node,
  a null fault model (infinite MTBF, zero dump cost) and factor-1.0
  slowdown windows - reproduces the plain platform's prediction
  **bit-identically** through every registered backend (the fault-free
  limit of the dynamic-failure layer, see ``docs/faults.md``).

Plus two cross-cutting families:

* **metamorphic contracts**: doubling ``Htile`` halves the stack depth and
  doubles the boundary messages, halving ``P`` on a fixed problem never
  decreases predicted time (analytic and simulator), and
  ``optimal_htile``'s exhaustive and golden-section strategies agree
  within one grid step across the matrix;
* the **cache-invalidation contract**: ``clear_prediction_cache`` empties
  every prediction-related memo (predict, communication costs, simulator
  results), so a changed platform parameter is guaranteed a fresh
  evaluation.
"""

from __future__ import annotations

import pytest

from repro.apps.workloads import standard_workloads
from repro.backends.registry import available_backends
from repro.backends.service import predict_one
from repro.backends.simulator import simulation_cache_info
from repro.core.comm import CommunicationCosts
from repro.core.faults import FaultModel
from repro.core.hetero import NoNoise, SampledNoise, SlowdownWindow, SpeedProfile
from repro.core.predictor import (
    clear_prediction_cache,
    prediction_cache_info,
)
from repro.platforms import cray_xt4, cray_xt4_quad_chip, cray_xt4_single_core

APPS = ("lu-classA", "sweep3d-20m", "chimaera-240")
PLATFORMS = {
    "cray-xt4-1core": cray_xt4_single_core,
    "cray-xt4": cray_xt4,
}
CORE_COUNTS = (4, 16, 64)

#: Pinned ceiling for |analytic - simulator| / simulator on the noise-free
#: matrix.  Current worst case: LU class A on dual-core nodes at P=64
#: (~9.6%); the transport codes sit well under 1%.
ANALYTIC_VS_SIMULATOR_TOL = 0.12

MATRIX = [
    (app, platform_name, cores)
    for app in APPS
    for platform_name in PLATFORMS
    for cores in CORE_COUNTS
]


def _spec(app: str):
    return standard_workloads()[app]()


def _matrix_id(entry) -> str:
    app, platform_name, cores = entry
    return f"{app}-{platform_name}-P{cores}"


class TestFastEqualsExact:
    @pytest.mark.parametrize("entry", MATRIX, ids=_matrix_id)
    def test_homogeneous_matrix(self, entry):
        app, platform_name, cores = entry
        platform = PLATFORMS[platform_name]()
        fast = predict_one(_spec(app), platform, total_cores=cores, backend="analytic-fast")
        exact = predict_one(_spec(app), platform, total_cores=cores, backend="analytic-exact")
        assert fast.time_per_iteration_us == pytest.approx(
            exact.time_per_iteration_us, rel=1e-9
        )
        assert fast.computation_per_iteration_us == pytest.approx(
            exact.computation_per_iteration_us, rel=1e-9
        )

    @pytest.mark.parametrize(
        "platform_builder",
        [
            lambda: cray_xt4().with_speed_profile(SpeedProfile.stragglers(2, 2.0)),
            lambda: cray_xt4().with_noise(SampledNoise(0.1)),
            lambda: cray_xt4_quad_chip(),
            lambda: cray_xt4_quad_chip()
            .with_speed_profile(SpeedProfile.stragglers(1, 3.0))
            .with_noise(SampledNoise(0.05)),
            lambda: cray_xt4().with_faults(
                FaultModel(
                    mtbf_us=1e8,
                    repair_us=1e6,
                    restart_us=1e5,
                    checkpoint_interval_us=1e6,
                    checkpoint_cost_us=5e3,
                )
            ),
        ],
        ids=["stragglers", "sampled-noise", "hierarchical", "combined", "faulty"],
    )
    def test_scenario_platforms(self, platform_builder):
        platform = platform_builder()
        for cores in (16, 64):
            fast = predict_one(
                _spec("chimaera-240"), platform, total_cores=cores, backend="analytic-fast"
            )
            exact = predict_one(
                _spec("chimaera-240"), platform, total_cores=cores, backend="analytic-exact"
            )
            assert fast.time_per_iteration_us == pytest.approx(
                exact.time_per_iteration_us, rel=1e-9
            )


class TestVecEqualsFast:
    """``analytic-vec`` reproduces the scalar fast path (both vector paths)."""

    @pytest.mark.parametrize("entry", MATRIX, ids=_matrix_id)
    def test_homogeneous_matrix(self, entry):
        app, platform_name, cores = entry
        platform = PLATFORMS[platform_name]()
        fast = predict_one(_spec(app), platform, total_cores=cores, backend="analytic-fast")
        vec = predict_one(_spec(app), platform, total_cores=cores, backend="analytic-vec")
        assert vec.time_per_iteration_us == pytest.approx(
            fast.time_per_iteration_us, rel=1e-9
        )
        assert vec.computation_per_iteration_us == pytest.approx(
            fast.computation_per_iteration_us, rel=1e-9
        )
        for (fast_name, fast_time), (vec_name, vec_time) in zip(
            fast.phases, vec.phases
        ):
            assert fast_name == vec_name
            assert vec_time == pytest.approx(fast_time, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize(
        "platform_builder",
        [
            lambda: cray_xt4().with_speed_profile(SpeedProfile.stragglers(2, 2.0)),
            lambda: cray_xt4().with_noise(SampledNoise(0.1)),
            lambda: cray_xt4_quad_chip(),
            lambda: cray_xt4_quad_chip()
            .with_speed_profile(SpeedProfile.stragglers(1, 3.0))
            .with_noise(SampledNoise(0.05)),
            lambda: cray_xt4().with_faults(
                FaultModel(
                    mtbf_us=1e8,
                    repair_us=1e6,
                    restart_us=1e5,
                    checkpoint_interval_us=1e6,
                    checkpoint_cost_us=5e3,
                )
            ),
        ],
        ids=["stragglers", "sampled-noise", "hierarchical", "combined", "faulty"],
    )
    def test_scenario_platforms(self, platform_builder):
        platform = platform_builder()
        for cores in (16, 64):
            fast = predict_one(
                _spec("chimaera-240"), platform, total_cores=cores, backend="analytic-fast"
            )
            vec = predict_one(
                _spec("chimaera-240"), platform, total_cores=cores, backend="analytic-vec"
            )
            assert vec.time_per_iteration_us == pytest.approx(
                fast.time_per_iteration_us, rel=1e-9
            )

    def test_pure_stdlib_fallback_matches(self, monkeypatch, caplog):
        """Without numpy the fallback vectors produce the same numbers,
        and the backend warns exactly once about the slower path."""
        import logging

        from repro.core import model_vec

        platform = cray_xt4_quad_chip()
        reference = predict_one(
            _spec("chimaera-240"), platform, total_cores=64, backend="analytic-fast"
        )
        clear_prediction_cache()
        monkeypatch.setattr(model_vec, "_np", None)
        assert not model_vec.have_numpy()
        with caplog.at_level(logging.WARNING, logger="repro.core.model_vec"):
            result = predict_one(
                _spec("chimaera-240"), platform, total_cores=64, backend="analytic-vec"
            )
            again = predict_one(
                _spec("chimaera-240"), platform, total_cores=16, backend="analytic-vec"
            )
        assert result.time_per_iteration_us == reference.time_per_iteration_us
        assert again.time_per_iteration_us > 0.0
        fallback_warnings = [
            record for record in caplog.records if "stdlib fallback" in record.message
        ]
        assert len(fallback_warnings) == 1, "the fallback warning fires once"
        # Back on the numpy path nothing changes (and the memo was bypassed:
        # the monkeypatched run serves fresh evaluations after the clear).
        clear_prediction_cache()

    def test_fallback_warning_resets_with_the_caches(self, monkeypatch, caplog):
        import logging

        from repro.core import model_vec

        monkeypatch.setattr(model_vec, "_np", None)
        clear_prediction_cache()
        with caplog.at_level(logging.WARNING, logger="repro.core.model_vec"):
            predict_one(
                _spec("lu-classA"), cray_xt4(), total_cores=16, backend="analytic-vec"
            )
            clear_prediction_cache()  # also resets the once-only warning latch
            predict_one(
                _spec("lu-classA"), cray_xt4(), total_cores=16, backend="analytic-vec"
            )
        fallback_warnings = [
            record for record in caplog.records if "stdlib fallback" in record.message
        ]
        assert len(fallback_warnings) == 2
        clear_prediction_cache()


class TestAnalyticVsSimulator:
    @pytest.mark.parametrize(
        "app", ("lu-classA", "chimaera-240"), ids=("lu-stencil", "chimaera-allreduce")
    )
    def test_straggler_scenarios_within_tolerance(self, app):
        """The bounded-heterogeneity correction tracks the simulated machine.

        Covers both non-wavefront strategies: LU's stencil phase (compute
        that the straggler stretches) and the transport codes' all-reduce.
        """
        platform = cray_xt4().with_speed_profile(SpeedProfile.stragglers(1, 4.0))
        analytic = predict_one(_spec(app), platform, total_cores=16, backend="analytic-fast")
        simulated = predict_one(_spec(app), platform, total_cores=16, backend="simulator")
        error = (
            abs(analytic.time_per_iteration_us - simulated.time_per_iteration_us)
            / simulated.time_per_iteration_us
        )
        assert error <= 0.05, f"{app}: {100 * error:.2f}% under a 4x straggler"

    @pytest.mark.parametrize("entry", MATRIX, ids=_matrix_id)
    def test_within_pinned_tolerance(self, entry):
        app, platform_name, cores = entry
        platform = PLATFORMS[platform_name]()
        analytic = predict_one(
            _spec(app), platform, total_cores=cores, backend="analytic-fast"
        )
        simulated = predict_one(
            _spec(app), platform, total_cores=cores, backend="simulator"
        )
        assert simulated.time_per_iteration_us > 0.0
        error = (
            abs(analytic.time_per_iteration_us - simulated.time_per_iteration_us)
            / simulated.time_per_iteration_us
        )
        assert error <= ANALYTIC_VS_SIMULATOR_TOL, (
            f"{app} on {platform_name} at P={cores}: "
            f"analytic deviates {100 * error:.2f}% from the simulator"
        )


def _trivial_variants(platform):
    """Heterogeneous descriptions that must be exactly the plain machine."""
    return {
        "trivial-speed-profile": platform.with_speed_profile(
            SpeedProfile(baseline=1.0, slowdown=1.0, slow_nodes=(0, 1))
        ),
        "null-noise": platform.with_noise(NoNoise()),
        "all-trivial": platform.with_speed_profile(SpeedProfile()).with_noise(NoNoise()),
        "null-faults": platform.with_faults(FaultModel()),
        "zero-cost-checkpoints": platform.with_faults(
            FaultModel(checkpoint_interval_us=1e6, checkpoint_cost_us=0.0)
        ),
        "trivial-window": platform.with_speed_profile(
            SpeedProfile(windows=(SlowdownWindow(0.0, 1e6, 1.0, nodes=(0,)),))
        ),
        "all-trivial-faults": platform.with_speed_profile(
            SpeedProfile(windows=(SlowdownWindow(0.0, 1e6, 1.0),))
        )
        .with_noise(NoNoise())
        .with_faults(FaultModel()),
    }


class TestHomogeneousLimit:
    """The bit-identity contract of the heterogeneity extensions."""

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    @pytest.mark.parametrize("app", ("lu-classA", "chimaera-240"))
    def test_bit_identical_through_every_backend(self, backend, app):
        for platform_builder in (cray_xt4_single_core, cray_xt4):
            plain = platform_builder()
            reference = predict_one(_spec(app), plain, total_cores=16, backend=backend)
            for label, decorated in _trivial_variants(plain).items():
                assert decorated.is_homogeneous, label
                result = predict_one(
                    _spec(app), decorated, total_cores=16, backend=backend
                )
                assert result.time_per_iteration_us == reference.time_per_iteration_us, (
                    f"{label} on {plain.name} drifted through {backend}"
                )
                assert (
                    result.computation_per_iteration_us
                    == reference.computation_per_iteration_us
                ), f"{label} on {plain.name} drifted through {backend}"

    def test_trivial_chip_subdivision_is_homogeneous(self):
        # cores_per_chip == cores_per_node leaves one chip per node: no
        # intra-node level exists and the platform stays homogeneous.
        platform = cray_xt4()
        from dataclasses import replace

        decorated = replace(platform, node=replace(platform.node, cores_per_chip=2))
        assert decorated.is_homogeneous
        reference = predict_one(
            _spec("chimaera-240"), platform, total_cores=16, backend="analytic-fast"
        )
        result = predict_one(
            _spec("chimaera-240"), decorated, total_cores=16, backend="analytic-fast"
        )
        assert result.time_per_iteration_us == reference.time_per_iteration_us


class TestFaultFreeLimit:
    """The fault-free limit of the dynamic-failure layer, over the matrix.

    Every new knob at its trivial value - infinite MTBF, zero dump cost,
    factor-1.0 slowdown windows - must leave the prediction bit-identical
    on the full 18-config matrix, through the simulator and both analytic
    engines (``docs/faults.md`` states this as the layer's first contract).
    """

    BACKENDS = ("analytic-fast", "analytic-vec", "simulator")

    @pytest.mark.parametrize("entry", MATRIX, ids=_matrix_id)
    def test_null_knobs_are_bit_identical(self, entry):
        app, platform_name, cores = entry
        plain = PLATFORMS[platform_name]()
        decorated = plain.with_speed_profile(
            SpeedProfile(windows=(SlowdownWindow(0.0, 1e6, 1.0),))
        ).with_faults(FaultModel(checkpoint_interval_us=1e6, checkpoint_cost_us=0.0))
        assert decorated.is_homogeneous
        for backend in self.BACKENDS:
            reference = predict_one(
                _spec(app), plain, total_cores=cores, backend=backend
            )
            result = predict_one(
                _spec(app), decorated, total_cores=cores, backend=backend
            )
            assert result.time_per_iteration_us == reference.time_per_iteration_us, (
                f"null fault knobs drifted through {backend}"
            )
            assert (
                result.computation_per_iteration_us
                == reference.computation_per_iteration_us
            ), f"null fault knobs drifted through {backend}"
            assert result.phases == reference.phases, (
                f"null fault knobs changed the phase breakdown through {backend}"
            )


class TestMetamorphicContracts:
    """Metamorphic relations: how predictions must move when inputs move.

    These complement the pinned-tolerance checks above: instead of fixing
    expected values, they fix the *direction and shape* of the change a
    known input transformation must produce, over the same 18-config
    matrix.
    """

    @pytest.mark.parametrize("app", APPS)
    def test_doubling_htile_halves_the_stacked_tiles(self, app):
        """Doubling the tile height halves the stack depth and doubles the
        per-tile boundary messages - the Figure 5 trade-off in its raw form."""
        from repro.campaigns.spec import apply_htile
        from repro.core.decomposition import decompose

        grid = decompose(16)
        base = apply_htile(_spec(app), 2.0)
        doubled = apply_htile(_spec(app), 4.0)
        assert doubled.tiles_per_stack() == pytest.approx(
            base.tiles_per_stack() / 2.0, rel=1e-12
        )
        assert doubled.message_size_ew(grid) == pytest.approx(
            2.0 * base.message_size_ew(grid), rel=1e-12
        )
        assert doubled.message_size_ns(grid) == pytest.approx(
            2.0 * base.message_size_ns(grid), rel=1e-12
        )

    @pytest.mark.parametrize(
        "app,platform_name",
        [(app, platform_name) for app in APPS for platform_name in PLATFORMS],
        ids=lambda value: str(value),
    )
    def test_halving_cores_never_decreases_time(self, app, platform_name):
        """Strong scaling on a fixed problem: fewer cores, never faster."""
        platform = PLATFORMS[platform_name]()
        times = [
            predict_one(
                _spec(app), platform, total_cores=cores, backend="analytic-fast"
            ).time_per_time_step_s
            for cores in (4, 8, 16, 32, 64)
        ]
        for slower, faster in zip(times, times[1:]):
            assert slower >= faster * (1.0 - 1e-9)

    def test_halving_cores_never_decreases_time_simulator(self):
        """The same relation holds for the discrete-event measurement."""
        platform = cray_xt4()
        times = [
            predict_one(
                _spec("chimaera-240"), platform, total_cores=cores, backend="simulator"
            ).time_per_time_step_s
            for cores in (4, 16, 64)
        ]
        assert times[0] >= times[1] >= times[2]

    HTILE_GRID = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0)

    @pytest.mark.parametrize("entry", MATRIX, ids=_matrix_id)
    def test_optimal_htile_agrees_with_golden_section(self, entry):
        """Exhaustive and golden-section optima within one grid step,
        across the whole conformance matrix."""
        from functools import partial

        from repro.analysis.htile import optimal_htile
        from repro.campaigns.spec import apply_htile

        app, platform_name, cores = entry
        platform = PLATFORMS[platform_name]()
        builder = partial(apply_htile, _spec(app))
        exhaustive = optimal_htile(builder, platform, cores, self.HTILE_GRID)
        golden = optimal_htile(
            builder, platform, cores, self.HTILE_GRID, strategy="golden-section"
        )
        distance = abs(
            self.HTILE_GRID.index(golden) - self.HTILE_GRID.index(exhaustive)
        )
        assert distance <= 1, (
            f"{app} on {platform_name} at P={cores}: golden-section Htile "
            f"{golden:g} is {distance} grid steps from exhaustive {exhaustive:g}"
        )


class TestCacheInvalidationContract:
    """``clear_prediction_cache`` empties every prediction-related memo."""

    def test_clears_all_registered_caches(self):
        platform = cray_xt4()
        predict_one(_spec("lu-classA"), platform, total_cores=4, backend="analytic-fast")
        predict_one(_spec("lu-classA"), platform, total_cores=4, backend="simulator")
        assert prediction_cache_info().currsize > 0
        assert simulation_cache_info().currsize > 0
        # Prime the communication-cost memo explicitly too.
        CommunicationCosts.for_message(platform, 1024.0)

        clear_prediction_cache()

        assert prediction_cache_info().currsize == 0
        assert simulation_cache_info().currsize == 0
        # The comm memo was cleared as well: the next lookup is a miss.
        info_before = _comm_cache_info()
        CommunicationCosts.for_message(platform, 1024.0)
        info_after = _comm_cache_info()
        assert info_after.misses == info_before.misses + 1

    def test_clears_vec_and_resolution_memos(self):
        """The vec batch memo and the resolution memos joined the registry."""
        from repro.backends.vectorized import _BATCH_MEMO
        from repro.core.decomposition import _decompose_cached
        from repro.core.multicore import _resolve_core_mapping_cached

        platform = cray_xt4()
        predict_one(
            _spec("chimaera-240"), platform, total_cores=16, backend="analytic-vec"
        )
        assert len(_BATCH_MEMO) > 0
        assert _decompose_cached.cache_info().currsize > 0
        assert _resolve_core_mapping_cached.cache_info().currsize > 0

        clear_prediction_cache()

        assert len(_BATCH_MEMO) == 0
        assert _decompose_cached.cache_info().currsize == 0
        assert _resolve_core_mapping_cached.cache_info().currsize == 0

    def test_mutated_platform_parameter_gets_fresh_prediction(self):
        """After a clear, a changed parameter must change the prediction.

        Simulates the in-place mutation a user might perform on a frozen
        dataclass via ``object.__setattr__`` (which silently poisons keyed
        memos): after ``clear_prediction_cache`` the next prediction must
        reflect the mutated value, proving no stale entry survived anywhere
        in the stack.
        """
        from repro.core.loggp import OffNodeParams

        platform = cray_xt4_single_core()
        before = predict_one(
            _spec("chimaera-240"), platform, total_cores=16, backend="analytic-fast"
        )
        object.__setattr__(
            platform,
            "off_node",
            OffNodeParams(
                latency=platform.off_node.latency * 10.0,
                overhead=platform.off_node.overhead * 10.0,
                gap_per_byte=platform.off_node.gap_per_byte,
                eager_limit=platform.off_node.eager_limit,
            ),
        )
        clear_prediction_cache()
        after = predict_one(
            _spec("chimaera-240"), platform, total_cores=16, backend="analytic-fast"
        )
        assert after.time_per_iteration_us > before.time_per_iteration_us

    def test_clear_is_idempotent(self):
        clear_prediction_cache()
        clear_prediction_cache()
        assert prediction_cache_info().currsize == 0


def _comm_cache_info():
    from repro.core.comm import _for_message_cached

    return _for_message_cached.cache_info()
