"""Tests for repro.simulator.machine (simulated blocking MPI semantics).

The key property is that in the absence of contention the end-to-end timings
of the simulated messages reproduce the Table 1 equations exactly; with
blocking semantics, rendezvous messages must also wait for the receive to be
posted.
"""

import pytest

from repro.core.comm import (
    receive_off_node,
    send_off_node,
    total_comm_off_node,
    total_comm_on_chip,
)
from repro.simulator.engine import SimulationError
from repro.simulator.machine import (
    Compute,
    Mark,
    Recv,
    Send,
    SimulatedMachine,
    WaitBarrier,
    linear_node_assignment,
)
from repro.platforms import cray_xt4


def run_two_ranks(platform, program0, program1, rank_to_node=(0, 1), **kwargs):
    machine = SimulatedMachine(platform, 2, rank_to_node=list(rank_to_node), **kwargs)
    machine.add_rank_program(0, program0)
    machine.add_rank_program(1, program1)
    return machine, machine.run()


class TestLinearNodeAssignment:
    def test_blocks_of_cores(self):
        assert linear_node_assignment(6, 2) == [0, 0, 1, 1, 2, 2]

    def test_single_core_nodes(self):
        assert linear_node_assignment(3, 1) == [0, 1, 2]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            linear_node_assignment(0, 1)


class TestComputeOp:
    def test_compute_advances_time(self, xt4):
        machine = SimulatedMachine(xt4, 1)
        machine.add_rank_program(0, iter([Compute(12.5)]))
        stats = machine.run()
        assert stats.makespan == pytest.approx(12.5)
        assert stats.ranks[0].compute_time == pytest.approx(12.5)

    def test_compute_scale_applied(self, xt4):
        fast = xt4.with_compute_scale(0.5)
        machine = SimulatedMachine(fast, 1)
        machine.add_rank_program(0, iter([Compute(10.0)]))
        assert machine.run().makespan == pytest.approx(5.0)

    def test_negative_duration_rejected(self, xt4):
        machine = SimulatedMachine(xt4, 1)
        machine.add_rank_program(0, iter([Compute(-1.0)]))
        with pytest.raises(SimulationError):
            machine.run()


class TestEagerMessages:
    def test_off_node_end_to_end_matches_table1(self, xt4):
        size = 512
        _, stats = run_two_ranks(
            xt4, iter([Send(1, size, 0)]), iter([Recv(0, 0)])
        )
        assert stats.makespan == pytest.approx(total_comm_off_node(xt4.off_node, size))

    def test_on_chip_end_to_end_matches_table1(self, xt4):
        size = 512
        _, stats = run_two_ranks(
            xt4, iter([Send(1, size, 0)]), iter([Recv(0, 0)]), rank_to_node=(0, 0)
        )
        assert stats.makespan == pytest.approx(total_comm_on_chip(xt4.on_chip, size))

    def test_sender_released_after_overhead_only(self, xt4):
        size = 256
        _, stats = run_two_ranks(
            xt4, iter([Send(1, size, 0)]), iter([Recv(0, 0)])
        )
        assert stats.ranks[0].finish_time == pytest.approx(send_off_node(xt4.off_node, size))

    def test_receive_posted_late_still_gets_message(self, xt4):
        """Eager payloads buffer at the receiver until the receive is posted."""
        size = 100
        delay = 500.0
        _, stats = run_two_ranks(
            xt4,
            iter([Send(1, size, 0)]),
            iter([Compute(delay), Recv(0, 0)]),
        )
        assert stats.makespan == pytest.approx(delay + xt4.off_node.overhead)

    def test_messages_matched_in_fifo_order(self, xt4):
        sizes = [100, 200, 300]
        program0 = iter([Send(1, s, 7) for s in sizes])
        program1 = iter([Recv(0, 7) for _ in sizes])
        _, stats = run_two_ranks(xt4, program0, program1)
        assert stats.ranks[0].messages_sent == 3
        assert stats.ranks[0].bytes_sent == pytest.approx(sum(sizes))


class TestRendezvousMessages:
    def test_end_to_end_matches_table1_when_recv_preposted(self, xt4):
        size = 4096
        _, stats = run_two_ranks(
            xt4, iter([Compute(1.0), Send(1, size, 0)]), iter([Recv(0, 0)])
        )
        expected = 1.0 + total_comm_off_node(xt4.off_node, size)
        assert stats.makespan == pytest.approx(expected)

    def test_sender_blocks_until_receive_posted(self, xt4):
        """With a rendezvous message the sender cannot finish before the
        receiver posts its receive."""
        size = 8192
        delay = 300.0
        _, stats = run_two_ranks(
            xt4,
            iter([Send(1, size, 0)]),
            iter([Compute(delay), Recv(0, 0)]),
        )
        # The sender's handshake completes only after the receive is posted.
        assert stats.ranks[0].finish_time > delay
        assert stats.makespan > delay + receive_off_node(xt4.off_node, size) * 0.5

    def test_sender_send_time_accounts_blocking(self, xt4):
        size = 8192
        delay = 300.0
        _, stats = run_two_ranks(
            xt4,
            iter([Send(1, size, 0)]),
            iter([Compute(delay), Recv(0, 0)]),
        )
        assert stats.ranks[0].send_time == pytest.approx(stats.ranks[0].finish_time)


class TestBarriersAndMarks:
    def test_mark_counts(self, xt4):
        machine = SimulatedMachine(xt4, 2)
        machine.add_rank_program(0, iter([Compute(1.0), Mark("done")]))
        machine.add_rank_program(1, iter([Compute(2.0), Mark("done")]))
        machine.run()
        assert machine.mark_count("done") == 2

    def test_on_mark_callback_fires_at_count(self, xt4):
        machine = SimulatedMachine(xt4, 2)
        times = []
        machine.on_mark("done", 2, lambda t: times.append(machine.sim.now))
        machine.add_rank_program(0, iter([Compute(1.0), Mark("done")]))
        machine.add_rank_program(1, iter([Compute(5.0), Mark("done")]))
        machine.run()
        assert times and times[0] == pytest.approx(5.0)

    def test_barrier_blocks_until_released(self, xt4):
        machine = SimulatedMachine(xt4, 2)
        machine.define_barrier("go")
        machine.on_mark("ready", 1, lambda t: machine.release_barrier("go"))
        machine.add_rank_program(0, iter([WaitBarrier("go"), Compute(1.0)]))
        machine.add_rank_program(1, iter([Compute(10.0), Mark("ready")]))
        stats = machine.run()
        assert stats.ranks[0].finish_time == pytest.approx(11.0)
        assert stats.ranks[0].barrier_time == pytest.approx(10.0)

    def test_released_barrier_does_not_block(self, xt4):
        machine = SimulatedMachine(xt4, 1)
        machine.define_barrier("open")
        machine.release_barrier("open")
        machine.add_rank_program(0, iter([WaitBarrier("open"), Compute(2.0)]))
        assert machine.run().makespan == pytest.approx(2.0)


class TestErrorsAndDeadlocks:
    def test_deadlock_detection(self, xt4):
        """Two ranks each waiting for a message nobody sends."""
        machine = SimulatedMachine(xt4, 2)
        machine.add_rank_program(0, iter([Recv(1, 0)]))
        machine.add_rank_program(1, iter([Recv(0, 1)]))
        with pytest.raises(SimulationError, match="deadlock"):
            machine.run()

    def test_unknown_destination_rejected(self, xt4):
        machine = SimulatedMachine(xt4, 1)
        machine.add_rank_program(0, iter([Send(5, 10, 0)]))
        with pytest.raises(SimulationError):
            machine.run()

    def test_duplicate_program_rejected(self, xt4):
        machine = SimulatedMachine(xt4, 1)
        machine.add_rank_program(0, iter([]))
        with pytest.raises(ValueError):
            machine.add_rank_program(0, iter([]))

    def test_mismatched_rank_to_node_length(self, xt4):
        with pytest.raises(ValueError):
            SimulatedMachine(xt4, 4, rank_to_node=[0, 0])


class TestContention:
    def test_contention_can_be_disabled(self, xt4):
        """With contention off, two simultaneous large sends through one node
        complete as fast as a single one."""
        size = 8192

        def build(enable):
            machine = SimulatedMachine(
                xt4, 4, rank_to_node=[0, 0, 1, 1], enable_contention=enable
            )
            # Ranks 0 and 1 (same node) each send off-node to ranks 2 and 3.
            machine.add_rank_program(0, iter([Send(2, size, 0)]))
            machine.add_rank_program(1, iter([Send(3, size, 1)]))
            machine.add_rank_program(2, iter([Recv(0, 0)]))
            machine.add_rank_program(3, iter([Recv(1, 1)]))
            return machine.run()

        contended = build(True)
        free = build(False)
        assert contended.makespan > free.makespan
        assert contended.bus_queue_delay > 0
        assert free.bus_queue_delay == 0

    def test_single_core_nodes_have_no_bus_queueing(self, xt4_single):
        machine = SimulatedMachine(xt4_single, 2)
        machine.add_rank_program(0, iter([Send(1, 8192, 0)]))
        machine.add_rank_program(1, iter([Recv(0, 0)]))
        stats = machine.run()
        assert stats.bus_queue_delay == 0.0
