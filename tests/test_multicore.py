"""Tests for repro.core.multicore (Table 6 extensions: on-chip hops + contention)."""

import pytest

from repro.apps.chimaera import chimaera
from repro.core.decomposition import CoreMapping, ProblemSize, ProcessorGrid
from repro.core.comm import CommunicationCosts
from repro.core.multicore import (
    contention_penalty,
    fill_step_costs,
    interference_term,
    resolve_core_mapping,
    stack_comm_costs,
)
from repro.platforms import cray_xt4, cray_xt4_single_core


@pytest.fixture
def spec():
    return chimaera(ProblemSize(64, 64, 32), iterations=1)


@pytest.fixture
def grid():
    return ProcessorGrid(8, 8)


class TestResolveCoreMapping:
    def test_default_matches_platform(self):
        mapping = resolve_core_mapping(cray_xt4(), None)
        assert (mapping.cx, mapping.cy) == (1, 2)
        mapping16 = resolve_core_mapping(cray_xt4(cores_per_node=16), None)
        assert (mapping16.cx, mapping16.cy) == (4, 4)

    def test_explicit_mapping_must_match_core_count(self):
        with pytest.raises(ValueError):
            resolve_core_mapping(cray_xt4(), CoreMapping(cx=2, cy=2))
        mapping = resolve_core_mapping(cray_xt4(), CoreMapping(cx=2, cy=1))
        assert mapping.cores_per_node == 2


class TestInterferenceTerm:
    def test_formula(self):
        """I = odma + MessageSize * Gdma (Table 6)."""
        xt4 = cray_xt4()
        size = 4000
        expected = xt4.on_chip.dma_setup + size * xt4.on_chip.gap_per_byte_dma
        assert interference_term(xt4, size) == pytest.approx(expected)

    def test_zero_without_on_chip_path(self):
        from repro.platforms import ibm_sp2

        assert interference_term(ibm_sp2(), 4000) == 0.0


class TestContentionPenalty:
    def test_single_core_no_contention(self, spec, grid):
        penalty = contention_penalty(cray_xt4_single_core(), spec, grid)
        assert penalty.total == 0.0

    def test_dual_core_penalises_north_south_only(self, spec, grid):
        """Table 6: 1x2 cores/node -> add I to ReceiveN and SendS."""
        xt4 = cray_xt4()
        penalty = contention_penalty(xt4, spec, grid)
        i_ns = interference_term(xt4, spec.message_size_ns(grid))
        assert penalty.receive_north == pytest.approx(i_ns)
        assert penalty.send_south == pytest.approx(i_ns)
        assert penalty.send_east == 0.0
        assert penalty.receive_west == 0.0

    def test_quad_core_penalises_all_ops(self, spec, grid):
        """Table 6: 2x2 cores/node -> add I to each send and receive."""
        quad = cray_xt4(cores_per_node=4)
        penalty = contention_penalty(quad, spec, grid)
        i_ew = interference_term(quad, spec.message_size_ew(grid))
        i_ns = interference_term(quad, spec.message_size_ns(grid))
        assert penalty.send_east == pytest.approx(i_ew)
        assert penalty.receive_west == pytest.approx(i_ew)
        assert penalty.send_south == pytest.approx(i_ns)
        assert penalty.receive_north == pytest.approx(i_ns)

    def test_eight_core_doubles_penalty(self, spec, grid):
        """Table 6: 2x4 cores/node -> add 2I to each send and receive."""
        octo = cray_xt4(cores_per_node=8)
        quad = cray_xt4(cores_per_node=4)
        p8 = contention_penalty(octo, spec, grid)
        p4 = contention_penalty(quad, spec, grid)
        assert p8.send_east == pytest.approx(2 * p4.send_east)
        assert p8.receive_north == pytest.approx(2 * p4.receive_north)

    def test_sixteen_core_quadruples_penalty(self, spec, grid):
        p16 = contention_penalty(cray_xt4(cores_per_node=16), spec, grid)
        p4 = contention_penalty(cray_xt4(cores_per_node=4), spec, grid)
        assert p16.send_east == pytest.approx(4 * p4.send_east)

    def test_separate_buses_reduce_contention(self, spec, grid):
        """Section 5.3: 16 cores with a bus per 4 cores behaves like quad-core."""
        p16_4bus = contention_penalty(cray_xt4(cores_per_node=16, buses_per_node=4), spec, grid)
        p4 = contention_penalty(cray_xt4(cores_per_node=4), spec, grid)
        assert p16_4bus.send_east == pytest.approx(p4.send_east)
        assert p16_4bus.total == pytest.approx(p4.total)


class TestFillStepCosts:
    def test_single_core_everything_off_node(self, spec, grid):
        platform = cray_xt4_single_core()
        costs = fill_step_costs(platform, spec, grid, 3, 3)
        ew = CommunicationCosts.for_message(platform, spec.message_size_ew(grid))
        ns = CommunicationCosts.for_message(platform, spec.message_size_ns(grid))
        assert costs.total_comm_east == pytest.approx(ew.total)
        assert costs.receive_north == pytest.approx(ns.receive)
        assert costs.send_east == pytest.approx(ew.send)
        assert costs.total_comm_south == pytest.approx(ns.total)

    def test_dual_core_north_south_alternates(self, spec, grid):
        """With a 1x2 rectangle the north/south partner alternates on/off chip."""
        xt4 = cray_xt4()
        ns_on = CommunicationCosts.for_message(xt4, spec.message_size_ns(grid), on_chip=True)
        ns_off = CommunicationCosts.for_message(xt4, spec.message_size_ns(grid), on_chip=False)
        even_row = fill_step_costs(xt4, spec, grid, 3, 2)
        odd_row = fill_step_costs(xt4, spec, grid, 3, 3)
        assert even_row.receive_north == pytest.approx(ns_on.receive)
        assert odd_row.receive_north == pytest.approx(ns_off.receive)

    def test_dual_core_east_west_always_off_node(self, spec, grid):
        xt4 = cray_xt4()
        ew_off = CommunicationCosts.for_message(xt4, spec.message_size_ew(grid), on_chip=False)
        for i in range(1, 5):
            for j in range(1, 5):
                costs = fill_step_costs(xt4, spec, grid, i, j)
                assert costs.send_east == pytest.approx(ew_off.send)
                assert costs.total_comm_east == pytest.approx(ew_off.total)

    def test_quad_core_interior_east_on_chip(self, spec, grid):
        quad = cray_xt4(cores_per_node=4)
        ew_on = CommunicationCosts.for_message(quad, spec.message_size_ew(grid), on_chip=True)
        costs = fill_step_costs(quad, spec, grid, 1, 1)  # left column of a 2x2 rectangle
        assert costs.send_east == pytest.approx(ew_on.send)


class TestStackCommCosts:
    def test_all_off_node_plus_contention(self, spec, grid):
        """Equation (r4) uses off-node costs even on multicore nodes."""
        xt4 = cray_xt4()
        costs = stack_comm_costs(xt4, spec, grid)
        ew = CommunicationCosts.for_message(xt4, spec.message_size_ew(grid), on_chip=False)
        ns = CommunicationCosts.for_message(xt4, spec.message_size_ns(grid), on_chip=False)
        assert costs.receive_west == pytest.approx(ew.receive)
        assert costs.send_south == pytest.approx(ns.send)
        expected_total = (
            ew.receive + ns.receive + ew.send + ns.send + costs.contention.total
        )
        assert costs.per_tile_comm == pytest.approx(expected_total)

    def test_single_core_has_no_contention_term(self, spec, grid):
        costs = stack_comm_costs(cray_xt4_single_core(), spec, grid)
        assert costs.contention.total == 0.0
