"""End-to-end tests of the ``wavebench lint`` CLI and the self-check.

The self-check is the PR's acceptance gate: the linter run over the real
``src/repro`` tree (and ``tests/``) must exit 0 - every invariant either
holds or carries a justified inline suppression.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as wavebench_main
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.reporters import JSON_SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"


def test_self_check_real_tree_is_clean(capsys):
    """``wavebench lint`` over the repository's own sources exits 0."""
    exit_code = wavebench_main(["lint", str(SRC_TREE), str(REPO_ROOT / "tests")])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert out.strip().endswith("clean")


def test_module_entry_point_matches_subcommand(capsys):
    """``python -m repro.devtools.lint`` and ``wavebench lint`` agree."""
    assert lint_main([str(SRC_TREE)]) == wavebench_main(["lint", str(SRC_TREE)])


def test_module_entry_point_runs_as_subprocess():
    result = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", str(SRC_TREE)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_json_report_schema(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text(
        "def f(v: float) -> bool:\n    return v == 1.0\n", encoding="utf-8"
    )
    exit_code = wavebench_main(
        ["lint", str(src), "--json", "--project-root", str(tmp_path)]
    )
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["summary"] == {
        "files": 1,
        "findings": 1,
        "errors": 1,
        "warnings": 0,
    }
    (finding,) = payload["findings"]
    assert finding["rule"] == "RPR004"
    assert finding["severity"] == "error"
    assert finding["path"].endswith("mod.py")
    assert finding["line"] == 2
    assert isinstance(finding["col"], int) and finding["col"] >= 1
    assert "float ==" in finding["message"]


def test_rules_flag_narrows_the_run(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text(
        "import random\nx = random.random()\ny = x == 1.0\n", encoding="utf-8"
    )
    exit_code = wavebench_main(
        ["lint", str(src), "--rules", "RPR001", "--project-root", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "RPR001" in out
    assert "RPR004" not in out


def test_fail_on_warning_threshold(tmp_path, capsys):
    # No built-in rule emits warnings today, so exercise the threshold
    # logic through the report API instead of a fixture tree.
    from repro.devtools.lint.findings import Finding, LintReport

    warning = Finding("m.py", 1, 0, "RPRXXX", "warning", "w")
    report = LintReport((warning,), files=1)
    assert report.failing("warning")
    assert not report.failing("error")


def test_list_rules_covers_all_rule_ids(capsys):
    exit_code = wavebench_main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert exit_code == 0
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007"):
        assert rule_id in out
    for meta in ("LINT000", "LINT001", "LINT002"):
        assert meta in out


def test_missing_path_exits_with_message(tmp_path):
    with pytest.raises(SystemExit):
        wavebench_main(["lint", str(tmp_path / "nope")])
