"""Tests for repro.apps.workloads (the paper's standard problem configurations)."""

import pytest

from repro.apps.workloads import (
    CHIMAERA_240_CUBED,
    NAS_LU_CLASSES,
    SWEEP3D_1B,
    SWEEP3D_20M,
    chimaera_240cubed,
    chimaera_elongated,
    lu_class,
    standard_workloads,
    sweep3d_1billion,
    sweep3d_20m,
    sweep3d_production_1billion,
)


def test_chimaera_240_problem_size():
    assert CHIMAERA_240_CUBED.total_cells == 240**3


def test_chimaera_240_iterations_per_time_step():
    """The benchmark needs 419 iterations to complete a time step (Section 5)."""
    assert chimaera_240cubed().iterations == 419


def test_chimaera_elongated_problem():
    spec = chimaera_elongated()
    assert (spec.problem.nx, spec.problem.ny, spec.problem.nz) == (240, 240, 960)


def test_sweep3d_problem_sizes():
    assert SWEEP3D_1B.total_cells == 1000**3
    assert abs(SWEEP3D_20M.total_cells - 20e6) / 20e6 < 0.02


def test_sweep3d_default_htile_is_2():
    """The paper uses Htile = 2 for the Section 5 results."""
    assert sweep3d_20m().htile == pytest.approx(2.0)
    assert sweep3d_1billion().htile == pytest.approx(2.0)


def test_sweep3d_production_run_parameters():
    spec = sweep3d_production_1billion()
    assert spec.energy_groups == 30
    assert spec.time_steps == 10_000
    assert spec.iterations == 120


def test_sweep3d_20m_uses_480_iterations_for_figure5():
    assert sweep3d_20m().iterations == 480


def test_lu_classes():
    assert set(NAS_LU_CLASSES) == {"A", "B", "C", "D"}
    assert lu_class("C").problem.nx == 162
    assert lu_class("a").problem.nx == 64  # case-insensitive


def test_lu_class_unknown():
    with pytest.raises(KeyError):
        lu_class("Z")


def test_standard_workloads_registry_builds_all():
    registry = standard_workloads()
    assert len(registry) >= 8
    for name, factory in registry.items():
        spec = factory()
        assert spec.nsweeps in (2, 8), name
        assert spec.problem.total_cells > 0


def test_workload_names_include_expected():
    names = set(standard_workloads())
    assert {"chimaera-240", "sweep3d-20m", "sweep3d-1b", "lu-classC"} <= names
