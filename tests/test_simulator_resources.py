"""Tests for repro.simulator.resources (the shared-bus FIFO resource)."""

import pytest

from repro.simulator.resources import FifoBus, NodeResources


class TestFifoBus:
    def test_uncontended_grant_is_immediate(self):
        bus = FifoBus()
        assert bus.acquire(10.0, 2.0) == 10.0
        assert bus.next_free == 12.0

    def test_back_to_back_requests_queue(self):
        bus = FifoBus()
        first = bus.acquire(0.0, 5.0)
        second = bus.acquire(1.0, 5.0)
        assert first == 0.0
        assert second == 5.0  # waits for the first transfer to finish
        assert bus.total_queue_delay == pytest.approx(4.0)

    def test_idle_gap_does_not_accumulate(self):
        bus = FifoBus()
        bus.acquire(0.0, 1.0)
        grant = bus.acquire(100.0, 1.0)
        assert grant == 100.0
        assert bus.total_queue_delay == 0.0

    def test_queueing_delay_helper(self):
        bus = FifoBus()
        assert bus.queueing_delay(0.0, 3.0) == 0.0
        assert bus.queueing_delay(0.0, 3.0) == pytest.approx(3.0)

    def test_statistics(self):
        bus = FifoBus()
        bus.acquire(0.0, 2.0)
        bus.acquire(0.0, 2.0)
        assert bus.transfers == 2
        assert bus.total_busy == pytest.approx(4.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FifoBus().acquire(0.0, -1.0)


class TestNodeResources:
    def test_single_bus_shared_by_all_cores(self):
        node = NodeResources(cores_per_node=4, buses_per_node=1)
        assert node.cores_per_bus == 4
        assert node.bus_for_core(0) is node.bus_for_core(3)

    def test_multiple_buses_partition_cores(self):
        node = NodeResources(cores_per_node=16, buses_per_node=4)
        assert node.cores_per_bus == 4
        assert node.bus_for_core(0) is node.bus_for_core(3)
        assert node.bus_for_core(0) is not node.bus_for_core(4)
        assert node.bus_for_core(12) is node.bus_for_core(15)

    def test_bus_for_core_bounds(self):
        node = NodeResources(cores_per_node=2)
        with pytest.raises(ValueError):
            node.bus_for_core(2)

    def test_invalid_configurations(self):
        with pytest.raises(ValueError):
            NodeResources(cores_per_node=0)
        with pytest.raises(ValueError):
            NodeResources(cores_per_node=6, buses_per_node=4)

    def test_aggregate_statistics(self):
        node = NodeResources(cores_per_node=2, buses_per_node=1)
        node.bus_for_core(0).acquire(0.0, 5.0)
        node.bus_for_core(1).acquire(0.0, 5.0)
        assert node.total_transfers == 2
        assert node.total_queue_delay == pytest.approx(5.0)
