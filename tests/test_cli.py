"""Tests for the wavebench command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_arguments(self):
        args = build_parser().parse_args(
            ["predict", "--app", "chimaera-240", "--cores", "1024", "--htile", "2"]
        )
        assert args.app == "chimaera-240"
        assert args.cores == 1024
        assert args.htile == 2.0
        assert args.platform == "cray-xt4"

    def test_scaling_parses_core_list(self):
        args = build_parser().parse_args(
            ["scaling", "--app", "sweep3d-1b", "--cores", "1024,2048,4096"]
        )
        assert args.cores == [1024, 2048, 4096]

    def test_htile_parses_value_list(self):
        args = build_parser().parse_args(
            ["htile", "--app", "chimaera-240", "--cores", "4096", "--values", "1,2,4"]
        )
        assert args.values == [1.0, 2.0, 4.0]


class TestCommands:
    def test_predict_outputs_summary(self, capsys):
        assert main(["predict", "--app", "chimaera-240", "--cores", "1024"]) == 0
        out = capsys.readouterr().out
        assert "chimaera" in out
        assert "time_per_time_step_s" in out

    def test_predict_unknown_app_fails_helpfully(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", "--app", "not-a-benchmark", "--cores", "64"])
        assert "chimaera-240" in str(excinfo.value)

    def test_predict_unknown_platform_fails(self):
        with pytest.raises(KeyError):
            main(["predict", "--app", "chimaera-240", "--cores", "64", "--platform", "zzz"])

    def test_table3_lists_benchmarks(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "nsweeps" in out and "nfull" in out and "ndiag" in out
        assert "chimaera" in out and "sweep3d" in out

    def test_htile_reports_optimum(self, capsys):
        assert main(
            ["htile", "--app", "chimaera-240", "--cores", "4096", "--values", "1,2,4"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimal Htile" in out

    def test_scaling_table(self, capsys):
        assert main(["scaling", "--app", "sweep3d-1b", "--cores", "1024,4096"]) == 0
        out = capsys.readouterr().out
        assert "1024" in out and "4096" in out

    def test_pingpong_recovers_parameters(self, capsys):
        assert main(["pingpong", "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "G (us/byte)" in out
        assert "0.0004" in out or "4.0000e-04" in out

    def test_validate_small_configuration(self, capsys):
        assert main(
            ["validate", "--app", "lu-classA", "--platform", "cray-xt4-1core", "--cores", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "error (%)" in out

    def test_workrate_measures_kernels(self, capsys):
        assert main(["workrate", "--cells", "4", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "transport-sweep" in out
        assert "ssor-lower-sweep" in out


class TestOptimize:
    def test_parser_accepts_axis_flags(self):
        args = build_parser().parse_args(
            ["optimize", "--app", "chimaera-240", "--cores", "256,1024",
             "--htiles", "1,2,4", "--strategy", "golden-section", "--budget", "512"]
        )
        assert args.cores == [256, 1024]
        assert args.htiles == [1.0, 2.0, 4.0]
        assert args.strategy == "golden-section"
        assert args.budget == 512

    def test_optimize_prints_best_configuration(self, capsys):
        assert main(
            ["optimize", "--app", "chimaera-240", "--cores", "256",
             "--htiles", "1,2,4", "--pareto"]
        ) == 0
        out = capsys.readouterr().out
        assert "Htile=2" in out
        assert "model evaluations" in out
        assert "Pareto front" in out

    def test_optimize_requires_a_space_or_app(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["optimize", "--cores", "64"])
        assert "--space" in str(excinfo.value)

    def test_optimize_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["optimize", "--app", "chimaera-240", "--cores", "64",
                  "--htiles", "1,2", "--strategy", "annealing"])
        assert "golden-section" in str(excinfo.value)

    def test_optimize_rejects_impossible_budget(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["optimize", "--app", "chimaera-240", "--cores", "64",
                  "--htiles", "1,2", "--budget", "2"])
        assert "budget" in str(excinfo.value)

    def test_optimize_loads_space_files(self, tmp_path, capsys):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(
            {"app": "lu-classA", "total_cores": [16, 64], "htiles": [1, 2]}
        ))
        assert main(["optimize", "--space", str(path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["space_size"] == 4
        assert record["evaluations"] == 4

    def test_optimize_cli_recovers_htile_study_optimum(self, capsys):
        """Acceptance flow: the CLI's golden-section optimum sits within one
        grid step of htile_study's exhaustive optimum (Sweep3D, cray-xt4)."""
        from functools import partial

        from repro.analysis.htile import htile_study
        from repro.campaigns.spec import apply_htile
        from repro.apps.workloads import sweep3d_20m
        from repro.platforms import cray_xt4

        grid = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0]
        assert main(
            ["optimize", "--app", "sweep3d-20m", "--platform", "cray-xt4",
             "--cores", "4096", "--htiles", "1,2,3,4,5,6,8,10",
             "--strategy", "golden-section", "--json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        cli_best = record["best"]["point"]["htile"]
        exhaustive = htile_study(
            partial(apply_htile, sweep3d_20m()), cray_xt4(), 4096, grid
        ).optimal.htile
        assert abs(grid.index(cli_best) - grid.index(exhaustive)) <= 1
        # The guided search really did evaluate fewer candidates.
        assert record["evaluations"] < record["space_size"]


class TestBackendFlag:
    def test_predict_with_simulator_backend(self, capsys):
        assert main(
            ["predict", "--app", "lu-classA", "--platform", "cray-xt4-1core",
             "--cores", "4", "--backend", "simulator"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulator" in out

    def test_predict_method_exact_is_backend_alias(self, capsys):
        assert main(
            ["predict", "--app", "chimaera-240", "--cores", "64",
             "--method", "exact", "--json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["backend"] == "analytic-exact"

    def test_unknown_backend_fails(self):
        with pytest.raises(KeyError):
            main(["predict", "--app", "chimaera-240", "--cores", "64",
                  "--backend", "psychic"])

    def test_validate_rejects_simulator_self_comparison(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["validate", "--app", "chimaera-240", "--cores", "64",
                  "--backend", "simulator"])
        assert "itself" in str(excinfo.value)

    def test_scaling_accepts_backend(self, capsys):
        assert main(
            ["scaling", "--app", "sweep3d-1b", "--cores", "1024,4096",
             "--backend", "analytic-exact"]
        ) == 0
        assert "4096" in capsys.readouterr().out

    def test_htile_accepts_backend(self, capsys):
        assert main(
            ["htile", "--app", "chimaera-240", "--cores", "4096",
             "--values", "1,2", "--backend", "analytic-fast"]
        ) == 0
        assert "optimal Htile" in capsys.readouterr().out


class TestJsonOutput:
    def test_predict_json_is_machine_readable(self, capsys):
        assert main(
            ["predict", "--app", "chimaera-240", "--cores", "1024", "--json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["application"] == "chimaera"
        assert record["processors"] == 1024
        assert record["backend"] == "analytic-fast"
        assert record["time_per_time_step_s"] > 0

    def test_validate_json_is_machine_readable(self, capsys):
        assert main(
            ["validate", "--app", "lu-classA", "--platform", "cray-xt4-1core",
             "--cores", "4", "--json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["total_cores"] == 4
        assert record["model_us"] > 0
        assert record["simulated_us"] > 0
        assert abs(record["relative_error"]) < 1.0
