"""Tests for repro.simulator.pingpong (Figure 3 microbenchmarks)."""

import pytest

from repro.core.comm import allreduce_time, total_comm
from repro.simulator.pingpong import (
    DEFAULT_MESSAGE_SIZES,
    allreduce_benchmark,
    ping_pong,
    ping_pong_sweep,
)
from repro.platforms import cray_xt4, ibm_sp2


class TestPingPong:
    @pytest.mark.parametrize("size", [64, 512, 1024, 1025, 4096, 12288])
    @pytest.mark.parametrize("on_chip", [False, True])
    def test_half_round_trip_matches_table1(self, xt4, size, on_chip):
        """Without contention the simulated ping-pong reproduces Table 1."""
        sample = ping_pong(xt4, size, on_chip=on_chip, repetitions=4)
        expected = total_comm(xt4, size, on_chip=on_chip)
        assert sample.one_way_time_us == pytest.approx(expected, rel=1e-9)

    def test_repetitions_do_not_change_mean(self, xt4):
        short = ping_pong(xt4, 2048, on_chip=False, repetitions=2)
        long = ping_pong(xt4, 2048, on_chip=False, repetitions=10)
        assert short.one_way_time_us == pytest.approx(long.one_way_time_us)

    def test_on_chip_requires_on_chip_path(self, sp2):
        with pytest.raises(ValueError):
            ping_pong(sp2, 128, on_chip=True)

    def test_invalid_repetitions(self, xt4):
        with pytest.raises(ValueError):
            ping_pong(xt4, 128, on_chip=False, repetitions=0)


class TestPingPongSweep:
    def test_default_sizes_bracket_the_eager_limit(self):
        assert 1024 in DEFAULT_MESSAGE_SIZES and 1025 in DEFAULT_MESSAGE_SIZES

    def test_sweep_returns_one_sample_per_size(self, xt4):
        sizes = (128, 1024, 1025, 4096)
        samples = ping_pong_sweep(xt4, on_chip=False, message_sizes=sizes, repetitions=2)
        assert [s.message_bytes for s in samples] == list(sizes)

    def test_off_node_curve_shape(self, xt4):
        """Figure 3(a): linear growth with a jump at the 1 KiB protocol switch."""
        samples = {
            s.message_bytes: s.one_way_time_us
            for s in ping_pong_sweep(
                xt4, on_chip=False, message_sizes=(256, 512, 1024, 1025, 2048), repetitions=2
            )
        }
        assert samples[512] > samples[256]
        jump = samples[1025] - samples[1024]
        step = samples[512] - samples[256]
        assert jump > 5 * step  # protocol-switch discontinuity dominates

    def test_on_chip_faster_than_off_node(self, xt4):
        off = ping_pong_sweep(xt4, on_chip=False, message_sizes=(512, 4096), repetitions=2)
        on = ping_pong_sweep(xt4, on_chip=True, message_sizes=(512, 4096), repetitions=2)
        for off_sample, on_sample in zip(off, on):
            assert on_sample.one_way_time_us < off_sample.one_way_time_us


class TestAllReduceBenchmark:
    def test_single_rank_free(self, xt4):
        assert allreduce_benchmark(xt4, 1) == 0.0

    def test_grows_with_rank_count(self, xt4):
        assert allreduce_benchmark(xt4, 64) > allreduce_benchmark(xt4, 8)

    def test_close_to_equation_9_model(self, xt4):
        """The simulated recursive-doubling all-reduce should land in the same
        range as the equation (9) model on dual-core nodes."""
        for count in (16, 64, 256):
            simulated = allreduce_benchmark(xt4, count)
            model = allreduce_time(xt4, count)
            assert abs(model - simulated) / simulated < 0.5

    def test_rejects_non_positive(self, xt4):
        with pytest.raises(ValueError):
            allreduce_benchmark(xt4, 0)
