"""Multi-process stress test for the sharded :class:`ResultStore`.

K writer processes hammer one store concurrently - each with a private set
of keys plus a shared overlapping set - and the test pins down the store's
concurrency contract:

* **zero lost records**: every disjoint key every worker committed is
  present after reload;
* **no torn lines**: every byte of every segment parses as whole JSON lines
  (the O_APPEND + advisory-lock protocol never interleaves writers);
* **last-wins duplicates**: keys written by several workers resolve to a
  single record on reload, and nothing lands in the quarantine.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.campaigns.segments import SEGMENT_NAMES
from repro.campaigns.store import ResultStore

WORKERS = 4
DISJOINT_PER_WORKER = 48
OVERLAP_KEYS = tuple(f"ee{i:014x}" for i in range(8))


def _disjoint_key(worker: int, i: int) -> str:
    # Leading digit spreads workers across segments; the worker id is baked
    # into the low bits so the key sets never collide.
    return f"{i % 16:x}{worker:x}{i:014x}"


def _hammer(path: str, worker: int) -> None:
    """One writer process: small put_many batches, then the shared keys."""
    store = ResultStore(path)
    items = [
        (_disjoint_key(worker, i), {"result": {"worker": worker, "i": i}})
        for i in range(DISJOINT_PER_WORKER)
    ]
    for start in range(0, len(items), 7):  # deliberately small, many commits
        store.put_many(items[start : start + 7])
    store.put_many(
        (key, {"result": {"worker": worker, "overlap": True}})
        for key in OVERLAP_KEYS
    )
    store.close()


def test_concurrent_writers_lose_nothing_and_tear_nothing(tmp_path):
    path = tmp_path / "contended.store"
    context = multiprocessing.get_context()
    processes = [
        context.Process(target=_hammer, args=(str(path), worker))
        for worker in range(WORKERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
        assert process.exitcode == 0

    store = ResultStore(path)

    # Zero lost records: every disjoint key survived, with its writer's value.
    for worker in range(WORKERS):
        for i in range(DISJOINT_PER_WORKER):
            record = store.get(_disjoint_key(worker, i))
            assert record is not None, f"lost worker {worker} record {i}"
            assert record["result"] == {"worker": worker, "i": i}

    # Last-wins duplicates: each overlapping key resolves to one record
    # written by one of the racers.
    assert len(store) == WORKERS * DISJOINT_PER_WORKER + len(OVERLAP_KEYS)
    for key in OVERLAP_KEYS:
        record = store.get(key)
        assert record["result"]["overlap"] is True
        assert record["result"]["worker"] in range(WORKERS)

    # No torn lines: every segment byte belongs to a whole, parsable line,
    # and nothing was quarantined.
    assert store.quarantined == 0
    assert not store.quarantine_path.exists()
    total_lines = 0
    for name in SEGMENT_NAMES:
        segment = path / f"seg-{name}.jsonl"
        if not segment.exists():
            continue
        blob = segment.read_bytes()
        assert blob.endswith(b"\n")
        for line in blob.splitlines():
            json.loads(line)  # raises on any interleaved/torn write
            total_lines += 1
    # Duplicates append extra lines; they can only add, never subtract.
    assert total_lines >= len(store)
