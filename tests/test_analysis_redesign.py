"""Tests for repro.analysis.redesign (Figure 12: pipelined energy groups)."""

import pytest

from repro.analysis.redesign import (
    energy_group_redesign_study,
    pipelined_energy_groups_spec,
)
from repro.apps.workloads import sweep3d_production_1billion
from repro.core.predictor import predict


class TestPipelinedSpecTransformation:
    def test_schedule_repeated_per_group(self):
        base = sweep3d_production_1billion()
        pipelined = pipelined_energy_groups_spec(base)
        assert pipelined.nsweeps == base.nsweeps * base.energy_groups
        assert pipelined.energy_groups == 1
        assert pipelined.nfull == base.nfull
        assert pipelined.ndiag == base.ndiag

    def test_iteration_factor_scales_iterations(self):
        base = sweep3d_production_1billion()
        pipelined = pipelined_energy_groups_spec(base, extra_iteration_factor=1.5)
        assert pipelined.iterations == round(base.iterations * 1.5)
        with pytest.raises(ValueError):
            pipelined_energy_groups_spec(base, extra_iteration_factor=0.5)

    def test_total_sweep_work_is_preserved(self, xt4):
        """Pipelining rearranges sweeps; the per-processor sweep work (the
        nsweeps x Tstack work term) must be unchanged - only the exposed
        pipeline fills shrink."""
        base = sweep3d_production_1billion()
        pipelined = pipelined_energy_groups_spec(base)
        p_base = predict(base, xt4, total_cores=4096)
        p_pipe = predict(pipelined, xt4, total_cores=4096)
        base_stack_work = (
            p_base.iteration.nsweeps
            * p_base.iteration.stack.work
            * base.iterations
            * base.energy_groups
        )
        pipe_stack_work = (
            p_pipe.iteration.nsweeps * p_pipe.iteration.stack.work * pipelined.iterations
        )
        assert pipe_stack_work == pytest.approx(base_stack_work, rel=1e-9)
        # The exposed fill time is what shrinks (by roughly the group count).
        base_fill = p_base.pipeline_fill_per_iteration_us * base.energy_groups
        pipe_fill = p_pipe.pipeline_fill_per_iteration_us
        assert pipe_fill < 0.2 * base_fill


class TestRedesignStudy:
    COUNTS = (1024, 4096, 16384)

    def test_one_point_per_processor_count(self, xt4):
        points = energy_group_redesign_study(xt4, self.COUNTS)
        assert [p.total_cores for p in points] == list(self.COUNTS)

    def test_rejects_empty_counts(self, xt4):
        with pytest.raises(ValueError):
            energy_group_redesign_study(xt4, [])

    def test_pipelining_always_helps(self, xt4):
        points = energy_group_redesign_study(xt4, self.COUNTS)
        for point in points:
            assert point.pipelined_days < point.sequential_days

    def test_pipelining_eliminates_most_fill_overhead(self, xt4):
        """Figure 12: 'nearly all of the pipeline fill overhead is eliminated'."""
        points = energy_group_redesign_study(xt4, (16384,))
        point = points[0]
        saved = point.sequential_days - point.pipelined_days
        assert saved > 0.6 * point.sequential_fill_days

    def test_fill_overhead_fraction_grows_with_p(self, xt4):
        """The weak-scaling fill share rises with the machine size, so the
        redesign matters more at scale."""
        points = energy_group_redesign_study(xt4, self.COUNTS)
        fractions = [p.fill_fraction_sequential for p in points]
        assert fractions == sorted(fractions)
        assert points[-1].improvement > points[0].improvement

    def test_extra_iterations_can_cancel_the_gain(self, xt4):
        honest = energy_group_redesign_study(xt4, (4096,))[0]
        pessimistic = energy_group_redesign_study(
            xt4, (4096,), extra_iteration_factor=2.0
        )[0]
        assert pessimistic.pipelined_days > honest.pipelined_days
