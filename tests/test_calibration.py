"""Tests for repro.calibration (LogGP fitting and work-rate measurement)."""

import pytest

from repro.apps.lu import lu
from repro.calibration.fitting import (
    derive_platform_parameters,
    fit_off_node,
    fit_on_chip,
)
from repro.calibration.workrate import (
    calibrated_spec,
    measure_ssor_wg,
    measure_stencil_wg,
    measure_transport_wg,
)
from repro.core.comm import total_comm_off_node, total_comm_on_chip
from repro.core.decomposition import ProblemSize
from repro.platforms import cray_xt4, ibm_sp2
from repro.platforms.xt4 import XT4_G, XT4_L, XT4_O
from repro.simulator.pingpong import ping_pong_sweep


class TestFitOffNode:
    def test_recovers_parameters_from_exact_samples(self, xt4):
        sizes = [128, 256, 512, 1024, 1025, 2048, 4096, 8192]
        samples = [(s, total_comm_off_node(xt4.off_node, s)) for s in sizes]
        params, quality = fit_off_node(samples)
        assert params.gap_per_byte == pytest.approx(XT4_G, rel=1e-6)
        assert params.latency == pytest.approx(XT4_L, rel=1e-6)
        assert params.overhead == pytest.approx(XT4_O, rel=1e-6)
        assert quality.max_relative_error < 1e-9

    def test_recovers_sp2_parameters(self, sp2):
        sizes = [64, 256, 512, 1024, 1025, 2048, 4096]
        samples = [(s, total_comm_off_node(sp2.off_node, s)) for s in sizes]
        params, _ = fit_off_node(samples)
        assert params.latency == pytest.approx(23.0, rel=1e-6)
        assert params.overhead == pytest.approx(23.0, rel=1e-6)

    def test_requires_samples_on_both_sides_of_limit(self, xt4):
        small_only = [(s, total_comm_off_node(xt4.off_node, s)) for s in (64, 128, 256, 512)]
        with pytest.raises(ValueError):
            fit_off_node(small_only)

    def test_requires_minimum_sample_count(self):
        with pytest.raises(ValueError):
            fit_off_node([(10, 1.0), (20, 2.0)])

    def test_accepts_pingpong_sample_objects(self, xt4):
        samples = ping_pong_sweep(
            xt4, on_chip=False, message_sizes=(128, 512, 1024, 1025, 4096, 8192),
            repetitions=2,
        )
        params, quality = fit_off_node(samples)
        assert params.overhead == pytest.approx(XT4_O, rel=1e-6)
        assert quality.samples == 6


class TestFitOnChip:
    def test_recovers_parameters_from_exact_samples(self, xt4):
        sizes = [128, 256, 512, 1024, 1025, 2048, 4096, 8192]
        samples = [(s, total_comm_on_chip(xt4.on_chip, s)) for s in sizes]
        params, quality = fit_on_chip(samples)
        assert params.copy_overhead == pytest.approx(xt4.on_chip.copy_overhead, rel=1e-6)
        assert params.dma_setup == pytest.approx(xt4.on_chip.dma_setup, rel=1e-6)
        assert params.gap_per_byte_copy == pytest.approx(xt4.on_chip.gap_per_byte_copy, rel=1e-6)
        assert params.gap_per_byte_dma == pytest.approx(xt4.on_chip.gap_per_byte_dma, rel=1e-6)
        assert quality.max_relative_error < 1e-9


class TestDerivePlatformParameters:
    def test_end_to_end_table2_recovery(self, xt4):
        """The Section 3 procedure: simulate ping-pong, fit, recover Table 2."""
        fitted = derive_platform_parameters(xt4, repetitions=2)
        assert fitted.off_node.gap_per_byte == pytest.approx(XT4_G, rel=1e-6)
        assert fitted.off_node.latency == pytest.approx(XT4_L, rel=1e-6)
        assert fitted.off_node.overhead == pytest.approx(XT4_O, rel=1e-6)
        assert fitted.on_chip is not None
        assert fitted.on_chip.overhead == pytest.approx(xt4.on_chip.overhead, rel=1e-6)
        assert fitted.off_node_quality.max_relative_error < 1e-6

    def test_single_core_platform_has_no_on_chip_fit(self):
        fitted = derive_platform_parameters(ibm_sp2(), repetitions=2)
        assert fitted.on_chip is None
        assert fitted.on_chip_quality is None

    def test_table2_rows_structure(self, xt4):
        fitted = derive_platform_parameters(xt4, repetitions=2)
        rows = dict(fitted.table2_rows())
        assert set(rows) == {
            "G (us/byte)", "L (us)", "o (us)",
            "Gcopy (us/byte)", "Gdma (us/byte)", "o_onchip (us)", "ocopy (us)",
        }


class TestWorkRateMeasurement:
    def test_transport_measurement_positive(self):
        measurement = measure_transport_wg(cells_per_side=4, angles=2, repetitions=1)
        assert measurement.wg_us > 0
        assert measurement.cells == 64
        assert measurement.kernel == "transport-sweep"

    def test_ssor_measurement_positive(self):
        measurement = measure_ssor_wg(cells_per_side=4, repetitions=1)
        assert measurement.wg_us > 0

    def test_stencil_measurement_positive_and_cheaper_than_sweep(self):
        stencil = measure_stencil_wg(cells_per_side=32, repetitions=2)
        sweep = measure_transport_wg(cells_per_side=4, angles=2, repetitions=1)
        assert stencil.wg_us > 0
        # The vectorised stencil is far cheaper per cell than the sweep loop.
        assert stencil.wg_us < sweep.wg_us

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            measure_transport_wg(cells_per_side=1)

    def test_calibrated_spec_replaces_rates(self):
        spec = lu(ProblemSize.cube(32))
        measurement = measure_ssor_wg(cells_per_side=4, repetitions=1)
        updated = calibrated_spec(spec, measurement)
        assert updated.wg_us == pytest.approx(measurement.wg_us)
        assert updated.wg_pre_us == spec.wg_pre_us
