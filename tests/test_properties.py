"""Property-based tests (hypothesis) for the core data structures and models.

These check invariants over randomly generated inputs rather than specific
examples: communication costs are monotone in message size, the pipeline-fill
DP dominates its parts, decompositions tile the domain exactly, the FIFO bus
never grants overlapping transfers, and so on.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps.base import FillClass, SweepPhase, SweepSchedule
from repro.apps.chimaera import chimaera
from repro.core.comm import (
    allreduce_time,
    receive_cost,
    send_cost,
    total_comm,
    total_comm_off_node,
)
from repro.core.decomposition import (
    Corner,
    ProblemSize,
    ProcessorGrid,
    decompose,
    default_core_mapping,
)
from repro.core.faults import FaultModel, expected_failures, expected_rework_us
from repro.core.hetero import FixedQuantumNoise, SpeedProfile
from repro.core.loggp import NodeArchitecture, OffNodeParams, OnChipParams, Platform
from repro.core.model import fill_times, iteration_prediction, stack_time
from repro.kernels.grid import block_bounds
from repro.simulator.collectives import allreduce_ops, largest_power_of_two
from repro.simulator.machine import Recv, Send
from repro.simulator.resources import FifoBus
from repro.util.sweep import powers_of_two
from repro.util.units import seconds_to_us, us_to_seconds


# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

off_node_params = st.builds(
    OffNodeParams,
    latency=st.floats(0.01, 50.0),
    overhead=st.floats(0.01, 50.0),
    gap_per_byte=st.floats(1e-6, 0.1),
    handshake_overhead=st.floats(0.0, 5.0),
    eager_limit=st.integers(64, 4096),
)

on_chip_params = st.builds(
    OnChipParams,
    copy_overhead=st.floats(0.01, 20.0),
    dma_setup=st.floats(0.0, 20.0),
    gap_per_byte_copy=st.floats(1e-6, 0.01),
    gap_per_byte_dma=st.floats(1e-7, 0.01),
    eager_limit=st.integers(64, 4096),
)


@st.composite
def platforms(draw):
    cores = draw(st.sampled_from([1, 2, 4]))
    on_chip = draw(on_chip_params) if cores > 1 else draw(st.one_of(st.none(), on_chip_params))
    return Platform(
        name="random",
        off_node=draw(off_node_params),
        on_chip=on_chip,
        node=NodeArchitecture(cores_per_node=cores),
    )


@st.composite
def small_specs(draw):
    nx = draw(st.integers(8, 64))
    ny = draw(st.integers(8, 64))
    nz = draw(st.integers(4, 64))
    htile = draw(st.sampled_from([1, 2, 4]))
    wg = draw(st.floats(0.05, 5.0))
    return chimaera(ProblemSize(nx, ny, nz), htile=htile, wg_us=wg, iterations=1)


small_grids = st.builds(
    ProcessorGrid, n=st.integers(1, 16), m=st.integers(1, 16)
)


# --------------------------------------------------------------------------
# Communication model properties
# --------------------------------------------------------------------------

class TestCommProperties:
    @given(params=off_node_params, size_a=st.integers(0, 65536), size_b=st.integers(0, 65536))
    def test_total_comm_monotone_in_message_size(self, params, size_a, size_b):
        small, large = sorted((size_a, size_b))
        assert total_comm_off_node(params, small) <= total_comm_off_node(params, large) + 1e-9

    @given(platform=platforms(), size=st.integers(0, 65536))
    def test_send_and_receive_bounded_by_total(self, platform, size):
        total = total_comm(platform, size)
        assert send_cost(platform, size) <= total + 1e-9
        assert receive_cost(platform, size) <= total + 1e-9
        assert total >= 0

    @given(platform=platforms(), cores=st.integers(2, 4096))
    def test_allreduce_nonnegative_and_grows_with_log(self, platform, cores):
        time_p = allreduce_time(platform, cores)
        time_2p = allreduce_time(platform, 2 * cores)
        assert time_p >= 0
        assert time_2p >= time_p - 1e-9


# --------------------------------------------------------------------------
# Decomposition properties
# --------------------------------------------------------------------------

class TestDecompositionProperties:
    @given(total=st.integers(1, 1 << 18))
    def test_decompose_is_exact_and_wide(self, total):
        grid = decompose(total)
        assert grid.n * grid.m == total
        assert grid.n >= grid.m

    @given(n=st.integers(1, 64), m=st.integers(1, 64), data=st.data())
    def test_rank_position_roundtrip(self, n, m, data):
        grid = ProcessorGrid(n, m)
        rank = data.draw(st.integers(0, grid.total_processors - 1))
        i, j = grid.position_of(rank)
        assert grid.rank_of(i, j) == rank
        assert grid.contains(i, j)

    @given(n=st.integers(1, 32), m=st.integers(1, 32))
    def test_corner_sweep_distance_symmetry(self, n, m):
        grid = ProcessorGrid(n, m)
        for corner in Corner:
            opposite = corner.opposite()
            ci, cj = grid.corner_position(corner)
            assert grid.sweep_steps(ci, cj, corner) == 0
            assert grid.sweep_steps(ci, cj, opposite) == (n - 1) + (m - 1)

    @given(extent=st.integers(1, 10_000), blocks=st.integers(1, 64))
    def test_block_bounds_tile_exactly_and_evenly(self, extent, blocks):
        assume(blocks <= extent)
        sizes = []
        previous_stop = 0
        for index in range(blocks):
            start, stop = block_bounds(extent, blocks, index)
            assert start == previous_stop
            previous_stop = stop
            sizes.append(stop - start)
        assert previous_stop == extent
        assert max(sizes) - min(sizes) <= 1

    @given(cores=st.integers(1, 64))
    def test_default_core_mapping_covers_cores(self, cores):
        mapping = default_core_mapping(cores)
        assert mapping.cores_per_node == cores

    @given(start_exp=st.integers(0, 10), length=st.integers(0, 8))
    def test_powers_of_two_are_powers(self, start_exp, length):
        start = 1 << start_exp
        stop = 1 << (start_exp + length)
        values = powers_of_two(start, stop)
        assert len(values) == length + 1
        for value in values:
            assert value & (value - 1) == 0


# --------------------------------------------------------------------------
# Sweep schedule properties
# --------------------------------------------------------------------------

sweep_phases = st.lists(
    st.builds(
        SweepPhase,
        origin=st.sampled_from(list(Corner)),
        fill=st.sampled_from(list(FillClass)),
    ),
    min_size=0,
    max_size=12,
).map(lambda phases: phases + [SweepPhase(Corner.NORTH_WEST, FillClass.FULL)])


class TestScheduleProperties:
    @given(phases=sweep_phases)
    def test_counts_partition_the_sweeps(self, phases):
        schedule = SweepSchedule.from_phases(phases)
        nones = sum(1 for p in schedule.phases if p.fill is FillClass.NONE)
        assert schedule.nfull + schedule.ndiag + nones == schedule.nsweeps
        assert schedule.nfull >= 1  # the final sweep

    @given(phases=sweep_phases, repeats=st.integers(1, 5))
    def test_repeat_preserves_precedence_counts(self, phases, repeats):
        schedule = SweepSchedule.from_phases(phases)
        repeated = schedule.repeated(repeats)
        assert repeated.nsweeps == schedule.nsweeps * repeats
        assert repeated.nfull == schedule.nfull
        assert repeated.ndiag == schedule.ndiag


# --------------------------------------------------------------------------
# Model properties
# --------------------------------------------------------------------------

class TestModelProperties:
    @settings(max_examples=50, deadline=None)
    @given(spec=small_specs(), grid=small_grids, data=st.data())
    def test_iteration_prediction_invariants(self, spec, grid, data):
        platform = data.draw(platforms())
        prediction = iteration_prediction(spec, platform, grid)
        assert prediction.time_per_iteration > 0
        assert prediction.fill.tfullfill >= prediction.fill.tdiagfill >= 0
        assert 0 <= prediction.computation_per_iteration <= prediction.time_per_iteration + 1e-6
        assert prediction.pipeline_fill_time <= prediction.time_per_iteration + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(spec=small_specs(), grid=small_grids)
    def test_fill_work_bounded_by_fill_total(self, spec, grid):
        from repro.platforms import cray_xt4

        fills = fill_times(spec, cray_xt4(), grid)
        assert fills.tdiagfill_work <= fills.tdiagfill + 1e-9
        assert fills.tfullfill_work <= fills.tfullfill + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(spec=small_specs(), grid=small_grids, factor=st.floats(1.1, 4.0))
    def test_iteration_time_monotone_in_work_rate(self, spec, grid, factor):
        from repro.platforms import cray_xt4

        platform = cray_xt4()
        base = iteration_prediction(spec, platform, grid).time_per_iteration
        heavier = iteration_prediction(
            spec.with_wg(spec.wg_us * factor), platform, grid
        ).time_per_iteration
        assert heavier > base

    @settings(max_examples=30, deadline=None)
    @given(spec=small_specs(), grid=small_grids)
    def test_stack_work_bounded_by_stack_total(self, spec, grid):
        from repro.platforms import cray_xt4

        stack = stack_time(spec, cray_xt4(), grid)
        assert 0 < stack.work <= stack.total


# --------------------------------------------------------------------------
# Simulator building blocks
# --------------------------------------------------------------------------

class TestSimulatorProperties:
    @given(
        requests=st.lists(
            st.tuples(st.floats(0, 1000), st.floats(0, 50)), min_size=1, max_size=50
        )
    )
    def test_fifo_bus_transfers_never_overlap(self, requests):
        bus = FifoBus()
        ordered = sorted(requests, key=lambda r: r[0])
        previous_end = 0.0
        for request_time, duration in ordered:
            grant = bus.acquire(request_time, duration)
            assert grant >= request_time
            assert grant >= previous_end - 1e-9
            previous_end = grant + duration

    @given(total=st.integers(1, 128))
    def test_largest_power_of_two_bounds(self, total):
        p2 = largest_power_of_two(total)
        assert p2 <= total < 2 * p2
        assert p2 & (p2 - 1) == 0

    @given(total=st.integers(2, 64))
    def test_allreduce_sends_match_receives(self, total):
        sends, recvs = [], []
        for rank in range(total):
            for op in allreduce_ops(rank, total, 8, 0):
                if isinstance(op, Send):
                    sends.append((rank, op.dst, op.tag))
                elif isinstance(op, Recv):
                    recvs.append((op.src, rank, op.tag))
        assert sorted(sends) == sorted(recvs)


# --------------------------------------------------------------------------
# Units
# --------------------------------------------------------------------------

class TestUnitProperties:
    @given(value=st.floats(0, 1e12))
    def test_us_seconds_roundtrip(self, value):
        assert math.isclose(
            us_to_seconds(seconds_to_us(value)), value, rel_tol=1e-12, abs_tol=1e-12
        )


# --------------------------------------------------------------------------
# Scenario-era layers: noise, speed profiles, hierarchical hops
# --------------------------------------------------------------------------

def _scenario_spec():
    from repro.core.decomposition import ProblemSize as _PS

    return chimaera(_PS(48, 48, 24), iterations=1)


@st.composite
def hierarchical_platforms(draw):
    """Three-level platforms whose inner hops are cheaper by construction.

    The intra-node link scales every machine parameter down by one factor;
    the on-chip path's overheads and gaps are scaled below the intra-node
    ones (with ``L ~ 0`` on chip).  All levels share one eager limit so
    every message size exercises the same protocol branch at each level.
    """
    machine = draw(off_node_params)
    node_scale = draw(st.floats(0.05, 1.0))
    chip_scale = draw(st.floats(0.05, 1.0))
    intra = OffNodeParams(
        latency=machine.latency * node_scale,
        overhead=machine.overhead * node_scale,
        gap_per_byte=machine.gap_per_byte * node_scale,
        handshake_overhead=machine.handshake_overhead * node_scale,
        eager_limit=machine.eager_limit,
    )
    on_chip = OnChipParams(
        copy_overhead=intra.overhead * chip_scale,
        dma_setup=intra.latency * chip_scale,
        gap_per_byte_copy=intra.gap_per_byte * chip_scale,
        gap_per_byte_dma=intra.gap_per_byte * chip_scale,
        eager_limit=machine.eager_limit,
    )
    return Platform(
        name="hierarchical-random",
        off_node=machine,
        on_chip=on_chip,
        intra_node=intra,
        node=NodeArchitecture(cores_per_node=4, cores_per_chip=2),
    )


class TestScenarioProperties:
    @given(
        quantum_a=st.floats(0.0, 500.0),
        quantum_b=st.floats(0.0, 500.0),
        period=st.floats(100.0, 5000.0),
    )
    def test_noise_inflation_monotone_in_quantum(self, quantum_a, quantum_b, period):
        small, large = sorted((quantum_a, quantum_b))
        assert (
            FixedQuantumNoise(small, period).mean_inflation()
            <= FixedQuantumNoise(large, period).mean_inflation()
        )

    @given(
        quantum=st.floats(1.0, 500.0),
        period_a=st.floats(100.0, 5000.0),
        period_b=st.floats(100.0, 5000.0),
    )
    def test_noise_inflation_monotone_in_frequency(self, quantum, period_a, period_b):
        # A shorter period means the quantum is stolen more frequently.
        fast, slow = sorted((period_a, period_b))
        assert (
            FixedQuantumNoise(quantum, fast).mean_inflation()
            >= FixedQuantumNoise(quantum, slow).mean_inflation()
        )

    @settings(max_examples=25, deadline=None)
    @given(quantum=st.floats(0.0, 200.0))
    def test_noise_never_decreases_predicted_time(self, quantum):
        from repro.backends.service import predict_one
        from repro.platforms import cray_xt4

        plain = cray_xt4()
        noisy = plain.with_noise(FixedQuantumNoise(quantum, 1000.0))
        spec = _scenario_spec()
        base = predict_one(spec, plain, total_cores=16).time_per_iteration_us
        inflated = predict_one(spec, noisy, total_cores=16).time_per_iteration_us
        assert inflated >= base - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        slowdown=st.floats(1.0, 4.0),
        count=st.integers(0, 4),
        cores=st.sampled_from([4, 16, 64]),
    )
    def test_slower_speed_profile_never_decreases_time(self, slowdown, count, cores):
        from repro.backends.service import predict_one
        from repro.platforms import cray_xt4

        plain = cray_xt4()
        degraded = plain.with_speed_profile(SpeedProfile.stragglers(count, slowdown))
        spec = _scenario_spec()
        base = predict_one(spec, plain, total_cores=cores).time_per_iteration_us
        slower = predict_one(spec, degraded, total_cores=cores).time_per_iteration_us
        assert slower >= base - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        slowdown_a=st.floats(1.0, 2.0),
        factor=st.floats(1.0, 2.0),
        cores=st.sampled_from([4, 16]),
    )
    def test_time_monotone_in_slowdown(self, slowdown_a, factor, cores):
        from repro.backends.service import predict_one
        from repro.platforms import cray_xt4

        plain = cray_xt4()
        spec = _scenario_spec()
        mild = plain.with_speed_profile(SpeedProfile.stragglers(1, slowdown_a))
        harsh = plain.with_speed_profile(SpeedProfile.stragglers(1, slowdown_a * factor))
        mild_t = predict_one(spec, mild, total_cores=cores).time_per_iteration_us
        harsh_t = predict_one(spec, harsh, total_cores=cores).time_per_iteration_us
        assert harsh_t >= mild_t - 1e-9

    @given(platform=hierarchical_platforms(), size=st.integers(0, 65536))
    def test_hop_levels_order_chip_node_machine(self, platform, size):
        from repro.core.comm import total_comm

        chip = total_comm(platform, size, level="chip")
        node = total_comm(platform, size, level="node")
        machine = total_comm(platform, size, level="machine")
        assert chip <= node + 1e-9
        assert node <= machine + 1e-9

    @given(platform=hierarchical_platforms(), size=st.integers(0, 65536))
    def test_hop_levels_order_send_cost(self, platform, size):
        assert send_cost(platform, size, level="chip") <= send_cost(
            platform, size, level="node"
        ) + 1e-9
        assert send_cost(platform, size, level="node") <= send_cost(
            platform, size, level="machine"
        ) + 1e-9


# --------------------------------------------------------------------------
# Dynamic-failure layer: fault models, rework correction, link contention
# --------------------------------------------------------------------------

class TestFaultProperties:
    """Invariants of the fault/checkpoint layer (``docs/faults.md``)."""

    @given(
        mtbf=st.floats(1e5, 1e12),
        factor=st.floats(1.0, 1e4),
        base=st.floats(0.0, 5e4),
        repair=st.floats(0.0, 1e6),
        interval=st.floats(1e3, 1e7),
    )
    def test_rework_nonnegative_and_monotone_in_fault_rate(
        self, mtbf, factor, base, repair, interval
    ):
        frequent = FaultModel(
            mtbf_us=mtbf, repair_us=repair, checkpoint_interval_us=interval
        )
        rare = FaultModel(
            mtbf_us=mtbf * factor, repair_us=repair, checkpoint_interval_us=interval
        )
        assert expected_rework_us(rare, base) >= 0.0
        assert expected_rework_us(frequent, base) >= expected_rework_us(rare, base)

    @given(
        mtbf=st.floats(1e5, 1e12),
        scale=st.floats(2.0, 1e6),
        base=st.floats(1.0, 5e4),
        repair=st.floats(0.0, 1e6),
    )
    def test_rework_vanishes_as_mtbf_grows(self, mtbf, scale, base, repair):
        """The correction is inverse-proportional to MTBF (the mean rework
        per failure does not depend on MTBF), hence it vanishes in the
        fault-free limit - exactly 0.0 at infinite MTBF."""
        model = FaultModel(mtbf_us=mtbf, repair_us=repair, checkpoint_interval_us=1e4)
        scaled = FaultModel(
            mtbf_us=mtbf * scale, repair_us=repair, checkpoint_interval_us=1e4
        )
        assert math.isclose(
            expected_rework_us(scaled, base),
            expected_rework_us(model, base) / scale,
            rel_tol=1e-12,
            abs_tol=1e-12,
        )
        never_fails = FaultModel(repair_us=repair, checkpoint_interval_us=1e4)
        assert expected_failures(never_fails, base) == 0.0
        assert expected_rework_us(never_fails, base) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(mtbf=st.floats(5e7, 1e10), factor=st.floats(1.0, 50.0))
    def test_predicted_time_monotone_in_fault_rate(self, mtbf, factor):
        """More frequent failures never make the analytic prediction faster,
        and any (non-null) fault model never beats the fault-free machine."""
        from repro.backends.service import predict_one
        from repro.platforms import cray_xt4

        def _faults(mtbf_us):
            return FaultModel(
                mtbf_us=mtbf_us,
                repair_us=1e6,
                restart_us=1e5,
                checkpoint_interval_us=1e6,
                checkpoint_cost_us=5e3,
            )

        plain = cray_xt4()
        spec = _scenario_spec()
        base = predict_one(spec, plain, total_cores=16).time_per_iteration_us
        rare = predict_one(
            spec, plain.with_faults(_faults(mtbf * factor)), total_cores=16
        ).time_per_iteration_us
        frequent = predict_one(
            spec, plain.with_faults(_faults(mtbf)), total_cores=16
        ).time_per_iteration_us
        assert rare >= base - 1e-9
        assert frequent >= rare - 1e-9

    @given(
        mtbf=st.floats(1e5, 2e5),
        dump=st.floats(50.0, 200.0),
    )
    def test_checkpoint_interval_has_interior_optimum(self, mtbf, dump):
        """The Daly/Young trade-off: short checkpoint intervals pay dumps,
        long intervals pay rework, so in a regime where the optimum
        ``sqrt(2 x dump x MTBF)`` sits inside the sweep the total overhead
        has an interior minimum."""
        base = 2e4
        sweep = [1e3 * 2.0**k for k in range(7)]  # 1 ms .. 64 ms

        def _total(interval):
            model = FaultModel(
                mtbf_us=mtbf,
                checkpoint_interval_us=interval,
                checkpoint_cost_us=dump,
            )
            inflated = base * model.checkpoint_inflation()
            return inflated + expected_rework_us(model, inflated)

        totals = [_total(interval) for interval in sweep]
        optimum = totals.index(min(totals))
        assert 0 < optimum < len(sweep) - 1, (
            f"no interior optimum: {list(zip(sweep, totals))}"
        )

    @settings(max_examples=8, deadline=None)
    @given(gap_scale=st.floats(1.0, 500.0), cores=st.sampled_from([4, 16]))
    def test_fifo_links_never_faster_than_contention_free(self, gap_scale, cores):
        """Per-link FIFO serialisation only ever adds queueing delay."""
        from dataclasses import replace

        from repro.backends.simulator import SimulatorBackend
        from repro.core.decomposition import decompose
        from repro.platforms import cray_xt4

        plain = cray_xt4()
        platform = replace(
            plain,
            off_node=replace(
                plain.off_node, gap_per_byte=plain.off_node.gap_per_byte * gap_scale
            ),
        )
        spec = _scenario_spec()
        grid = decompose(cores)
        free = SimulatorBackend().evaluate(spec, platform, grid)
        fifo = SimulatorBackend(link_contention=True).evaluate(spec, platform, grid)
        assert fifo.time_per_iteration_us >= free.time_per_iteration_us - 1e-9
        assert fifo.simulation.stats.link_queue_delay >= 0.0


# --------------------------------------------------------------------------
# Optimizer invariants
# --------------------------------------------------------------------------

class TestOptimizerProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        htiles=st.lists(
            st.sampled_from([1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0]),
            min_size=2,
            max_size=6,
            unique=True,
        ),
        cores=st.lists(
            st.sampled_from([4, 16, 64]), min_size=1, max_size=2, unique=True
        ),
        strategy=st.sampled_from(["coordinate-descent", "golden-section"]),
        objective=st.sampled_from(["time", "core-hours"]),
    )
    def test_guided_strategies_never_beat_exhaustive(
        self, htiles, cores, strategy, objective
    ):
        from repro.optimize import OptimizationSpace, optimize
        from repro.platforms import cray_xt4

        space = OptimizationSpace(
            spec_builder=_scenario_spec().with_htile,
            platform=cray_xt4(),
            htiles=tuple(htiles),
            total_cores=tuple(cores),
        )
        exhaustive = optimize(space, objective=objective)
        guided = optimize(space, strategy=strategy, objective=objective)
        assert guided.best_value >= exhaustive.best_value - 1e-12
        assert guided.evaluations <= exhaustive.evaluations
