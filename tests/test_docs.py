"""Documentation health: doctests, docs/ code blocks, links, README sync.

Three guarantees:

* every executable example in the public-API docstrings (``repro.backends``,
  ``repro.campaigns``, ``repro.analysis`` and friends) actually runs and
  produces the documented output;
* the ``docs/*.md`` pages' python code blocks are doctests too, and every
  intra-repo Markdown link resolves;
* the README quickstart is the *same code* as ``examples/quickstart.py``
  (single source of truth, mirrored verbatim).
"""

from __future__ import annotations

import doctest
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

OPTIONFLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE

#: The docstring-audit surface: every module here must carry at least one
#: executable example, and all of them must pass.
DOCTEST_MODULES = [
    "repro.analysis",
    "repro.analysis.bottleneck",
    "repro.analysis.decomposition_study",
    "repro.analysis.htile",
    "repro.analysis.multicore_design",
    "repro.analysis.partitioning",
    "repro.analysis.redesign",
    "repro.analysis.scaling",
    "repro.analysis.sensitivity",
    "repro.backends",
    "repro.backends.analytic",
    "repro.backends.base",
    "repro.backends.registry",
    "repro.backends.service",
    "repro.backends.simulator",
    "repro.backends.vectorized",
    "repro.campaigns",
    "repro.campaigns.builtin",
    "repro.campaigns.report",
    "repro.campaigns.runner",
    "repro.campaigns.spec",
    "repro.campaigns.store",
    "repro.core.faults",
    "repro.core.hetero",
    "repro.core.model_vec",
    "repro.devtools.lint",
    "repro.devtools.lint.engine",
    "repro.optimize",
    "repro.optimize.result",
    "repro.optimize.space",
    "repro.optimize.strategies",
    "repro.platforms.spec",
    "repro.util.sweep",
    "repro.util.tables",
    "repro.validation.compare",
]

_PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, optionflags=OPTIONFLAGS, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
    assert results.attempted > 0, f"{module_name} has no executable examples"


def test_docs_tree_exists():
    expected = {
        "architecture.md",
        "model-equations.md",
        "cli.md",
        "campaigns.md",
        "platforms.md",
        "optimize.md",
        "lint.md",
        "faults.md",
    }
    present = {path.name for path in DOCS_DIR.glob("*.md")}
    assert expected <= present, f"missing docs pages: {sorted(expected - present)}"


@pytest.mark.parametrize(
    "doc_path", sorted(DOCS_DIR.glob("*.md")), ids=lambda p: p.name
)
def test_docs_code_blocks(doc_path):
    """Run every ``>>>``-style python block in a docs page as a doctest.

    Blocks within one page share a namespace, so later blocks can build on
    earlier ones the way a reader would type them into a REPL.
    """
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(optionflags=OPTIONFLAGS)
    globs: dict = {}
    for index, block in enumerate(_PYTHON_FENCE.findall(doc_path.read_text())):
        if ">>>" not in block:
            continue
        test = parser.get_doctest(
            block, globs, f"{doc_path.name}[block {index}]", str(doc_path), 0
        )
        runner.run(test, clear_globs=False)
        globs = test.globs
    assert runner.failures == 0, f"doctest failures in {doc_path.name}"


def _markdown_files():
    return [REPO_ROOT / "README.md"] + sorted(DOCS_DIR.glob("*.md"))


@pytest.mark.parametrize("md_path", _markdown_files(), ids=lambda p: p.name)
def test_intra_repo_markdown_links_resolve(md_path):
    broken = []
    for target in _MARKDOWN_LINK.findall(md_path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (md_path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{md_path.name}: broken relative link(s) {broken}"


def test_readme_quickstart_matches_example():
    """The README quickstart block is mirrored verbatim in examples/quickstart.py."""
    readme = (REPO_ROOT / "README.md").read_text()
    blocks = _PYTHON_FENCE.findall(readme)
    assert blocks, "README.md has no python code block"
    quickstart_block = blocks[0].strip()

    example = (REPO_ROOT / "examples" / "quickstart.py").read_text()
    begin = "# --- README quickstart (mirrored in README.md; asserted by tests/test_docs.py) ---"
    end = "# --- end README quickstart ---"
    assert begin in example and end in example, (
        "examples/quickstart.py lost its README-quickstart markers"
    )
    region = example.split(begin, 1)[1].split(end, 1)[0].strip()
    assert region == quickstart_block, (
        "README quickstart and examples/quickstart.py have diverged:\n"
        f"--- README ---\n{quickstart_block}\n--- example ---\n{region}"
    )
