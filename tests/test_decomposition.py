"""Tests for repro.core.decomposition (problem sizes, grids, core mappings)."""

import pytest

from repro.core.decomposition import (
    CoreMapping,
    Corner,
    ProblemSize,
    ProcessorGrid,
    decompose,
    default_core_mapping,
)


class TestProblemSize:
    def test_total_cells(self):
        assert ProblemSize(240, 240, 240).total_cells == 240**3

    def test_cube(self):
        assert ProblemSize.cube(16) == ProblemSize(16, 16, 16)

    def test_of_total_is_cubic_and_close(self):
        problem = ProblemSize.of_total(1e9)
        assert problem.nx == problem.ny == problem.nz == 1000

    def test_of_total_20m(self):
        problem = ProblemSize.of_total(20e6)
        assert abs(problem.total_cells - 20e6) / 20e6 < 0.02

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ProblemSize(0, 1, 1)

    def test_cells_per_processor(self):
        assert ProblemSize(64, 64, 10).cells_per_processor(ProcessorGrid(8, 8)) == pytest.approx(640)

    def test_subdomain(self):
        sub = ProblemSize(240, 120, 60).subdomain(ProcessorGrid(16, 8))
        assert sub == (15.0, 15.0, 60.0)


class TestCorner:
    def test_opposites(self):
        assert Corner.NORTH_WEST.opposite() is Corner.SOUTH_EAST
        assert Corner.SOUTH_WEST.opposite() is Corner.NORTH_EAST

    def test_opposite_is_involution(self):
        for corner in Corner:
            assert corner.opposite().opposite() is corner

    def test_adjacent_corners_share_an_edge(self):
        grid = ProcessorGrid(5, 3)
        for corner in Corner:
            for neighbour in corner.adjacent():
                (i1, j1) = grid.corner_position(corner)
                (i2, j2) = grid.corner_position(neighbour)
                assert (i1 == i2) != (j1 == j2)  # exactly one coordinate shared


class TestProcessorGrid:
    def test_total_processors(self):
        assert ProcessorGrid(128, 64).total_processors == 8192

    def test_positions_covers_grid_once(self):
        grid = ProcessorGrid(3, 2)
        positions = list(grid.positions())
        assert len(positions) == 6
        assert len(set(positions)) == 6
        assert (1, 1) in positions and (3, 2) in positions

    def test_rank_roundtrip(self):
        grid = ProcessorGrid(7, 5)
        for rank in range(grid.total_processors):
            i, j = grid.position_of(rank)
            assert grid.rank_of(i, j) == rank

    def test_rank_of_out_of_bounds(self):
        grid = ProcessorGrid(4, 4)
        with pytest.raises(ValueError):
            grid.rank_of(0, 1)
        with pytest.raises(ValueError):
            grid.rank_of(5, 1)
        with pytest.raises(ValueError):
            grid.position_of(16)

    def test_corner_positions(self):
        grid = ProcessorGrid(6, 4)
        assert grid.corner_position(Corner.NORTH_WEST) == (1, 1)
        assert grid.corner_position(Corner.NORTH_EAST) == (6, 1)
        assert grid.corner_position(Corner.SOUTH_WEST) == (1, 4)
        assert grid.corner_position(Corner.SOUTH_EAST) == (6, 4)

    def test_corner_of(self):
        grid = ProcessorGrid(6, 4)
        assert grid.corner_of(1, 1) is Corner.NORTH_WEST
        assert grid.corner_of(6, 4) is Corner.SOUTH_EAST
        assert grid.corner_of(3, 2) is None

    def test_manhattan_distance_between_corners(self):
        grid = ProcessorGrid(6, 4)
        assert grid.manhattan_distance(Corner.NORTH_WEST, Corner.SOUTH_EAST) == 8
        assert grid.manhattan_distance(Corner.NORTH_WEST, Corner.SOUTH_WEST) == 3
        assert grid.manhattan_distance(Corner.NORTH_WEST, Corner.NORTH_EAST) == 5

    def test_sweep_steps_from_origin(self):
        grid = ProcessorGrid(6, 4)
        assert grid.sweep_steps(1, 1, Corner.NORTH_WEST) == 0
        assert grid.sweep_steps(6, 4, Corner.NORTH_WEST) == 8
        assert grid.sweep_steps(1, 1, Corner.SOUTH_EAST) == 8

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ProcessorGrid(0, 4)


class TestDecompose:
    @pytest.mark.parametrize(
        "total,expected",
        [
            (1024, (32, 32)),
            (8192, (128, 64)),
            (16384, (128, 128)),
            (4096, (64, 64)),
            (2, (2, 1)),
            (1, (1, 1)),
        ],
    )
    def test_power_of_two_counts(self, total, expected):
        grid = decompose(total)
        assert (grid.n, grid.m) == expected
        assert grid.total_processors == total

    def test_non_power_of_two(self):
        grid = decompose(24)
        assert grid.total_processors == 24
        assert grid.n >= grid.m

    def test_near_square(self):
        grid = decompose(48)
        assert grid.n / grid.m <= 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            decompose(0)


class TestCoreMapping:
    def test_default_mappings_match_paper(self):
        assert (default_core_mapping(1).cx, default_core_mapping(1).cy) == (1, 1)
        assert (default_core_mapping(2).cx, default_core_mapping(2).cy) == (1, 2)
        assert (default_core_mapping(4).cx, default_core_mapping(4).cy) == (2, 2)
        assert (default_core_mapping(8).cx, default_core_mapping(8).cy) == (2, 4)
        assert (default_core_mapping(16).cx, default_core_mapping(16).cy) == (4, 4)

    def test_default_mapping_other_counts(self):
        mapping = default_core_mapping(6)
        assert mapping.cores_per_node == 6

    def test_table6_rules_dual_core(self):
        """1x2 mapping: east-west always off-node, north-south alternates."""
        mapping = CoreMapping(cx=1, cy=2)
        for i in range(1, 5):
            for j in range(1, 5):
                assert not mapping.send_east_on_chip(i, j)
                assert not mapping.comm_from_west_on_chip(i, j)
        # j odd -> the north neighbour is on a different node; j even -> same node.
        assert not mapping.receive_north_on_chip(2, 1)
        assert mapping.receive_north_on_chip(2, 2)
        assert mapping.send_south_on_chip(2, 1)
        assert not mapping.send_south_on_chip(2, 2)

    def test_table6_rules_quad_core(self):
        mapping = CoreMapping(cx=2, cy=2)
        # i mod Cx != 0 -> SendE on chip.
        assert mapping.send_east_on_chip(1, 1)
        assert not mapping.send_east_on_chip(2, 1)
        # i mod Cx != 1 -> message from the west is on chip.
        assert mapping.comm_from_west_on_chip(2, 1)
        assert not mapping.comm_from_west_on_chip(1, 1)

    def test_node_of_groups_rectangles(self):
        mapping = CoreMapping(cx=2, cy=2)
        assert mapping.node_of(1, 1) == mapping.node_of(2, 2) == (0, 0)
        assert mapping.node_of(3, 1) == (1, 0)
        assert mapping.node_of(1, 3) == (0, 1)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CoreMapping(cx=0, cy=1)
