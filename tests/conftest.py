"""Shared fixtures for the test suite.

The fixtures provide small, fast configurations: tiny problem sizes and
processor counts so that even the discrete-event simulation tests run in
well under a second each.  Larger, slower configurations live in
``benchmarks/``.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.platforms import cray_xt4, cray_xt4_single_core, ibm_sp2


#: The one seed behind every ad-hoc randomised sweep in the suite.  Tests
#: that need a ``random.Random`` stream take the ``seeded_rng`` fixture
#: instead of constructing their own differently-seeded instances, so
#: reruns (including under ``pytest -p no:randomly``-style reordering
#: plugins) draw identical values everywhere.  Hypothesis-based tests are
#: governed separately by the profiles in the root ``conftest.py``.
TEST_RNG_SEED = 20260726


@pytest.fixture
def seeded_rng() -> random.Random:
    """A fresh, deterministically-seeded ``random.Random`` stream."""
    return random.Random(TEST_RNG_SEED)


@pytest.fixture
def xt4():
    """Dual-core Cray XT4 (the paper's validation platform)."""
    return cray_xt4()


@pytest.fixture
def xt4_single():
    """Cray XT4 using one core per node (the Table 5 configuration)."""
    return cray_xt4_single_core()


@pytest.fixture
def sp2():
    """IBM SP/2 (single-core, slow communication)."""
    return ibm_sp2()


@pytest.fixture
def small_problem():
    """A small cubic problem divisible by common small grids."""
    return ProblemSize(48, 48, 24)


@pytest.fixture
def small_grid():
    return ProcessorGrid(4, 4)


@pytest.fixture
def tiny_grid():
    return ProcessorGrid(2, 2)


@pytest.fixture
def chimaera_small(small_problem):
    """Chimaera spec on a small problem with a single iteration."""
    return chimaera(small_problem, iterations=1)


@pytest.fixture
def sweep3d_small(small_problem):
    """Sweep3D spec (Htile=2) on a small problem with a single iteration."""
    return sweep3d(small_problem, config=Sweep3DConfig(mk=4, mmi=3, mmo=6), iterations=1)


@pytest.fixture
def lu_small(small_problem):
    """LU spec on a small problem with a single iteration."""
    return lu(small_problem, iterations=1)
