"""Package-level API tests: top-level exports, __all__ hygiene, examples."""

import importlib
import pathlib
import py_compile

import pytest

import repro


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

SUBPACKAGES = [
    "repro.core",
    "repro.apps",
    "repro.platforms",
    "repro.baselines",
    "repro.simulator",
    "repro.kernels",
    "repro.calibration",
    "repro.analysis",
    "repro.validation",
    "repro.util",
    "repro.backends",
    "repro.campaigns",
    "repro.optimize",
    "repro.cli",
]


def test_version_string():
    assert repro.__version__ == "1.8.0"


def test_top_level_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_surface():
    """The names used in the README quick start are importable from the root."""
    from repro import (  # noqa: F401
        Platform,
        Prediction,
        ProblemSize,
        ProcessorGrid,
        SweepSchedule,
        WavefrontSpec,
        cray_xt4,
        ibm_sp2,
        predict,
    )


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackages_import_and_export(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is not None:
        for name in exported:
            assert hasattr(module, name), f"{module_name}.{name} missing"


def test_no_import_cycles_from_cold_start():
    """Importing any subpackage first must not raise (no hidden cycles)."""
    for module_name in SUBPACKAGES:
        importlib.import_module(module_name)


@pytest.mark.parametrize(
    "example",
    sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
)
def test_examples_compile(example):
    """Every example script at least byte-compiles (full runs are manual)."""
    py_compile.compile(str(EXAMPLES_DIR / example), doraise=True)


def test_examples_directory_has_at_least_three_scripts():
    assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 3
