"""Tests for repro.util.units."""

import math

import pytest

from repro.util import units


def test_microseconds_per_second_constant():
    assert units.MICROSECONDS_PER_SECOND == 1e6


def test_us_to_seconds_roundtrip():
    assert units.us_to_seconds(2.5e6) == pytest.approx(2.5)
    assert units.seconds_to_us(2.5) == pytest.approx(2.5e6)
    assert units.us_to_seconds(units.seconds_to_us(3.7)) == pytest.approx(3.7)


def test_seconds_to_days():
    assert units.seconds_to_days(86400.0) == pytest.approx(1.0)
    assert units.days_to_seconds(2.0) == pytest.approx(172800.0)


def test_seconds_to_months_uses_30_day_months():
    assert units.seconds_to_months(30 * 86400.0) == pytest.approx(1.0)


def test_us_to_days():
    assert units.us_to_days(86400.0 * 1e6) == pytest.approx(1.0)


def test_identity_helpers_cast_to_float():
    assert units.microseconds(3) == 3.0
    assert isinstance(units.microseconds(3), float)
    assert units.seconds(5) == 5.0


def test_rate_per_month():
    # One time step per day -> 30 per month.
    assert units.rate_per_month(86400.0) == pytest.approx(30.0)


def test_rate_per_month_rejects_non_positive():
    with pytest.raises(ValueError):
        units.rate_per_month(0.0)
    with pytest.raises(ValueError):
        units.rate_per_month(-5.0)


def test_conversions_are_monotonic():
    values = [1.0, 10.0, 1e3, 1e6, 1e9]
    days = [units.us_to_days(v) for v in values]
    assert days == sorted(days)
    assert all(not math.isnan(d) for d in days)
