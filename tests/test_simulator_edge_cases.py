"""Simulator edge cases: single-rank grids, zero-byte messages, degenerate
collective and ping-pong inputs."""

import pytest

from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.simulator.collectives import allreduce_ops, pairwise_exchange_ops
from repro.simulator.machine import Recv, Send, SimulatedMachine
from repro.simulator.pingpong import allreduce_benchmark, ping_pong
from repro.simulator.wavefront import simulate_wavefront


class TestSingleRankGrid:
    @pytest.mark.parametrize("engine", ["event", "aggregated"])
    def test_single_rank_runs_and_sends_nothing(self, xt4_single, engine):
        spec = chimaera(ProblemSize(16, 16, 8), iterations=1)
        result = simulate_wavefront(
            spec, xt4_single, grid=ProcessorGrid(1, 1), engine=engine
        )
        assert result.stats.total_messages == 0
        assert result.makespan_us > 0

    def test_single_rank_with_stencil_nonwavefront(self, xt4_single):
        """LU's halo exchange degenerates to pure stencil work on one rank."""
        spec = lu(ProblemSize(16, 16, 8), iterations=1)
        event = simulate_wavefront(
            spec, xt4_single, grid=ProcessorGrid(1, 1), engine="event"
        )
        fast = simulate_wavefront(
            spec, xt4_single, grid=ProcessorGrid(1, 1), engine="aggregated"
        )
        assert fast.makespan_us == pytest.approx(event.makespan_us, rel=1e-9)


class TestZeroByteMessages:
    def test_machine_accepts_zero_byte_send(self, xt4_single):
        machine = SimulatedMachine(xt4_single, 2, rank_to_node=[0, 1])
        machine.add_rank_program(0, iter([Send(dst=1, nbytes=0, tag=0)]))
        machine.add_rank_program(1, iter([Recv(src=0, tag=0)]))
        stats = machine.run()
        # Zero payload still pays overhead and latency, but no gap term.
        off = xt4_single.off_node
        assert stats.makespan == pytest.approx(2 * off.overhead + off.latency)
        assert stats.total_bytes == 0.0

    def test_negative_size_rejected(self, xt4_single):
        from repro.simulator.engine import SimulationError

        machine = SimulatedMachine(xt4_single, 2, rank_to_node=[0, 1])
        machine.add_rank_program(0, iter([Send(dst=1, nbytes=-1, tag=0)]))
        machine.add_rank_program(1, iter([Recv(src=0, tag=0)]))
        with pytest.raises(SimulationError):
            machine.run()


class TestDegenerateCollectives:
    def test_allreduce_single_rank_is_empty(self):
        assert list(allreduce_ops(0, 1, 8, 0)) == []

    def test_allreduce_rejects_nonpositive_ranks(self):
        with pytest.raises(ValueError):
            list(allreduce_ops(0, 0, 8, 0))

    def test_pairwise_exchange_with_self_is_empty(self):
        assert list(pairwise_exchange_ops(2, 2, 64, 0)) == []

    def test_allreduce_benchmark_single_rank_is_free(self, xt4_single):
        assert allreduce_benchmark(xt4_single, 1) == 0.0

    def test_allreduce_benchmark_zero_payload(self, xt4_single):
        time_us = allreduce_benchmark(xt4_single, 4, payload_bytes=0)
        off = xt4_single.off_node
        # Two doubling phases of overhead+latency cost even with no payload.
        assert time_us >= 2 * (2 * off.overhead + off.latency)

    def test_fastpath_allreduce_zero_payload_matches_event(self, xt4_single):
        from dataclasses import replace

        from repro.apps.base import AllReduceNonWavefront

        spec = replace(
            chimaera(ProblemSize(16, 16, 8), iterations=1),
            nonwavefront=AllReduceNonWavefront(count=1, payload_bytes=0),
        )
        event = simulate_wavefront(
            spec, xt4_single, grid=ProcessorGrid(2, 2), engine="event"
        )
        fast = simulate_wavefront(
            spec, xt4_single, grid=ProcessorGrid(2, 2), engine="aggregated"
        )
        assert fast.makespan_us == pytest.approx(event.makespan_us, rel=1e-9)


class TestDegeneratePingPong:
    def test_zero_byte_ping_pong(self, xt4_single):
        sample = ping_pong(xt4_single, 0, on_chip=False, repetitions=3)
        off = xt4_single.off_node
        assert sample.one_way_time_us == pytest.approx(2 * off.overhead + off.latency)

    def test_zero_byte_on_chip_ping_pong(self, xt4):
        sample = ping_pong(xt4, 0, on_chip=True, repetitions=2)
        assert sample.one_way_time_us > 0
        assert sample.on_chip

    def test_zero_repetitions_rejected(self, xt4_single):
        with pytest.raises(ValueError):
            ping_pong(xt4_single, 64, on_chip=False, repetitions=0)
