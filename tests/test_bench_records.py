"""Bench-record regression guard.

The benchmark harness writes machine-readable speedup records to the repo
root (``BENCH_simulator.json`` from
``benchmarks/test_bench_simulator_fastpath.py``, ``BENCH_optimize.json``
from ``benchmarks/test_bench_optimize.py``, ``BENCH_vec.json`` from
``benchmarks/test_bench_vec.py``) and those files are committed.
Committed artefacts rot: a schema change, a hand edit, or a regressed
re-run could silently invalidate the speedup claims the README and docs
cite.  This tier-1 guard parses every committed record, validates its
schema and re-asserts the recorded contracts - a stale or broken record
fails CI instead of quietly shipping.

(The benchmarks themselves re-measure and overwrite the records; this
guard only checks what is committed.)
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every record the benchmark harness commits, and the benchmark that
#: regenerates it.  Extend this table when a new ``BENCH_*.json`` is added;
#: the completeness test below fails if a record ships unregistered.
EXPECTED_RECORDS = {
    "BENCH_simulator.json": "benchmarks/test_bench_simulator_fastpath.py",
    "BENCH_optimize.json": "benchmarks/test_bench_optimize.py",
    "BENCH_vec.json": "benchmarks/test_bench_vec.py",
    "BENCH_faults.json": "benchmarks/test_bench_faults.py",
    "BENCH_store.json": "benchmarks/test_bench_store.py",
}


def _load(name: str) -> dict:
    path = REPO_ROOT / name
    assert path.exists(), (
        f"{name} is missing; regenerate it with "
        f"`pytest {EXPECTED_RECORDS[name]}` and commit the result"
    )
    data = json.loads(path.read_text(encoding="utf-8"))
    assert isinstance(data, dict), f"{name} must hold a JSON object"
    return data


def _require(record: dict, name: str, keys: dict[str, type]) -> None:
    for key, kind in keys.items():
        assert key in record, f"{name}: missing required key {key!r}"
        assert isinstance(record[key], kind), (
            f"{name}: key {key!r} should be {kind}, got {type(record[key])}"
        )


def test_every_committed_record_is_registered():
    committed = {path.name for path in REPO_ROOT.glob("BENCH_*.json")}
    assert committed == set(EXPECTED_RECORDS), (
        "committed BENCH_*.json records and the guard's registry diverged; "
        "update EXPECTED_RECORDS in tests/test_bench_records.py"
    )


class TestSimulatorRecord:
    def test_schema(self):
        record = _load("BENCH_simulator.json")
        _require(
            record,
            "BENCH_simulator.json",
            {
                "benchmark": str,
                "total_cores": int,
                "grid": str,
                "event_engine_s": (int, float),
                "aggregated_engine_s": (int, float),
                "speedup": (int, float),
                "relative_error": (int, float),
                "contract_min_speedup": (int, float),
                "contract_rel_tol": (int, float),
            },
        )
        assert record["benchmark"] == "simulator_fastpath"

    def test_fastpath_speedup_contract(self):
        """The committed record still claims (at least) the >= 10x contract."""
        record = _load("BENCH_simulator.json")
        assert record["contract_min_speedup"] >= 10.0
        assert record["speedup"] >= record["contract_min_speedup"], (
            f"committed simulator fast-path speedup {record['speedup']:.1f}x "
            f"is below the {record['contract_min_speedup']:.0f}x contract - "
            "regenerate BENCH_simulator.json or fix the regression"
        )
        assert record["relative_error"] <= record["contract_rel_tol"]


class TestVecRecord:
    def test_schema(self):
        record = _load("BENCH_vec.json")
        _require(
            record,
            "BENCH_vec.json",
            {
                "benchmark": str,
                "platform": str,
                "points": int,
                "htile_points": int,
                "core_counts": list,
                "analytic_fast_s": (int, float),
                "analytic_vec_s": (int, float),
                "speedup": (int, float),
                "max_abs_deviation_us": (int, float),
                "contract_min_speedup": (int, float),
                "contract_abs_tol_us": (int, float),
            },
        )
        assert record["benchmark"] == "vec_backend"
        assert record["points"] >= 10_000, (
            "the vec speedup contract is measured on a >= 10,000-point grid"
        )
        assert record["points"] == record["htile_points"] * len(
            record["core_counts"]
        )

    def test_vec_speedup_contract(self):
        """The committed record still claims (at least) the >= 10x contract."""
        record = _load("BENCH_vec.json")
        assert record["contract_min_speedup"] >= 10.0
        assert record["speedup"] >= record["contract_min_speedup"], (
            f"committed analytic-vec speedup {record['speedup']:.1f}x is "
            f"below the {record['contract_min_speedup']:.0f}x contract - "
            "regenerate BENCH_vec.json or fix the regression"
        )
        assert record["max_abs_deviation_us"] <= record["contract_abs_tol_us"]
        # Internal consistency: the ratio matches the recorded timings.
        recomputed = record["analytic_fast_s"] / record["analytic_vec_s"]
        assert record["speedup"] == pytest.approx(recomputed, rel=1e-9)


class TestFaultsRecord:
    def test_schema(self):
        record = _load("BENCH_faults.json")
        _require(
            record,
            "BENCH_faults.json",
            {
                "benchmark": str,
                "application": str,
                "platform": str,
                "total_cores": int,
                "fault_free_limit_max_abs_deviation_us": (int, float),
                "mtbf_curve": list,
                "interval_curve": list,
                "interval_optimum_index": int,
                "harsh_simulator": dict,
                "contract_fault_free_max_abs_deviation_us": (int, float),
            },
        )
        assert record["benchmark"] == "fault_tolerance"
        for point in record["mtbf_curve"]:
            _require(
                point,
                "BENCH_faults.json mtbf_curve point",
                {"mtbf_us": (int, float), "analytic_time_us": (int, float)},
            )
        for point in record["interval_curve"]:
            _require(
                point,
                "BENCH_faults.json interval_curve point",
                {
                    "checkpoint_interval_us": (int, float),
                    "analytic_time_us": (int, float),
                },
            )
        _require(
            record["harsh_simulator"],
            "BENCH_faults.json harsh_simulator",
            {
                "fault_model": str,
                "fault_seed": int,
                "fault_free_time_us": (int, float),
                "faulty_time_us": (int, float),
                "injected_failures": int,
                "checkpoints": int,
            },
        )

    def test_fault_free_limit_contract(self):
        """The committed record still claims the bit-identical fault-free limit."""
        record = _load("BENCH_faults.json")
        assert record["contract_fault_free_max_abs_deviation_us"] == 0.0
        assert record["fault_free_limit_max_abs_deviation_us"] == 0.0, (
            "a null fault model perturbed a backend's result - the "
            "fault-free limit must be bit-identical"
        )

    def test_fault_tolerance_curve_contract(self):
        """At a fixed checkpoint interval, dropping MTBF strictly raises the
        analytic time-to-solution; the interval sweep keeps an interior
        (Daly/Young) optimum; the harsh simulator run injected failures."""
        record = _load("BENCH_faults.json")
        curve = record["mtbf_curve"]
        assert len(curve) >= 3
        mtbfs = [point["mtbf_us"] for point in curve]
        times = [point["analytic_time_us"] for point in curve]
        assert all(a > b for a, b in zip(mtbfs, mtbfs[1:])), (
            "mtbf_curve must sweep MTBF in decreasing order"
        )
        assert all(a < b for a, b in zip(times, times[1:])), (
            "committed fault-tolerance curve is not strictly increasing as "
            "MTBF drops - regenerate BENCH_faults.json or fix the regression"
        )
        interval_times = [
            point["analytic_time_us"] for point in record["interval_curve"]
        ]
        optimum = record["interval_optimum_index"]
        assert 0 < optimum < len(interval_times) - 1
        assert interval_times[optimum] == min(interval_times)
        harsh = record["harsh_simulator"]
        assert harsh["injected_failures"] > 0
        assert harsh["faulty_time_us"] > harsh["fault_free_time_us"]


class TestStoreRecord:
    def test_schema(self):
        record = _load("BENCH_store.json")
        _require(
            record,
            "BENCH_store.json",
            {
                "benchmark": str,
                "records": int,
                "open_sidecar_s": (int, float),
                "open_fullparse_s": (int, float),
                "open_ratio": (int, float),
                "commit_records": int,
                "per_record_commit_s": (int, float),
                "group_commit_s": (int, float),
                "per_record_records_per_s": (int, float),
                "group_commit_records_per_s": (int, float),
                "put_many_speedup": (int, float),
                "shard_merge": dict,
                "kill_resume": dict,
                "contract_min_open_ratio": (int, float),
                "contract_min_put_many_speedup": (int, float),
            },
        )
        assert record["benchmark"] == "store"
        assert record["records"] >= 10_000, (
            "the O(index) open contract is measured on a >= 10,000-record store"
        )
        _require(
            record["shard_merge"],
            "BENCH_store.json shard_merge",
            {"shards": int, "records": int, "wall_s": (int, float)},
        )
        _require(
            record["kill_resume"],
            "BENCH_store.json kill_resume",
            {
                "total_points": int,
                "shards": int,
                "child_finished_before_kill": bool,
                "salvaged": int,
                "resumed_computed": int,
                "resume_wall_s": (int, float),
                "rerun_computed": int,
            },
        )

    def test_open_and_commit_contracts(self):
        """The committed record still claims the O(index) open and the
        group-commit speedup."""
        record = _load("BENCH_store.json")
        assert record["contract_min_open_ratio"] >= 2.0
        assert record["open_ratio"] >= record["contract_min_open_ratio"], (
            f"committed sidecar-open ratio {record['open_ratio']:.1f}x is "
            f"below the {record['contract_min_open_ratio']:.0f}x contract - "
            "regenerate BENCH_store.json or fix the regression"
        )
        assert record["contract_min_put_many_speedup"] >= 3.0
        assert (
            record["put_many_speedup"] >= record["contract_min_put_many_speedup"]
        ), (
            f"committed put_many speedup {record['put_many_speedup']:.1f}x is "
            f"below the {record['contract_min_put_many_speedup']:.0f}x contract"
        )
        # Internal consistency: the ratios match the recorded timings.
        assert record["open_ratio"] == pytest.approx(
            record["open_fullparse_s"] / record["open_sidecar_s"], rel=1e-9
        )
        assert record["put_many_speedup"] == pytest.approx(
            record["per_record_commit_s"] / record["group_commit_s"], rel=1e-9
        )

    def test_kill_resume_contract(self):
        """The committed kill/resume run lost nothing: the resumed run
        covered the whole campaign and the final re-run computed zero."""
        record = _load("BENCH_store.json")
        kill = record["kill_resume"]
        assert kill["rerun_computed"] == 0
        assert kill["resumed_computed"] + kill["salvaged"] <= kill["total_points"]
        if not kill["child_finished_before_kill"]:
            assert kill["salvaged"] >= 1, (
                "the SIGKILLed run committed nothing salvageable - widen the "
                "kill window in benchmarks/test_bench_store.py"
            )


class TestOptimizeRecord:
    def test_schema(self):
        record = _load("BENCH_optimize.json")
        _require(
            record,
            "BENCH_optimize.json",
            {
                "benchmark": str,
                "contract_min_eval_ratio": (int, float),
                "contract_max_grid_step_distance": int,
                "contract_max_quality_ratio": (int, float),
                "cases": list,
            },
        )
        assert record["benchmark"] == "optimize"
        assert record["cases"], "BENCH_optimize.json records no cases"
        for case in record["cases"]:
            _require(
                case,
                f"BENCH_optimize.json case {case.get('app')!r}",
                {
                    "app": str,
                    "platform": str,
                    "total_cores": int,
                    "strategy": str,
                    "grid_size": int,
                    "exhaustive_evaluations": int,
                    "golden_evaluations": int,
                    "eval_ratio": (int, float),
                    "best_htile_exhaustive": (int, float),
                    "best_htile_golden": (int, float),
                    "grid_step_distance": int,
                    "quality_ratio": (int, float),
                    "assert_eval_ratio": bool,
                },
            )

    def test_eval_ratio_contract(self):
        """Golden-section still needs >= 10x fewer evaluations than exhaustive."""
        record = _load("BENCH_optimize.json")
        assert record["contract_min_eval_ratio"] >= 10.0
        ratio_cases = [c for c in record["cases"] if c["assert_eval_ratio"]]
        assert ratio_cases, "no case asserts the evaluation-ratio contract"
        for case in ratio_cases:
            assert case["eval_ratio"] >= record["contract_min_eval_ratio"], (
                f"{case['app']}: committed evaluation ratio "
                f"{case['eval_ratio']:.1f}x is below the "
                f"{record['contract_min_eval_ratio']:.0f}x contract"
            )
            # Internal consistency: the ratio matches the recorded counts.
            recomputed = case["exhaustive_evaluations"] / case["golden_evaluations"]
            assert case["eval_ratio"] == pytest.approx(recomputed, rel=1e-9)

    def test_equal_quality_contract(self):
        """Every case recovered the exhaustive optimum within one grid step
        and within the recorded objective-quality ceiling."""
        record = _load("BENCH_optimize.json")
        for case in record["cases"]:
            assert (
                case["grid_step_distance"]
                <= record["contract_max_grid_step_distance"]
            ), (
                f"{case['app']}: recorded golden-section optimum "
                f"{case['best_htile_golden']:g} sits "
                f"{case['grid_step_distance']} grid steps from the exhaustive "
                f"optimum {case['best_htile_exhaustive']:g}"
            )
            assert case["quality_ratio"] <= record["contract_max_quality_ratio"], (
                f"{case['app']}: recorded golden-section optimum is "
                f"{100 * (case['quality_ratio'] - 1):.2f}% slower than the "
                "exhaustive optimum"
            )
