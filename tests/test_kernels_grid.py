"""Tests for repro.kernels.grid (partitioning and tiling)."""

import numpy as np
import pytest

from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.kernels.grid import Grid3D, Subdomain, block_bounds, partition


class TestBlockBounds:
    def test_even_division(self):
        assert block_bounds(12, 4, 0) == (0, 3)
        assert block_bounds(12, 4, 3) == (9, 12)

    def test_uneven_division_front_loads_extra(self):
        bounds = [block_bounds(10, 3, i) for i in range(3)]
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_bounds_tile_whole_extent(self):
        extent, blocks = 37, 5
        covered = []
        for i in range(blocks):
            start, stop = block_bounds(extent, blocks, i)
            covered.extend(range(start, stop))
        assert covered == list(range(extent))

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            block_bounds(10, 3, 3)
        with pytest.raises(ValueError):
            block_bounds(10, 0, 0)


class TestGrid3D:
    def test_zeros_shape(self):
        grid = Grid3D.zeros(ProblemSize(4, 5, 6))
        assert grid.values.shape == (4, 5, 6)
        assert grid.problem == ProblemSize(4, 5, 6)

    def test_random_is_deterministic_by_seed(self):
        a = Grid3D.random(ProblemSize(3, 3, 3), seed=7)
        b = Grid3D.random(ProblemSize(3, 3, 3), seed=7)
        assert np.array_equal(a.values, b.values)

    def test_copy_is_independent(self):
        grid = Grid3D.zeros(ProblemSize(2, 2, 2))
        clone = grid.copy()
        clone.values[0, 0, 0] = 1.0
        assert grid.values[0, 0, 0] == 0.0

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            Grid3D(np.zeros((3, 3)))


class TestPartition:
    def test_shape_of_partition(self):
        blocks = partition(ProblemSize(16, 12, 8), ProcessorGrid(4, 3))
        assert len(blocks) == 3  # rows (j)
        assert len(blocks[0]) == 4  # columns (i)

    def test_blocks_cover_domain_exactly(self):
        problem = ProblemSize(17, 13, 5)
        grid = ProcessorGrid(4, 3)
        blocks = partition(problem, grid)
        total = sum(block.cells for row in blocks for block in row)
        assert total == problem.total_cells

    def test_block_indices_match_position(self):
        blocks = partition(ProblemSize(8, 8, 4), ProcessorGrid(2, 2))
        assert blocks[0][0].i == 1 and blocks[0][0].j == 1
        assert blocks[1][1].i == 2 and blocks[1][1].j == 2

    def test_view_is_writable_window(self):
        problem = ProblemSize(8, 8, 4)
        grid = Grid3D.zeros(problem)
        block = partition(problem, ProcessorGrid(2, 2))[0][1]  # i=2, j=1
        block.view(grid)[:] = 3.0
        assert np.all(grid.values[4:8, 0:4, :] == 3.0)
        assert np.all(grid.values[0:4, :, :] == 0.0)

    def test_tiles_cover_z_extent(self):
        block = Subdomain(i=1, j=1, x_range=(0, 4), y_range=(0, 4), nz=10)
        tiles = list(block.tiles(3))
        assert tiles == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_tiles_invalid_height(self):
        block = Subdomain(i=1, j=1, x_range=(0, 4), y_range=(0, 4), nz=10)
        with pytest.raises(ValueError):
            list(block.tiles(0))
