"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, format_table


def test_format_table_basic_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, separator, two rows
    assert "a" in lines[0] and "bb" in lines[0]
    # All lines equal width-aligned columns separated by two spaces.
    assert lines[1].startswith("-")


def test_format_table_with_title():
    text = format_table(["x"], [[1]], title="my table")
    assert text.splitlines()[0] == "my table"


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_table_large_and_small_floats_use_scientific():
    text = format_table(["v"], [[1.23e-7], [4.5e9]])
    assert "e-07" in text or "e-7" in text
    assert "e+09" in text or "e+9" in text


def test_format_table_zero_renders_as_zero():
    text = format_table(["v"], [[0.0]])
    assert text.splitlines()[-1].strip() == "0"


def test_table_add_row_and_render():
    table = Table(["P", "time"], title="scaling")
    table.add_row(1024, 10.0)
    table.add_row(2048, 5.0)
    assert len(table) == 2
    rendered = table.render()
    assert "scaling" in rendered
    assert "1024" in rendered


def test_table_add_row_wrong_arity():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_column_access():
    table = Table(["P", "time"])
    table.add_row(1, 10.0)
    table.add_row(2, 20.0)
    assert table.column("P") == [1, 2]
    assert table.column("time") == [10.0, 20.0]


def test_table_column_unknown_name():
    table = Table(["a"])
    with pytest.raises(KeyError):
        table.column("nope")


def test_table_to_dicts():
    table = Table(["a", "b"])
    table.add_row(1, 2)
    assert table.to_dicts() == [{"a": 1, "b": 2}]


def test_boolean_cells_render_as_words():
    text = format_table(["flag"], [[True], [False]])
    assert "True" in text and "False" in text
