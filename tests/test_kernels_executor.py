"""Tests for repro.kernels.executor (shared-memory wavefront execution)."""

import numpy as np
import pytest

from repro.core.decomposition import Corner, ProcessorGrid
from repro.kernels.executor import (
    WavefrontTaskGraph,
    distributed_ssor_iteration,
    distributed_transport_sweep,
)
from repro.kernels.ssor import ssor_iteration
from repro.kernels.transport import AngleSet, sweep_full_grid


@pytest.fixture
def transport_case():
    rng = np.random.default_rng(21)
    source = rng.random((12, 10, 8))
    sigma = rng.random((12, 10, 8)) + 0.5
    return source, sigma, AngleSet.uniform(3)


class TestWavefrontTaskGraph:
    def test_dependencies_point_upstream(self):
        graph = WavefrontTaskGraph(grid=ProcessorGrid(3, 3), tiles=2)
        assert graph.dependencies((1, 1, 0)) == []
        deps = graph.dependencies((2, 2, 1))
        assert (1, 2, 1) in deps and (2, 1, 1) in deps and (2, 2, 0) in deps

    def test_dependencies_respect_origin_corner(self):
        graph = WavefrontTaskGraph(
            grid=ProcessorGrid(3, 3), tiles=1, origin=Corner.SOUTH_EAST
        )
        assert graph.dependencies((3, 3, 0)) == []
        deps = graph.dependencies((2, 2, 0))
        assert (3, 2, 0) in deps and (2, 3, 0) in deps

    def test_level_counts_pipeline_steps(self):
        graph = WavefrontTaskGraph(grid=ProcessorGrid(4, 3), tiles=5)
        assert graph.level((1, 1, 0)) == 0
        assert graph.level((4, 3, 4)) == 3 + 2 + 4
        assert graph.total_levels() == (4 - 1) + (3 - 1) + 5

    def test_tasks_enumerates_all(self):
        graph = WavefrontTaskGraph(grid=ProcessorGrid(2, 3), tiles=4)
        assert len(graph.tasks()) == 2 * 3 * 4

    def test_serial_run_respects_dependencies(self):
        graph = WavefrontTaskGraph(grid=ProcessorGrid(3, 3), tiles=3)
        finished = set()

        def kernel(task):
            for dep in graph.dependencies(task):
                assert dep in finished, f"{task} ran before its dependency {dep}"
            finished.add(task)

        report = graph.run(kernel)
        assert report.tasks_executed == len(finished) == 27
        assert report.mode == "serial"

    def test_threaded_run_respects_dependencies(self):
        import threading

        graph = WavefrontTaskGraph(grid=ProcessorGrid(3, 3), tiles=2)
        finished = set()
        lock = threading.Lock()

        def kernel(task):
            with lock:
                for dep in graph.dependencies(task):
                    assert dep in finished
            with lock:
                finished.add(task)

        report = graph.run(kernel, threads=4)
        assert report.tasks_executed == 18
        assert report.mode == "threads=4"

    def test_threaded_run_propagates_kernel_errors(self):
        graph = WavefrontTaskGraph(grid=ProcessorGrid(2, 2), tiles=1)

        def kernel(task):
            if task == (2, 1, 0):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            graph.run(kernel, threads=2)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            WavefrontTaskGraph(grid=ProcessorGrid(2, 2), tiles=0)
        graph = WavefrontTaskGraph(grid=ProcessorGrid(2, 2), tiles=1)
        with pytest.raises(ValueError):
            graph.run(lambda task: None, threads=0)


class TestDistributedTransportSweep:
    def test_matches_reference_serial(self, transport_case):
        source, sigma, angles = transport_case
        reference = sweep_full_grid(source, sigma, angles)
        flux, report = distributed_transport_sweep(
            source, sigma, angles, ProcessorGrid(3, 2), htile=2
        )
        assert np.array_equal(flux, reference.scalar_flux)
        assert report.tasks_executed == 3 * 2 * 4

    def test_matches_reference_threaded(self, transport_case):
        source, sigma, angles = transport_case
        reference = sweep_full_grid(source, sigma, angles)
        flux, _ = distributed_transport_sweep(
            source, sigma, angles, ProcessorGrid(2, 2), htile=3, threads=4
        )
        assert np.allclose(flux, reference.scalar_flux)

    def test_different_decompositions_agree(self, transport_case):
        source, sigma, angles = transport_case
        flux_a, _ = distributed_transport_sweep(source, sigma, angles, ProcessorGrid(4, 2), htile=1)
        flux_b, _ = distributed_transport_sweep(source, sigma, angles, ProcessorGrid(2, 5), htile=4)
        assert np.allclose(flux_a, flux_b)

    def test_pipeline_steps_formula(self, transport_case):
        source, sigma, angles = transport_case
        _, report = distributed_transport_sweep(
            source, sigma, angles, ProcessorGrid(3, 2), htile=2
        )
        # 8 z-planes with htile=2 -> 4 tiles; levels = (3-1)+(2-1)+4.
        assert report.pipeline_steps == 2 + 1 + 4

    def test_shape_validation(self, transport_case):
        source, sigma, angles = transport_case
        with pytest.raises(ValueError):
            distributed_transport_sweep(source[:, :, 0], sigma[:, :, 0], angles, ProcessorGrid(2, 2))


class TestDistributedSsor:
    def test_matches_reference(self):
        rng = np.random.default_rng(22)
        values = rng.random((10, 12, 6))
        rhs = rng.random((10, 12, 6))
        reference = ssor_iteration(values, rhs)
        result, lower, upper = distributed_ssor_iteration(values, rhs, ProcessorGrid(2, 3))
        assert np.allclose(result, reference)
        assert lower.tasks_executed == upper.tasks_executed == 6

    def test_matches_reference_threaded(self):
        rng = np.random.default_rng(23)
        values = rng.random((8, 8, 4))
        rhs = rng.random((8, 8, 4))
        reference = ssor_iteration(values, rhs)
        result, *_ = distributed_ssor_iteration(values, rhs, ProcessorGrid(4, 2), threads=3)
        assert np.allclose(result, reference)

    def test_input_not_modified(self):
        rng = np.random.default_rng(24)
        values = rng.random((6, 6, 3))
        rhs = rng.random((6, 6, 3))
        original = values.copy()
        distributed_ssor_iteration(values, rhs, ProcessorGrid(2, 2))
        assert np.array_equal(values, original)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            distributed_ssor_iteration(
                np.zeros((4, 4, 4)), np.zeros((3, 4, 4)), ProcessorGrid(2, 2)
            )
