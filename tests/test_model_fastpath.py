"""Fast-path vs exact equivalence tests for the StartP prediction engine.

The fast prediction engine (closed-form evaluation for homogeneous costs,
period-folded evaluation for multi-core periodic costs) must reproduce the
exact ``StartP`` grid walk to within floating-point reassociation noise.
These tests cross-check the two evaluators across a randomised matrix of
applications (Sweep3D / LU / Chimaera), platforms (single-core, dual-core,
quad-core, 8-core, 16-core/4-bus XT4; IBM SP/2), processor grids and core
mappings, plus targeted edge cases (single rows/columns, grids off the
period, custom mappings).
"""

from __future__ import annotations

import pytest

from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.core.decomposition import CoreMapping, ProblemSize, ProcessorGrid, decompose
from repro.core.model import fill_times, iteration_prediction
from repro.core.predictor import clear_prediction_cache, predict
from repro.platforms import cray_xt4, cray_xt4_single_core, ibm_sp2

#: Maximum relative error allowed between the fast and exact evaluators.
REL_TOL = 1e-9


def _specs():
    problem = ProblemSize(64, 64, 32)
    return [
        chimaera(problem, iterations=1),
        lu(problem, iterations=1),
        sweep3d(problem, config=Sweep3DConfig(mk=4, mmi=3, mmo=6), iterations=1),
    ]


def _platforms():
    return [
        cray_xt4_single_core(),
        cray_xt4(),
        cray_xt4(cores_per_node=4),
        cray_xt4(cores_per_node=8),
        cray_xt4(cores_per_node=16, buses_per_node=4),
        ibm_sp2(),
    ]


def _mappings_for(platform):
    """The default mapping plus every rectangle factorisation of the node."""
    cores = platform.node.cores_per_node
    mappings = [None]
    for cx in range(1, cores + 1):
        if cores % cx == 0:
            mappings.append(CoreMapping(cx=cx, cy=cores // cx))
    return mappings


def _assert_equivalent(spec, platform, grid, mapping):
    exact = fill_times(spec, platform, grid, mapping, method="exact")
    fast = fill_times(spec, platform, grid, mapping, method="fast")
    for name in ("tdiagfill", "tfullfill", "tdiagfill_work", "tfullfill_work"):
        a, b = getattr(exact, name), getattr(fast, name)
        assert abs(a - b) <= REL_TOL * max(1.0, abs(a)), (
            f"{name} mismatch for {spec.name} on {platform.name} "
            f"grid {grid.n}x{grid.m} mapping {mapping}: exact={a!r} fast={b!r}"
        )


class TestFastPathMatchesExact:
    def test_randomised_matrix(self, seeded_rng):
        """Property-style sweep over (spec, platform, grid, mapping) tuples."""
        rng = seeded_rng
        specs = _specs()
        platforms = _platforms()
        dimensions = [1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 24, 31, 32, 33, 48, 64, 96]
        for _ in range(250):
            spec = rng.choice(specs)
            platform = rng.choice(platforms)
            grid = ProcessorGrid(rng.choice(dimensions), rng.choice(dimensions))
            mapping = rng.choice(_mappings_for(platform))
            _assert_equivalent(spec, platform, grid, mapping)

    @pytest.mark.parametrize("n,m", [(1, 1), (1, 16), (16, 1), (2, 2), (512, 256)])
    def test_edge_grids_multicore(self, n, m, xt4):
        spec = chimaera(ProblemSize(64, 64, 32), iterations=1)
        _assert_equivalent(spec, xt4, ProcessorGrid(n, m), None)

    @pytest.mark.parametrize("n,m", [(1, 1), (1, 16), (16, 1), (513, 255)])
    def test_edge_grids_single_core(self, n, m, xt4_single):
        spec = chimaera(ProblemSize(64, 64, 32), iterations=1)
        _assert_equivalent(spec, xt4_single, ProcessorGrid(n, m), None)

    def test_grids_off_the_period(self):
        """Dimensions not divisible by (Cx, Cy) exercise the residue folding."""
        spec = chimaera(ProblemSize(64, 64, 32), iterations=1)
        platform = cray_xt4(cores_per_node=16, buses_per_node=4)
        for n, m in [(97, 63), (101, 51), (130, 34), (64, 129)]:
            _assert_equivalent(spec, platform, ProcessorGrid(n, m), None)

    def test_wide_rectangular_mappings(self):
        """Cy = 1 rectangles flip the on-chip classification to the x-axis."""
        spec = lu(ProblemSize(64, 64, 32), iterations=1)
        platform = cray_xt4(cores_per_node=4)
        for mapping in (CoreMapping(4, 1), CoreMapping(1, 4), CoreMapping(2, 2)):
            _assert_equivalent(spec, platform, ProcessorGrid(96, 64), mapping)

    def test_fill_times_rejects_unknown_method(self, xt4, chimaera_small, small_grid):
        with pytest.raises(ValueError, match="method"):
            fill_times(chimaera_small, xt4, small_grid, method="magic")


class TestFastPathThroughPredictionStack:
    def test_iteration_prediction_method_equivalence(self, xt4, chimaera_small):
        grid = ProcessorGrid(32, 16)
        exact = iteration_prediction(chimaera_small, xt4, grid, method="exact")
        fast = iteration_prediction(chimaera_small, xt4, grid, method="fast")
        assert fast.time_per_iteration == pytest.approx(
            exact.time_per_iteration, rel=REL_TOL
        )
        assert fast.computation_per_iteration == pytest.approx(
            exact.computation_per_iteration, rel=REL_TOL
        )

    def test_predict_method_equivalence_at_scale(self, xt4, chimaera_small):
        clear_prediction_cache()
        exact = predict(chimaera_small, xt4, total_cores=16384, method="exact")
        fast = predict(chimaera_small, xt4, total_cores=16384, method="fast")
        auto = predict(chimaera_small, xt4, total_cores=16384)
        assert fast.time_per_iteration_us == pytest.approx(
            exact.time_per_iteration_us, rel=REL_TOL
        )
        assert auto.time_per_iteration_us == pytest.approx(
            exact.time_per_iteration_us, rel=REL_TOL
        )

    def test_predict_rejects_unknown_method(self, xt4, chimaera_small):
        with pytest.raises(ValueError, match="method"):
            predict(chimaera_small, xt4, total_cores=16, method="turbo")

    def test_production_scale_decomposition(self, xt4):
        """The Figure 6 extreme: 131,072 processors, fast path engaged."""
        spec = chimaera(ProblemSize(240, 240, 240), iterations=1)
        grid = decompose(131072)
        _assert_equivalent(spec, xt4, grid, None)
