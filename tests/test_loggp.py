"""Tests for repro.core.loggp (platform parameter types)."""

import pytest

from repro.core.loggp import (
    DEFAULT_EAGER_LIMIT_BYTES,
    NodeArchitecture,
    OffNodeParams,
    OnChipParams,
    Platform,
)
from repro.platforms.xt4 import XT4_G, XT4_L, XT4_O


def make_off_node(**overrides):
    params = dict(latency=0.3, overhead=4.0, gap_per_byte=0.0004)
    params.update(overrides)
    return OffNodeParams(**params)


def make_on_chip(**overrides):
    params = dict(
        copy_overhead=2.0, dma_setup=1.8, gap_per_byte_copy=0.0008, gap_per_byte_dma=0.00007
    )
    params.update(overrides)
    return OnChipParams(**params)


class TestOffNodeParams:
    def test_defaults(self):
        params = make_off_node()
        assert params.eager_limit == DEFAULT_EAGER_LIMIT_BYTES
        assert params.handshake_overhead == 0.0
        assert params.gap == 0.0

    def test_handshake_time_is_round_trip_latency(self):
        params = make_off_node(latency=5.0)
        assert params.handshake_time == pytest.approx(10.0)

    def test_handshake_time_includes_handshake_overhead(self):
        params = make_off_node(latency=5.0, handshake_overhead=1.0)
        assert params.handshake_time == pytest.approx(12.0)

    def test_bandwidth_is_inverse_of_gap(self):
        params = make_off_node(gap_per_byte=0.0004)
        assert params.bandwidth_bytes_per_us == pytest.approx(2500.0)

    def test_zero_gap_means_infinite_bandwidth(self):
        params = make_off_node(gap_per_byte=0.0)
        assert params.bandwidth_bytes_per_us == float("inf")

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_off_node(latency=-1.0)
        with pytest.raises(ValueError):
            make_off_node(overhead=-1.0)
        with pytest.raises(ValueError):
            make_off_node(gap_per_byte=-1.0)

    def test_frozen(self):
        params = make_off_node()
        with pytest.raises(AttributeError):
            params.latency = 1.0  # type: ignore[misc]


class TestOnChipParams:
    def test_overhead_is_copy_plus_dma(self):
        params = make_on_chip(copy_overhead=1.98, dma_setup=1.82)
        assert params.overhead == pytest.approx(3.80)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_on_chip(dma_setup=-0.1)


class TestNodeArchitecture:
    def test_defaults_single_core(self):
        node = NodeArchitecture()
        assert node.cores_per_node == 1
        assert node.buses_per_node == 1
        assert node.cores_per_bus == 1

    def test_cores_per_bus(self):
        node = NodeArchitecture(cores_per_node=16, buses_per_node=4)
        assert node.cores_per_bus == 4

    def test_rejects_indivisible_buses(self):
        with pytest.raises(ValueError):
            NodeArchitecture(cores_per_node=6, buses_per_node=4)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            NodeArchitecture(cores_per_node=0)
        with pytest.raises(ValueError):
            NodeArchitecture(cores_per_node=2, buses_per_node=0)


class TestPlatform:
    def test_multicore_requires_on_chip_params(self):
        with pytest.raises(ValueError):
            Platform(
                name="bad",
                off_node=make_off_node(),
                on_chip=None,
                node=NodeArchitecture(cores_per_node=2),
            )

    def test_is_multicore(self):
        single = Platform(name="s", off_node=make_off_node())
        multi = Platform(
            name="m",
            off_node=make_off_node(),
            on_chip=make_on_chip(),
            node=NodeArchitecture(cores_per_node=4),
        )
        assert not single.is_multicore
        assert multi.is_multicore

    def test_with_cores_per_node_changes_node_only(self):
        base = Platform(
            name="base",
            off_node=make_off_node(),
            on_chip=make_on_chip(),
            node=NodeArchitecture(cores_per_node=2),
        )
        variant = base.with_cores_per_node(8, buses_per_node=2)
        assert variant.node.cores_per_node == 8
        assert variant.node.buses_per_node == 2
        assert variant.off_node == base.off_node
        assert "8core" in variant.name and "2bus" in variant.name

    def test_compute_scale_applies_to_work(self):
        fast = Platform(
            name="fast", off_node=make_off_node(), compute_scale=0.5
        )
        assert fast.scaled_work(10.0) == pytest.approx(5.0)

    def test_with_compute_scale(self):
        base = Platform(name="p", off_node=make_off_node())
        faster = base.with_compute_scale(0.25)
        assert faster.compute_scale == 0.25
        assert base.compute_scale == 1.0

    def test_compute_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            Platform(name="p", off_node=make_off_node(), compute_scale=0.0)


def test_xt4_constants_match_table2():
    """The published Table 2 values are encoded exactly."""
    assert XT4_G == pytest.approx(0.0004)
    assert XT4_L == pytest.approx(0.305)
    assert XT4_O == pytest.approx(3.92)
