"""Tests for repro.simulator.collectives (all-reduce building blocks)."""

import pytest

from repro.simulator.collectives import (
    allreduce_ops,
    allreduce_tag_span,
    largest_power_of_two,
    pairwise_exchange_ops,
)
from repro.simulator.machine import Recv, Send, SimulatedMachine
from repro.platforms import cray_xt4, cray_xt4_single_core


class TestLargestPowerOfTwo:
    @pytest.mark.parametrize(
        "value,expected", [(1, 1), (2, 2), (3, 2), (4, 4), (7, 4), (8, 8), (1000, 512)]
    )
    def test_values(self, value, expected):
        assert largest_power_of_two(value) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            largest_power_of_two(0)


class TestPairwiseExchange:
    def test_lower_rank_sends_first(self):
        ops = list(pairwise_exchange_ops(0, 1, 100, 7))
        assert isinstance(ops[0], Send) and isinstance(ops[1], Recv)
        ops_high = list(pairwise_exchange_ops(1, 0, 100, 7))
        assert isinstance(ops_high[0], Recv) and isinstance(ops_high[1], Send)

    def test_self_exchange_is_empty(self):
        assert list(pairwise_exchange_ops(3, 3, 100, 7)) == []


class TestAllReduceOps:
    def test_single_rank_is_empty(self):
        assert list(allreduce_ops(0, 1, 8, 0)) == []

    @pytest.mark.parametrize("total", [2, 4, 8, 16])
    def test_power_of_two_op_counts(self, total):
        """Every rank does exactly 2*log2(P) operations (send+recv per round)."""
        import math

        rounds = int(math.log2(total))
        for rank in range(total):
            ops = list(allreduce_ops(rank, total, 8, 0))
            assert len(ops) == 2 * rounds

    @pytest.mark.parametrize("total", [3, 5, 6, 7, 12])
    def test_non_power_of_two_sends_match_receives(self, total):
        """Across all ranks, every send must have a matching receive."""
        sends = []
        recvs = []
        for rank in range(total):
            for op in allreduce_ops(rank, total, 8, 0):
                if isinstance(op, Send):
                    sends.append((rank, op.dst, op.tag))
                else:
                    recvs.append((op.src, rank, op.tag))
        assert sorted(sends) == sorted(recvs)

    @pytest.mark.parametrize("total", [2, 3, 4, 6, 8, 16, 24])
    def test_simulated_allreduce_completes(self, total):
        """The op sequences execute without deadlock on the simulated machine."""
        platform = cray_xt4_single_core()
        machine = SimulatedMachine(platform, total)
        for rank in range(total):
            machine.add_rank_program(rank, iter(list(allreduce_ops(rank, total, 8, 0))))
        stats = machine.run()
        assert stats.makespan > 0

    def test_allreduce_cost_grows_with_ranks(self):
        from repro.simulator.pingpong import allreduce_benchmark

        platform = cray_xt4()
        assert allreduce_benchmark(platform, 16) > allreduce_benchmark(platform, 4)

    def test_tag_span_covers_phases(self):
        assert allreduce_tag_span(16) >= 2 + 4
        assert allreduce_tag_span(1) >= 3
