"""Tests for repro.analysis.htile (the Figure 5 design study)."""

import pytest

from repro.analysis.htile import htile_study, optimal_htile
from repro.apps.sweep3d import Sweep3DConfig
from repro.apps.workloads import chimaera_240cubed, sweep3d_20m
from repro.platforms import cray_xt4, ibm_sp2


HTILE_VALUES = (1, 2, 3, 4, 5, 6, 8, 10)


def chimaera_builder(htile):
    return chimaera_240cubed(htile=htile)


def sweep3d_builder(htile):
    return sweep3d_20m(htile=htile)


class TestHtileStudy:
    def test_study_has_one_point_per_value(self, xt4):
        study = htile_study(chimaera_builder, xt4, 4096, HTILE_VALUES)
        assert [p.htile for p in study.points] == list(map(float, HTILE_VALUES))
        assert study.application == "chimaera"
        assert study.total_cores == 4096

    def test_empty_values_rejected(self, xt4):
        with pytest.raises(ValueError):
            htile_study(chimaera_builder, xt4, 4096, [])

    def test_optimum_is_minimum_time(self, xt4):
        study = htile_study(chimaera_builder, xt4, 4096, HTILE_VALUES)
        best = study.optimal
        assert all(best.time_per_time_step_s <= p.time_per_time_step_s for p in study.points)

    def test_chimaera_4k_optimum_in_paper_band(self, xt4):
        """Figure 5: Htile of 2-5 minimises the 240^3 problem on 4K processors."""
        best = optimal_htile(chimaera_builder, xt4, 4096, HTILE_VALUES)
        assert 2 <= best <= 5

    def test_sweep3d_16k_optimum_not_at_one(self, xt4):
        best = optimal_htile(sweep3d_builder, xt4, 16384, HTILE_VALUES)
        assert best > 1

    def test_blocking_improves_over_htile_one(self, xt4):
        """Chimaera's projected gain from the blocking parameter (Section 5.1)."""
        study = htile_study(chimaera_builder, xt4, 16384, HTILE_VALUES)
        assert study.improvement_over(1.0) > 0.10

    def test_improvement_over_unknown_value(self, xt4):
        study = htile_study(chimaera_builder, xt4, 4096, (1, 2))
        with pytest.raises(ValueError):
            study.improvement_over(7.0)

    def test_fill_fraction_grows_with_htile(self, xt4):
        study = htile_study(chimaera_builder, xt4, 4096, (1, 4, 10))
        fills = [p.pipeline_fill_fraction for p in study.points]
        assert fills[0] < fills[1] < fills[2]

    def test_communication_fraction_falls_with_htile(self, xt4):
        study = htile_study(chimaera_builder, xt4, 4096, (1, 4, 10))
        comm = [p.communication_fraction for p in study.points]
        assert comm[0] > comm[2]

    def test_sp2_optimum_larger_than_xt4(self):
        """The paper contrasts Htile 2-5 on the XT4 with 5-10 on the SP/2: a
        platform with expensive messages favours taller tiles."""
        xt4_best = optimal_htile(sweep3d_builder, cray_xt4(), 4096, HTILE_VALUES)
        sp2_best = optimal_htile(sweep3d_builder, ibm_sp2(), 4096, HTILE_VALUES)
        assert sp2_best >= xt4_best
        assert sp2_best >= 5
