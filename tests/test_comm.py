"""Tests for repro.core.comm (Table 1 equations and the all-reduce model)."""

import math

import pytest

from repro.core.comm import (
    ALLREDUCE_PAYLOAD_BYTES,
    CommunicationCosts,
    allreduce_time,
    receive_cost,
    receive_off_node,
    receive_on_chip,
    send_cost,
    send_off_node,
    send_on_chip,
    total_comm,
    total_comm_off_node,
    total_comm_on_chip,
)
from repro.platforms import cray_xt4, cray_xt4_single_core, ibm_sp2
from repro.platforms.xt4 import (
    XT4_G,
    XT4_G_COPY,
    XT4_G_DMA,
    XT4_L,
    XT4_O,
    XT4_O_COPY,
    XT4_O_ONCHIP,
)


@pytest.fixture
def off(xt4):
    return xt4.off_node


@pytest.fixture
def on(xt4):
    return xt4.on_chip


class TestOffNodeEquations:
    def test_small_message_equation_1(self, off):
        """Equation (1): o + M G + L + o."""
        size = 512
        expected = XT4_O + size * XT4_G + XT4_L + XT4_O
        assert total_comm_off_node(off, size) == pytest.approx(expected)

    def test_large_message_equation_2(self, off):
        """Equation (2): o + h + o + M G + L + o with h = 2 L."""
        size = 4096
        handshake = 2 * XT4_L
        expected = 3 * XT4_O + handshake + size * XT4_G + XT4_L
        assert total_comm_off_node(off, size) == pytest.approx(expected)

    def test_discontinuity_at_eager_limit(self, off):
        below = total_comm_off_node(off, 1024)
        above = total_comm_off_node(off, 1025)
        assert above > below
        # The jump is the extra overhead plus the handshake (minus one byte of G).
        assert above - below == pytest.approx(XT4_O + 2 * XT4_L + XT4_G, rel=1e-6)

    def test_slope_equals_g_on_both_sides(self, off):
        small_slope = (total_comm_off_node(off, 1000) - total_comm_off_node(off, 500)) / 500
        large_slope = (total_comm_off_node(off, 9000) - total_comm_off_node(off, 5000)) / 4000
        assert small_slope == pytest.approx(XT4_G)
        assert large_slope == pytest.approx(XT4_G)

    def test_send_small_is_overhead_only(self, off):
        assert send_off_node(off, 100) == pytest.approx(XT4_O)

    def test_send_large_includes_handshake(self, off):
        assert send_off_node(off, 2000) == pytest.approx(XT4_O + 2 * XT4_L)

    def test_receive_small_is_overhead_only(self, off):
        assert receive_off_node(off, 100) == pytest.approx(XT4_O)

    def test_receive_large_equation_4b(self, off):
        size = 2048
        expected = XT4_L + XT4_O + size * XT4_G + XT4_L + XT4_O
        assert receive_off_node(off, size) == pytest.approx(expected)

    def test_negative_size_rejected(self, off):
        with pytest.raises(ValueError):
            total_comm_off_node(off, -1)

    def test_zero_size_message_is_just_overheads_and_latency(self, off):
        assert total_comm_off_node(off, 0) == pytest.approx(2 * XT4_O + XT4_L)


class TestOnChipEquations:
    def test_small_message_equation_5(self, on):
        size = 800
        expected = 2 * XT4_O_COPY + size * XT4_G_COPY
        assert total_comm_on_chip(on, size) == pytest.approx(expected)

    def test_large_message_equation_6(self, on):
        size = 4096
        expected = XT4_O_ONCHIP + size * XT4_G_DMA + XT4_O_COPY
        assert total_comm_on_chip(on, size) == pytest.approx(expected)

    def test_small_slope_larger_than_large_slope(self, on):
        """Figure 3(b): the copy path has a steeper slope than the DMA path."""
        small_slope = (total_comm_on_chip(on, 1000) - total_comm_on_chip(on, 200)) / 800
        large_slope = (total_comm_on_chip(on, 10000) - total_comm_on_chip(on, 2000)) / 8000
        assert small_slope > large_slope

    def test_send_and_receive_small(self, on):
        assert send_on_chip(on, 512) == pytest.approx(XT4_O_COPY)
        assert receive_on_chip(on, 512) == pytest.approx(XT4_O_COPY)

    def test_send_large_equation_8a(self, on):
        assert send_on_chip(on, 4096) == pytest.approx(XT4_O_ONCHIP)

    def test_receive_large_equation_8b(self, on):
        size = 4096
        assert receive_on_chip(on, size) == pytest.approx(size * XT4_G_DMA + XT4_O_COPY)


class TestPlatformDispatch:
    def test_total_comm_dispatch(self, xt4):
        assert total_comm(xt4, 512, on_chip=False) == pytest.approx(
            total_comm_off_node(xt4.off_node, 512)
        )
        assert total_comm(xt4, 512, on_chip=True) == pytest.approx(
            total_comm_on_chip(xt4.on_chip, 512)
        )

    def test_send_receive_dispatch(self, xt4):
        assert send_cost(xt4, 2048, on_chip=True) == pytest.approx(
            send_on_chip(xt4.on_chip, 2048)
        )
        assert receive_cost(xt4, 2048, on_chip=False) == pytest.approx(
            receive_off_node(xt4.off_node, 2048)
        )

    def test_on_chip_dispatch_requires_on_chip_params(self, sp2):
        with pytest.raises(ValueError):
            total_comm(sp2, 100, on_chip=True)

    def test_on_chip_cheaper_than_off_node_on_xt4(self, xt4):
        """Section 3.2: the per-byte path is faster on-chip for all sizes."""
        for size in (64, 1024, 4096, 65536):
            assert total_comm(xt4, size, on_chip=True) < total_comm(xt4, size, on_chip=False)

    def test_sp2_much_slower_than_xt4(self, xt4, sp2):
        """Table 2 comparison: SP/2 costs are 1-2 orders of magnitude higher."""
        assert total_comm(sp2, 1024) > 10 * total_comm(xt4, 1024)


class TestCommunicationCosts:
    def test_for_message_matches_functions(self, xt4):
        costs = CommunicationCosts.for_message(xt4, 2048, on_chip=False)
        assert costs.send == pytest.approx(send_cost(xt4, 2048))
        assert costs.receive == pytest.approx(receive_cost(xt4, 2048))
        assert costs.total == pytest.approx(total_comm(xt4, 2048))
        assert costs.message_bytes == 2048

    def test_with_added_contention(self, xt4):
        costs = CommunicationCosts.for_message(xt4, 100)
        bumped = costs.with_added(send_extra=1.0, receive_extra=2.0)
        assert bumped.send == pytest.approx(costs.send + 1.0)
        assert bumped.receive == pytest.approx(costs.receive + 2.0)
        assert bumped.total == pytest.approx(costs.total + 3.0)


class TestAllReduce:
    def test_single_core_reduces_to_log_p(self, xt4_single):
        """Equation (9) with C = 1: log2(P) * TotalComm."""
        p = 64
        expected = math.log2(p) * total_comm(xt4_single, ALLREDUCE_PAYLOAD_BYTES)
        assert allreduce_time(xt4_single, p) == pytest.approx(expected)

    def test_dual_core_equation_9(self, xt4):
        p, c = 128, 2
        off = total_comm(xt4, 8, on_chip=False)
        on = total_comm(xt4, 8, on_chip=True)
        expected = (math.log2(p) - math.log2(c)) * c * off + math.log2(c) * c * on
        assert allreduce_time(xt4, p) == pytest.approx(expected)

    def test_single_rank_is_free(self, xt4):
        assert allreduce_time(xt4, 1) == 0.0

    def test_grows_logarithmically(self, xt4):
        t256 = allreduce_time(xt4, 256)
        t512 = allreduce_time(xt4, 512)
        t1024 = allreduce_time(xt4, 1024)
        assert t512 > t256
        assert t1024 - t512 == pytest.approx(t512 - t256, rel=1e-6)

    def test_rejects_non_positive_cores(self, xt4):
        with pytest.raises(ValueError):
            allreduce_time(xt4, 0)

    def test_negligible_versus_iteration_time(self, xt4):
        """Section 1: synchronisation/collective costs are negligible on the XT4."""
        assert allreduce_time(xt4, 8192) < 1000.0  # < 1 ms
