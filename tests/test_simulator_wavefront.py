"""Tests for repro.simulator.wavefront (full wavefront application simulation)."""

import pytest

from repro.apps.base import FillClass
from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.model import iteration_prediction
from repro.simulator.wavefront import WavefrontSimulator, simulate_wavefront


@pytest.fixture
def problem():
    return ProblemSize(32, 32, 16)


class TestSimulatorConstruction:
    def test_requires_exactly_one_of_grid_or_cores(self, problem, xt4_single):
        spec = lu(problem, iterations=1)
        with pytest.raises(ValueError):
            WavefrontSimulator(spec, xt4_single)
        with pytest.raises(ValueError):
            WavefrontSimulator(
                spec, xt4_single, grid=ProcessorGrid(2, 2), total_cores=4
            )

    def test_rejects_bad_iterations(self, problem, xt4_single):
        with pytest.raises(ValueError):
            WavefrontSimulator(lu(problem), xt4_single, total_cores=4, iterations=0)

    def test_rank_to_node_respects_core_rectangles(self, problem, xt4):
        simulator = WavefrontSimulator(
            lu(problem, iterations=1), xt4, grid=ProcessorGrid(4, 4)
        )
        assignment = simulator.rank_to_node()
        grid = simulator.grid
        # Dual-core 1x2 mapping: (i, 1) and (i, 2) share a node.
        assert assignment[grid.rank_of(1, 1)] == assignment[grid.rank_of(1, 2)]
        assert assignment[grid.rank_of(1, 1)] != assignment[grid.rank_of(2, 1)]
        assert assignment[grid.rank_of(1, 3)] != assignment[grid.rank_of(1, 2)]


class TestSimulationBasics:
    def test_single_processor_run_is_pure_compute(self, problem, xt4_single):
        spec = chimaera(problem, iterations=1)
        result = simulate_wavefront(
            spec, xt4_single, grid=ProcessorGrid(1, 1), simulate_nonwavefront=False
        )
        tiles = spec.tiles_per_stack()
        expected = spec.nsweeps * tiles * spec.work_per_tile(ProcessorGrid(1, 1), xt4_single)
        assert result.makespan_us == pytest.approx(expected)
        assert result.stats.total_messages == 0

    def test_sweep_completions_are_ordered(self, problem, xt4_single):
        result = simulate_wavefront(
            chimaera(problem, iterations=1), xt4_single, total_cores=16
        )
        completions = list(result.sweep_completion_us)
        assert len(completions) == 8
        assert completions == sorted(completions)

    def test_message_counts_match_structure(self, problem, xt4_single):
        """Each sweep sends one EW and one NS message per tile per interior edge."""
        spec = lu(problem, iterations=1)
        grid = ProcessorGrid(2, 2)
        result = simulate_wavefront(
            spec, xt4_single, grid=grid, simulate_nonwavefront=False
        )
        tiles = int(spec.tiles_per_stack())
        # 2x2 grid: per sweep, 2 east-west edges and 2 north-south edges.
        expected = spec.nsweeps * tiles * 4
        assert result.stats.total_messages == expected

    def test_multiple_iterations_scale_makespan(self, problem, xt4_single):
        spec = chimaera(problem, iterations=1)
        one = simulate_wavefront(spec, xt4_single, total_cores=16, iterations=1)
        two = simulate_wavefront(spec, xt4_single, total_cores=16, iterations=2)
        assert two.makespan_us == pytest.approx(2 * one.makespan_us, rel=0.02)
        assert two.time_per_iteration_us == pytest.approx(
            one.time_per_iteration_us, rel=0.02
        )

    def test_contention_toggle_changes_time_on_multicore(self, problem, xt4):
        spec = chimaera(problem, iterations=1)
        with_contention = simulate_wavefront(
            spec, xt4, total_cores=16, enable_contention=True
        )
        without = simulate_wavefront(
            spec, xt4, total_cores=16, enable_contention=False
        )
        assert with_contention.makespan_us >= without.makespan_us


class TestPrecedenceStructure:
    def test_full_barrier_delays_following_sweep(self, problem, xt4_single):
        """In LU the second sweep only starts after the first completes
        everywhere, so the iteration takes at least two fills + two stacks."""
        spec = lu(problem, iterations=1)
        grid = ProcessorGrid(4, 4)
        result = simulate_wavefront(spec, xt4_single, grid=grid, simulate_nonwavefront=False)
        prediction = iteration_prediction(spec, xt4_single, grid)
        minimum = 2 * prediction.tstack + prediction.tfullfill
        assert result.makespan_us > minimum

    def test_chimaera_slower_than_sweep3d_like_schedule(self, problem, xt4_single):
        """More full-completion hand-offs (nfull=4 vs 2) cost real time."""
        chim = chimaera(problem, iterations=1)
        swp = sweep3d(problem, config=Sweep3DConfig(mk=2, mmi=6, mmo=6), iterations=1)
        # Give both codes identical per-cell work and message sizes so only the
        # precedence structure differs.
        swp = swp.with_wg(chim.wg_us)
        chim = chim.with_htile(swp.htile)
        grid = ProcessorGrid(4, 4)
        t_chim = simulate_wavefront(chim, xt4_single, grid=grid, simulate_nonwavefront=False)
        t_swp = simulate_wavefront(swp, xt4_single, grid=grid, simulate_nonwavefront=False)
        assert t_chim.makespan_us > t_swp.makespan_us

    def test_fill_classes_expose_expected_fills(self, problem, xt4_single):
        """An all-NONE schedule (except the final FULL) is faster than an
        all-FULL schedule with the same number of sweeps."""
        from repro.apps.base import SweepPhase, SweepSchedule
        from repro.core.decomposition import Corner

        base = chimaera(problem, iterations=1)
        relaxed = base.with_schedule(
            SweepSchedule.from_phases(
                [SweepPhase(Corner.NORTH_WEST, FillClass.NONE)] * 7
                + [SweepPhase(Corner.NORTH_WEST, FillClass.FULL)]
            )
        )
        strict = base.with_schedule(
            SweepSchedule.from_phases(
                [SweepPhase(Corner.NORTH_WEST, FillClass.FULL)] * 8
            )
        )
        grid = ProcessorGrid(4, 4)
        t_relaxed = simulate_wavefront(relaxed, xt4_single, grid=grid, simulate_nonwavefront=False)
        t_strict = simulate_wavefront(strict, xt4_single, grid=grid, simulate_nonwavefront=False)
        assert t_strict.makespan_us > t_relaxed.makespan_us


class TestModelAgreement:
    """The headline validation: the analytic model tracks the simulation."""

    @pytest.mark.parametrize(
        "spec_builder,cores",
        [
            (lambda p: lu(p, iterations=1), 16),
            (lambda p: chimaera(p, iterations=1), 16),
            (lambda p: sweep3d(p, config=Sweep3DConfig(mk=4), iterations=1), 16),
        ],
    )
    def test_single_core_model_within_two_percent(self, problem, xt4_single, spec_builder, cores):
        spec = spec_builder(problem)
        grid = ProcessorGrid(4, 4)
        sim = simulate_wavefront(spec, xt4_single, grid=grid)
        model = iteration_prediction(spec, xt4_single, grid).time_per_iteration
        assert abs(model - sim.time_per_iteration_us) / sim.time_per_iteration_us < 0.02

    @pytest.mark.parametrize(
        "spec_builder",
        [
            lambda p: lu(p, iterations=1),
            lambda p: chimaera(p, iterations=1),
            lambda p: sweep3d(p, config=Sweep3DConfig(mk=4), iterations=1),
        ],
    )
    def test_dual_core_model_within_ten_percent(self, xt4, spec_builder):
        """The paper's multicore accuracy claim: <10% error for configurations
        in which computation is not dwarfed by communication."""
        spec = spec_builder(ProblemSize(64, 64, 32))
        grid = ProcessorGrid(4, 4)
        sim = simulate_wavefront(spec, xt4, grid=grid)
        model = iteration_prediction(spec, xt4, grid).time_per_iteration
        assert abs(model - sim.time_per_iteration_us) / sim.time_per_iteration_us < 0.10

    def test_dual_core_small_subdomain_within_twentyfive_percent(self, problem, xt4):
        """For communication-dominated (small subdomain) configurations the
        paper reports errors 'in the order of 25%'; the reproduction behaves
        the same way."""
        spec = chimaera(problem, iterations=1)
        grid = ProcessorGrid(4, 4)
        sim = simulate_wavefront(spec, xt4, grid=grid)
        model = iteration_prediction(spec, xt4, grid).time_per_iteration
        assert abs(model - sim.time_per_iteration_us) / sim.time_per_iteration_us < 0.25
