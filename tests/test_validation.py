"""Tests for repro.validation (model vs simulator comparison harness)."""

import pytest

from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.core.decomposition import ProblemSize
from repro.backends import PredictionRequest
from repro.validation.compare import (
    ValidationResult,
    ValidationSummary,
    diff_backends,
    validate_allreduce,
    validate_configuration,
    validate_matrix,
)


@pytest.fixture
def problem():
    return ProblemSize(48, 48, 24)


class TestValidationResult:
    def test_relative_error_signed(self):
        result = ValidationResult(
            application="x", platform="p", total_cores=4, cores_per_node=1,
            model_us=110.0, simulated_us=100.0,
        )
        assert result.relative_error == pytest.approx(0.10)
        assert result.absolute_relative_error == pytest.approx(0.10)
        under = ValidationResult(
            application="x", platform="p", total_cores=4, cores_per_node=1,
            model_us=90.0, simulated_us=100.0,
        )
        assert under.relative_error == pytest.approx(-0.10)

    def test_zero_simulated_time(self):
        result = ValidationResult(
            application="x", platform="p", total_cores=1, cores_per_node=1,
            model_us=1.0, simulated_us=0.0,
        )
        assert result.relative_error == 0.0


class TestValidateConfiguration:
    def test_single_core_lu_validates_tightly(self, problem, xt4_single):
        result = validate_configuration(lu(problem, iterations=1), xt4_single, total_cores=16)
        assert result.absolute_relative_error < 0.05
        assert result.application == "lu"
        assert result.total_cores == 16

    def test_without_nonwavefront_phase(self, problem, xt4_single):
        result = validate_configuration(
            chimaera(problem, iterations=1), xt4_single, total_cores=16,
            simulate_nonwavefront=False,
        )
        assert result.absolute_relative_error < 0.05

    def test_dual_core_within_paper_band(self, xt4):
        spec = sweep3d(ProblemSize(64, 64, 32), config=Sweep3DConfig(mk=4), iterations=1)
        result = validate_configuration(spec, xt4, total_cores=16)
        assert result.absolute_relative_error < 0.10
        assert result.cores_per_node == 2


class TestValidateMatrix:
    def test_summary_statistics(self, problem, xt4_single):
        cases = [
            (lu(problem, iterations=1), xt4_single, 16),
            (chimaera(problem, iterations=1), xt4_single, 16),
        ]
        summary = validate_matrix(cases)
        assert len(summary.results) == 2
        assert summary.max_error >= summary.mean_error >= 0
        assert summary.worst() in summary.results

    def test_by_application_filter(self, problem, xt4_single):
        cases = [
            (lu(problem, iterations=1), xt4_single, 16),
            (chimaera(problem, iterations=1), xt4_single, 16),
        ]
        summary = validate_matrix(cases)
        lu_only = summary.by_application("lu")
        assert len(lu_only.results) == 1
        assert lu_only.results[0].application == "lu"

    def test_empty_summary(self):
        summary = ValidationSummary(results=())
        assert summary.max_error == 0.0
        assert summary.mean_error == 0.0
        assert summary.worst() is None

    def test_paper_accuracy_claims_on_small_matrix(self, problem, xt4_single):
        """LU < 5%, transport codes < 10% (single-core-per-node configs)."""
        cases = [
            (lu(problem, iterations=1), xt4_single, 16),
            (lu(problem, iterations=1), xt4_single, 64),
            (chimaera(problem, iterations=1), xt4_single, 64),
            (sweep3d(problem, config=Sweep3DConfig(mk=4), iterations=1), xt4_single, 64),
        ]
        summary = validate_matrix(cases)
        assert summary.by_application("lu").max_error < 0.05
        assert summary.max_error < 0.10


class TestDiffBackends:
    def test_fast_vs_exact_engine_is_tight(self, problem, xt4):
        """The generic diff: cross-check the fast analytic engine."""
        cases = [
            (lu(problem, iterations=1), xt4, 16),
            (chimaera(problem, iterations=1), xt4, 16),
        ]
        summary = diff_backends(
            cases, candidate="analytic-fast", baseline="analytic-exact"
        )
        assert summary.max_error <= 1e-9

    def test_defaults_match_validate_matrix(self, problem, xt4_single):
        cases = [(lu(problem, iterations=1), xt4_single, 16)]
        diffed = diff_backends(cases)
        classic = validate_matrix(cases)
        assert diffed.results[0].model_us == classic.results[0].model_us
        assert diffed.results[0].simulated_us == classic.results[0].simulated_us

    def test_accepts_prediction_requests(self, problem, xt4_single):
        requests = [
            PredictionRequest(chimaera(problem, iterations=1), xt4_single, total_cores=16)
        ]
        summary = diff_backends(requests)
        assert summary.results[0].total_cores == 16

    def test_simulator_candidate_respects_nonwavefront_toggle(self, problem, xt4_single):
        """A SimulatorBackend candidate is reconfigured to exclude the
        non-wavefront phase along with the baseline, not half-applied."""
        from repro.backends import SimulatorBackend

        result = validate_configuration(
            chimaera(problem, iterations=1),
            xt4_single,
            total_cores=16,
            simulate_nonwavefront=False,
            model_backend=SimulatorBackend(),
        )
        # Same engine, same configuration on both sides: exact agreement.
        assert result.relative_error == 0.0

    def test_unadjustable_candidate_with_nonwavefront_off_rejected(self, problem, xt4_single):
        """A backend that can neither subtract Tnonwavefront nor be
        reconfigured fails loudly instead of comparing mismatched phases."""
        from repro.backends import get_backend

        class OpaqueBackend:
            name = "opaque"

            def evaluate(self, spec, platform, grid, core_mapping=None):
                inner = get_backend("simulator").evaluate(
                    spec, platform, grid, core_mapping
                )
                return inner  # carries no .prediction detail

        with pytest.raises(ValueError, match="simulate_nonwavefront"):
            validate_configuration(
                chimaera(problem, iterations=1),
                xt4_single,
                total_cores=16,
                simulate_nonwavefront=False,
                model_backend=OpaqueBackend(),
            )

    def test_matrix_with_workers_matches_serial(self, problem, xt4_single):
        cases = [
            (lu(problem, iterations=1), xt4_single, 16),
            (chimaera(problem, iterations=1), xt4_single, 16),
        ]
        serial = validate_matrix(cases)
        pooled = validate_matrix(cases, workers=2, executor="thread")
        assert [r.model_us for r in serial.results] == [
            r.model_us for r in pooled.results
        ]


class TestValidateAllreduce:
    def test_model_tracks_simulation(self, xt4):
        results = validate_allreduce(xt4, (8, 32, 128))
        assert [r.total_cores for r in results] == [8, 32, 128]
        for result in results:
            assert result.simulated_us > 0
            assert abs(result.relative_error) < 0.5

    def test_single_rank(self, xt4):
        result = validate_allreduce(xt4, (1,))[0]
        assert result.model_us == 0.0 and result.simulated_us == 0.0
        assert result.relative_error == 0.0
