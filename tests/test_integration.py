"""End-to-end integration tests exercising the full public API together.

Each test walks one of the library's intended workflows:

1. measure platform parameters -> build a platform -> predict an application;
2. measure a work rate from the real kernels -> calibrate a spec -> predict;
3. define a brand new (custom) wavefront application -> model it and check it
   against the discrete-event simulator;
4. run a small procurement study end to end.
"""

import pytest

from repro.analysis.partitioning import optimal_parallel_jobs
from repro.analysis.scaling import strong_scaling
from repro.apps.base import (
    AllReduceNonWavefront,
    FillClass,
    SweepPhase,
    SweepSchedule,
    WavefrontSpec,
)
from repro.calibration.fitting import derive_platform_parameters
from repro.calibration.workrate import calibrated_spec, measure_ssor_wg
from repro.apps.lu import lu
from repro.core.decomposition import Corner, ProblemSize
from repro.core.loggp import NodeArchitecture, Platform
from repro.core.predictor import predict
from repro.platforms import cray_xt4, cray_xt4_single_core
from repro.validation.compare import validate_configuration


class TestMeasureFitPredictWorkflow:
    def test_fitted_platform_reproduces_reference_predictions(self):
        """Fitting Table 2 from simulated ping-pong and using the fitted
        platform must give the same application predictions as the reference
        platform constants."""
        reference = cray_xt4()
        fitted_params = derive_platform_parameters(reference, repetitions=2)
        fitted_platform = Platform(
            name="xt4-refit",
            off_node=fitted_params.off_node,
            on_chip=fitted_params.on_chip,
            node=NodeArchitecture(cores_per_node=2),
        )
        spec = lu(ProblemSize(64, 64, 32), iterations=1)
        reference_prediction = predict(spec, reference, total_cores=64)
        fitted_prediction = predict(spec, fitted_platform, total_cores=64)
        assert fitted_prediction.time_per_iteration_us == pytest.approx(
            reference_prediction.time_per_iteration_us, rel=1e-6
        )


class TestCalibrateAndPredictWorkflow:
    def test_measured_work_rate_flows_into_prediction(self):
        spec = lu(ProblemSize(32, 32, 16), iterations=1)
        measurement = measure_ssor_wg(cells_per_side=4, repetitions=1)
        calibrated = calibrated_spec(spec, measurement)
        prediction = predict(calibrated, cray_xt4_single_core(), total_cores=16)
        baseline = predict(spec, cray_xt4_single_core(), total_cores=16)
        assert prediction.time_per_iteration_us != baseline.time_per_iteration_us
        assert prediction.time_per_iteration_us > 0


class TestCustomApplicationWorkflow:
    """The plug-and-play promise: a user describes a *new* wavefront code by
    its Table 3 parameters and immediately gets both a model and a simulator
    for it."""

    @staticmethod
    def custom_spec() -> WavefrontSpec:
        # A hypothetical 4-sweep code: two corner hand-offs, one diagonal,
        # ending (as always) with a full completion.
        schedule = SweepSchedule.from_phases(
            [
                SweepPhase(Corner.NORTH_WEST, FillClass.NONE),
                SweepPhase(Corner.NORTH_WEST, FillClass.DIAG),
                SweepPhase(Corner.SOUTH_WEST, FillClass.NONE),
                SweepPhase(Corner.SOUTH_WEST, FillClass.FULL),
            ]
        )
        return WavefrontSpec(
            name="custom-4sweep",
            problem=ProblemSize(48, 48, 24),
            wg_us=0.8,
            wg_pre_us=0.1,
            htile=2.0,
            schedule=schedule,
            boundary_bytes_per_cell=24.0,
            iterations=1,
            nonwavefront=AllReduceNonWavefront(count=1),
        )

    def test_table3_counts(self):
        spec = self.custom_spec()
        assert (spec.nsweeps, spec.nfull, spec.ndiag) == (4, 1, 1)

    def test_model_matches_simulator_for_custom_code(self):
        spec = self.custom_spec()
        result = validate_configuration(spec, cray_xt4_single_core(), total_cores=16)
        assert result.absolute_relative_error < 0.05

    def test_model_matches_simulator_for_custom_code_multicore(self):
        spec = self.custom_spec()
        result = validate_configuration(spec, cray_xt4(), total_cores=16)
        assert result.absolute_relative_error < 0.12


class TestProcurementStudyWorkflow:
    def test_scaling_then_partitioning_decision(self):
        """A miniature Section 5.2 study: scale-out curve plus the optimal
        number of parallel jobs for a machine size."""
        from repro.apps.workloads import chimaera_240cubed

        spec = chimaera_240cubed(htile=2, time_steps=100)
        platform = cray_xt4()
        curve = strong_scaling(spec, platform, (1024, 4096, 16384))
        assert curve.point(16384).total_time_days < curve.point(1024).total_time_days
        best = optimal_parallel_jobs(
            spec, platform, 16384, criterion="r_over_x", min_partition_cores=1024
        )
        assert best.parallel_jobs >= 1
        assert best.partition_cores * best.parallel_jobs == 16384
