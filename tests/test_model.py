"""Tests for repro.core.model (the Table 5 plug-and-play equations)."""

import pytest

from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.core.comm import CommunicationCosts
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.model import fill_times, iteration_prediction, stack_time


@pytest.fixture
def spec():
    return chimaera(ProblemSize(64, 64, 32), iterations=1)


@pytest.fixture
def grid():
    return ProcessorGrid(8, 8)


def closed_form_fill(spec, platform, grid):
    """Closed-form StartP values for the homogeneous single-core case."""
    w = spec.work_per_tile(grid, platform)
    wpre = spec.pre_work_per_tile(grid, platform)
    ew = CommunicationCosts.for_message(platform, spec.message_size_ew(grid))
    ns = CommunicationCosts.for_message(platform, spec.message_size_ns(grid))
    vertical = w + (ew.send if grid.n > 1 else 0.0) + ns.total
    horizontal_interior = w + ew.total + ns.receive
    tdiag = wpre + (grid.m - 1) * vertical
    tfull = wpre + (grid.m - 1) * vertical + (grid.n - 1) * horizontal_interior
    return tdiag, tfull


class TestFillTimes:
    def test_matches_closed_form_single_core(self, spec, grid, xt4_single):
        fills = fill_times(spec, xt4_single, grid)
        tdiag, tfull = closed_form_fill(spec, xt4_single, grid)
        assert fills.tdiagfill == pytest.approx(tdiag)
        assert fills.tfullfill == pytest.approx(tfull)

    def test_closed_form_with_precomputation(self, grid, xt4_single):
        spec = lu(ProblemSize(64, 64, 32), iterations=1)
        fills = fill_times(spec, xt4_single, grid)
        tdiag, tfull = closed_form_fill(spec, xt4_single, grid)
        assert fills.tdiagfill == pytest.approx(tdiag)
        assert fills.tfullfill == pytest.approx(tfull)

    def test_full_fill_exceeds_diag_fill(self, spec, grid, xt4_single):
        fills = fill_times(spec, xt4_single, grid)
        assert fills.tfullfill > fills.tdiagfill > 0

    def test_single_processor_grid(self, spec, xt4_single):
        fills = fill_times(spec, xt4_single, ProcessorGrid(1, 1))
        assert fills.tfullfill == pytest.approx(spec.pre_work_per_tile(ProcessorGrid(1, 1), xt4_single))

    def test_work_portion_bounded_by_total(self, spec, grid, xt4_single):
        fills = fill_times(spec, xt4_single, grid)
        assert 0 <= fills.tdiagfill_work <= fills.tdiagfill
        assert 0 <= fills.tfullfill_work <= fills.tfullfill

    def test_work_portion_counts_w_per_step(self, spec, grid, xt4_single):
        fills = fill_times(spec, xt4_single, grid)
        w = spec.work_per_tile(grid, xt4_single)
        assert fills.tdiagfill_work == pytest.approx((grid.m - 1) * w)
        assert fills.tfullfill_work == pytest.approx((grid.n + grid.m - 2) * w)

    def test_fill_grows_with_grid_dimensions_weak_scaling(self, xt4_single):
        """With a fixed per-processor subdomain, more processors = longer fill."""
        small_spec = chimaera(ProblemSize(32, 32, 32), iterations=1)
        large_spec = chimaera(ProblemSize(128, 128, 32), iterations=1)
        small = fill_times(small_spec, xt4_single, ProcessorGrid(4, 4))
        large = fill_times(large_spec, xt4_single, ProcessorGrid(16, 16))
        assert large.tfullfill > small.tfullfill

    def test_fill_grows_with_htile(self, xt4_single, grid):
        """Larger tiles mean more work per pipeline stage (Section 5.1)."""
        small = fill_times(chimaera(ProblemSize(64, 64, 32), htile=1), xt4_single, grid)
        large = fill_times(chimaera(ProblemSize(64, 64, 32), htile=4), xt4_single, grid)
        assert large.tfullfill > small.tfullfill

    def test_multicore_fill_cheaper_than_all_offnode(self, spec, grid, xt4, xt4_single):
        """On-chip hops shorten the fill relative to the all-off-node case."""
        multi = fill_times(spec, xt4, grid)
        single = fill_times(spec, xt4_single, grid)
        assert multi.tfullfill <= single.tfullfill


class TestStackTime:
    def test_equation_r4_single_core(self, spec, grid, xt4_single):
        """Tstack = (RecvW + RecvN + W + SendE + SendS + Wpre) * Nz/Htile - Wpre."""
        result = stack_time(spec, xt4_single, grid)
        ew = CommunicationCosts.for_message(xt4_single, spec.message_size_ew(grid))
        ns = CommunicationCosts.for_message(xt4_single, spec.message_size_ns(grid))
        w = spec.work_per_tile(grid, xt4_single)
        per_tile = ew.receive + ns.receive + w + ew.send + ns.send
        tiles = spec.tiles_per_stack()
        assert result.total == pytest.approx(per_tile * tiles)
        assert result.tiles == pytest.approx(tiles)

    def test_equation_r4_with_precomputation(self, grid, xt4_single):
        spec = lu(ProblemSize(64, 64, 32), iterations=1)
        result = stack_time(spec, xt4_single, grid)
        wpre = spec.pre_work_per_tile(grid, xt4_single)
        w = spec.work_per_tile(grid, xt4_single)
        ew = CommunicationCosts.for_message(xt4_single, spec.message_size_ew(grid))
        ns = CommunicationCosts.for_message(xt4_single, spec.message_size_ns(grid))
        per_tile = ew.receive + ns.receive + w + ew.send + ns.send + wpre
        expected = per_tile * spec.tiles_per_stack() - wpre
        assert result.total == pytest.approx(expected)

    def test_work_portion(self, spec, grid, xt4_single):
        result = stack_time(spec, xt4_single, grid)
        w = spec.work_per_tile(grid, xt4_single)
        assert result.work == pytest.approx(w * spec.tiles_per_stack())
        assert result.work < result.total

    def test_multicore_stack_slower_due_to_contention(self, spec, grid, xt4, xt4_single):
        """Equation (r4) uses off-node costs plus the Table 6 contention term."""
        multi = stack_time(spec, xt4, grid)
        single = stack_time(spec, xt4_single, grid)
        assert multi.total > single.total

    def test_larger_htile_fewer_tiles_less_comm(self, grid, xt4_single):
        problem = ProblemSize(64, 64, 32)
        t1 = stack_time(chimaera(problem, htile=1), xt4_single, grid)
        t4 = stack_time(chimaera(problem, htile=4), xt4_single, grid)
        assert t4.tiles == pytest.approx(t1.tiles / 4)
        # Total work is conserved, total per-sweep communication shrinks.
        assert t4.work == pytest.approx(t1.work)
        assert t4.total < t1.total


class TestIterationPrediction:
    def test_equation_r5_composition(self, spec, grid, xt4_single):
        prediction = iteration_prediction(spec, xt4_single, grid)
        expected = (
            prediction.ndiag * prediction.tdiagfill
            + prediction.nfull * prediction.tfullfill
            + prediction.nsweeps * prediction.tstack
            + prediction.tnonwavefront
        )
        assert prediction.time_per_iteration == pytest.approx(expected)

    def test_precedence_counts_copied_from_spec(self, spec, grid, xt4_single):
        prediction = iteration_prediction(spec, xt4_single, grid)
        assert (prediction.nsweeps, prediction.nfull, prediction.ndiag) == (8, 4, 2)

    def test_pipeline_fill_time(self, spec, grid, xt4_single):
        prediction = iteration_prediction(spec, xt4_single, grid)
        assert prediction.pipeline_fill_time == pytest.approx(
            4 * prediction.tfullfill + 2 * prediction.tdiagfill
        )

    def test_computation_plus_communication_equals_total(self, spec, grid, xt4_single):
        prediction = iteration_prediction(spec, xt4_single, grid)
        assert (
            prediction.computation_per_iteration + prediction.communication_per_iteration
            == pytest.approx(prediction.time_per_iteration)
        )
        assert prediction.computation_per_iteration > 0
        assert prediction.communication_per_iteration > 0

    def test_lu_nonwavefront_is_stencil_not_zero(self, grid, xt4_single):
        spec = lu(ProblemSize(64, 64, 32), iterations=1)
        prediction = iteration_prediction(spec, xt4_single, grid)
        assert prediction.tnonwavefront > 0
        assert prediction.tnonwavefront_work > 0

    def test_chimaera_iteration_slower_than_sweep3d_same_cells(self, grid, xt4_single):
        """Chimaera exposes more full fills (nfull=4 vs 2) and computes more angles."""
        problem = ProblemSize(64, 64, 32)
        c = iteration_prediction(chimaera(problem, htile=2), xt4_single, grid)
        s = iteration_prediction(
            sweep3d(problem, config=Sweep3DConfig(mk=4)), xt4_single, grid
        )
        assert c.time_per_iteration > s.time_per_iteration

    def test_more_processors_less_time(self, spec, xt4_single):
        small = iteration_prediction(spec, xt4_single, ProcessorGrid(4, 4))
        large = iteration_prediction(spec, xt4_single, ProcessorGrid(16, 16))
        assert large.time_per_iteration < small.time_per_iteration

    def test_communication_fraction_grows_with_processors(self, spec, xt4_single):
        small = iteration_prediction(spec, xt4_single, ProcessorGrid(4, 4))
        large = iteration_prediction(spec, xt4_single, ProcessorGrid(16, 16))
        frac_small = small.communication_per_iteration / small.time_per_iteration
        frac_large = large.communication_per_iteration / large.time_per_iteration
        assert frac_large > frac_small
