"""Tests for repro.platforms (XT4, SP/2, custom platforms, registry)."""

import pytest

from repro.platforms import (
    cray_xt3,
    cray_xt4,
    cray_xt4_single_core,
    custom_platform,
    get_platform,
    ibm_sp2,
    platform_registry,
)
from repro.platforms.sp2 import SP2_G, SP2_L, SP2_O
from repro.platforms.xt4 import XT4_O_COPY, XT4_O_DMA, XT4_O_ONCHIP


class TestCrayXT4:
    def test_table2_off_node_values(self):
        xt4 = cray_xt4()
        assert xt4.off_node.gap_per_byte == pytest.approx(0.0004)
        assert xt4.off_node.latency == pytest.approx(0.305)
        assert xt4.off_node.overhead == pytest.approx(3.92)
        assert xt4.off_node.eager_limit == 1024

    def test_table2_on_chip_values(self):
        xt4 = cray_xt4()
        assert xt4.on_chip is not None
        assert xt4.on_chip.gap_per_byte_copy == pytest.approx(0.000789)
        assert xt4.on_chip.gap_per_byte_dma == pytest.approx(0.000072)
        assert xt4.on_chip.copy_overhead == pytest.approx(1.98)
        assert xt4.on_chip.overhead == pytest.approx(3.80)

    def test_dma_setup_is_difference(self):
        assert XT4_O_DMA == pytest.approx(XT4_O_ONCHIP - XT4_O_COPY)

    def test_default_is_dual_core(self):
        assert cray_xt4().node.cores_per_node == 2

    def test_inter_node_bandwidth_is_2_5_gb_per_s(self):
        """1/G = 2500 bytes/µs = 2.5 GB/s (Section 3.1)."""
        assert cray_xt4().off_node.bandwidth_bytes_per_us == pytest.approx(2500.0)

    def test_single_core_variant(self):
        single = cray_xt4_single_core()
        assert single.node.cores_per_node == 1
        assert not single.is_multicore
        assert single.off_node == cray_xt4().off_node

    def test_multicore_override(self):
        quad = cray_xt4(cores_per_node=4)
        assert quad.node.cores_per_node == 4
        sixteen = cray_xt4(cores_per_node=16, buses_per_node=4)
        assert sixteen.node.cores_per_bus == 4

    def test_xt3_shares_constants(self):
        assert cray_xt3().off_node == cray_xt4().off_node
        assert cray_xt3().name == "cray-xt3"


class TestIbmSp2:
    def test_published_values(self):
        sp2 = ibm_sp2()
        assert sp2.off_node.gap_per_byte == pytest.approx(SP2_G) == pytest.approx(0.07)
        assert sp2.off_node.latency == pytest.approx(SP2_L) == pytest.approx(23.0)
        assert sp2.off_node.overhead == pytest.approx(SP2_O) == pytest.approx(23.0)

    def test_single_core_no_on_chip(self):
        sp2 = ibm_sp2()
        assert sp2.on_chip is None
        assert sp2.node.cores_per_node == 1

    def test_orders_of_magnitude_slower_than_xt4(self):
        """Section 3.1: XT4 parameters are 1-2 orders of magnitude lower."""
        xt4 = cray_xt4()
        sp2 = ibm_sp2()
        assert sp2.off_node.latency / xt4.off_node.latency > 10
        assert sp2.off_node.gap_per_byte / xt4.off_node.gap_per_byte > 10


class TestCustomPlatform:
    def test_basic_construction(self):
        platform = custom_platform(
            "my-cluster", latency_us=1.0, overhead_us=2.0, gap_per_byte_us=0.001
        )
        assert platform.name == "my-cluster"
        assert platform.on_chip is None

    def test_multicore_requires_or_defaults_on_chip(self):
        platform = custom_platform(
            "cmp", latency_us=1.0, overhead_us=2.0, gap_per_byte_us=0.001, cores_per_node=4
        )
        assert platform.on_chip is not None
        # Defaults derive from the off-node values.
        assert platform.on_chip.copy_overhead == pytest.approx(1.0)

    def test_explicit_on_chip_values(self):
        platform = custom_platform(
            "cmp",
            latency_us=1.0,
            overhead_us=2.0,
            gap_per_byte_us=0.001,
            cores_per_node=2,
            onchip_copy_overhead_us=0.5,
            onchip_dma_setup_us=0.25,
            onchip_gap_copy_us=0.0005,
            onchip_gap_dma_us=0.0001,
        )
        assert platform.on_chip.copy_overhead == pytest.approx(0.5)
        assert platform.on_chip.gap_per_byte_dma == pytest.approx(0.0001)

    def test_compute_scale_passthrough(self):
        platform = custom_platform(
            "fast", latency_us=1.0, overhead_us=1.0, gap_per_byte_us=0.001, compute_scale=0.5
        )
        assert platform.compute_scale == 0.5


class TestRegistry:
    def test_known_names(self):
        for name in ("cray-xt4", "cray-xt4-1core", "cray-xt3", "ibm-sp2"):
            assert name in platform_registry
            assert get_platform(name).name == name

    def test_unknown_name_gives_helpful_error(self):
        with pytest.raises(KeyError) as excinfo:
            get_platform("does-not-exist")
        assert "cray-xt4" in str(excinfo.value)
