"""Tests for the diagonal-aggregated simulator fast path.

The engine contract: for noise-free homogeneous configurations the
aggregated engine reproduces the per-rank event engine's results to within
1e-9 relative (in practice bit-identically), across applications, grid
shapes, message protocols (eager and rendezvous), non-wavefront strategies
and multi-iteration runs; everything else falls back to the event engine.
"""

import pytest

from dataclasses import replace

from repro.apps.base import AllReduceNonWavefront
from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.simulator.wavefront import WavefrontSimulator, simulate_wavefront

REL_TOL = 1e-9


def assert_engines_agree(spec, platform, grid, **kwargs):
    event = simulate_wavefront(spec, platform, grid=grid, engine="event", **kwargs)
    fast = simulate_wavefront(spec, platform, grid=grid, engine="aggregated", **kwargs)
    assert fast.makespan_us == pytest.approx(event.makespan_us, rel=REL_TOL)
    assert fast.sweep_completion_us == pytest.approx(
        event.sweep_completion_us, rel=REL_TOL
    )
    assert fast.stats.total_messages == event.stats.total_messages
    assert fast.stats.total_bytes == pytest.approx(event.stats.total_bytes)
    for fast_rank, event_rank in zip(fast.stats.ranks, event.stats.ranks):
        assert fast_rank.finish_time == pytest.approx(
            event_rank.finish_time, rel=REL_TOL
        )
        assert fast_rank.compute_time == pytest.approx(
            event_rank.compute_time, rel=1e-9, abs=1e-6
        )
        assert fast_rank.send_time + fast_rank.recv_time == pytest.approx(
            event_rank.send_time + event_rank.recv_time, rel=1e-9, abs=1e-6
        )
    return event, fast


@pytest.fixture
def problem():
    return ProblemSize(48, 48, 24)


class TestExactEquivalence:
    @pytest.mark.parametrize(
        "spec_builder",
        [
            lambda p: lu(p, iterations=1),
            lambda p: chimaera(p, iterations=1),
            lambda p: sweep3d(p, config=Sweep3DConfig(mk=4), iterations=1),
        ],
        ids=["lu", "chimaera", "sweep3d"],
    )
    def test_applications_on_square_grid(self, problem, xt4_single, spec_builder):
        assert_engines_agree(spec_builder(problem), xt4_single, ProcessorGrid(4, 4))

    @pytest.mark.parametrize(
        "grid",
        [ProcessorGrid(1, 1), ProcessorGrid(1, 8), ProcessorGrid(8, 1),
         ProcessorGrid(3, 5), ProcessorGrid(2, 6)],
        ids=["1x1", "1x8", "8x1", "3x5", "2x6"],
    )
    def test_degenerate_and_nonsquare_grids(self, problem, xt4_single, grid):
        assert_engines_agree(chimaera(problem, iterations=1), xt4_single, grid)

    def test_eager_messages(self, xt4_single):
        # Small subdomain faces stay below the 1 KiB eager limit.
        spec = chimaera(ProblemSize(8, 8, 12), iterations=1)
        grid = ProcessorGrid(4, 4)
        assert spec.message_size_ew(grid) <= xt4_single.off_node.eager_limit
        assert_engines_agree(spec, xt4_single, grid)

    def test_rendezvous_messages(self, xt4_single):
        spec = chimaera(ProblemSize(96, 96, 24), iterations=1)
        grid = ProcessorGrid(2, 2)
        assert spec.message_size_ew(grid) > xt4_single.off_node.eager_limit
        assert_engines_agree(spec, xt4_single, grid)

    def test_without_nonwavefront_phase(self, problem, xt4_single):
        assert_engines_agree(
            chimaera(problem, iterations=1),
            xt4_single,
            ProcessorGrid(4, 4),
            simulate_nonwavefront=False,
        )

    def test_multiple_iterations(self, problem, xt4_single):
        assert_engines_agree(
            lu(problem, iterations=2), xt4_single, ProcessorGrid(2, 6), iterations=3
        )

    def test_stencil_nonwavefront_hybrid(self, problem, xt4_single):
        """LU's stencil phase runs on the event machine inside the fast path."""
        assert_engines_agree(lu(problem, iterations=1), xt4_single, ProcessorGrid(4, 4))

    def test_rendezvous_allreduce_payload(self, problem, xt4_single):
        spec = replace(
            chimaera(problem, iterations=1),
            nonwavefront=AllReduceNonWavefront(count=2, payload_bytes=4096),
        )
        assert_engines_agree(spec, xt4_single, ProcessorGrid(3, 5))

    def test_single_core_platform_without_onchip(self, problem, sp2):
        assert_engines_agree(
            sweep3d(problem, config=Sweep3DConfig(mk=2), iterations=1),
            sp2,
            ProcessorGrid(4, 4),
        )


class TestEngineSelection:
    def test_auto_uses_aggregated_when_supported(self, problem, xt4_single):
        simulator = WavefrontSimulator(
            chimaera(problem, iterations=1), xt4_single, grid=ProcessorGrid(4, 4)
        )
        assert simulator.aggregation_unsupported_reason() is None

    def test_noise_falls_back_to_event_engine(self, problem, xt4_single):
        simulator = WavefrontSimulator(
            chimaera(problem, iterations=1),
            xt4_single,
            grid=ProcessorGrid(4, 4),
            compute_noise=0.1,
        )
        assert "jitter" in simulator.aggregation_unsupported_reason()

    def test_multicore_falls_back_to_event_engine(self, problem, xt4):
        simulator = WavefrontSimulator(
            chimaera(problem, iterations=1), xt4, grid=ProcessorGrid(4, 4)
        )
        assert "on-chip" in simulator.aggregation_unsupported_reason()

    def test_forced_aggregated_raises_when_unsupported(self, problem, xt4):
        with pytest.raises(ValueError):
            simulate_wavefront(
                chimaera(problem, iterations=1),
                xt4,
                grid=ProcessorGrid(4, 4),
                engine="aggregated",
            )

    def test_unknown_engine_rejected(self, problem, xt4_single):
        with pytest.raises(ValueError):
            simulate_wavefront(
                chimaera(problem, iterations=1),
                xt4_single,
                grid=ProcessorGrid(4, 4),
                engine="quantum",
            )

    def test_auto_with_noise_still_runs(self, problem, xt4_single):
        result = simulate_wavefront(
            chimaera(problem, iterations=1),
            xt4_single,
            grid=ProcessorGrid(4, 4),
            compute_noise=0.1,
            noise_seed=3,
        )
        assert result.makespan_us > 0

    def test_max_events_limit_applies(self, problem, xt4_single):
        from repro.simulator.engine import SimulationError

        with pytest.raises(SimulationError):
            simulate_wavefront(
                chimaera(problem, iterations=1),
                xt4_single,
                grid=ProcessorGrid(4, 4),
                engine="aggregated",
                max_events=10,
            )

    def test_max_events_budget_covers_arithmetic_allreduce(self, problem, xt4_single):
        """The all-reduce group-advance steps count against the same budget."""
        from repro.simulator.engine import SimulationError

        spec = chimaera(problem, iterations=1)
        full = simulate_wavefront(
            spec, xt4_single, grid=ProcessorGrid(4, 4), engine="aggregated"
        )
        with pytest.raises(SimulationError):
            simulate_wavefront(
                spec,
                xt4_single,
                grid=ProcessorGrid(4, 4),
                engine="aggregated",
                max_events=full.stats.events - 1,
            )

    def test_max_events_budget_covers_hybrid_phase(self, problem, xt4_single):
        """The hybrid non-wavefront sub-simulation consumes the same global
        budget, not a fresh one per iteration."""
        from repro.simulator.engine import SimulationError

        spec = lu(problem, iterations=1)
        full = simulate_wavefront(
            spec, xt4_single, grid=ProcessorGrid(4, 4), engine="aggregated"
        )
        # A budget below the total (but above the sweep steps alone) must
        # trip inside the stencil phase.
        budget = full.stats.events - 1
        with pytest.raises(SimulationError):
            simulate_wavefront(
                spec,
                xt4_single,
                grid=ProcessorGrid(4, 4),
                engine="aggregated",
                max_events=budget,
            )
