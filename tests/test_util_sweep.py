"""Tests for repro.util.sweep (parameter sweep helpers)."""

import pytest

from repro.util.sweep import ParameterSweep, geometric_range, powers_of_two


def test_powers_of_two_inclusive():
    assert powers_of_two(1024, 8192) == [1024, 2048, 4096, 8192]


def test_powers_of_two_single_value():
    assert powers_of_two(64, 64) == [64]


def test_powers_of_two_rejects_non_powers():
    with pytest.raises(ValueError):
        powers_of_two(1000, 8192)
    with pytest.raises(ValueError):
        powers_of_two(1024, 3000)


def test_powers_of_two_rejects_bad_range():
    with pytest.raises(ValueError):
        powers_of_two(2048, 1024)
    with pytest.raises(ValueError):
        powers_of_two(0, 8)


def test_geometric_range_default_factor():
    assert geometric_range(1, 8) == [1.0, 2.0, 4.0, 8.0]


def test_geometric_range_includes_endpoint_despite_floats():
    values = geometric_range(0.1, 0.8)
    assert values[-1] == pytest.approx(0.8)


def test_geometric_range_rejects_bad_factor():
    with pytest.raises(ValueError):
        geometric_range(1, 8, factor=1.0)


def test_parameter_sweep_cartesian_product():
    sweep = ParameterSweep({"p": [4, 16], "htile": [1, 2, 4]})
    points = list(sweep)
    assert len(points) == 6
    assert len(sweep) == 6
    assert {"p": 4, "htile": 1} in points
    assert {"p": 16, "htile": 4} in points


def test_parameter_sweep_fixed_parameters_merged():
    sweep = ParameterSweep({"p": [1, 2]}, fixed={"app": "lu"})
    for point in sweep:
        assert point["app"] == "lu"


def test_parameter_sweep_rejects_overlap():
    with pytest.raises(ValueError):
        ParameterSweep({"p": [1]}, fixed={"p": 2})


def test_parameter_sweep_rejects_empty_axis():
    with pytest.raises(ValueError):
        ParameterSweep({"p": []})


def test_parameter_sweep_run_applies_function():
    sweep = ParameterSweep({"x": [1, 2, 3]})
    results = sweep.run(lambda x: x * x)
    assert [value for _, value in results] == [1, 4, 9]
    assert results[0][0] == {"x": 1}
