"""Tests for repro.util.sweep (parameter sweep helpers)."""

import threading

import pytest

from repro.util.sweep import (
    ParameterSweep,
    geometric_range,
    parallel_map,
    powers_of_two,
    unique_map,
)


def test_unique_map_evaluates_each_distinct_item_once():
    calls = []

    def record(item):
        calls.append(item)
        return item * 10

    assert unique_map(record, [3, 1, 3, 2, 1]) == [30, 10, 30, 20, 10]
    assert calls == [3, 1, 2]


def test_unique_map_preserves_order_with_workers():
    assert unique_map(lambda x: -x, [5, 5, 4, 5], workers=2, executor="thread") == [
        -5, -5, -4, -5,
    ]


def test_unique_map_unhashable_items_fall_back():
    calls = []

    def record(item):
        calls.append(item)
        return sum(item)

    assert unique_map(record, [[1, 2], [1, 2]]) == [3, 3]
    assert len(calls) == 2  # no dedup possible, but results still correct


def test_unique_map_empty():
    assert unique_map(lambda x: x, []) == []


def test_powers_of_two_inclusive():
    assert powers_of_two(1024, 8192) == [1024, 2048, 4096, 8192]


def test_powers_of_two_single_value():
    assert powers_of_two(64, 64) == [64]


def test_powers_of_two_rejects_non_powers():
    with pytest.raises(ValueError):
        powers_of_two(1000, 8192)
    with pytest.raises(ValueError):
        powers_of_two(1024, 3000)


def test_powers_of_two_rejects_bad_range():
    with pytest.raises(ValueError):
        powers_of_two(2048, 1024)
    with pytest.raises(ValueError):
        powers_of_two(0, 8)


def test_geometric_range_default_factor():
    assert geometric_range(1, 8) == [1.0, 2.0, 4.0, 8.0]


def test_geometric_range_includes_endpoint_despite_floats():
    values = geometric_range(0.1, 0.8)
    assert values[-1] == pytest.approx(0.8)


def test_geometric_range_rejects_bad_factor():
    with pytest.raises(ValueError):
        geometric_range(1, 8, factor=1.0)


def test_geometric_range_no_accumulated_drift():
    """Regression: terms are start * factor**k, not repeated multiplication,
    so long ranges hit every term (and the endpoint) exactly."""
    values = geometric_range(0.1, 0.1 * 2**60)
    assert len(values) == 61
    assert values[-1] == 0.1 * 2**60
    for k, value in enumerate(values):
        assert value == 0.1 * 2**k


def test_geometric_range_non_integer_factor_endpoint():
    values = geometric_range(1.0, 1.1**25, factor=1.1)
    assert len(values) == 26
    assert values[-1] == pytest.approx(1.1**25, rel=1e-12)


def test_geometric_range_wide_range_does_not_overflow():
    """Regression: factor**k alone overflows for tiny starts even though each
    term start * factor**k is finite; the split-exponent term must not raise."""
    values = geometric_range(1e-300, 1e8)
    assert len(values) == 1024
    assert values[0] == 1e-300
    assert values[-1] <= 1e8 * (1.0 + 1e-12)
    assert values[-1] == pytest.approx(1e-300 * 2.0**1023, rel=1e-12)


def test_parameter_sweep_cartesian_product():
    sweep = ParameterSweep({"p": [4, 16], "htile": [1, 2, 4]})
    points = list(sweep)
    assert len(points) == 6
    assert len(sweep) == 6
    assert {"p": 4, "htile": 1} in points
    assert {"p": 16, "htile": 4} in points


def test_parameter_sweep_fixed_parameters_merged():
    sweep = ParameterSweep({"p": [1, 2]}, fixed={"app": "lu"})
    for point in sweep:
        assert point["app"] == "lu"


def test_parameter_sweep_rejects_overlap():
    with pytest.raises(ValueError):
        ParameterSweep({"p": [1]}, fixed={"p": 2})


def test_parameter_sweep_rejects_empty_axis():
    with pytest.raises(ValueError):
        ParameterSweep({"p": []})


def test_parameter_sweep_run_applies_function():
    sweep = ParameterSweep({"x": [1, 2, 3]})
    results = sweep.run(lambda x: x * x)
    assert [value for _, value in results] == [1, 4, 9]
    assert results[0][0] == {"x": 1}


def test_parameter_sweep_accepts_generator_axes():
    """Regression: iterator/generator axes are materialised, so len() and
    repeated iteration work instead of failing mid-validation."""
    sweep = ParameterSweep({"p": (2**k for k in range(3)), "htile": iter([1, 2])})
    assert len(sweep) == 6
    # Iterating twice yields the same points (the generator was consumed once).
    assert list(sweep) == list(sweep)


def test_parameter_sweep_empty_generator_axis_rejected():
    with pytest.raises(ValueError, match="has no values"):
        ParameterSweep({"p": (x for x in ())})


def test_parameter_sweep_run_with_thread_workers_preserves_order():
    sweep = ParameterSweep({"x": list(range(20))})
    serial = sweep.run(lambda x: x * x)
    threaded = sweep.run(lambda x: x * x, workers=4)
    assert threaded == serial


def test_parameter_sweep_run_threads_actually_fan_out():
    barrier = threading.Barrier(4, timeout=10)

    def rendezvous(x):
        # All four workers must be running concurrently to get past this.
        barrier.wait()
        return x

    sweep = ParameterSweep({"x": [1, 2, 3, 4]})
    results = sweep.run(rendezvous, workers=4)
    assert [value for _, value in results] == [1, 2, 3, 4]


def test_parameter_sweep_run_rejects_bad_workers_and_executor():
    sweep = ParameterSweep({"x": [1, 2]})
    with pytest.raises(ValueError):
        sweep.run(lambda x: x, workers=0)
    with pytest.raises(ValueError):
        sweep.run(lambda x: x, workers=2, executor="carrier-pigeon")


def _square(x: int) -> int:
    return x * x


def test_parameter_sweep_run_with_process_workers():
    sweep = ParameterSweep({"x": [1, 2, 3]})
    results = sweep.run(_square, workers=2, executor="process")
    assert [value for _, value in results] == [1, 4, 9]


def test_parallel_map_matches_serial():
    items = list(range(10))
    assert parallel_map(_square, items, workers=3) == [x * x for x in items]
    assert parallel_map(_square, items) == [x * x for x in items]
    with pytest.raises(ValueError):
        parallel_map(_square, items, workers=0)


def test_parallel_map_process_executor():
    items = list(range(6))
    assert parallel_map(_square, items, workers=2, executor="process") == [
        x * x for x in items
    ]
    with pytest.raises(ValueError):
        parallel_map(_square, items, workers=2, executor="osmosis")
