"""Unit tests of the platform-composition subsystem.

Covers the heterogeneity value types (:mod:`repro.core.hetero`), the
three-level hop classification on :class:`~repro.core.decomposition
.CoreMapping`, the scenario parsers and :class:`~repro.platforms.spec
.PlatformSpec`, and the CLI surface (``platform list|describe``, the
``predict`` scenario flags).  The cross-backend behaviour contracts live in
``tests/test_conformance.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.comm import CommunicationCosts
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.hetero import (
    FixedQuantumNoise,
    NoNoise,
    SampledNoise,
    SpeedProfile,
    column_multipliers,
    diagonal_multipliers,
    max_multiplier,
    node_count,
    node_index_of,
)
from repro.core.loggp import NodeArchitecture, Platform
from repro.core.multicore import resolve_core_mapping
from repro.platforms import (
    PlatformSpec,
    cray_xt4,
    cray_xt4_quad_chip,
    describe_platform,
    parse_noise_model,
    parse_placement,
    parse_speed_profile,
)
from repro.simulator.wavefront import WavefrontSimulator


class TestSpeedProfile:
    def test_multipliers(self):
        profile = SpeedProfile(baseline=1.5, slowdown=2.0, slow_nodes=(1, 3))
        assert profile.multiplier_for_node(1) == 3.0
        assert profile.multiplier_for_node(0) == 1.5

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            SpeedProfile(baseline=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            SpeedProfile(slow_nodes=(-1,))
        with pytest.raises(ValueError, match="non-negative"):
            SpeedProfile.stragglers(-1, 2.0)

    def test_slow_nodes_normalised(self):
        assert SpeedProfile(slow_nodes=(3, 1, 3)).slow_nodes == (1, 3)

    def test_diagonal_multipliers_match_dense_reference(self):
        grid = ProcessorGrid(6, 4)
        mapping = CoreMapping(cx=2, cy=2)
        profile = SpeedProfile(slowdown=2.5, slow_nodes=(0, 4))
        fast = diagonal_multipliers(profile, grid, mapping)
        dense = [1.0] * (grid.n + grid.m - 1)
        for i, j in grid.positions():
            mult = profile.multiplier_for_node(node_index_of(grid, mapping, i, j))
            d = (i - 1) + (j - 1)
            dense[d] = max(dense[d], mult)
        assert fast == dense

    def test_speedup_profile_uses_dense_path(self):
        grid = ProcessorGrid(4, 4)
        mapping = CoreMapping(cx=2, cy=2)
        profile = SpeedProfile(slowdown=0.5, slow_nodes=(0,))
        mults = diagonal_multipliers(profile, grid, mapping)
        # Node 0 covers diagonals 0-2 exclusively only on diagonal 0.
        assert mults[0] == 0.5
        assert mults[3] == 1.0

    def test_column_multipliers(self):
        grid = ProcessorGrid(4, 4)
        mapping = CoreMapping(cx=2, cy=2)
        profile = SpeedProfile(slowdown=2.0, slow_nodes=(2,))  # node row 1, col 0
        assert column_multipliers(profile, grid, mapping) == [1.0, 1.0, 2.0, 2.0]

    def test_max_multiplier_ignores_out_of_range_nodes(self):
        grid = ProcessorGrid(4, 4)
        mapping = CoreMapping(cx=2, cy=2)
        assert node_count(grid, mapping) == 4
        present = SpeedProfile(slowdown=3.0, slow_nodes=(3,))
        absent = SpeedProfile(slowdown=3.0, slow_nodes=(99,))
        assert max_multiplier(present, grid, mapping) == 3.0
        assert max_multiplier(absent, grid, mapping) == 1.0


class TestNoiseModels:
    def test_null_detection(self):
        assert NoNoise().is_null
        assert SampledNoise(0.0).is_null
        assert FixedQuantumNoise(0.0, 1000.0).is_null
        assert not SampledNoise(0.1).is_null
        assert not FixedQuantumNoise(10.0, 1000.0).is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledNoise(-0.1)
        with pytest.raises(ValueError):
            FixedQuantumNoise(-1.0, 100.0)
        with pytest.raises(ValueError):
            FixedQuantumNoise(1.0, 0.0)

    def test_factor_semantics(self, seeded_rng):
        assert FixedQuantumNoise(100.0, 1000.0).factor(None) == 1.1
        factor = SampledNoise(0.2).factor(seeded_rng)
        assert 1.0 <= factor < 1.2


class TestChipMappings:
    def test_chip_must_divide_node_rectangle(self):
        with pytest.raises(ValueError, match="divide"):
            CoreMapping(cx=2, cy=2, chip_cx=2, chip_cy=3)
        with pytest.raises(ValueError, match="together"):
            CoreMapping(cx=2, cy=2, chip_cx=1)

    def test_three_level_classification(self):
        # 4x4 node rectangles built from 2x2 chips on an 8x8 grid.
        mapping = CoreMapping(cx=4, cy=4, chip_cx=2, chip_cy=2)
        assert mapping.send_east_level(1, 1) == "chip"   # within the chip
        assert mapping.send_east_level(2, 1) == "node"   # chip edge, node interior
        assert mapping.send_east_level(4, 1) == "machine"  # node edge
        assert mapping.receive_north_level(1, 2) == "chip"
        assert mapping.receive_north_level(1, 3) == "node"
        assert mapping.receive_north_level(1, 5) == "machine"

    def test_no_chip_collapses_to_two_levels(self):
        mapping = CoreMapping(cx=2, cy=2)
        levels = {
            mapping.send_east_level(i, j)
            for i in range(1, 5)
            for j in range(1, 5)
        }
        assert levels <= {"chip", "machine"}

    def test_resolve_attaches_platform_chip_rectangle(self):
        platform = cray_xt4_quad_chip()
        mapping = resolve_core_mapping(platform, None)
        assert (mapping.cx, mapping.cy) == (2, 2)
        assert (mapping.chip_cx, mapping.chip_cy) == (1, 2)
        assert mapping.has_chip_subdivision

    def test_rank_to_chip_refines_rank_to_node(self):
        simulator = WavefrontSimulator(
            _tiny_spec(), cray_xt4_quad_chip(), grid=ProcessorGrid(4, 4)
        )
        nodes = simulator.rank_to_node()
        chips = simulator.rank_to_chip()
        # Same chip implies same node, and nodes split into >1 chip.
        pairing = {}
        for node, chip in zip(nodes, chips):
            pairing.setdefault(chip, set()).add(node)
        assert all(len(owners) == 1 for owners in pairing.values())
        assert len(set(chips)) > len(set(nodes))


class TestHierarchicalCosts:
    def test_node_level_uses_intra_node_params(self):
        platform = cray_xt4_quad_chip()
        chip = CommunicationCosts.for_message(platform, 512.0, level="chip")
        node = CommunicationCosts.for_message(platform, 512.0, level="node")
        machine = CommunicationCosts.for_message(platform, 512.0, level="machine")
        # The middle level prices with the intra_node constants: cheaper
        # than crossing the machine interconnect, distinct from the on-chip
        # memory-copy sub-model (which, on the XT4's measured Gcopy, is
        # actually slower than the hypothetical chip-to-chip link here).
        assert node.total < machine.total
        assert len({chip.total, node.total, machine.total}) == 3

    def test_node_level_falls_back_without_intra_node(self):
        platform = cray_xt4()
        node = CommunicationCosts.for_message(platform, 512.0, level="node")
        chip = CommunicationCosts.for_message(platform, 512.0, level="chip")
        assert node.total == chip.total

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            CommunicationCosts.for_message(cray_xt4(), 8.0, level="rack")

    def test_with_cores_per_node_keeps_dividing_hierarchy(self):
        grown = cray_xt4_quad_chip().with_cores_per_node(8)
        assert grown.node.cores_per_chip == 2
        assert grown.is_hierarchical

    def test_with_cores_per_node_drops_stale_hierarchy(self):
        # 3 cores/node cannot be tiled by 2-core chips: the chip split and
        # the intra-node link are dropped together.
        shrunk = cray_xt4_quad_chip().with_cores_per_node(3)
        assert shrunk.node.cores_per_chip is None
        assert shrunk.intra_node is None
        # One 2-core chip == the whole node: keep the split, drop the link.
        single = cray_xt4_quad_chip().with_cores_per_node(2)
        assert single.node.chips_per_node == 1
        assert single.intra_node is None
        assert single.is_homogeneous

    def test_platform_validation(self):
        platform = cray_xt4()
        with pytest.raises(ValueError, match="cores_per_chip"):
            Platform(
                name="bad",
                off_node=platform.off_node,
                on_chip=platform.on_chip,
                node=NodeArchitecture(cores_per_node=2),
                intra_node=platform.off_node,
            )
        with pytest.raises(ValueError, match="multiple"):
            NodeArchitecture(cores_per_node=4, cores_per_chip=3)


class TestParsers:
    def test_speed_profile_forms(self):
        assert parse_speed_profile(None) is None
        assert parse_speed_profile("none") is None
        assert parse_speed_profile("stragglers:2x1.5") == SpeedProfile.stragglers(2, 1.5)
        assert parse_speed_profile("nodes:1,4x2.0").slow_nodes == (1, 4)
        assert parse_speed_profile("baseline:0.5").baseline == 0.5
        profile = SpeedProfile.stragglers(1, 2.0)
        assert parse_speed_profile(profile) is profile
        with pytest.raises(ValueError, match="speed profile"):
            parse_speed_profile("bogus:1")
        with pytest.raises(ValueError, match="invalid"):
            parse_speed_profile("stragglers:axb")

    def test_noise_model_forms(self):
        assert parse_noise_model("none") is None
        assert parse_noise_model("quantum:50/1000") == FixedQuantumNoise(50.0, 1000.0)
        assert parse_noise_model("quantum:50") == FixedQuantumNoise(50.0, 1000.0)
        assert parse_noise_model("sampled:0.1") == SampledNoise(0.1)
        with pytest.raises(ValueError, match="noise model"):
            parse_noise_model("gaussian:0.1")

    def test_placement_forms(self):
        platform = cray_xt4()
        assert parse_placement("default", platform) is None
        assert parse_placement("rowwise", platform) == CoreMapping(2, 1)
        assert parse_placement("colwise", platform) == CoreMapping(1, 2)
        assert parse_placement("2x1", platform) == CoreMapping(2, 1)
        with pytest.raises(ValueError, match="2 per node"):
            parse_placement("2x2", platform)
        with pytest.raises(ValueError, match="placement"):
            parse_placement("diagonal", platform)


class TestPlatformSpec:
    def test_build_composes_everything(self):
        spec = PlatformSpec(
            base="cray-xt4",
            name="scenario-machine",
            cores_per_node=4,
            cores_per_chip=2,
            intra_node_overhead_us=2.0,
            intra_node_latency_us=0.1,
            intra_node_gap_per_byte_us=0.0002,
            speed_profile="stragglers:1x2.0",
            noise="sampled:0.05",
        )
        platform = spec.build()
        assert platform.name == "scenario-machine"
        assert platform.is_hierarchical
        assert platform.speed_profile.slow_nodes == (0,)
        assert platform.noise == SampledNoise(0.05)

    def test_chip_without_link_params_rejected(self):
        with pytest.raises(ValueError, match="intra-node"):
            PlatformSpec(base="cray-xt4", cores_per_node=4, cores_per_chip=2).build()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            PlatformSpec.from_dict({"base": "cray-xt4", "typo": 1})

    def test_describe_round_trips_to_json(self):
        record = describe_platform(cray_xt4_quad_chip())
        assert json.loads(json.dumps(record)) == record
        assert record["is_hierarchical"] is True
        assert record["intra_node"]["overhead_us"] == pytest.approx(1.96)


class TestCli:
    def test_platform_list(self, capsys):
        assert main(["platform", "list"]) == 0
        out = capsys.readouterr().out
        assert "cray-xt4-quad-chip" in out

    def test_platform_list_json(self, capsys):
        assert main(["platform", "list", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["cray-xt4"]["cores_per_node"] == 2

    def test_platform_describe_with_scenario(self, capsys):
        assert (
            main(
                [
                    "platform",
                    "describe",
                    "--platform",
                    "cray-xt4",
                    "--speed-profile",
                    "stragglers:1x2.0",
                    "--noise",
                    "quantum:50/1000",
                    "--json",
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["speed_profile"]["slow_nodes"] == [0]
        assert record["noise"]["mean_inflation"] == pytest.approx(1.05)
        assert record["is_homogeneous"] is False

    def test_predict_scenario_flags(self, capsys):
        base = ["predict", "--app", "lu-classA", "--cores", "16", "--json"]
        assert main(base) == 0
        plain = json.loads(capsys.readouterr().out)
        assert (
            main(base + ["--speed-profile", "stragglers:1x2.0", "--noise", "sampled:0.1"])
            == 0
        )
        degraded = json.loads(capsys.readouterr().out)
        assert degraded["time_per_iteration_s"] > plain["time_per_iteration_s"]

    def test_predict_placement_flag(self, capsys):
        base = ["predict", "--app", "lu-classA", "--cores", "16", "--json"]
        assert main(base + ["--placement", "rowwise"]) == 0
        json.loads(capsys.readouterr().out)  # valid output

    def test_bad_scenario_exits_with_message(self):
        with pytest.raises(SystemExit, match="speed profile"):
            main(
                [
                    "predict",
                    "--app",
                    "lu-classA",
                    "--cores",
                    "16",
                    "--speed-profile",
                    "bogus",
                ]
            )


def _tiny_spec():
    from repro.apps.chimaera import chimaera
    from repro.core.decomposition import ProblemSize

    return chimaera(ProblemSize(48, 48, 24), iterations=1)
