"""Tests for the simulator's compute-noise (jitter) feature."""

import pytest

from repro.apps.chimaera import chimaera
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.model import iteration_prediction
from repro.simulator.wavefront import WavefrontSimulator, simulate_wavefront


@pytest.fixture
def spec():
    return chimaera(ProblemSize(32, 32, 16), iterations=1)


GRID = ProcessorGrid(4, 4)


def test_zero_noise_is_default_and_deterministic(spec, xt4_single):
    a = simulate_wavefront(spec, xt4_single, grid=GRID)
    b = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.0)
    assert a.makespan_us == pytest.approx(b.makespan_us)


def test_noise_slows_the_run(spec, xt4_single):
    clean = simulate_wavefront(spec, xt4_single, grid=GRID)
    noisy = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.2, noise_seed=1)
    assert noisy.makespan_us > clean.makespan_us
    # Multiplicative jitter in [1, 1.2] can add at most 20% plus pipeline effects.
    assert noisy.makespan_us < 1.4 * clean.makespan_us


def test_noise_is_reproducible_for_a_seed(spec, xt4_single):
    a = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.1, noise_seed=7)
    b = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.1, noise_seed=7)
    c = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.1, noise_seed=8)
    assert a.makespan_us == pytest.approx(b.makespan_us)
    assert a.makespan_us != pytest.approx(c.makespan_us)


def test_negative_noise_rejected(spec, xt4_single):
    with pytest.raises(ValueError):
        WavefrontSimulator(spec, xt4_single, grid=GRID, compute_noise=-0.1)


def test_same_seed_runs_are_bit_identical(spec, xt4_single):
    """Determinism hardening: all noise flows through injected per-rank
    ``random.Random`` streams, so two runs with the same ``noise_seed`` are
    bit-identical - makespan, sweep completions and every per-rank statistic."""
    import random as global_random

    a = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.15, noise_seed=11)
    # Perturb the module-level random state between runs: it must not matter.
    global_random.seed(999)
    global_random.random()
    b = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.15, noise_seed=11)
    assert a.makespan_us == b.makespan_us
    assert a.sweep_completion_us == b.sweep_completion_us
    for rank_a, rank_b in zip(a.stats.ranks, b.stats.ranks):
        assert rank_a == rank_b


def test_jitter_streams_are_injected_per_rank(spec, xt4_single):
    """Each rank owns an independent stream derived from (seed, rank)."""
    simulator = WavefrontSimulator(
        spec, xt4_single, grid=GRID, compute_noise=0.1, noise_seed=5
    )
    stream_a = simulator.rank_jitter_stream(3)
    stream_b = simulator.rank_jitter_stream(3)
    stream_c = simulator.rank_jitter_stream(4)
    draws_a = [stream_a.random() for _ in range(4)]
    assert draws_a == [stream_b.random() for _ in range(4)]
    assert draws_a != [stream_c.random() for _ in range(4)]
    noise_free = WavefrontSimulator(spec, xt4_single, grid=GRID)
    assert noise_free.rank_jitter_stream(0) is None


def test_model_error_degrades_gracefully_under_noise(spec, xt4_single):
    """The (noise-free) model under-predicts a noisy run, but moderate jitter
    keeps the error within the noise amplitude - the robustness argument for
    using mean work rates in the model."""
    noise = 0.10
    noisy = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=noise, noise_seed=3)
    model = iteration_prediction(spec, xt4_single, GRID).time_per_iteration
    error = (noisy.time_per_iteration_us - model) / noisy.time_per_iteration_us
    assert 0 < error < noise + 0.05
