"""Tests for the simulator's compute-noise (jitter) feature."""

import pytest

from repro.apps.chimaera import chimaera
from repro.core.decomposition import ProblemSize, ProcessorGrid
from repro.core.model import iteration_prediction
from repro.simulator.wavefront import WavefrontSimulator, simulate_wavefront


@pytest.fixture
def spec():
    return chimaera(ProblemSize(32, 32, 16), iterations=1)


GRID = ProcessorGrid(4, 4)


def test_zero_noise_is_default_and_deterministic(spec, xt4_single):
    a = simulate_wavefront(spec, xt4_single, grid=GRID)
    b = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.0)
    assert a.makespan_us == pytest.approx(b.makespan_us)


def test_noise_slows_the_run(spec, xt4_single):
    clean = simulate_wavefront(spec, xt4_single, grid=GRID)
    noisy = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.2, noise_seed=1)
    assert noisy.makespan_us > clean.makespan_us
    # Multiplicative jitter in [1, 1.2] can add at most 20% plus pipeline effects.
    assert noisy.makespan_us < 1.4 * clean.makespan_us


def test_noise_is_reproducible_for_a_seed(spec, xt4_single):
    a = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.1, noise_seed=7)
    b = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.1, noise_seed=7)
    c = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=0.1, noise_seed=8)
    assert a.makespan_us == pytest.approx(b.makespan_us)
    assert a.makespan_us != pytest.approx(c.makespan_us)


def test_negative_noise_rejected(spec, xt4_single):
    with pytest.raises(ValueError):
        WavefrontSimulator(spec, xt4_single, grid=GRID, compute_noise=-0.1)


def test_model_error_degrades_gracefully_under_noise(spec, xt4_single):
    """The (noise-free) model under-predicts a noisy run, but moderate jitter
    keeps the error within the noise amplitude - the robustness argument for
    using mean work rates in the model."""
    noise = 0.10
    noisy = simulate_wavefront(spec, xt4_single, grid=GRID, compute_noise=noise, noise_seed=3)
    model = iteration_prediction(spec, xt4_single, GRID).time_per_iteration
    error = (noisy.time_per_iteration_us - model) / noisy.time_per_iteration_us
    assert 0 < error < noise + 0.05
