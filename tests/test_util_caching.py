"""Tests for repro.util.caching (the unhashable-fallback cache dispatch)."""

from functools import lru_cache

import pytest

from repro.util.caching import call_with_unhashable_fallback


def test_hashable_args_use_the_cache():
    calls = []

    @lru_cache(maxsize=None)
    def cached(x):
        calls.append(x)
        return x * 2

    def uncached(x):
        raise AssertionError("must not be reached for hashable args")

    assert call_with_unhashable_fallback(cached, uncached, 3) == 6
    assert call_with_unhashable_fallback(cached, uncached, 3) == 6
    assert calls == [3]  # second call was a cache hit


def test_unhashable_args_fall_back_to_uncached():
    @lru_cache(maxsize=None)
    def cached(x):
        return sum(x)

    fallback_calls = []

    def uncached(x):
        fallback_calls.append(x)
        return sum(x)

    assert call_with_unhashable_fallback(cached, uncached, [1, 2, 3]) == 6
    assert fallback_calls == [[1, 2, 3]]


def test_type_error_from_the_computation_propagates_once():
    attempts = []

    @lru_cache(maxsize=None)
    def cached(x):
        attempts.append(x)
        raise TypeError("broken computation")

    def uncached(x):
        attempts.append(("uncached", x))
        return x

    with pytest.raises(TypeError, match="broken computation"):
        call_with_unhashable_fallback(cached, uncached, 5)
    # The computation ran exactly once; no silent uncached re-run.
    assert attempts == [5]
