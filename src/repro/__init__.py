"""repro - plug-and-play LogGP performance models for wavefront computations.

A reproduction of *"A Plug-and-Play Model for Evaluating Wavefront
Computations on Parallel Architectures"* (Mudalige, Vernon & Jarvis,
IPDPS 2008).

The library predicts the runtime and scaling behaviour of MPI pipelined
wavefront applications (LU, Sweep3D, Chimaera, or any user-specified
wavefront code) on parallel platforms with multi-core nodes from a handful of
application and platform parameters, and provides:

* LogGP models of MPI send/receive/all-reduce on the Cray XT4 and other
  platforms (:mod:`repro.core.comm`, :mod:`repro.platforms`);
* the reusable Table 5 / Table 6 wavefront model (:mod:`repro.core`);
* a discrete-event simulator of a wavefront run on an XT4-like machine that
  plays the role of the paper's measurements (:mod:`repro.simulator`);
* real numpy wavefront kernels and a shared-memory executor for small-scale
  correctness runs and work-rate calibration (:mod:`repro.kernels`);
* the Section 5 analyses - Htile optimisation, platform sizing, partitioning
  metrics, cores-per-node studies, bottleneck breakdowns and the pipelined
  energy-group redesign (:mod:`repro.analysis`);
* declarative experiment campaigns over a persistent on-disk result store,
  with Markdown/CSV reports reproducing the paper's tables and figures
  (:mod:`repro.campaigns`);
* heterogeneous and noisy machine scenarios - hierarchical interconnects,
  per-node speed profiles (stragglers), background-noise models - honoured
  consistently by the analytic model and the simulator
  (:mod:`repro.core.hetero`, :mod:`repro.platforms.spec`);
* model-guided design-space optimisation - exhaustive, coordinate-descent
  and golden-section search over tile heights, decompositions, placements
  and machine designs under a core budget, with (time, core-hours) Pareto
  fronts (:mod:`repro.optimize`).

Quick start
-----------

>>> from repro import predict, cray_xt4
>>> from repro.apps.workloads import chimaera_240cubed
>>> prediction = predict(chimaera_240cubed(), cray_xt4(), total_cores=4096)
>>> prediction.time_per_time_step_s  # doctest: +SKIP
21.4
"""

from repro.core import (
    CoreMapping,
    Corner,
    Platform,
    Prediction,
    ProblemSize,
    ProcessorGrid,
    allreduce_time,
    clear_prediction_cache,
    decompose,
    predict,
    prediction_cache_info,
)
from repro.apps.base import SweepPhase, SweepSchedule, WavefrontSpec
from repro.backends import (
    BackendResult,
    PredictionRequest,
    available_backends,
    get_backend,
    predict_many,
    predict_one,
    register_backend,
)
from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    builtin_campaigns,
    campaign_report,
    get_campaign,
    load_campaign_file,
    run_campaign,
    write_report,
)
from repro.core.faults import FaultModel
from repro.core.hetero import (
    FixedQuantumNoise,
    NoiseModel,
    NoNoise,
    SampledNoise,
    SlowdownWindow,
    SpeedProfile,
)
from repro.optimize import (
    DesignPoint,
    EvaluatedPoint,
    OptimizationResult,
    OptimizationSpace,
    available_strategies,
    load_space_file,
    optimize,
    pareto_front,
)
from repro.platforms import (
    PlatformSpec,
    cray_xt3,
    cray_xt4,
    cray_xt4_quad_chip,
    cray_xt4_single_core,
    custom_platform,
    describe_platform,
    ibm_sp2,
    parse_fault_model,
    parse_noise_model,
    parse_placement,
    parse_slowdown_windows,
    parse_speed_profile,
)

__version__ = "1.8.0"

__all__ = [
    "BackendResult",
    "CampaignRunner",
    "CampaignSpec",
    "CoreMapping",
    "Corner",
    "DesignPoint",
    "EvaluatedPoint",
    "FaultModel",
    "FixedQuantumNoise",
    "NoNoise",
    "NoiseModel",
    "OptimizationResult",
    "OptimizationSpace",
    "Platform",
    "PlatformSpec",
    "Prediction",
    "PredictionRequest",
    "ProblemSize",
    "ProcessorGrid",
    "ResultStore",
    "SampledNoise",
    "SlowdownWindow",
    "SpeedProfile",
    "SweepPhase",
    "SweepSchedule",
    "WavefrontSpec",
    "allreduce_time",
    "available_backends",
    "available_strategies",
    "builtin_campaigns",
    "campaign_report",
    "clear_prediction_cache",
    "cray_xt3",
    "cray_xt4",
    "cray_xt4_quad_chip",
    "cray_xt4_single_core",
    "custom_platform",
    "describe_platform",
    "decompose",
    "get_backend",
    "get_campaign",
    "ibm_sp2",
    "load_campaign_file",
    "load_space_file",
    "optimize",
    "pareto_front",
    "parse_fault_model",
    "parse_noise_model",
    "parse_placement",
    "parse_slowdown_windows",
    "parse_speed_profile",
    "predict",
    "predict_many",
    "predict_one",
    "prediction_cache_info",
    "register_backend",
    "run_campaign",
    "write_report",
    "__version__",
]
