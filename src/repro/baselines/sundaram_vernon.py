"""The Sundaram-Stukel & Vernon LogGP model of Sweep3D (Table 4 of the paper).

This is the application-specific model the plug-and-play model generalises.
It is reproduced here (equations (s1)-(s5)) both as a baseline for accuracy
comparisons and as a regression check: for Sweep3D on one core per node the
reusable model and this model should agree closely, since the reusable model
was derived from it.

Equations (Table 4):

``(s1)``  ``W(i,j)   = Wg * mmi * mk * jt * it``
``(s2)``  ``StartP(i,j) = max(StartP(i-1,j) + W + TotalComm + Receive,
                              StartP(i,j-1) + W + Send + TotalComm)``
``(s3)``  ``Time5,6  = StartP(1,m) + 2[(W + SendE + ReceiveN + (m-1)L)
                                       * #kblocks * mmo/mmi]``
``(s4)``  ``Time7,8  = StartP(n-1,m) + 2[(W + SendE + ReceiveW + ReceiveN
                                       + (m-1)L + (n-2)L) * #kblocks * mmo/mmi]
                       + ReceiveW + W``
``(s5)``  ``T        = 2 (Time5,6 + Time7,8)``

The ``(m-1)L`` and ``(n-2)L`` terms model the back-propagation of rendezvous
handshake replies (synchronisation cost); they were significant on the IBM
SP/2 but are negligible on the XT4 and can be switched off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import WavefrontSpec
from repro.core.comm import CommunicationCosts
from repro.core.decomposition import ProcessorGrid
from repro.core.loggp import Platform
from repro.core.model import fill_times

__all__ = ["SweepD3Baseline", "sundaram_vernon_iteration_time"]


@dataclass(frozen=True)
class SweepD3Baseline:
    """The Table 4 model's intermediate quantities (all in microseconds)."""

    start_p_diag: float
    start_p_near_full: float
    time_56: float
    time_78: float
    sweeps_time: float
    nonwavefront: float

    @property
    def iteration_time(self) -> float:
        """Equation (s5) plus the end-of-iteration all-reduces."""
        return self.sweeps_time + self.nonwavefront


def sundaram_vernon_iteration_time(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    *,
    include_sync_terms: bool = True,
    include_nonwavefront: bool = True,
) -> SweepD3Baseline:
    """Evaluate the Table 4 Sweep3D model for one iteration.

    ``spec`` must be a Sweep3D-like specification (eight sweeps, no
    pre-computation); the model is evaluated with one core per node (all
    communication off-node), which is the configuration it was designed for.

    The pipeline-fill terms ``StartP(1, m)`` / ``StartP(n-1, m)`` are
    evaluated with the same recurrence as the reusable model (which
    reproduces equation (s2) exactly when ``Wg,pre = 0``); ``StartP(n-1, m)``
    is approximated by ``StartP(n, m)`` minus one horizontal pipeline step.
    """
    if spec.wg_pre_us != 0.0:  # repro: noqa[RPR004] Wg,pre = 0 is the model's exact applicability condition, not a tolerance
        raise ValueError(
            "the Sundaram-Stukel & Vernon model applies to Sweep3D-like codes "
            "with no pre-computation (Wg,pre = 0)"
        )
    n, m = grid.n, grid.m
    w = spec.work_per_tile(grid, platform)
    tiles = spec.tiles_per_stack()
    latency = platform.off_node.latency

    ew = CommunicationCosts.for_message(platform, spec.message_size_ew(grid), on_chip=False)
    ns = CommunicationCosts.for_message(platform, spec.message_size_ns(grid), on_chip=False)

    fills = fill_times(spec, platform, grid)
    start_p_diag = fills.tdiagfill  # StartP(1, m)
    # StartP(n-1, m): one horizontal pipeline stage short of the far corner.
    horizontal_step = w + ew.total + ns.receive
    start_p_near_full = max(fills.tfullfill - horizontal_step, start_p_diag)

    sync_col = (m - 1) * latency if include_sync_terms else 0.0
    sync_row = (n - 2) * latency if include_sync_terms and n >= 2 else 0.0

    per_block_56 = w + ew.send + ns.receive + sync_col
    time_56 = start_p_diag + 2.0 * per_block_56 * tiles

    per_block_78 = w + ew.send + ew.receive + ns.receive + sync_col + sync_row
    time_78 = start_p_near_full + 2.0 * per_block_78 * tiles + ew.receive + w

    sweeps_time = 2.0 * (time_56 + time_78)
    nonwavefront = (
        spec.nonwavefront_time(platform, grid) if include_nonwavefront else 0.0
    )
    return SweepD3Baseline(
        start_p_diag=start_p_diag,
        start_p_near_full=start_p_near_full,
        time_56=time_56,
        time_78=time_78,
        sweeps_time=sweeps_time,
        nonwavefront=nonwavefront,
    )
