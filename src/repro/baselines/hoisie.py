"""The Hoisie et al. single-sweep pipeline model (IJHPCA 2000).

Hoisie, Lubeck & Wasserman model a wavefront sweep on a ``n x m`` processor
array as a software pipeline: the sweep's last processor finishes after

``T_sweep = (n + m - 2 + N_stages) * T_stage``

pipeline stages, where ``N_stages`` is the number of tile computations each
processor performs per sweep and ``T_stage`` is the time of one stage
(compute one tile plus exchange its boundaries).  The model abstracts away
the distinction between send/receive overheads and end-to-end latency - the
paper notes it "requires significant customisation to represent message
contention, the structure of the sweeps, and other operations in an actual
benchmark" - which is exactly the gap the plug-and-play model fills.

It is included as a baseline: for a single sweep it should track the reusable
model closely; for a full iteration it under-counts the exposed pipeline
fills of the real sweep structure (it assumes every sweep pays one full fill
or none, depending on the variant), and the benchmark harness quantifies that
difference.
"""

from __future__ import annotations

from repro.apps.base import WavefrontSpec
from repro.core.comm import CommunicationCosts
from repro.core.decomposition import ProcessorGrid
from repro.core.loggp import Platform

__all__ = ["hoisie_stage_time", "hoisie_single_sweep_time", "hoisie_iteration_time"]


def hoisie_stage_time(
    spec: WavefrontSpec, platform: Platform, grid: ProcessorGrid
) -> float:
    """Time of one pipeline stage: compute a tile and exchange its boundaries."""
    w = spec.work_per_tile(grid, platform) + spec.pre_work_per_tile(grid, platform)
    ew = CommunicationCosts.for_message(platform, spec.message_size_ew(grid), on_chip=False)
    ns = CommunicationCosts.for_message(platform, spec.message_size_ns(grid), on_chip=False)
    comm = ew.send + ew.receive + ns.send + ns.receive
    return w + comm


def hoisie_single_sweep_time(
    spec: WavefrontSpec, platform: Platform, grid: ProcessorGrid
) -> float:
    """Time for one sweep to complete on every processor."""
    stages = grid.n + grid.m - 2 + spec.tiles_per_stack()
    return stages * hoisie_stage_time(spec, platform, grid)


def hoisie_iteration_time(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    *,
    include_nonwavefront: bool = True,
) -> float:
    """A full-iteration estimate built from the single-sweep model.

    Consecutive sweeps are assumed to overlap perfectly except where the
    application's precedence structure forces a pipeline refill; following
    the single-sweep model's spirit we charge one full pipeline fill per
    ``nfull`` sweep and half a fill per ``ndiag`` sweep, plus one stack of
    tiles per sweep.
    """
    stage = hoisie_stage_time(spec, platform, grid)
    fill_stages = grid.n + grid.m - 2
    diag_stages = max(grid.n - 1, grid.m - 1)
    tiles = spec.tiles_per_stack()
    sweeps_time = (
        spec.nsweeps * tiles * stage
        + spec.nfull * fill_stages * stage
        + spec.ndiag * diag_stages * stage
    )
    nonwavefront = (
        spec.nonwavefront_time(platform, grid) if include_nonwavefront else 0.0
    )
    return sweeps_time + nonwavefront
