"""Previous (application-specific) analytic models used as baselines.

The paper positions its plug-and-play model against earlier models that are
tailored to a single code:

* the Sundaram-Stukel & Vernon LogGP model of Sweep3D (PPoPP'99), reproduced
  from Table 4 of the paper (:mod:`repro.baselines.sundaram_vernon`); and
* the Hoisie et al. single-sweep "pipeline" model (IJHPCA 2000)
  (:mod:`repro.baselines.hoisie`).

Both are implemented so the benchmark harness can compare the reusable model
against them (they should agree closely for Sweep3D on a single-core-per-node
configuration, which is exactly the paper's argument that generality costs no
accuracy).
"""

from repro.baselines.sundaram_vernon import SweepD3Baseline, sundaram_vernon_iteration_time
from repro.baselines.hoisie import hoisie_single_sweep_time, hoisie_iteration_time

__all__ = [
    "SweepD3Baseline",
    "sundaram_vernon_iteration_time",
    "hoisie_single_sweep_time",
    "hoisie_iteration_time",
]
