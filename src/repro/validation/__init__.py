"""Validation harness: plug-and-play model vs the discrete-event simulator."""

from repro.validation.compare import (
    AllReduceValidation,
    ValidationResult,
    ValidationSummary,
    diff_backends,
    validate_allreduce,
    validate_configuration,
    validate_matrix,
)

__all__ = [
    "AllReduceValidation",
    "ValidationResult",
    "ValidationSummary",
    "diff_backends",
    "validate_allreduce",
    "validate_configuration",
    "validate_matrix",
]
