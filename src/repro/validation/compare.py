"""Model-versus-"measurement" validation harness (Section 5's error claims).

In the paper the model is validated against wall-clock measurements on the
Cray XT3/XT4; in this reproduction the discrete-event simulator plays the
role of the measurement (see DESIGN.md).  The harness runs both for a matrix
of (application, platform, processor count) configurations and reports the
relative prediction error, reproducing the "<5% for LU, <10% for the
transport benchmarks on high-performance configurations" style summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.core.comm import allreduce_time
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.loggp import Platform
from repro.core.predictor import predict
from repro.simulator.pingpong import allreduce_benchmark
from repro.simulator.wavefront import simulate_wavefront

__all__ = [
    "ValidationResult",
    "ValidationSummary",
    "validate_configuration",
    "validate_matrix",
    "AllReduceValidation",
    "validate_allreduce",
]


@dataclass(frozen=True)
class ValidationResult:
    """Model vs simulated per-iteration time for one configuration."""

    application: str
    platform: str
    total_cores: int
    cores_per_node: int
    model_us: float
    simulated_us: float

    @property
    def relative_error(self) -> float:
        """Signed relative error of the model: (model - simulated) / simulated."""
        if self.simulated_us == 0.0:
            return 0.0
        return (self.model_us - self.simulated_us) / self.simulated_us

    @property
    def absolute_relative_error(self) -> float:
        return abs(self.relative_error)


@dataclass(frozen=True)
class ValidationSummary:
    """Aggregate error statistics over a validation matrix."""

    results: tuple[ValidationResult, ...]

    @property
    def max_error(self) -> float:
        return max((r.absolute_relative_error for r in self.results), default=0.0)

    @property
    def mean_error(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.absolute_relative_error for r in self.results) / len(self.results)

    def worst(self) -> Optional[ValidationResult]:
        if not self.results:
            return None
        return max(self.results, key=lambda r: r.absolute_relative_error)

    def by_application(self, name: str) -> "ValidationSummary":
        return ValidationSummary(
            results=tuple(r for r in self.results if r.application == name)
        )


def validate_configuration(
    spec: WavefrontSpec,
    platform: Platform,
    *,
    total_cores: Optional[int] = None,
    grid: Optional[ProcessorGrid] = None,
    core_mapping: Optional[CoreMapping] = None,
    simulate_nonwavefront: bool = True,
    max_events: Optional[int] = None,
) -> ValidationResult:
    """Run the model and the simulator for one configuration and compare."""
    prediction = predict(
        spec, platform, total_cores=total_cores, grid=grid, core_mapping=core_mapping
    )
    simulation = simulate_wavefront(
        spec,
        platform,
        total_cores=total_cores,
        grid=grid,
        core_mapping=core_mapping,
        iterations=1,
        simulate_nonwavefront=simulate_nonwavefront,
        max_events=max_events,
    )
    model_us = prediction.time_per_iteration_us
    if not simulate_nonwavefront:
        model_us -= prediction.iteration.tnonwavefront
    return ValidationResult(
        application=spec.name,
        platform=platform.name,
        total_cores=prediction.grid.total_processors,
        cores_per_node=platform.node.cores_per_node,
        model_us=model_us,
        simulated_us=simulation.time_per_iteration_us,
    )


def validate_matrix(
    cases: Sequence[tuple[WavefrontSpec, Platform, int]],
    *,
    simulate_nonwavefront: bool = True,
    max_events: Optional[int] = None,
) -> ValidationSummary:
    """Validate a list of (spec, platform, total_cores) configurations."""
    results = [
        validate_configuration(
            spec,
            platform,
            total_cores=total_cores,
            simulate_nonwavefront=simulate_nonwavefront,
            max_events=max_events,
        )
        for spec, platform, total_cores in cases
    ]
    return ValidationSummary(results=tuple(results))


@dataclass(frozen=True)
class AllReduceValidation:
    """Equation (9) vs the simulated recursive-doubling all-reduce."""

    total_cores: int
    model_us: float
    simulated_us: float

    @property
    def relative_error(self) -> float:
        if self.simulated_us == 0.0:
            return 0.0
        return (self.model_us - self.simulated_us) / self.simulated_us


def validate_allreduce(
    platform: Platform,
    core_counts: Sequence[int],
    *,
    payload_bytes: int = 8,
) -> list[AllReduceValidation]:
    """Compare the all-reduce model against the simulator for each core count."""
    results = []
    for count in core_counts:
        results.append(
            AllReduceValidation(
                total_cores=count,
                model_us=allreduce_time(platform, count, payload_bytes),
                simulated_us=allreduce_benchmark(platform, count, payload_bytes=payload_bytes),
            )
        )
    return results
