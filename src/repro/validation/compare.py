"""Model-versus-"measurement" validation harness (Section 5's error claims).

In the paper the model is validated against wall-clock measurements on the
Cray XT3/XT4; in this reproduction the discrete-event simulator plays the
role of the measurement (see DESIGN.md).  With the unified backend
architecture the harness is a generic *diff*: run the same configuration
matrix on two prediction backends through
:func:`repro.backends.service.predict_many` and compare per-iteration times
(:func:`diff_backends`).  The classic entry points
(:func:`validate_configuration`, :func:`validate_matrix`) are thin wrappers
that pick an analytic candidate and the simulator baseline, reproducing the
"<5% for LU, <10% for the transport benchmarks on high-performance
configurations" style summaries - and because any backend can stand on
either side, every :mod:`repro.analysis` study can be cross-checked against
the simulator with one argument.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult, PredictionRequest
from repro.backends.registry import BackendSpec, get_backend
from repro.backends.service import RequestLike, as_request, predict_many
from repro.backends.simulator import SimulatorBackend
from repro.core.comm import allreduce_time
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.loggp import Platform
from repro.simulator.pingpong import allreduce_benchmark
from repro.util.units import safe_ratio

__all__ = [
    "ValidationResult",
    "ValidationSummary",
    "diff_backends",
    "validate_configuration",
    "validate_matrix",
    "AllReduceValidation",
    "validate_allreduce",
]


@dataclass(frozen=True)
class ValidationResult:
    """Candidate vs baseline per-iteration time for one configuration.

    For the classic model-vs-simulator use the candidate is the analytic
    model (``model_us``) and the baseline the simulated "measurement"
    (``simulated_us``).
    """

    application: str
    platform: str
    total_cores: int
    cores_per_node: int
    model_us: float
    simulated_us: float

    @property
    def relative_error(self) -> float:
        """Signed relative error of the model: (model - simulated) / simulated."""
        return safe_ratio(self.model_us - self.simulated_us, self.simulated_us)

    @property
    def absolute_relative_error(self) -> float:
        return abs(self.relative_error)


@dataclass(frozen=True)
class ValidationSummary:
    """Aggregate error statistics over a validation matrix."""

    results: tuple[ValidationResult, ...]

    @property
    def max_error(self) -> float:
        return max((r.absolute_relative_error for r in self.results), default=0.0)

    @property
    def mean_error(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.absolute_relative_error for r in self.results) / len(self.results)

    def worst(self) -> Optional[ValidationResult]:
        if not self.results:
            return None
        return max(self.results, key=lambda r: r.absolute_relative_error)

    def by_application(self, name: str) -> "ValidationSummary":
        return ValidationSummary(
            results=tuple(r for r in self.results if r.application == name)
        )


def _diff_result(
    candidate: BackendResult, baseline: BackendResult, candidate_us: float
) -> ValidationResult:
    return ValidationResult(
        application=candidate.spec.name,
        platform=candidate.platform.name,
        total_cores=candidate.grid.total_processors,
        cores_per_node=candidate.platform.node.cores_per_node,
        model_us=candidate_us,
        simulated_us=baseline.time_per_iteration_us,
    )


def diff_backends(
    requests: Iterable[RequestLike],
    *,
    candidate: BackendSpec = "analytic-fast",
    baseline: BackendSpec = "simulator",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> ValidationSummary:
    """Run the same request matrix on two backends and diff the results.

    ``model_us`` holds the candidate's per-iteration time, ``simulated_us``
    the baseline's.  Any registered backend (or instance) can stand on
    either side: ``diff_backends(requests, candidate="analytic-fast",
    baseline="analytic-exact")`` checks the fast engine, the defaults check
    the model against the simulated measurement.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> summary = diff_backends([(lu_class("A"), cray_xt4(), 16)],
    ...                         candidate="analytic-fast",
    ...                         baseline="analytic-exact")
    >>> round(summary.max_error, 9)   # fast engine == exact recurrence
    0.0
    """
    request_list = [as_request(request) for request in requests]
    candidate_results = predict_many(
        request_list, backend=candidate, workers=workers, executor=executor
    )
    baseline_results = predict_many(
        request_list, backend=baseline, workers=workers, executor=executor
    )
    return ValidationSummary(
        results=tuple(
            _diff_result(c, b, c.time_per_iteration_us)
            for c, b in zip(candidate_results, baseline_results)
        )
    )


def _adjusted_model_us(result: BackendResult, simulate_nonwavefront: bool) -> float:
    """The candidate's per-iteration time, minus ``Tnonwavefront`` when the
    measurement excludes the non-wavefront phase (analytic backends only)."""
    model_us = result.time_per_iteration_us
    if not simulate_nonwavefront:
        if result.prediction is None:
            raise ValueError(
                "simulate_nonwavefront=False needs a candidate whose "
                "non-wavefront phase can be excluded: an analytic backend "
                "(whose Tnonwavefront term is subtracted) or a "
                "SimulatorBackend (reconfigured automatically); backend "
                f"{result.backend!r} supports neither"
            )
        model_us -= result.prediction.iteration.tnonwavefront
    return model_us


def validate_configuration(
    spec: WavefrontSpec,
    platform: Platform,
    *,
    total_cores: Optional[int] = None,
    grid: Optional[ProcessorGrid] = None,
    core_mapping: Optional[CoreMapping] = None,
    simulate_nonwavefront: bool = True,
    max_events: Optional[int] = None,
    model_backend: BackendSpec = "analytic-fast",
) -> ValidationResult:
    """Run the model and the simulator for one configuration and compare."""
    summary = validate_matrix(
        [
            PredictionRequest(
                spec,
                platform,
                total_cores=total_cores,
                grid=grid,
                core_mapping=core_mapping,
            )
        ],
        simulate_nonwavefront=simulate_nonwavefront,
        max_events=max_events,
        model_backend=model_backend,
    )
    return summary.results[0]


def validate_matrix(
    cases: Sequence[RequestLike],
    *,
    simulate_nonwavefront: bool = True,
    max_events: Optional[int] = None,
    model_backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> ValidationSummary:
    """Validate a matrix of configurations: analytic model vs the simulator.

    ``cases`` are :class:`~repro.backends.base.PredictionRequest` objects or
    ``(spec, platform, total_cores)`` triples.  Both backends run the full
    matrix through :func:`~repro.backends.service.predict_many` (with
    optional pool fan-out), so repeated configurations are evaluated once.
    """
    requests = [as_request(case) for case in cases]
    measurement = SimulatorBackend(
        simulate_nonwavefront=simulate_nonwavefront, max_events=max_events
    )
    # A simulator candidate must see the same phase configuration as the
    # baseline; analytic candidates are adjusted in _adjusted_model_us, and
    # any other backend with simulate_nonwavefront=False is rejected there.
    candidate = get_backend(model_backend)
    candidate_is_simulator = isinstance(candidate, SimulatorBackend)
    if candidate_is_simulator:
        candidate = replace(candidate, simulate_nonwavefront=simulate_nonwavefront)
    model_results = predict_many(
        requests, backend=candidate, workers=workers, executor=executor
    )
    measured_results = predict_many(
        requests, backend=measurement, workers=workers, executor=executor
    )
    return ValidationSummary(
        results=tuple(
            _diff_result(
                model,
                measured,
                model.time_per_iteration_us
                if candidate_is_simulator
                else _adjusted_model_us(model, simulate_nonwavefront),
            )
            for model, measured in zip(model_results, measured_results)
        )
    )


@dataclass(frozen=True)
class AllReduceValidation:
    """Equation (9) vs the simulated recursive-doubling all-reduce."""

    total_cores: int
    model_us: float
    simulated_us: float

    @property
    def relative_error(self) -> float:
        return safe_ratio(self.model_us - self.simulated_us, self.simulated_us)


def validate_allreduce(
    platform: Platform,
    core_counts: Sequence[int],
    *,
    payload_bytes: int = 8,
) -> list[AllReduceValidation]:
    """Compare the all-reduce model against the simulator for each core count."""
    results = []
    for count in core_counts:
        results.append(
            AllReduceValidation(
                total_cores=count,
                model_us=allreduce_time(platform, count, payload_bytes),
                simulated_us=allreduce_benchmark(platform, count, payload_bytes=payload_bytes),
            )
        )
    return results
