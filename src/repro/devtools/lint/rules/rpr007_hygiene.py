"""RPR007 - mutable default arguments and bare ``except:``.

Two classic Python hazards that have no legitimate use in this library:

* a mutable default (``def f(x, acc=[])``) is evaluated once and shared
  across calls - in a library whose value objects are frozen dataclasses
  precisely to be safely memoised and pickled, aliased mutable state is a
  cache-poisoning bug waiting to happen;
* a bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and
  masks the typed error-handling contract (``TypeError`` propagation from
  :func:`repro.util.caching.call_with_unhashable_fallback`, fail-loud
  ``ValueError`` in the CLI paths).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.astutil import dotted_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleRule, register_rule

__all__ = ["HygieneRule"]

_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _MUTABLE_FACTORIES
    return False


@register_rule
class HygieneRule(ModuleRule):
    rule_id = "RPR007"
    severity = "error"
    summary = "no mutable default arguments, no bare except:"

    def check(self, module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        label = (
                            "lambda"
                            if isinstance(node, ast.Lambda)
                            else f"function {node.name!r}"
                        )
                        yield self.finding(
                            module,
                            default,
                            f"mutable default argument in {label} is shared "
                            "across calls; default to None and create the "
                            "container in the body",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: catches KeyboardInterrupt/SystemExit; "
                    "name the exception types this handler expects",
                )
