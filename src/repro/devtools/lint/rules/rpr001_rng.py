"""RPR001 - RNG must be an injected, seeded stream.

The determinism contract (PR 2/4, ``tests/test_determinism.py``): every
stochastic component draws from a :class:`random.Random` seeded per rank
and passed in explicitly.  Module-level :mod:`random` calls share hidden
global state across threads and campaigns; an unseeded ``Random()`` (or
``numpy.random.default_rng()`` without a seed) makes same-seed re-runs
diverge.  Both break bit-identical resume and the golden-prediction tests.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from repro.devtools.lint.astutil import dotted_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleRule, register_rule

__all__ = ["UnseededRandomRule"]

#: Legacy numpy global-state functions (np.random.<fn> without a Generator).
_NUMPY_GLOBAL_FNS = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "normal",
    "uniform",
    "choice",
    "shuffle",
    "permutation",
}


@register_rule
class UnseededRandomRule(ModuleRule):
    rule_id = "RPR001"
    severity = "error"
    summary = "no unseeded Random() or module-level random.* calls; inject a seeded stream"

    def check(self, module) -> Iterable[Finding]:
        random_aliases: Set[str] = set()
        from_random: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "*":
                        from_random[alias.asname or alias.name] = alias.name

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in random_aliases
            ):
                yield from self._check_random_api(module, node, func.attr)
                continue
            if isinstance(func, ast.Name) and func.id in from_random:
                yield from self._check_random_api(module, node, from_random[func.id])
                continue
            dotted = dotted_name(func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) >= 3
                and parts[-2] == "random"
                and parts[-1] in _NUMPY_GLOBAL_FNS
            ):
                yield self.finding(
                    module,
                    node,
                    f"global-state numpy RNG call {dotted}(); use a seeded "
                    "numpy.random.default_rng(seed) generator instead",
                )
            elif parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "unseeded default_rng(); pass an explicit seed so runs "
                    "are reproducible",
                )

    def _check_random_api(self, module, node: ast.Call, api_name: str):
        if api_name in ("Random", "SystemRandom"):
            if api_name == "SystemRandom":
                yield self.finding(
                    module,
                    node,
                    "SystemRandom() draws OS entropy and can never be "
                    "seeded; use random.Random(seed)",
                )
            elif not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "unseeded random.Random(); seed it from the injected "
                    "configuration (e.g. Random(noise_seed * k + rank))",
                )
        else:
            yield self.finding(
                module,
                node,
                f"module-level random.{api_name}() uses shared global state; "
                "inject a per-rank seeded random.Random stream instead",
            )
