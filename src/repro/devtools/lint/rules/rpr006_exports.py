"""RPR006 - ``__all__`` must agree with what the module actually binds.

Three checks per module that declares a literal ``__all__``:

* every listed name is bound at module level (a phantom export breaks
  ``from repro import *`` and the package-API tests at import time - or
  worse, silently, when the name is only missing under some import
  order);
* no duplicate entries;
* in package ``__init__`` modules, every *public* name pulled in with
  ``from x import y`` also appears in ``__all__`` (re-exports are the
  whole point of an ``__init__``; an unlisted one is an accidental,
  undocumented API surface).

Dynamic ``__all__`` (comprehensions, concatenation) is skipped - the rule
only reasons about literal lists/tuples of strings.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.devtools.lint.astutil import (
    iter_module_statements,
    module_bindings,
    string_elements,
)
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleRule, register_rule

__all__ = ["ExportConsistencyRule"]


def _find_all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for stmt in iter_module_statements(tree):
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            return stmt
    return None


@register_rule
class ExportConsistencyRule(ModuleRule):
    rule_id = "RPR006"
    severity = "error"
    summary = "__all__ entries must be bound; __init__ re-exports must be listed"

    def check(self, module) -> Iterable[Finding]:
        assignment = _find_all_assignment(module.tree)
        if assignment is None:
            return
        elements = string_elements(assignment.value)
        if elements is None:
            return  # dynamic __all__: out of static reach
        bound = module_bindings(module.tree)
        if bound is None:
            return  # star-import: bindings unknowable

        exported: List[str] = [element.value for element in elements]
        seen: Set[str] = set()
        for element in elements:
            name = element.value
            if name in seen:
                yield self.finding(
                    module, element, f"duplicate __all__ entry {name!r}"
                )
            seen.add(name)
            if name not in bound:
                yield self.finding(
                    module,
                    element,
                    f"__all__ lists {name!r} but the module never binds it",
                )

        if module.path.name != "__init__.py":
            return
        exported_set = set(exported)
        for stmt in iter_module_statements(module.tree):
            if not isinstance(stmt, ast.ImportFrom) or stmt.module == "__future__":
                continue
            for alias in stmt.names:
                name = alias.asname or alias.name
                if name == "*" or name.startswith("_"):
                    continue
                if name not in exported_set:
                    yield self.finding(
                        module,
                        stmt,
                        f"__init__ imports {name!r} but __all__ does not "
                        "list it; add it or alias it with a leading "
                        "underscore",
                    )
