"""Built-in lint rules, one module per project invariant.

Importing this package registers every rule (the registry's lazy-builtins
pattern).  To add a rule: create ``rprNNN_<slug>.py`` defining a
:class:`~repro.devtools.lint.registry.ModuleRule` or
:class:`~repro.devtools.lint.registry.ProjectRule` subclass decorated with
:func:`~repro.devtools.lint.registry.register_rule`, import it here, and
document it in ``docs/lint.md``.
"""

from repro.devtools.lint.rules import (  # noqa: F401  (import-for-side-effect)
    rpr001_rng,
    rpr002_caches,
    rpr003_picklable,
    rpr004_float_eq,
    rpr005_registry_docs,
    rpr006_exports,
    rpr007_hygiene,
)
