"""RPR004 - no ``==`` / ``!=`` against float literals.

Exact float comparison is almost always a rounding-error time bomb in a
numerical model (the conformance suite works to 1e-9 tolerances for a
reason).  The two legitimate shapes must be made explicit:

* ratio guards - use :func:`repro.util.units.safe_ratio` instead of an
  ``if den == 0.0`` prologue;
* exact-sentinel checks (a value that is *bit-exactly* 0.0/1.0 because it
  was never computed, only assigned) - keep the comparison and add
  ``# repro: noqa[RPR004] exact sentinel: <why>``.

Only comparisons against float *literals* are flagged; variable-vs-variable
comparisons are statically untypable.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleRule, register_rule

__all__ = ["FloatEqualityRule"]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -1.0 / +1.0 parse as UnaryOp(Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


@register_rule
class FloatEqualityRule(ModuleRule):
    rule_id = "RPR004"
    severity = "error"
    summary = "no float ==/!= comparisons (safe_ratio, tolerance, or justified sentinel)"

    def check(self, module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                literal = next(
                    (side for side in (left, right) if _is_float_literal(side)), None
                )
                if literal is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    module,
                    node,
                    f"float {symbol} comparison against "
                    f"{ast.unparse(literal)}; use util.units.safe_ratio / a "
                    "tolerance, or mark an exact sentinel with "
                    "# repro: noqa[RPR004] <why>",
                )
