"""RPR005 - backends and strategies must be registered *and* documented.

The registry pattern (PR 2/5) only pays off if nothing bypasses it: a
``PredictionBackend``-shaped class that is never registered is dead code
the CLI cannot reach, and a registered name absent from ``docs/cli.md``
is a feature users cannot discover.  This cross-file rule closes both
gaps:

* every class that structurally implements the backend protocol
  (``name`` + ``evaluate``) or the strategy protocol (``name`` +
  ``search``) must appear inside a registration expression
  (``register_backend(...)``, ``_FACTORIES.setdefault(...)`` or the
  ``_STRATEGIES`` table);
* every name string those registrations bind must appear in
  ``docs/cli.md`` (the registered-names tables).

Protocol definitions themselves (classes with a ``Protocol`` base) and
private classes are exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.devtools.lint.astutil import dotted_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ProjectRule, register_rule

__all__ = ["RegistryDocsRule"]

_DOC_PAGE = "docs/cli.md"


def _class_members(classdef: ast.ClassDef) -> Set[str]:
    members: Set[str] = set()
    for node in classdef.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            members.add(node.name)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            members.add(node.target.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    members.add(target.id)
    return members


def _is_protocol(classdef: ast.ClassDef) -> bool:
    for base in classdef.bases:
        name = dotted_name(base)
        if name is not None and name.rsplit(".", 1)[-1] == "Protocol":
            return True
    return False


@register_rule
class RegistryDocsRule(ProjectRule):
    rule_id = "RPR005"
    severity = "error"
    summary = "backend/strategy classes registered; registered names documented in docs/cli.md"

    def check_project(self, project) -> Iterable[Finding]:
        protocol_classes: List[Tuple[object, ast.ClassDef, str]] = []
        registered_names: List[Tuple[object, ast.AST, str]] = []
        referenced_classes: Set[str] = set()

        for module in project.src_modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    if node.name.startswith("_") or _is_protocol(node):
                        continue
                    members = _class_members(node)
                    if "name" not in members:
                        continue
                    if "evaluate" in members:
                        protocol_classes.append((module, node, "PredictionBackend"))
                    elif "search" in members:
                        protocol_classes.append((module, node, "SearchStrategy"))
                elif isinstance(node, ast.Call):
                    self._collect_call(node, registered_names, referenced_classes, module)
                elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                    self._collect_strategy_table(
                        node, registered_names, referenced_classes, module
                    )

        for module, classdef, protocol in protocol_classes:
            if classdef.name not in referenced_classes:
                yield self.finding(
                    module,
                    classdef,
                    f"class {classdef.name!r} implements the {protocol} "
                    "protocol but is never registered; add it to the "
                    "registry (register_backend / the strategy table) or "
                    "make it private",
                )

        doc_text = project.doc_text(_DOC_PAGE)
        if doc_text is None:
            return
        for module, node, name in registered_names:
            if name not in doc_text:
                yield self.finding(
                    module,
                    node,
                    f"registered name {name!r} is not documented in "
                    f"{_DOC_PAGE}; add it to the registered-names table",
                )

    def _collect_call(
        self,
        node: ast.Call,
        registered_names: List[Tuple[object, ast.AST, str]],
        referenced_classes: Set[str],
        module,
    ) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        last = name.rsplit(".", 1)[-1]
        is_registration = last == "register_backend" or (
            last == "setdefault" and name.rsplit(".", 1)[0].endswith("_FACTORIES")
        )
        if not is_registration:
            return
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                registered_names.append((module, node, value))
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name):
                referenced_classes.add(inner.id)

    def _collect_strategy_table(
        self,
        node,
        registered_names: List[Tuple[object, ast.AST, str]],
        referenced_classes: Set[str],
        module,
    ) -> None:
        if isinstance(node, ast.AnnAssign):
            targets = [node.target.id] if isinstance(node.target, ast.Name) else []
        else:
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "_STRATEGIES" not in targets or not isinstance(node.value, ast.Dict):
            return
        table: ast.Dict = node.value
        for key, value in zip(table.keys, table.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                registered_names.append((module, key, key.value))
            for inner in ast.walk(value):
                if isinstance(inner, ast.Name):
                    referenced_classes.add(inner.id)
