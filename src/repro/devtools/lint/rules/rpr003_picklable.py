"""RPR003 - process-pool boundaries need picklable, module-level callables.

``parallel_map`` / ``unique_map`` / ``ParameterSweep.run`` /
``predict_many`` all accept ``executor="process"``, which ships their
callable arguments to a :class:`~concurrent.futures.ProcessPoolExecutor`.
Lambdas and functions defined inside another function cannot be pickled -
the failure appears only on the process-pool path, typically in a user's
long campaign rather than in the (thread-pooled) test suite.  The fix is
the idiom PR 1 established: a module-level helper, partially applied with
:func:`functools.partial`.

A call that pins ``executor="thread"`` literally is exempt - thread pools
share the interpreter and accept closures.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.devtools.lint.astutil import dotted_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleRule, register_rule

__all__ = ["PicklableCallableRule"]

#: Callables whose arguments can cross a process-pool boundary.
_TARGET_FUNCTIONS = {"parallel_map", "unique_map", "predict_many"}

#: Attribute calls treated as sweep fan-out when they carry pool kwargs
#: (``ParameterSweep.run(fn, workers=..., executor=...)``).
_TARGET_METHODS = {"run"}
_POOL_KEYWORDS = {"workers", "executor"}


def _is_target_call(node: ast.Call) -> bool:
    func = node.func
    name = dotted_name(func)
    last = name.rsplit(".", 1)[-1] if name else None
    if last in _TARGET_FUNCTIONS:
        return True
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _TARGET_METHODS
        and any(kw.arg in _POOL_KEYWORDS for kw in node.keywords)
    ):
        return True
    return False


def _pins_thread_executor(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "executor":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value == "thread"
    return False


@register_rule
class PicklableCallableRule(ModuleRule):
    rule_id = "RPR003"
    severity = "error"
    summary = "no lambdas/local defs across process-pool boundaries (must pickle)"

    def check(self, module) -> Iterable[Finding]:
        findings: List[Finding] = []
        self._visit(module, module.tree.body, scopes=[], findings=findings)
        return findings

    def _visit(self, module, statements, scopes: List[Set[str]], findings) -> None:
        for stmt in statements:
            self._visit_node(module, stmt, scopes, findings)

    def _visit_node(self, module, node: ast.AST, scopes: List[Set[str]], findings) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A def nested inside a function is a local (unpicklable) callable
            # from the enclosing scope's point of view.
            if scopes:
                scopes[-1].add(node.name)
            scopes.append(set())
            for child in ast.iter_child_nodes(node):
                self._visit_node(module, child, scopes, findings)
            scopes.pop()
            return
        if isinstance(node, ast.Assign) and scopes and isinstance(node.value, ast.Lambda):
            # `name = lambda ...` binds a local callable too.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    scopes[-1].add(target.id)
        if isinstance(node, ast.Call) and _is_target_call(node):
            if not _pins_thread_executor(node):
                findings.extend(self._check_arguments(module, node, scopes))
        for child in ast.iter_child_nodes(node):
            self._visit_node(module, child, scopes, findings)

    def _check_arguments(
        self, module, call: ast.Call, scopes: List[Set[str]]
    ) -> Iterable[Finding]:
        local_names: Set[str] = set()
        for scope in scopes:
            local_names |= scope
        values = list(call.args) + [kw.value for kw in call.keywords]
        for value in values:
            lambda_node = self._first_lambda(value)
            if lambda_node is not None:
                yield self.finding(
                    module,
                    lambda_node,
                    "lambda passed across a potential process-pool boundary "
                    "cannot be pickled; hoist it to a module-level function "
                    "(use functools.partial to bind arguments)",
                )
                continue
            if isinstance(value, ast.Name) and value.id in local_names:
                yield self.finding(
                    module,
                    value,
                    f"locally-defined function {value.id!r} passed across a "
                    "potential process-pool boundary cannot be pickled; "
                    "hoist it to module level",
                )

    @staticmethod
    def _first_lambda(node: ast.expr) -> Optional[ast.Lambda]:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Lambda):
                return inner
        return None
