"""RPR002 - every cache must be reachable from a registered clearer.

The caching contract (PR 4 fixed a silent-staleness bug of exactly this
class): :func:`repro.core.predictor.clear_prediction_cache` must drain
*every* memo in the library, which works only if each module that caches
model inputs registers a clearer with
:func:`repro.util.caching.register_cache_clearer` (or is itself the drain
entry point that calls ``clear_registered_caches``).

Three cache shapes are recognised:

* ``functools.lru_cache`` / ``functools.cache`` wrapped callables
  (decorator form or ``name = lru_cache(...)(fn)`` assignment form);
* module-level mutable containers named ``*_cache`` / ``*_memo``;
* instance attributes ``self.*_cache`` / ``self.*_memo`` (these cannot be
  globally registered, so the owning class must provide its own clearing
  method - or carry a justified suppression when the cache's lifetime is
  bounded by construction).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.devtools.lint.astutil import dotted_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleRule, register_rule

__all__ = ["UnclearedCacheRule"]

_LRU_NAMES = {"lru_cache", "functools.lru_cache", "cache", "functools.cache"}
_CACHE_SUFFIXES = ("_cache", "_memo")


def _is_lru_factory(node: ast.expr) -> bool:
    """``lru_cache`` / ``lru_cache(...)`` in decorator or call position."""
    if isinstance(node, ast.Call):
        node = node.func
    name = dotted_name(node)
    return name in _LRU_NAMES


def _is_cacheish_name(name: str) -> bool:
    return name.lower().endswith(_CACHE_SUFFIXES)


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.DictComp, ast.List, ast.ListComp, ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in {"dict", "list", "set", "OrderedDict", "defaultdict"}
    return False


@register_rule
class UnclearedCacheRule(ModuleRule):
    rule_id = "RPR002"
    severity = "error"
    summary = "caches need a clearer registered with util.caching (stale-memo guard)"

    def check(self, module) -> Iterable[Finding]:
        tree = module.tree
        cached: List[Tuple[str, ast.AST]] = []  # (name, node to blame)

        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(_is_lru_factory(dec) for dec in node.decorator_list):
                    cached.append((node.name, node))
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                # name = lru_cache(...)(fn)  /  name = functools.cache(fn)
                if isinstance(value, ast.Call) and _is_lru_factory(value.func):
                    cached.append((target.id, node))
                elif _is_cacheish_name(target.id) and _is_mutable_container(value):
                    cached.append((target.id, node))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target = node.target
                if (
                    isinstance(target, ast.Name)
                    and _is_cacheish_name(target.id)
                    and _is_mutable_container(node.value)
                ):
                    cached.append((target.id, node))

        if cached:
            cleared = self._cleared_names(tree)
            for name, node in cached:
                if name not in cleared:
                    yield self.finding(
                        module,
                        node,
                        f"cache {name!r} is not reachable from any registered "
                        "clearer; register one with "
                        "repro.util.caching.register_cache_clearer so "
                        "clear_prediction_cache() drains it",
                    )

        yield from self._check_instance_caches(module)

    # -- module-level caches -----------------------------------------------------------

    def _cleared_names(self, tree: ast.Module) -> Set[str]:
        """Names whose ``.cache_clear()``/``.clear()`` runs inside a clearer.

        A *clearer* is a function decorated with (or passed to)
        ``register_cache_clearer``, or one that calls
        ``clear_registered_caches`` - the drain entry point itself.
        """
        registered_by_call: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.endswith("register_cache_clearer"):
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            registered_by_call.add(arg.id)

        cleared: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            is_clearer = node.name in registered_by_call
            for dec in node.decorator_list:
                dec_name = dotted_name(dec.func if isinstance(dec, ast.Call) else dec)
                if dec_name is not None and dec_name.endswith("register_cache_clearer"):
                    is_clearer = True
            if not is_clearer:
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call):
                        name = dotted_name(inner.func)
                        if name is not None and name.endswith("clear_registered_caches"):
                            is_clearer = True
                            break
            if not is_clearer:
                continue
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in ("cache_clear", "clear")
                    and isinstance(inner.func.value, ast.Name)
                ):
                    cleared.add(inner.func.value.id)
        return cleared

    # -- instance caches ---------------------------------------------------------------

    def _check_instance_caches(self, module) -> Iterable[Finding]:
        for classdef in ast.walk(module.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            defined: List[Tuple[str, ast.AST]] = []
            cleared: Set[str] = set()
            for node in ast.walk(classdef):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                else:
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("clear", "cache_clear")
                    ):
                        inner = node.func.value
                        if (
                            isinstance(inner, ast.Attribute)
                            and isinstance(inner.value, ast.Name)
                            and inner.value.id == "self"
                        ):
                            cleared.add(inner.attr)
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _is_cacheish_name(target.attr)
                    ):
                        value = node.value
                        if value is not None and _is_mutable_container(value):
                            defined.append((target.attr, node))
            seen: Set[str] = set()
            for name, node in defined:
                if name in cleared or name in seen:
                    continue
                seen.add(name)
                yield self.finding(
                    module,
                    node,
                    f"instance cache 'self.{name}' of class "
                    f"{classdef.name!r} has no clearing method; add one "
                    "(self.{0}.clear()) or justify why its lifetime is "
                    "bounded".format(name),
                )
