"""The lint engine: parse, run rules, apply suppressions, report.

The engine is deliberately dumb plumbing - all judgement lives in the rule
classes (:mod:`repro.devtools.lint.rules`).  One run:

1. collect ``*.py`` files under the given paths (sorted, deterministic);
2. parse each into a :class:`LintedModule` (a syntax error becomes a
   ``LINT000`` finding instead of crashing the run);
3. run every applicable :class:`~repro.devtools.lint.registry.ModuleRule`
   per module and every
   :class:`~repro.devtools.lint.registry.ProjectRule` once over the whole
   :class:`LintProject`;
4. drop findings matched by ``# repro: noqa[...]`` suppressions and emit
   the meta findings (unused suppression, missing justification);
5. return a sorted :class:`~repro.devtools.lint.findings.LintReport`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devtools.lint.findings import Finding, LintReport, sorted_findings
from repro.devtools.lint.registry import LintRule, RuleSpec, get_rules
from repro.devtools.lint.suppressions import (
    LINT_PARSE,
    META_RULES,
    SuppressionIndex,
    scan_suppressions,
)

__all__ = [
    "LintEngine",
    "LintProject",
    "LintedModule",
    "default_lint_paths",
    "lint_paths",
    "lint_source",
]


def _role_for(path: Path) -> str:
    """Which rule scope a file belongs to: ``src``, ``tests`` or ``other``.

    Library modules live under a ``src`` directory (or inside the installed
    ``repro`` package); test modules under a ``tests`` directory.
    """
    parts = path.parts
    if "src" in parts or "repro" in parts:
        return "src"
    if "tests" in parts or "benchmarks" in parts:
        return "tests"
    return "other"


@dataclass(frozen=True)
class LintedModule:
    """One parsed source file plus the context rules need."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    role: str

    @classmethod
    def from_source(
        cls, source: str, path: Path, display: Optional[str] = None
    ) -> "LintedModule":
        return cls(
            path=path,
            display=display if display is not None else str(path),
            source=source,
            tree=ast.parse(source),
            role=_role_for(path),
        )


@dataclass(frozen=True)
class LintProject:
    """Everything a cross-file rule can see: all modules plus the repo root."""

    modules: Tuple[LintedModule, ...]
    root: Optional[Path] = None

    @property
    def src_modules(self) -> Tuple[LintedModule, ...]:
        return tuple(m for m in self.modules if m.role == "src")

    def doc_text(self, relative: str) -> Optional[str]:
        """The text of a repo document (``docs/cli.md``), if locatable."""
        if self.root is None:
            return None
        path = self.root / relative
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


def collect_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``*.py`` under ``paths`` (files pass through), deduped, sorted."""
    collected = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            collected.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            collected.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(collected)


def find_project_root(start: Path) -> Optional[Path]:
    """Nearest ancestor of ``start`` that looks like the repository root."""
    current = start if start.is_dir() else start.parent
    current = current.resolve()
    for candidate in (current, *current.parents):
        if (candidate / "docs").is_dir() or (candidate / ".git").exists():
            return candidate
    return None


def default_lint_paths() -> List[Path]:
    """The installed ``repro`` package tree plus a sibling ``tests`` dir.

    With the repository's ``src`` layout this resolves to ``src/repro`` and
    ``tests`` regardless of the current working directory.
    """
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    paths = [package_dir]
    root = find_project_root(package_dir)
    if root is not None and (root / "tests").is_dir():
        paths.append(root / "tests")
    return paths


class LintEngine:
    """Run a rule selection over files or in-memory sources."""

    def __init__(
        self,
        rules: Optional[Sequence[RuleSpec]] = None,
        project_root: Optional[Path] = None,
    ):
        self.rules: List[LintRule] = get_rules(rules)
        self.project_root = Path(project_root) if project_root is not None else None

    @property
    def active_rule_ids(self) -> set:
        return {rule.rule_id for rule in self.rules} | set(META_RULES)

    def lint_paths(self, paths: Sequence[Path]) -> LintReport:
        """Lint every python file under ``paths``."""
        files = collect_python_files([Path(p) for p in paths])
        root = self.project_root
        if root is None and files:
            root = find_project_root(files[0])
        modules: List[LintedModule] = []
        findings: List[Finding] = []
        for path in files:
            source = path.read_text(encoding="utf-8")
            display = str(path)
            if root is not None:
                try:
                    display = str(path.resolve().relative_to(root))
                except ValueError:
                    pass
            try:
                modules.append(LintedModule.from_source(source, path, display))
            except SyntaxError as exc:
                severity, summary = META_RULES[LINT_PARSE]
                findings.append(
                    Finding(
                        display,
                        exc.lineno or 1,
                        (exc.offset or 1) - 1,
                        LINT_PARSE,
                        severity,
                        f"{summary}: {exc.msg}",
                    )
                )
        report = self._run(modules, root, prior_findings=findings)
        return LintReport(report, files=len(files))

    def lint_modules(
        self, modules: Sequence[LintedModule], root: Optional[Path] = None
    ) -> LintReport:
        """Lint already-parsed modules (the in-memory entry point)."""
        findings = self._run(list(modules), root if root else self.project_root)
        return LintReport(findings, files=len(modules))

    # -- internals -------------------------------------------------------------------

    def _run(
        self,
        modules: List[LintedModule],
        root: Optional[Path],
        prior_findings: Optional[List[Finding]] = None,
    ) -> Tuple[Finding, ...]:
        module_rules = [r for r in self.rules if not r.project_level]
        project_rules = [r for r in self.rules if r.project_level]

        by_module: Dict[str, List[Finding]] = {m.display: [] for m in modules}
        for module in modules:
            for rule in module_rules:
                if rule.applies(module):
                    by_module[module.display].extend(rule.check(module))

        if project_rules:
            project = LintProject(modules=tuple(modules), root=root)
            for rule in project_rules:
                for finding in rule.check_project(project):
                    by_module.setdefault(finding.path, []).append(finding)

        final: List[Finding] = list(prior_findings or [])
        active = self.active_rule_ids
        for module in modules:
            index = SuppressionIndex(
                module.display, scan_suppressions(module.source)
            )
            final.extend(index.filter(by_module[module.display]))
            final.extend(index.meta_findings(active))
        # Findings attributed to files outside the linted set (possible for
        # project rules) pass through unsuppressed.
        linted = {m.display for m in modules}
        for display, found in by_module.items():
            if display not in linted:
                final.extend(found)
        return sorted_findings(final)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[RuleSpec]] = None,
    project_root: Optional[Path] = None,
) -> LintReport:
    """One-call convenience: lint ``paths`` with ``rules`` (default: all)."""
    return LintEngine(rules=rules, project_root=project_root).lint_paths(paths)


def lint_source(
    source: str,
    path: str = "src/snippet.py",
    rules: Optional[Sequence[RuleSpec]] = None,
) -> Tuple[Finding, ...]:
    """Lint an in-memory snippet (module rules only - no project context).

    The default ``path`` places the snippet in the ``src`` scope, where
    every project-invariant rule applies.  This is the fixture entry point
    the rule tests (and doctests) use:

    >>> findings = lint_source("import random\\nx = random.random()\\n")
    >>> [f.rule_id for f in findings]
    ['RPR001']
    """
    engine = LintEngine(rules=rules)
    module = LintedModule.from_source(source, Path(path), display=path)
    return engine.lint_modules([module]).findings
