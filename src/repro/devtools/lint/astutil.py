"""Small AST helpers shared by the rule modules (stdlib :mod:`ast` only)."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

__all__ = [
    "dotted_name",
    "iter_module_statements",
    "module_bindings",
    "string_elements",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    >>> import ast
    >>> dotted_name(ast.parse("functools.lru_cache", mode="eval").body)
    'functools.lru_cache'
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_module_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into module-level If/Try/With blocks
    (so ``if TYPE_CHECKING:`` imports count as module-level bindings)."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, (ast.If, ast.Try)):
            nested: List[ast.stmt] = list(stmt.body) + list(stmt.orelse)
            if isinstance(stmt, ast.Try):
                nested += list(stmt.finalbody)
                for handler in stmt.handlers:
                    nested += list(handler.body)
            stack = nested + stack
        elif isinstance(stmt, ast.With):
            stack = list(stmt.body) + stack


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def module_bindings(tree: ast.Module) -> Optional[Set[str]]:
    """Names bound at module level, or ``None`` when a star-import makes the
    binding set statically unknowable."""
    bound: Set[str] = set()
    for stmt in iter_module_statements(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    return None
                bound.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                bound.update(_target_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            bound.update(_target_names(stmt.target))
        elif isinstance(stmt, ast.For):
            bound.update(_target_names(stmt.target))
    return bound


def string_elements(node: ast.expr) -> Optional[List[ast.Constant]]:
    """The Constant-string elements of a list/tuple literal, else ``None``."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    elements: List[ast.Constant] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        elements.append(element)
    return elements
