"""Command-line front end of the lint engine.

Two equivalent entry points expose the same flags:

* ``wavebench lint`` (a subcommand of :mod:`repro.cli`);
* ``python -m repro.devtools.lint``.

Exit status: 0 when no finding reaches the ``--fail-on`` severity
threshold, 1 otherwise, 2 on usage errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.lint.engine import LintEngine, default_lint_paths
from repro.devtools.lint.findings import SEVERITIES
from repro.devtools.lint.registry import rule_table
from repro.devtools.lint.reporters import render_json, render_text
from repro.devtools.lint.suppressions import META_RULES

__all__ = ["add_lint_arguments", "main", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repro package tree "
        "and the sibling tests/ directory)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: every registered rule)",
    )
    parser.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default="error",
        help="lowest severity that causes a non-zero exit (default: error)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules (id, severity, scope, summary) and exit",
    )
    parser.add_argument(
        "--project-root",
        default=None,
        help="repository root used to resolve docs cross-checks and display "
        "paths (default: auto-detected from the linted paths)",
    )


def _list_rules() -> int:
    for row in rule_table():
        print(f"{row['id']}  [{row['severity']:<7}]  ({row['scope']})  {row['summary']}")
    for rule_id, (severity, summary) in sorted(META_RULES.items()):
        print(f"{rule_id}  [{severity:<7}]  (engine)  {summary}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation (the ``wavebench lint`` handler)."""
    if args.list_rules:
        return _list_rules()
    rules = None
    if args.rules:
        rules = [rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()]
    paths = [Path(p) for p in args.paths] if args.paths else default_lint_paths()
    root = Path(args.project_root) if args.project_root else None
    engine = LintEngine(rules=rules, project_root=root)
    try:
        report = engine.lint_paths(paths)
    except (FileNotFoundError, KeyError) as exc:
        raise SystemExit(str(exc.args[0] if exc.args else exc)) from exc
    print(render_json(report) if args.json else render_text(report))
    return 1 if report.failing(args.fail_on) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based checker for the repository's determinism, "
        "caching and concurrency contracts (see docs/lint.md)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
