"""Structured lint findings and the report that aggregates them.

A :class:`Finding` is one rule violation pinned to ``path:line:col``; a
:class:`LintReport` is the sorted collection the engine returns and the
reporters (:mod:`repro.devtools.lint.reporters`) render.  Severities are a
two-level scale (``warning`` < ``error``): the CLI's ``--fail-on`` picks
the threshold that turns findings into a non-zero exit status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

__all__ = ["SEVERITIES", "Finding", "LintReport", "severity_rank"]

#: Recognised severities, mildest first.
SEVERITIES: Tuple[str, ...] = ("warning", "error")


def severity_rank(severity: str) -> int:
    """Position of ``severity`` on the scale (higher is worse).

    >>> severity_rank("error") > severity_rank("warning")
    True
    """
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; choose from {SEVERITIES}"
        ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    >>> finding = Finding("src/repro/x.py", 3, 0, "RPR004", "error",
    ...                   "float equality comparison")
    >>> finding.render()
    'src/repro/x.py:3:1 RPR004 [error] float equality comparison'
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """``file:line:col rule-id [severity] message`` (1-based column)."""
        return (
            f"{self.path}:{self.line}:{self.col + 1} "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class LintReport:
    """Every finding of one engine run, plus the file count it covered."""

    findings: Tuple[Finding, ...]
    files: int

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def failing(self, fail_on: str = "error") -> Tuple[Finding, ...]:
        """The findings at or above the ``fail_on`` severity threshold."""
        threshold = severity_rank(fail_on)
        return tuple(
            f for f in self.findings if severity_rank(f.severity) >= threshold
        )

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "errors": self.errors,
                "warnings": self.warnings,
            },
        }


def sorted_findings(findings: Iterable[Finding]) -> Tuple[Finding, ...]:
    """Deterministic report order: path, then line, column, rule id."""
    return tuple(sorted(findings, key=lambda f: f.sort_key))
