"""AST-based invariant checker for the repro codebase.

The linter codifies contracts that ordinary tests cannot see from the
outside: injected (never ambient) randomness, caches wired into the
:mod:`repro.util.caching` clearing registry, picklable callables at
process-pool boundaries, tolerance-based float comparison, registry and
``__all__`` consistency, and basic hygiene.  Rules live in
:mod:`repro.devtools.lint.rules`, one module per rule, and register
themselves with :func:`register_rule` exactly like prediction backends
register with ``repro.backends.registry``.

Quick programmatic check of a snippet:

>>> from repro.devtools.lint import lint_source
>>> [f.rule_id for f in lint_source("import random\\nx = random.random()\\n")]
['RPR001']

Suppress a finding inline with a justified ``# repro: noqa[RULE]`` comment:

>>> list(lint_source(
...     "import random\\n"
...     "x = random.random()  # repro: noqa[RPR001] doctest demo value\\n"
... ))
[]

See ``docs/lint.md`` for the rule table and the CLI
(``wavebench lint`` / ``python -m repro.devtools.lint``).
"""

from __future__ import annotations

from repro.devtools.lint.engine import (
    LintEngine,
    LintProject,
    LintedModule,
    collect_python_files,
    default_lint_paths,
    find_project_root,
    lint_paths,
    lint_source,
)
from repro.devtools.lint.findings import SEVERITIES, Finding, LintReport, severity_rank
from repro.devtools.lint.registry import (
    LintRule,
    ModuleRule,
    ProjectRule,
    available_rules,
    get_rules,
    register_rule,
    rule_table,
)
from repro.devtools.lint.reporters import render_json, render_text

__all__ = [
    "LintEngine",
    "LintProject",
    "LintedModule",
    "collect_python_files",
    "default_lint_paths",
    "find_project_root",
    "lint_paths",
    "lint_source",
    "SEVERITIES",
    "Finding",
    "LintReport",
    "severity_rank",
    "LintRule",
    "ModuleRule",
    "ProjectRule",
    "available_rules",
    "get_rules",
    "register_rule",
    "rule_table",
    "render_json",
    "render_text",
]
