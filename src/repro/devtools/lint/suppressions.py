"""Inline ``# repro: noqa[RULE-ID]`` suppressions.

A finding is suppressed by a comment **on its own line**::

    if value == 0.0:  # repro: noqa[RPR004] exact sentinel: unset marker

The justification text after the bracket is mandatory - a suppression with
no reason raises :data:`LINT_UNJUSTIFIED` - and a suppression whose rule
never fires on that line raises :data:`LINT_UNUSED`, so stale ``noqa``
comments rot loudly instead of silently.  Several ids may share one
comment: ``# repro: noqa[RPR002,RPR004] reason``.

Comments are located with :mod:`tokenize` (not a line regex), so the
marker inside a string literal is never mistaken for a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.devtools.lint.findings import Finding

__all__ = [
    "LINT_PARSE",
    "LINT_UNUSED",
    "LINT_UNJUSTIFIED",
    "META_RULES",
    "Suppression",
    "SuppressionIndex",
    "scan_suppressions",
]

#: Meta rule ids emitted by the engine itself (not registry rules).
LINT_PARSE = "LINT000"
LINT_UNUSED = "LINT001"
LINT_UNJUSTIFIED = "LINT002"

#: id -> (severity, summary) for the engine-level meta rules.
META_RULES: Dict[str, Tuple[str, str]] = {
    LINT_PARSE: ("error", "file does not parse"),
    LINT_UNUSED: ("error", "suppression never matched a finding"),
    LINT_UNJUSTIFIED: ("error", "suppression carries no justification"),
}

_NOQA = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?P<justification>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: noqa[...]`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    justification: str


def scan_suppressions(source: str) -> List[Suppression]:
    """All suppression comments in ``source``, in line order.

    >>> found = scan_suppressions("x = 1.0\\nif x == 1.0:  "
    ...                           "# repro: noqa[RPR004] exact sentinel\\n    pass\\n")
    >>> [(s.line, s.rule_ids, s.justification) for s in found]
    [(2, ('RPR004',), 'exact sentinel')]
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable files already raise a LINT000 finding; there is
        # nothing sensible to suppress in them.
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA.search(token.string)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        if not rule_ids:
            continue
        suppressions.append(
            Suppression(
                line=token.start[0],
                rule_ids=rule_ids,
                justification=match.group("justification").strip(),
            )
        )
    return suppressions


class SuppressionIndex:
    """Applies one module's suppressions to its findings and tracks usage."""

    def __init__(self, path: str, suppressions: Sequence[Suppression]):
        self.path = path
        self.suppressions = tuple(suppressions)
        self._used: Set[Tuple[int, str]] = set()

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        """Drop suppressed findings, remembering which (line, rule) matched."""
        by_line: Dict[int, List[Suppression]] = {}
        for suppression in self.suppressions:
            by_line.setdefault(suppression.line, []).append(suppression)
        kept: List[Finding] = []
        for finding in findings:
            suppressed = False
            for suppression in by_line.get(finding.line, ()):
                if finding.rule_id in suppression.rule_ids:
                    self._used.add((suppression.line, finding.rule_id))
                    suppressed = True
            if not suppressed:
                kept.append(finding)
        return kept

    def meta_findings(self, active_rule_ids: Set[str]) -> List[Finding]:
        """Unused-suppression and missing-justification findings.

        A suppression for a rule outside ``active_rule_ids`` (e.g. when the
        run was narrowed with ``--rules``) is exempt from the unused check -
        the rule never had a chance to fire.
        """
        findings: List[Finding] = []
        for suppression in self.suppressions:
            active = [r for r in suppression.rule_ids if r in active_rule_ids]
            if not active:
                continue
            if not suppression.justification:
                severity, _summary = META_RULES[LINT_UNJUSTIFIED]
                findings.append(
                    Finding(
                        self.path,
                        suppression.line,
                        0,
                        LINT_UNJUSTIFIED,
                        severity,
                        "suppression needs a justification: "
                        f"# repro: noqa[{','.join(suppression.rule_ids)}] <why>",
                    )
                )
            unused = [
                rule_id
                for rule_id in active
                if (suppression.line, rule_id) not in self._used
            ]
            for rule_id in unused:
                severity, _summary = META_RULES[LINT_UNUSED]
                findings.append(
                    Finding(
                        self.path,
                        suppression.line,
                        0,
                        LINT_UNUSED,
                        severity,
                        f"unused suppression: {rule_id} raises no finding on "
                        "this line (delete the noqa)",
                    )
                )
        return findings
