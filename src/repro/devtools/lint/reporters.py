"""Render a :class:`~repro.devtools.lint.findings.LintReport` for humans or machines."""

from __future__ import annotations

import json

from repro.devtools.lint.findings import LintReport

__all__ = ["render_json", "render_text"]

#: Schema version of the JSON report (bump on breaking field changes).
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    """One ``file:line:col rule-id [severity] message`` line per finding,
    then a summary line.

    >>> from repro.devtools.lint.findings import Finding, LintReport
    >>> print(render_text(LintReport((), files=3)))
    3 files linted: clean
    """
    lines = [finding.render() for finding in report.findings]
    if report.findings:
        lines.append(
            f"{report.files} files linted: {len(report.findings)} finding(s) "
            f"({report.errors} error(s), {report.warnings} warning(s))"
        )
    else:
        lines.append(f"{report.files} files linted: clean")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable report: ``{"version", "findings", "summary"}``."""
    record = {"version": JSON_SCHEMA_VERSION}
    record.update(report.to_dict())
    return json.dumps(record, indent=2)
