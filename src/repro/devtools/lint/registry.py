"""String-keyed registry of lint rules.

Mirrors the prediction-backend registry pattern
(:mod:`repro.backends.registry`): built-in rules register lazily on first
use, and future PRs add one rule module per new invariant plus a
:func:`register_rule` call - the engine, CLI and reporters pick it up
without modification.

A rule is a class with four class attributes -

* ``rule_id`` - stable identifier (``"RPR001"``);
* ``severity`` - ``"warning"`` or ``"error"``;
* ``summary`` - one line for ``--list-rules`` and docs;
* ``scope`` - which module roles it applies to (``("src",)`` by default:
  the conventions are contracts of the library tree, not of tests);

and one check method: :class:`ModuleRule` subclasses implement
``check(module)`` (run once per parsed file), :class:`ProjectRule`
subclasses implement ``check_project(project)`` (run once per engine run,
with every parsed module in view - for cross-file invariants such as
registry/docs consistency).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.devtools.lint.findings import SEVERITIES, Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.lint.engine import LintedModule, LintProject

__all__ = [
    "LintRule",
    "ModuleRule",
    "ProjectRule",
    "RuleSpec",
    "available_rules",
    "get_rules",
    "register_rule",
    "rule_table",
]


class LintRule:
    """Base class carrying the rule metadata contract."""

    rule_id: str = ""
    severity: str = "error"
    summary: str = ""
    scope: tuple = ("src",)
    project_level: bool = False

    def applies(self, module: "LintedModule") -> bool:
        return module.role in self.scope

    def finding(self, module: "LintedModule", node, message: str) -> Finding:
        """A finding of this rule at an AST node of ``module``."""
        return Finding(
            path=module.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


class ModuleRule(LintRule):
    """A rule checked one parsed module at a time."""

    def check(self, module: "LintedModule") -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(LintRule):
    """A rule that needs every parsed module (cross-file invariants)."""

    project_level = True

    def check_project(self, project: "LintProject") -> Iterable[Finding]:
        raise NotImplementedError


#: What rule selections accept: a registered id or a rule instance.
RuleSpec = Union[str, LintRule]

_RULES: Dict[str, Callable[[], LintRule]] = {}
_builtins_registered = False


def _ensure_builtins() -> None:
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    # Importing the rules package executes every rule module's
    # @register_rule decorator (same lazy pattern as backends.registry).
    import repro.devtools.lint.rules  # noqa: F401  (import-for-side-effect)


def register_rule(cls: type) -> type:
    """Class decorator registering a rule under its ``rule_id``.

    >>> @register_rule
    ... class DemoRule(ModuleRule):
    ...     rule_id = "DEMO001"
    ...     summary = "demonstration"
    ...     def check(self, module):
    ...         return ()
    >>> "DEMO001" in available_rules()
    True
    """
    rule_id = getattr(cls, "rule_id", "")
    if not rule_id:
        raise ValueError(f"rule class {cls.__name__} must set rule_id")
    if cls.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule_id}: severity must be one of {SEVERITIES}, "
            f"got {cls.severity!r}"
        )
    _RULES[rule_id] = cls
    return cls


def available_rules() -> tuple:
    """Sorted ids of all registered rules."""
    _ensure_builtins()
    return tuple(sorted(_RULES))


def get_rules(specs: Optional[Sequence[RuleSpec]] = None) -> List[LintRule]:
    """Resolve a rule selection (``None`` means every registered rule)."""
    _ensure_builtins()
    if specs is None:
        return [_RULES[rule_id]() for rule_id in sorted(_RULES)]
    rules: List[LintRule] = []
    for spec in specs:
        if isinstance(spec, LintRule):
            rules.append(spec)
        elif isinstance(spec, str):
            try:
                rules.append(_RULES[spec]())
            except KeyError:
                known = ", ".join(available_rules())
                raise KeyError(
                    f"unknown lint rule {spec!r}; available: {known}"
                ) from None
        else:
            raise TypeError(f"rule must be an id or a LintRule, got {spec!r}")
    return rules


def rule_table() -> List[dict]:
    """``[{"id", "severity", "summary", "scope"}, ...]`` for docs and --list-rules."""
    _ensure_builtins()
    return [
        {
            "id": rule_id,
            "severity": _RULES[rule_id].severity,
            "summary": _RULES[rule_id].summary,
            "scope": "/".join(_RULES[rule_id].scope),
        }
        for rule_id in sorted(_RULES)
    ]
