"""``python -m repro.devtools.lint`` - the standalone lint entry point."""

import sys

from repro.devtools.lint.cli import main

sys.exit(main())
