"""Developer tooling that guards the repository's own invariants.

Nothing in this package is needed to *use* the library; it exists so the
conventions the prediction stack's correctness rests on - injected seeded
RNG streams, registered cache clearers, picklable process-pool callables -
are machine-checked instead of tribal knowledge.  See
:mod:`repro.devtools.lint`.
"""
