"""Design-space definition for model-guided optimisation.

The paper's Sections 5-6 answer procurement and configuration questions by
hand: sweep ``Htile`` and read the minimum off Figure 5, tabulate
cores-per-node designs and compare (Figure 10).  :class:`OptimizationSpace`
makes that space a first-class value: named axes over the model's design
knobs - tile height, machine size (core counts, or node counts crossed with
cores-per-node), rank placement and processor-array aspect ratio - plus an
optional core budget, expandable into concrete
:class:`~repro.backends.base.PredictionRequest` configurations that any
registered backend can evaluate.

>>> from repro.platforms import cray_xt4
>>> space = OptimizationSpace.from_workload(
...     "chimaera-240", "cray-xt4", htiles=(1, 2, 4), total_cores=(1024, 4096),
... )
>>> len(space.points())
6
>>> space.with_core_budget(2048).points()[-1].total_cores
1024
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from functools import partial
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Tuple, Union

from repro.apps.base import WavefrontSpec
from repro.backends.base import PredictionRequest
from repro.core.decomposition import ProcessorGrid
from repro.core.loggp import Platform
from repro.platforms import get_platform, parse_placement

__all__ = [
    "DesignPoint",
    "OptimizationSpace",
    "grid_for_ratio",
    "load_space_file",
]


@dataclass(frozen=True)
class DesignPoint:
    """One fully-determined candidate configuration of a design space.

    ``nodes`` is set (and ``total_cores`` derived from it) when the space
    sweeps node counts crossed with cores-per-node designs; otherwise the
    core count is the axis value itself.  ``None`` values mean "the
    workload's / platform's default" for that knob.

    >>> DesignPoint(total_cores=4096, htile=2.0).label
    'P=4096, Htile=2'
    """

    total_cores: int
    htile: Optional[float] = None
    nodes: Optional[int] = None
    cores_per_node: Optional[int] = None
    placement: Optional[str] = None
    aspect_ratio: Optional[float] = None

    @property
    def label(self) -> str:
        parts = [f"P={self.total_cores}"]
        if self.nodes is not None:
            parts.append(f"nodes={self.nodes}")
        if self.cores_per_node is not None:
            parts.append(f"cores/node={self.cores_per_node}")
        if self.htile is not None:
            parts.append(f"Htile={self.htile:g}")
        if self.placement is not None:
            parts.append(f"placement={self.placement}")
        if self.aspect_ratio is not None:
            parts.append(f"aspect={self.aspect_ratio:g}")
        return ", ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (``None`` knobs omitted)."""
        record: dict[str, Any] = {"total_cores": self.total_cores}
        for name in ("htile", "nodes", "cores_per_node", "placement", "aspect_ratio"):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        return record


def _factor_pairs(total: int) -> list[Tuple[int, int]]:
    """All ``(n, m)`` with ``n * m == total``, ``n`` ascending."""
    pairs = []
    for m in range(1, int(math.isqrt(total)) + 1):
        if total % m == 0:
            n = total // m
            pairs.append((m, n))
            if n != m:
                pairs.append((n, m))
    return sorted(pairs)


def grid_for_ratio(total: int, ratio: float) -> ProcessorGrid:
    """The factorisation of ``total`` whose ``n/m`` is closest to ``ratio``.

    Closeness is measured in log space (so 2:1 and 1:2 are equally far from
    square); ties prefer the wider grid, matching
    :func:`repro.core.decomposition.decompose`'s convention.

    >>> grid = grid_for_ratio(64, 4.0)
    >>> (grid.n, grid.m)
    (16, 4)
    """
    if total < 1:
        raise ValueError("total must be positive")
    if ratio <= 0:
        raise ValueError("aspect ratio must be positive")
    target = math.log(ratio)
    best = min(
        _factor_pairs(total),
        key=lambda pair: (abs(math.log(pair[0] / pair[1]) - target), -pair[0]),
    )
    return ProcessorGrid(*best)


def _workload_spec(app: str, htile: Optional[float]) -> WavefrontSpec:
    """Module-level builder for registry workloads (picklable via partial)."""
    from repro.apps.workloads import standard_workloads
    from repro.campaigns.spec import apply_htile

    registry = standard_workloads()
    try:
        spec = registry[app]()
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown application {app!r}; choose from: {known}") from None
    return spec if htile is None else apply_htile(spec, htile)


def _axis_tuple(values: Any, coerce) -> tuple:
    if values is None:
        return (None,)
    if isinstance(values, (str, bytes)):
        raise TypeError(f"expected a sequence of axis values, got {values!r}")
    return tuple(None if value is None else coerce(value) for value in values)


@dataclass(frozen=True)
class OptimizationSpace:
    """Named axes over the model's design knobs, plus an optional budget.

    ``spec_builder(htile)`` must return the workload spec configured with
    that tile height (``None`` means the workload's default), exactly like
    :func:`repro.analysis.htile.htile_study`'s builder.  The machine-size
    axis comes in two shapes: ``total_cores`` sweeps core counts directly
    (near-square decomposition, the paper's convention), while
    ``node_counts`` crosses node counts with the ``cores_per_node`` designs
    of the Figure 10 study (``total = nodes * cores_per_node``).  Exactly
    one of the two must be given.

    ``core_budget`` drops every candidate whose total core count exceeds it
    ("what is the best configuration I can afford?").

    >>> from repro.platforms import cray_xt4
    >>> from repro.apps.workloads import chimaera_240cubed
    >>> space = OptimizationSpace(
    ...     spec_builder=chimaera_240cubed().with_htile,
    ...     platform=cray_xt4(),
    ...     htiles=(1.0, 2.0),
    ...     node_counts=(16,),
    ...     cores_per_node=(1, 2),
    ... )
    >>> [(p.total_cores, p.cores_per_node) for p in space.points()]
    [(16, 1), (32, 2), (16, 1), (32, 2)]
    """

    spec_builder: Callable[[Optional[float]], WavefrontSpec]
    platform: Platform
    htiles: Tuple[Optional[float], ...] = (None,)
    total_cores: Tuple[int, ...] = ()
    node_counts: Tuple[int, ...] = ()
    cores_per_node: Tuple[Optional[int], ...] = (None,)
    buses_per_node: int = 1
    placements: Tuple[Optional[str], ...] = (None,)
    aspect_ratios: Tuple[Optional[float], ...] = (None,)
    core_budget: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "htiles", _axis_tuple(self.htiles, float))
        object.__setattr__(self, "total_cores", tuple(int(c) for c in self.total_cores))
        object.__setattr__(self, "node_counts", tuple(int(c) for c in self.node_counts))
        object.__setattr__(self, "cores_per_node", _axis_tuple(self.cores_per_node, int))
        object.__setattr__(self, "placements", _axis_tuple(self.placements, str))
        object.__setattr__(self, "aspect_ratios", _axis_tuple(self.aspect_ratios, float))
        if bool(self.total_cores) == bool(self.node_counts):
            raise ValueError("specify exactly one of total_cores or node_counts")
        if any(c < 1 for c in self.total_cores + self.node_counts):
            raise ValueError("core and node counts must be positive")
        if any(c is not None and c < 1 for c in self.cores_per_node):
            raise ValueError("cores_per_node values must be positive")
        if self.buses_per_node < 1:
            raise ValueError("buses_per_node must be >= 1")
        if self.core_budget is not None and self.core_budget < 1:
            raise ValueError("core_budget must be positive")
        for name in ("htiles", "cores_per_node", "placements", "aspect_ratios"):
            if not getattr(self, name):
                raise ValueError(f"axis {name!r} has no values")

    # -- expansion -------------------------------------------------------------------

    def axes(self) -> dict[str, tuple]:
        """The search axes in expansion order (``cores`` is nodes or totals)."""
        return {
            "htile": self.htiles,
            "cores": self.node_counts if self.node_counts else self.total_cores,
            "cores_per_node": self.cores_per_node,
            "placement": self.placements,
            "aspect_ratio": self.aspect_ratios,
        }

    def point_for(self, assignment: Mapping[str, Any]) -> DesignPoint:
        """The :class:`DesignPoint` of one axis-value assignment."""
        cores_per_node = assignment.get("cores_per_node")
        if self.node_counts:
            nodes = int(assignment["cores"])
            effective = (
                cores_per_node
                if cores_per_node is not None
                else self.platform.node.cores_per_node
            )
            total = nodes * effective
        else:
            nodes = None
            total = int(assignment["cores"])
        return DesignPoint(
            total_cores=total,
            htile=assignment.get("htile"),
            nodes=nodes,
            cores_per_node=cores_per_node,
            placement=assignment.get("placement"),
            aspect_ratio=assignment.get("aspect_ratio"),
        )

    def within_budget(self, point: DesignPoint) -> bool:
        return self.core_budget is None or point.total_cores <= self.core_budget

    def points(self) -> list[DesignPoint]:
        """Expand the axes into the ordered candidate list (budget applied)."""
        axes = self.axes()
        names = list(axes)
        expanded: list[DesignPoint] = []

        def recurse(index: int, assignment: dict[str, Any]) -> None:
            if index == len(names):
                point = self.point_for(assignment)
                if self.within_budget(point):
                    expanded.append(point)
                return
            name = names[index]
            for value in axes[name]:
                assignment[name] = value
                recurse(index + 1, assignment)
            del assignment[name]

        recurse(0, {})
        if not expanded:
            raise ValueError(
                f"core budget {self.core_budget} excludes every candidate "
                "configuration of this space"
            )
        return expanded

    def __len__(self) -> int:
        return len(self.points())

    # -- evaluation ------------------------------------------------------------------

    def platform_for(self, point: DesignPoint) -> Platform:
        """The platform of one candidate (cores-per-node design applied)."""
        if point.cores_per_node is None:
            return self.platform
        return self.platform.with_cores_per_node(
            point.cores_per_node, min(self.buses_per_node, point.cores_per_node)
        )

    def request_for(self, point: DesignPoint) -> PredictionRequest:
        """The :class:`PredictionRequest` evaluating one candidate."""
        platform = self.platform_for(point)
        spec = self.spec_builder(point.htile)
        mapping = parse_placement(point.placement, platform)
        if point.aspect_ratio is None:
            return PredictionRequest(
                spec, platform, total_cores=point.total_cores, core_mapping=mapping
            )
        return PredictionRequest(
            spec,
            platform,
            grid=grid_for_ratio(point.total_cores, point.aspect_ratio),
            core_mapping=mapping,
        )

    # -- derived spaces --------------------------------------------------------------

    def with_core_budget(self, core_budget: Optional[int]) -> "OptimizationSpace":
        """A copy constrained to configurations of at most ``core_budget`` cores."""
        return replace(self, core_budget=core_budget)

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_workload(
        cls,
        app: str,
        platform: Union[str, Platform],
        **axes: Any,
    ) -> "OptimizationSpace":
        """Build a space over a registry workload and a named platform.

        ``app`` is a :func:`repro.apps.workloads.standard_workloads` name;
        Sweep3D tile heights are mapped onto its ``mk`` blocking exactly as
        campaigns do (:func:`repro.campaigns.spec.apply_htile`).  The
        builder is a picklable ``partial``, so process-pool fan-out works.
        """
        _workload_spec(app, None)  # fail fast on unknown application names
        resolved = get_platform(platform) if isinstance(platform, str) else platform
        return cls(
            spec_builder=partial(_workload_spec, app), platform=resolved, **axes
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizationSpace":
        """Build a space from a plain dict (the ``--space`` file schema).

        Required: ``app``; optional: ``platform`` (default ``cray-xt4``) and
        the axis fields ``htiles``, ``total_cores``, ``node_counts``,
        ``cores_per_node``, ``buses_per_node``, ``placements``,
        ``aspect_ratios``, ``core_budget``.  Unknown keys raise, so typos in
        space files fail loudly.
        """
        known = {
            "app",
            "platform",
            "htiles",
            "total_cores",
            "node_counts",
            "cores_per_node",
            "buses_per_node",
            "placements",
            "aspect_ratios",
            "core_budget",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown space field(s) {sorted(unknown)}; known fields: "
                f"{sorted(known)}"
            )
        if "app" not in data:
            raise ValueError("a space file must name an 'app'")
        kwargs = {key: data[key] for key in known & set(data) if key not in ("app", "platform")}
        return cls.from_workload(
            str(data["app"]), str(data.get("platform", "cray-xt4")), **kwargs
        )


def load_space_file(path: Union[str, Path]) -> OptimizationSpace:
    """Load an :class:`OptimizationSpace` from a JSON file (``--space FILE``).

    See ``docs/optimize.md`` for the schema.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"space file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(f"space file {path} must hold a JSON object")
    return OptimizationSpace.from_dict(data)
