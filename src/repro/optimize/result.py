"""Optimisation results: evaluated points, objectives and Pareto fronts.

Every strategy records *all* the configurations it evaluated (not just the
winner), so a result doubles as the study's raw data: reports can re-plot
the sweep, audits can verify the claimed optimum, and the benchmark harness
can count backend evaluations.

>>> OBJECTIVES
('time', 'total-time', 'core-hours')
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Tuple

from repro.backends.base import BackendResult
from repro.optimize.space import DesignPoint

__all__ = [
    "OBJECTIVES",
    "EvaluatedPoint",
    "OptimizationResult",
    "objective_value",
    "pareto_front",
]

#: Scalar objectives a strategy can minimise: execution time per time step,
#: total run time, or machine cost in core-hours.
OBJECTIVES: Tuple[str, ...] = ("time", "total-time", "core-hours")


@dataclass(frozen=True)
class EvaluatedPoint:
    """One candidate configuration together with its backend evaluation.

    >>> from repro.backends.service import predict_one
    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> result = predict_one(lu_class("A"), cray_xt4(), total_cores=16)
    >>> point = EvaluatedPoint(DesignPoint(total_cores=16), result)
    >>> point.core_hours == result.total_time_s / 3600.0 * 16
    True
    """

    point: DesignPoint
    result: BackendResult

    @property
    def total_cores(self) -> int:
        return self.point.total_cores

    @property
    def time_per_time_step_s(self) -> float:
        return self.result.time_per_time_step_s

    @property
    def total_time_days(self) -> float:
        return self.result.total_time_days

    @property
    def core_hours(self) -> float:
        """Machine cost of the full run: run time x cores occupied."""
        return self.result.total_time_s / 3600.0 * self.point.total_cores

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": self.point.to_dict(),
            "time_per_time_step_s": self.time_per_time_step_s,
            "total_time_days": self.total_time_days,
            "core_hours": self.core_hours,
        }


def objective_value(point: EvaluatedPoint, objective: str) -> float:
    """The scalar value a strategy minimises for ``point``."""
    if objective == "time":
        return point.time_per_time_step_s
    if objective == "total-time":
        return point.total_time_days
    if objective == "core-hours":
        return point.core_hours
    raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")


def pareto_front(points: Iterable[EvaluatedPoint]) -> Tuple[EvaluatedPoint, ...]:
    """The non-dominated subset under (time per time step, core-hours).

    A point dominates another when it is no worse on both objectives and
    strictly better on at least one; the front is returned sorted by
    execution time (fastest first), deduplicated on the objective pair.
    """
    candidates = sorted(
        points, key=lambda p: (p.time_per_time_step_s, p.core_hours)
    )
    front: list[EvaluatedPoint] = []
    best_cost = float("inf")
    for candidate in candidates:
        if candidate.core_hours < best_cost:
            front.append(candidate)
            best_cost = candidate.core_hours
    return tuple(front)


@dataclass(frozen=True)
class OptimizationResult:
    """What one :func:`repro.optimize.optimize` run found and evaluated.

    ``evaluations`` counts *distinct backend evaluations* the strategy
    needed - the currency of the exhaustive-vs-golden-section speedup
    contract (``benchmarks/test_bench_optimize.py``); ``space_size`` is the
    number of candidates an exhaustive search would have evaluated.
    ``evaluated`` lists every evaluated configuration in first-evaluation
    order.
    """

    strategy: str
    backend: str
    objective: str
    space_size: int
    evaluations: int
    evaluated: Tuple[EvaluatedPoint, ...]

    @property
    def best(self) -> EvaluatedPoint:
        """The evaluated point minimising the objective (ties: first found)."""
        if not self.evaluated:
            raise ValueError("the optimisation evaluated no points")
        return min(self.evaluated, key=lambda p: objective_value(p, self.objective))

    @property
    def best_value(self) -> float:
        return objective_value(self.best, self.objective)

    def pareto_front(self) -> Tuple[EvaluatedPoint, ...]:
        """The (time, core-hours) Pareto front over the evaluated points.

        Complete for exhaustive searches; for the guided strategies it is
        the front of what the search visited.
        """
        return pareto_front(self.evaluated)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the CLI's ``--json`` payload)."""
        return {
            "strategy": self.strategy,
            "backend": self.backend,
            "objective": self.objective,
            "space_size": self.space_size,
            "evaluations": self.evaluations,
            "best": self.best.to_dict(),
            "pareto_front": [point.to_dict() for point in self.pareto_front()],
            "evaluated": [point.to_dict() for point in self.evaluated],
        }
