"""Search strategies over an :class:`~repro.optimize.space.OptimizationSpace`.

Three built-ins, trading completeness against model evaluations:

* :class:`ExhaustiveSearch` - evaluate every candidate, batched and deduped
  through :func:`repro.backends.service.predict_many` (the ground truth all
  other strategies are tested against - they can never beat it);
* :class:`CoordinateDescent` - sweep one axis at a time, keeping the others
  at the incumbent, until a full pass improves nothing (a local optimum in
  the axis neighbourhood);
* :class:`GoldenSectionSearch` - golden-section search over the sorted
  ``Htile`` grid, exploiting the unimodality of the tile-height curve
  (Figure 5: larger tiles trade message count against pipeline fill), with
  a final downhill polish that guarantees a grid-local minimum.  Uses
  O(log n) evaluations per combination of the remaining axes - >= 10x fewer
  than exhaustive on fine grids (see ``benchmarks/test_bench_optimize.py``).

All strategies evaluate through one shared :class:`Evaluator`, which
memoises per configuration and counts *distinct* backend evaluations.

>>> sorted(available_strategies())
['coordinate-descent', 'exhaustive', 'golden-section']
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.backends.registry import BackendSpec, get_backend
from repro.backends.service import predict_many
from repro.optimize.result import EvaluatedPoint, objective_value
from repro.optimize.space import DesignPoint, OptimizationSpace

__all__ = [
    "Evaluator",
    "SearchStrategy",
    "ExhaustiveSearch",
    "CoordinateDescent",
    "GoldenSectionSearch",
    "StrategySpec",
    "available_strategies",
    "get_strategy",
]


class Evaluator:
    """Memoising batch evaluator shared by every strategy.

    ``evaluate`` keeps request order, evaluates each *distinct* new
    configuration exactly once (batched through
    :func:`~repro.backends.service.predict_many`, so the service-level
    dedup, caches and pool fan-out all apply) and serves repeats from its
    memo without touching the backend.  ``evaluations`` is the strategy's
    cost: the number of distinct configurations sent to the backend.
    """

    def __init__(
        self,
        space: OptimizationSpace,
        *,
        backend: BackendSpec = "analytic-fast",
        workers: Optional[int] = None,
        executor: str = "thread",
    ):
        self.space = space
        self.backend = backend
        self.workers = workers
        self.executor = executor
        self.evaluations = 0
        self._memo: Dict[DesignPoint, EvaluatedPoint] = {}  # repro: noqa[RPR002] lifetime bounded by one optimize() run; the Evaluator is never reused
        self._order: List[EvaluatedPoint] = []

    @property
    def evaluated(self) -> Tuple[EvaluatedPoint, ...]:
        """Every evaluated configuration, in first-evaluation order."""
        return tuple(self._order)

    def evaluate(self, points: Sequence[DesignPoint]) -> List[EvaluatedPoint]:
        fresh: List[DesignPoint] = []
        seen: set[DesignPoint] = set()
        for point in points:
            if point not in self._memo and point not in seen:
                fresh.append(point)
                seen.add(point)
        if fresh:
            results = predict_many(
                [self.space.request_for(point) for point in fresh],
                backend=self.backend,
                workers=self.workers,
                executor=self.executor,
            )
            for point, result in zip(fresh, results):
                evaluated = EvaluatedPoint(point, result)
                self._memo[point] = evaluated
                self._order.append(evaluated)
            self.evaluations += len(fresh)
        return [self._memo[point] for point in points]

    def evaluate_one(self, point: DesignPoint) -> EvaluatedPoint:
        return self.evaluate([point])[0]


@runtime_checkable
class SearchStrategy(Protocol):
    """The strategy interface: drive an evaluator over a space."""

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``"exhaustive"``."""
        ...

    def search(
        self, space: OptimizationSpace, evaluator: Evaluator, objective: str
    ) -> EvaluatedPoint:
        """Evaluate candidates and return the best configuration found."""
        ...


@dataclass(frozen=True)
class ExhaustiveSearch:
    """Evaluate the whole space in one batched sweep (the ground truth)."""

    name: str = "exhaustive"

    def search(
        self, space: OptimizationSpace, evaluator: Evaluator, objective: str
    ) -> EvaluatedPoint:
        evaluated = evaluator.evaluate(space.points())
        # Post-fan-out reduction: evaluate() has already returned from any
        # predict_many pool; the lambda never crosses the process boundary
        # (RPR003 audit, PR 6).
        return min(evaluated, key=lambda p: objective_value(p, objective))


def _budgeted_values(
    space: OptimizationSpace, assignment: Dict[str, Any], axis: str, values: tuple
) -> List[Tuple[Any, DesignPoint]]:
    """In-budget ``(axis value, candidate)`` pairs, other axes at ``assignment``."""
    candidates = []
    for value in values:
        point = space.point_for({**assignment, axis: value})
        if space.within_budget(point):
            candidates.append((value, point))
    return candidates


@dataclass(frozen=True)
class CoordinateDescent:
    """Cyclic one-axis-at-a-time descent from the centre of the space.

    Each pass sweeps every multi-valued axis in turn, moving the incumbent
    to the axis value that minimises the objective with the other axes
    fixed; the search stops when a full pass improves nothing (or after
    ``max_rounds`` passes).  On separable or mildly-coupled objectives this
    reaches the exhaustive optimum in a fraction of the evaluations; on
    strongly-coupled axes it converges to a local optimum - never better
    than :class:`ExhaustiveSearch`, which tests pin down.
    """

    name: str = "coordinate-descent"
    max_rounds: int = 8

    def search(
        self, space: OptimizationSpace, evaluator: Evaluator, objective: str
    ) -> EvaluatedPoint:
        axes = space.axes()
        assignment = {name: values[len(values) // 2] for name, values in axes.items()}
        if not space.within_budget(space.point_for(assignment)):
            # Centre is over budget: restart from the first affordable
            # candidate (space.points() raises when the budget excludes
            # every configuration).
            first = space.points()[0]
            assignment = {
                "htile": first.htile,
                "cores": first.nodes if space.node_counts else first.total_cores,
                "cores_per_node": first.cores_per_node,
                "placement": first.placement,
                "aspect_ratio": first.aspect_ratio,
            }
        best = evaluator.evaluate_one(space.point_for(assignment))
        for _round in range(self.max_rounds):
            improved = False
            for axis, values in axes.items():
                if len(values) < 2:
                    continue
                candidates = _budgeted_values(space, assignment, axis, values)
                evaluated = evaluator.evaluate([point for _value, point in candidates])
                winner_index = min(
                    range(len(evaluated)),
                    key=lambda i: objective_value(evaluated[i], objective),
                )
                winner = evaluated[winner_index]
                if objective_value(winner, objective) < objective_value(best, objective):
                    best = winner
                    improved = True
                    assignment[axis] = candidates[winner_index][0]
            if not improved:
                break
        return best


def _golden_minimum_index(count: int, f: Callable[[int], float]) -> int:
    """Index of a grid-local minimum of ``f`` over ``range(count)``.

    Golden-section bracketing on the index range (reusing one interior
    probe per shrink), finished by evaluating the final <= 4-wide bracket
    and a downhill polish.  On a unimodal sequence the polish is a no-op
    and the returned index is the global minimiser; on non-unimodal data
    the result is still guaranteed locally minimal (never worse than both
    neighbours), which is what the one-grid-step conformance contract
    checks.
    """
    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    lo, hi = 0, count - 1
    while hi - lo > 3:
        span = hi - lo
        left = max(lo + 1, hi - int(round(invphi * span)))
        right = min(hi - 1, lo + int(round(invphi * span)))
        if left >= right:
            break
        if f(left) <= f(right):
            hi = right
        else:
            lo = left
    best = min(range(lo, hi + 1), key=f)
    while best > 0 and f(best - 1) < f(best):
        best -= 1
    while best < count - 1 and f(best + 1) < f(best):
        best += 1
    return best


@dataclass(frozen=True)
class GoldenSectionSearch:
    """Golden-section search along the (unimodal) ``Htile`` axis.

    The remaining axes are enumerated exhaustively (they are small design
    choices - machine sizes, placements); within each combination the tile
    height is located in O(log n) evaluations instead of n.
    """

    name: str = "golden-section"

    def search(
        self, space: OptimizationSpace, evaluator: Evaluator, objective: str
    ) -> EvaluatedPoint:
        axes = space.axes()
        htiles = axes["htile"]
        if len(htiles) < 2 or any(value is None for value in htiles):
            raise ValueError(
                "golden-section searches the Htile axis: provide at least two "
                "numeric htile values (use 'exhaustive' for spaces without one)"
            )
        grid = tuple(sorted(htiles))
        other_names = [name for name in axes if name != "htile"]
        best: Optional[EvaluatedPoint] = None
        for combo in itertools.product(*(axes[name] for name in other_names)):
            assignment = dict(zip(other_names, combo))
            points = [
                space.point_for({**assignment, "htile": value}) for value in grid
            ]
            if not space.within_budget(points[0]):
                continue  # the whole combo shares one machine size

            def f(index: int, points=points) -> float:
                return objective_value(evaluator.evaluate_one(points[index]), objective)

            winner = evaluator.evaluate_one(
                points[_golden_minimum_index(len(grid), f)]
            )
            if best is None or objective_value(winner, objective) < objective_value(
                best, objective
            ):
                best = winner
        if best is None:
            raise ValueError(
                f"core budget {space.core_budget} excludes every candidate "
                "configuration of this space"
            )
        return best


_STRATEGIES: Dict[str, Callable[[], SearchStrategy]] = {
    "exhaustive": ExhaustiveSearch,
    "coordinate-descent": CoordinateDescent,
    "golden-section": GoldenSectionSearch,
}

#: Accepted strategy forms: a registered name or a strategy instance.
StrategySpec = Union[str, SearchStrategy]


def available_strategies() -> List[str]:
    """Sorted names of the registered search strategies."""
    return sorted(_STRATEGIES)


def get_strategy(strategy: StrategySpec) -> SearchStrategy:
    """Resolve a strategy name (or pass an instance through).

    >>> get_strategy("exhaustive").name
    'exhaustive'
    """
    if isinstance(strategy, str):
        try:
            return _STRATEGIES[strategy]()
        except KeyError:
            known = ", ".join(available_strategies())
            raise KeyError(
                f"unknown strategy {strategy!r}; available: {known}"
            ) from None
    if isinstance(strategy, SearchStrategy):
        return strategy
    raise TypeError(f"strategy must be a name or a SearchStrategy, got {strategy!r}")
