"""Model-guided design-space optimisation (the paper's Sections 5-6, automated).

The plug-and-play model exists so that machine and application design
choices - tile height, processor decomposition, placement, cores per node,
machine size under a budget - can be evaluated *before* buying or booking
the machine.  This package closes the loop: declare the space
(:class:`OptimizationSpace`), pick a strategy (exhaustive,
coordinate-descent, or golden-section on the unimodal Htile axis), and get
back an :class:`OptimizationResult` recording the optimum, the (time,
core-hours) Pareto front and every configuration evaluated.

All evaluation flows through :func:`repro.backends.service.predict_many`,
so any registered backend works and batching/dedup/caching/pool fan-out
come for free.  The ``wavebench optimize`` CLI subcommand and the
``optimization-study`` built-in campaign are thin wrappers over this
module; :func:`repro.analysis.htile.htile_study` and
:func:`repro.analysis.multicore_design.cores_per_node_study` are
re-expressed on top of it.

>>> space = OptimizationSpace.from_workload(
...     "chimaera-240", "cray-xt4", htiles=(1, 2, 4, 8), total_cores=(256,),
... )
>>> result = optimize(space)
>>> result.best.point.htile
2.0
>>> golden = optimize(space, strategy="golden-section")
>>> golden.best.point.htile == result.best.point.htile
True
>>> golden.evaluations <= result.evaluations
True
"""

from __future__ import annotations

from typing import Optional  # repro: noqa[RPR006] annotation helper for optimize(), not package API

from repro.backends.registry import BackendSpec, get_backend  # repro: noqa[RPR006] internal plumbing for optimize(); the registry is the public entry point
from repro.optimize.result import (
    OBJECTIVES,
    EvaluatedPoint,
    OptimizationResult,
    objective_value,
    pareto_front,
)
from repro.optimize.space import (
    DesignPoint,
    OptimizationSpace,
    grid_for_ratio,
    load_space_file,
)
from repro.optimize.strategies import (
    CoordinateDescent,
    Evaluator,
    ExhaustiveSearch,
    GoldenSectionSearch,
    SearchStrategy,
    StrategySpec,
    available_strategies,
    get_strategy,
)

__all__ = [
    "OBJECTIVES",
    "CoordinateDescent",
    "DesignPoint",
    "EvaluatedPoint",
    "Evaluator",
    "ExhaustiveSearch",
    "GoldenSectionSearch",
    "OptimizationResult",
    "OptimizationSpace",
    "SearchStrategy",
    "StrategySpec",
    "available_strategies",
    "get_strategy",
    "grid_for_ratio",
    "load_space_file",
    "objective_value",
    "optimize",
    "pareto_front",
]


def optimize(
    space: OptimizationSpace,
    *,
    strategy: StrategySpec = "exhaustive",
    backend: BackendSpec = "analytic-fast",
    objective: str = "time",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> OptimizationResult:
    """Search ``space`` for the configuration minimising ``objective``.

    ``strategy`` is a registered name (:func:`available_strategies`) or a
    :class:`SearchStrategy` instance; ``backend`` any registered prediction
    backend; ``objective`` one of :data:`OBJECTIVES`.  ``workers`` /
    ``executor`` fan each evaluation batch out over a pool (see
    :func:`repro.backends.service.predict_many`).

    The returned result's ``best`` is the optimum over *everything* the
    strategy evaluated, so a guided search can never report a worse point
    than one it has already seen.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    resolved = get_strategy(strategy)
    evaluator = Evaluator(space, backend=backend, workers=workers, executor=executor)
    resolved.search(space, evaluator, objective)
    return OptimizationResult(
        strategy=resolved.name,
        backend=get_backend(backend).name,
        objective=objective,
        space_size=len(space.points()),
        evaluations=evaluator.evaluations,
        evaluated=evaluator.evaluated,
    )
