"""Command-line interface: ``wavebench``.

A thin front end over the library for quick interactive use::

    wavebench predict  --app chimaera-240 --platform cray-xt4 --cores 4096
    wavebench predict  --app sweep3d-20m --cores 64 --speed-profile stragglers:1x2.0 --noise quantum:50/1000
    wavebench validate --app sweep3d-20m  --platform cray-xt4 --cores 64
    wavebench platform list
    wavebench platform describe --platform cray-xt4-quad-chip
    wavebench htile    --app chimaera-240 --platform cray-xt4 --cores 4096 --values 1,2,4,8
    wavebench optimize --app sweep3d-20m --cores 1024,4096 --htiles 1,2,3,4,5,6,8,10 --strategy golden-section
    wavebench optimize --space my-space.json --budget 8192 --pareto
    wavebench scaling  --app sweep3d-1b-production --cores 1024,4096,16384
    wavebench campaign list
    wavebench campaign run    --name paper-validation --store /tmp/s
    wavebench campaign report --store /tmp/s
    wavebench campaign clean  --store /tmp/s
    wavebench pingpong --platform cray-xt4
    wavebench table3
    wavebench workrate
    wavebench lint     --fail-on error --json

Every subcommand prints a plain-text table (``campaign report`` prints
Markdown); the same functionality is available programmatically through
:mod:`repro.analysis`, :mod:`repro.validation`, :mod:`repro.campaigns` and
:mod:`repro.calibration`.  See ``docs/cli.md`` for the full reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from functools import partial
from typing import Callable, Sequence

from repro.analysis.htile import htile_study
from repro.analysis.scaling import strong_scaling
from repro.apps.sweep3d import Sweep3DConfig
from repro.apps.workloads import standard_workloads
from repro.backends.registry import available_backends
from repro.backends.service import predict_one
from repro.campaigns.builtin import builtin_campaigns, get_campaign
from repro.campaigns.report import campaign_report, write_report
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import load_campaign_file
from repro.campaigns.store import ResultStore, default_store_path
from repro.calibration.fitting import derive_platform_parameters
from repro.calibration.workrate import (
    measure_ssor_wg,
    measure_stencil_wg,
    measure_transport_wg,
)
from repro.core.faults import FaultModel
from repro.core.model import FILL_METHODS
from repro.devtools.lint.cli import add_lint_arguments, run_lint
from repro.optimize import (
    OBJECTIVES,
    OptimizationSpace,
    available_strategies,
    load_space_file,
    optimize,
)
from repro.platforms import (
    describe_platform,
    get_platform,
    parse_fault_model,
    parse_noise_model,
    parse_placement,
    parse_slowdown_windows,
    parse_speed_profile,
    platform_registry,
)
from repro.util.tables import Table
from repro.validation.compare import validate_configuration

__all__ = ["main", "build_parser"]


def _workload(name: str):
    registry = standard_workloads()
    try:
        return registry[name]()
    except KeyError as exc:
        known = ", ".join(sorted(registry))
        raise SystemExit(f"unknown application {name!r}; choose from: {known}") from exc


def _int_list(text: str) -> list[int]:
    return [int(item) for item in text.split(",") if item]


def _float_list(text: str) -> list[float]:
    return [float(item) for item in text.split(",") if item]


def _resolve_backend(args: argparse.Namespace) -> str:
    """The prediction backend to use: ``--backend``, or the ``--method`` alias."""
    if getattr(args, "backend", None):
        return args.backend
    if getattr(args, "method", "auto") == "exact":
        return "analytic-exact"
    return "analytic-fast"


def _scenario_platform(args: argparse.Namespace):
    """The platform with any scenario flags applied.

    Handles ``--speed-profile``, ``--slowdown-windows``, ``--noise``,
    ``--faults`` and the ``--mtbf`` / ``--checkpoint-interval`` shorthands
    (which merge into the fault model).
    """
    from dataclasses import replace
    from repro.core.hetero import SpeedProfile

    platform = get_platform(args.platform)
    try:
        profile = parse_speed_profile(getattr(args, "speed_profile", None))
        windows = parse_slowdown_windows(getattr(args, "slowdown_windows", None))
        if windows:
            profile = replace(profile or SpeedProfile(), windows=windows)
        if profile is not None:
            platform = platform.with_speed_profile(profile)
        noise = parse_noise_model(getattr(args, "noise", None))
        if noise is not None:
            platform = platform.with_noise(noise)
        faults = parse_fault_model(getattr(args, "faults", None))
        overrides = {}
        if getattr(args, "mtbf", None) is not None:
            overrides["mtbf_us"] = args.mtbf
        if getattr(args, "checkpoint_interval", None) is not None:
            overrides["checkpoint_interval_us"] = args.checkpoint_interval
        if overrides:
            faults = replace(faults or FaultModel(), **overrides)
        if faults is not None:
            platform = platform.with_faults(faults)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    return platform


def _cmd_predict(args: argparse.Namespace) -> int:
    spec = _workload(args.app)
    if args.htile is not None:
        spec = spec.with_htile(args.htile)
    if args.time_steps is not None:
        spec = spec.with_time_steps(args.time_steps)
    platform = _scenario_platform(args)
    try:
        mapping = parse_placement(args.placement, platform)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    backend = _resolve_backend(args)
    fault_seed = getattr(args, "fault_seed", 0)
    link_contention = bool(getattr(args, "link_contention", False))
    if fault_seed or link_contention:
        if backend != "simulator":
            raise SystemExit(
                "--fault-seed and --link-contention configure the event "
                "simulator; combine them with --backend simulator"
            )
        from repro.backends.simulator import SimulatorBackend

        backend = SimulatorBackend(
            fault_seed=fault_seed, link_contention=link_contention
        )
    result = predict_one(
        spec,
        platform,
        total_cores=args.cores,
        core_mapping=mapping,
        backend=backend,
    )
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    table = Table(["quantity", "value"], title=f"{spec.name} on {platform.name}, P={args.cores}")
    for key, value in summary.items():
        table.add_row(key, value if value is not None else "-")
    print(table.render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = _workload(args.app)
    platform = get_platform(args.platform)
    model_backend = _resolve_backend(args)
    if model_backend == "simulator":
        raise SystemExit(
            "validate compares a candidate model backend against the simulator "
            "baseline; --backend simulator would diff the simulator against "
            "itself (always 0% error). Choose an analytic backend instead."
        )
    result = validate_configuration(
        spec, platform, total_cores=args.cores, model_backend=model_backend
    )
    if args.json:
        record = {
            "application": result.application,
            "platform": result.platform,
            "total_cores": result.total_cores,
            "cores_per_node": result.cores_per_node,
            "model_us": result.model_us,
            "simulated_us": result.simulated_us,
            "relative_error": result.relative_error,
        }
        print(json.dumps(record, indent=2))
        return 0
    table = Table(
        ["application", "P", "model (ms)", "simulated (ms)", "error (%)"],
        title="model vs discrete-event simulation (one iteration)",
    )
    table.add_row(
        result.application,
        result.total_cores,
        result.model_us / 1000.0,
        result.simulated_us / 1000.0,
        100.0 * result.relative_error,
    )
    print(table.render())
    return 0


def _htile_builder(base, htile: float):
    """Module-level builder so the htile sweep can use a process pool."""
    if base.name == "sweep3d":
        config = Sweep3DConfig.for_htile(htile)
        return base.with_htile(config.htile)
    return base.with_htile(htile)


def _cmd_htile(args: argparse.Namespace) -> int:
    base = _workload(args.app)
    platform = get_platform(args.platform)
    study = htile_study(
        partial(_htile_builder, base),
        platform,
        args.cores,
        args.values,
        backend=_resolve_backend(args),
        workers=args.workers,
        executor=args.executor,
    )
    table = Table(
        ["Htile", "time/time-step (s)", "fill fraction", "comm fraction"],
        title=f"Htile study: {study.application}, P={args.cores}",
    )
    for point in study.points:
        table.add_row(
            point.htile,
            point.time_per_time_step_s,
            point.pipeline_fill_fraction if point.pipeline_fill_fraction is not None else "-",
            point.communication_fraction,
        )
    print(table.render())
    print(f"optimal Htile: {study.optimal.htile}")
    return 0


def _optimize_space(args: argparse.Namespace) -> OptimizationSpace:
    """Resolve --space FILE or the inline axis flags into an OptimizationSpace."""
    try:
        if args.space:
            space = load_space_file(args.space)
        elif args.app:
            axes: dict = {}
            if args.htiles is not None:
                axes["htiles"] = args.htiles
            if args.cores is not None:
                axes["total_cores"] = args.cores
            if args.node_counts is not None:
                axes["node_counts"] = args.node_counts
            if args.cores_per_node is not None:
                axes["cores_per_node"] = args.cores_per_node
            if args.placements is not None:
                axes["placements"] = [p for p in args.placements.split(",") if p]
            if args.aspect_ratios is not None:
                axes["aspect_ratios"] = args.aspect_ratios
            space = OptimizationSpace.from_workload(args.app, args.platform, **axes)
        else:
            raise SystemExit("specify a design space with --space FILE or --app NAME")
        if args.budget is not None:
            space = space.with_core_budget(args.budget)
        return space
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc.args[0] if exc.args else exc)) from exc


def _cmd_optimize(args: argparse.Namespace) -> int:
    space = _optimize_space(args)
    try:
        result = optimize(
            space,
            strategy=args.strategy,
            backend=_resolve_backend(args),
            objective=args.objective,
            workers=args.workers,
            executor=args.executor,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc.args[0] if exc.args else exc)) from exc
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    best = result.best
    table = Table(
        ["quantity", "value"],
        title=f"optimum ({result.strategy}, objective: {result.objective})",
    )
    table.add_row("configuration", best.point.label)
    table.add_row("time/time-step (s)", best.time_per_time_step_s)
    table.add_row("total time (days)", best.total_time_days)
    table.add_row("core-hours", best.core_hours)
    table.add_row("model evaluations", f"{result.evaluations} of {result.space_size}")
    print(table.render())
    if args.pareto:
        front = Table(
            ["configuration", "time/time-step (s)", "core-hours"],
            title="Pareto front (time vs core-hours)",
        )
        for point in result.pareto_front():
            front.add_row(point.point.label, point.time_per_time_step_s, point.core_hours)
        print(front.render())
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    spec = _workload(args.app)
    platform = get_platform(args.platform)
    curve = strong_scaling(
        spec,
        platform,
        args.cores,
        backend=_resolve_backend(args),
        workers=args.workers,
        executor=args.executor,
    )
    table = Table(
        ["P", "total time (days)", "time/time-step (s)", "comm fraction"],
        title=f"strong scaling: {curve.application} on {curve.platform}",
    )
    for point in curve.points:
        table.add_row(
            point.total_cores,
            point.total_time_days,
            point.time_per_time_step_s,
            point.communication_fraction,
        )
    print(table.render())
    return 0


def _campaign_spec(args: argparse.Namespace):
    """Resolve ``--name``/``--spec`` (and ``--max-cores``) into a CampaignSpec."""
    if getattr(args, "spec", None):
        spec = load_campaign_file(args.spec)
    elif getattr(args, "name", None):
        try:
            spec = get_campaign(args.name)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0])) from exc
    else:
        raise SystemExit("specify a campaign with --name NAME or --spec FILE")
    if getattr(args, "max_cores", None):
        spec = spec.with_max_cores(args.max_cores)
    return spec


def _campaign_store_path(args: argparse.Namespace, spec=None):
    if getattr(args, "store", None):
        return args.store
    if spec is None and (getattr(args, "name", None) or getattr(args, "spec", None)):
        spec = _campaign_spec(args)
    if spec is not None:
        return default_store_path(spec.name)
    raise SystemExit(
        "specify a result store with --store PATH (or --name/--spec for the default)"
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _campaign_spec(args)
    store = ResultStore(_campaign_store_path(args, spec))
    runner = CampaignRunner(
        spec,
        store,
        workers=args.workers,
        executor=args.executor,
        shards=args.shards,
    )
    summary = runner.run(resume=args.resume)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2))
        return 0
    print(f"campaign: {summary.campaign}")
    print(
        f"points:   {summary.total_points} "
        f"(computed {summary.computed}, cached {summary.cached})"
    )
    if summary.shards > 1 or summary.salvaged:
        print(f"shards:   {summary.shards} (salvaged {summary.salvaged})")
    print(f"store:    {summary.store_path}")
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    store = ResultStore(_campaign_store_path(args))
    if args.output:
        written = write_report(store, args.output)
        for path in written:
            print(path)
        return 0
    print(campaign_report(store), end="")
    return 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    campaigns = builtin_campaigns()
    if args.json:
        record = {
            name: {"points": len(spec.points()), "description": spec.description}
            for name, spec in sorted(campaigns.items())
        }
        print(json.dumps(record, indent=2))
        return 0
    table = Table(["campaign", "points", "description"], title="built-in campaigns")
    for name, spec in sorted(campaigns.items()):
        table.add_row(name, len(spec.points()), spec.description)
    print(table.render())
    return 0


def _cmd_campaign_clean(args: argparse.Namespace) -> int:
    path = _campaign_store_path(args)
    removed = ResultStore(path).clean()
    print(f"{'removed' if removed else 'no store at'} {path}")
    return 0


def _flatten(record: dict, prefix: str = "") -> list[tuple[str, object]]:
    rows: list[tuple[str, object]] = []
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_flatten(value, prefix=f"{name}."))
        else:
            rows.append((name, value))
    return rows


def _cmd_platform_list(args: argparse.Namespace) -> int:
    records = {
        name: describe_platform(factory())
        for name, factory in sorted(platform_registry.items())
    }
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    table = Table(
        ["platform", "cores/node", "chips/node", "L (us)", "o (us)", "G (us/B)", "hierarchical"],
        title="registered platforms",
    )
    for name, record in records.items():
        table.add_row(
            name,
            record["cores_per_node"],
            record["chips_per_node"],
            record["off_node"]["latency_us"],
            record["off_node"]["overhead_us"],
            record["off_node"]["gap_per_byte_us"],
            "yes" if record["is_hierarchical"] else "no",
        )
    print(table.render())
    return 0


def _cmd_platform_describe(args: argparse.Namespace) -> int:
    platform = _scenario_platform(args)
    record = describe_platform(platform)
    if args.json:
        print(json.dumps(record, indent=2))
        return 0
    table = Table(["parameter", "value"], title=f"platform {platform.name}")
    for name, value in _flatten(record):
        table.add_row(name, value if value is not None else "-")
    print(table.render())
    return 0


def _cmd_pingpong(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)
    fitted = derive_platform_parameters(platform, repetitions=args.repetitions)
    table = Table(["parameter", "fitted value"], title=f"Table 2 parameters for {platform.name}")
    for name, value in fitted.table2_rows():
        table.add_row(name, value)
    print(table.render())
    print(
        "fit quality (max relative error): "
        f"off-node {fitted.off_node_quality.max_relative_error:.2e}"
        + (
            f", on-chip {fitted.on_chip_quality.max_relative_error:.2e}"
            if fitted.on_chip_quality is not None
            else ""
        )
    )
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    registry = standard_workloads()
    names = ["lu-classC", "sweep3d-20m", "chimaera-240"]
    table = Table(
        ["parameter"] + names, title="Table 3: model application parameters"
    )
    rows = [registry[name]().table3_row() for name in names]
    for key in rows[0]:
        table.add_row(key, *(str(row[key]) for row in rows))
    print(table.render())
    return 0


def _cmd_workrate(args: argparse.Namespace) -> int:
    table = Table(
        ["kernel", "cells", "Wg (us/cell)"],
        title="measured per-cell work rates (this machine, numpy kernels)",
    )
    for measurement in (
        measure_transport_wg(cells_per_side=args.cells, repetitions=args.repetitions),
        measure_ssor_wg(cells_per_side=args.cells, repetitions=args.repetitions),
        measure_stencil_wg(repetitions=args.repetitions),
    ):
        table.add_row(measurement.kernel, measurement.cells, measurement.wg_us)
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wavebench",
        description="Plug-and-play LogGP performance models for wavefront computations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    app_names = ", ".join(sorted(standard_workloads()))
    platform_names = ", ".join(sorted(platform_registry))
    backend_names = ", ".join(available_backends())

    def add_common(p: argparse.ArgumentParser, *, cores_list: bool = False) -> None:
        p.add_argument("--app", required=True, help=f"application workload ({app_names})")
        p.add_argument(
            "--platform", default="cray-xt4", help=f"platform name ({platform_names})"
        )
        if cores_list:
            p.add_argument(
                "--cores", type=_int_list, required=True, help="comma-separated core counts"
            )
        else:
            p.add_argument("--cores", type=int, required=True, help="total cores")

    def add_backend_flag(p: argparse.ArgumentParser, help_text: str | None = None) -> None:
        p.add_argument(
            "--backend",
            default=None,
            help=help_text
            or f"prediction backend ({backend_names}; default analytic-fast)",
        )

    def add_json_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--json",
            action="store_true",
            help="emit a machine-readable JSON record instead of a table",
        )

    def add_scenario_flags(
        p: argparse.ArgumentParser, *, placement: bool = True
    ) -> None:
        if placement:
            p.add_argument(
                "--placement",
                default=None,
                help="rank placement: default, rowwise, colwise or <cx>x<cy> "
                "(the node's core rectangle in the processor array)",
            )
        p.add_argument(
            "--speed-profile",
            default=None,
            help="per-node speed profile, e.g. stragglers:1x2.0 "
            "(first node twice as slow), nodes:3,7x1.5 or baseline:<factor>",
        )
        p.add_argument(
            "--noise",
            default=None,
            help="background-noise model: none, quantum:<quantum_us>/<period_us> "
            "or sampled:<amplitude>",
        )
        p.add_argument(
            "--slowdown-windows",
            default=None,
            help="time-varying slowdown windows (simulator only), "
            "';'-separated <start_us>-<end_us>x<factor>[@<i,j,...>] entries",
        )
        p.add_argument(
            "--faults",
            default=None,
            help="fault/checkpoint model, '/'-separated key:value pairs in "
            "microseconds: mtbf, repair, restart, interval, dump "
            "(e.g. mtbf:2e9/repair:1e6/interval:1e6/dump:5e3)",
        )
        p.add_argument(
            "--mtbf",
            type=float,
            default=None,
            help="mean time between failures in us (shorthand merged into --faults)",
        )
        p.add_argument(
            "--checkpoint-interval",
            type=float,
            default=None,
            help="checkpoint period in us (shorthand merged into --faults)",
        )

    p_predict = sub.add_parser("predict", help="predict execution time")
    add_common(p_predict)
    p_predict.add_argument("--htile", type=float, default=None)
    p_predict.add_argument("--time-steps", type=int, default=None)
    add_scenario_flags(p_predict)
    p_predict.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the per-rank failure streams (simulator backend only)",
    )
    p_predict.add_argument(
        "--link-contention",
        action="store_true",
        help="serialise overlapping off-node payloads on per-link FIFO "
        "queues (simulator backend only)",
    )
    p_predict.add_argument(
        "--method",
        choices=FILL_METHODS,
        default="auto",
        help="StartP evaluator: fast closed-form/period-folded path or the exact "
        "grid walk (alias for --backend analytic-fast / analytic-exact)",
    )
    add_backend_flag(p_predict)
    add_json_flag(p_predict)
    p_predict.set_defaults(func=_cmd_predict)

    p_validate = sub.add_parser("validate", help="compare model against the simulator")
    add_common(p_validate)
    add_backend_flag(
        p_validate,
        help_text="candidate model backend diffed against the simulator baseline "
        "(analytic backends; default analytic-fast)",
    )
    add_json_flag(p_validate)
    p_validate.set_defaults(func=_cmd_validate)

    p_htile = sub.add_parser("htile", help="tile-height optimisation study (Figure 5)")
    add_common(p_htile)
    add_backend_flag(p_htile)
    p_htile.add_argument("--values", type=_float_list, default=[1, 2, 3, 4, 5, 6, 8, 10])
    def add_pool_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="pool size for the sweep (omitted: run serially)",
        )
        p.add_argument(
            "--executor",
            choices=("process", "thread"),
            default="process",
            help="pool kind used when --workers is given; processes use "
            "multiple cores (pure-Python model evaluation holds the GIL, "
            "so threads give no speedup)",
        )

    add_pool_flags(p_htile)
    p_htile.set_defaults(func=_cmd_htile)

    strategy_names = ", ".join(available_strategies())
    p_optimize = sub.add_parser(
        "optimize",
        help="search a design space for the best configuration (Sections 5-6)",
    )
    p_optimize.add_argument(
        "--space",
        default=None,
        help="path to a design-space JSON file (see docs/optimize.md); "
        "overrides the inline axis flags",
    )
    p_optimize.add_argument(
        "--app", default=None, help=f"application workload ({app_names})"
    )
    p_optimize.add_argument(
        "--platform", default="cray-xt4", help=f"platform name ({platform_names})"
    )
    p_optimize.add_argument(
        "--cores", type=_int_list, default=None, help="comma-separated core counts"
    )
    p_optimize.add_argument(
        "--node-counts",
        type=_int_list,
        default=None,
        help="comma-separated node counts (crossed with --cores-per-node; "
        "alternative to --cores)",
    )
    p_optimize.add_argument(
        "--htiles", type=_float_list, default=None, help="comma-separated tile heights"
    )
    p_optimize.add_argument(
        "--cores-per-node",
        type=_int_list,
        default=None,
        help="comma-separated cores-per-node designs (Figure 10 axis)",
    )
    p_optimize.add_argument(
        "--placements",
        default=None,
        help="comma-separated rank placements (default, rowwise, colwise, <cx>x<cy>)",
    )
    p_optimize.add_argument(
        "--aspect-ratios",
        type=_float_list,
        default=None,
        help="comma-separated processor-array aspect ratios (n/m targets)",
    )
    p_optimize.add_argument(
        "--budget",
        type=int,
        default=None,
        help="core budget: drop configurations needing more cores than this",
    )
    p_optimize.add_argument(
        "--strategy",
        default="exhaustive",
        help=f"search strategy ({strategy_names}; default exhaustive)",
    )
    p_optimize.add_argument(
        "--objective",
        choices=OBJECTIVES,
        default="time",
        help="quantity to minimise (default: time per time step)",
    )
    p_optimize.add_argument(
        "--pareto",
        action="store_true",
        help="also print the (time, core-hours) Pareto front",
    )
    add_backend_flag(p_optimize)
    add_json_flag(p_optimize)
    add_pool_flags(p_optimize)
    p_optimize.set_defaults(func=_cmd_optimize)

    p_scaling = sub.add_parser("scaling", help="strong scaling study (Figure 6)")
    add_common(p_scaling, cores_list=True)
    add_backend_flag(p_scaling)
    add_pool_flags(p_scaling)
    p_scaling.set_defaults(func=_cmd_scaling)

    p_campaign = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns with a persistent result store",
    )
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_names = ", ".join(sorted(builtin_campaigns()))

    def add_campaign_selection(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--name", default=None, help=f"built-in campaign ({campaign_names})"
        )
        p.add_argument(
            "--spec", default=None, help="path to a campaign JSON file (see docs/campaigns.md)"
        )

    def add_store_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=None,
            help="result store path (default: <project>/.repro-cache/"
            "<campaign>.store, override the directory with $REPRO_CACHE_DIR)",
        )

    p_crun = campaign_sub.add_parser(
        "run", help="expand the campaign and compute the points missing from the store"
    )
    add_campaign_selection(p_crun)
    add_store_flag(p_crun)
    p_crun.add_argument(
        "--max-cores",
        type=int,
        default=None,
        help="drop core counts above this cap (reduced-scale smoke runs)",
    )
    p_crun.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the pending points across this many worker processes "
        "(stable content-hash partitioning; scratch stores merged on completion)",
    )
    p_crun.add_argument(
        "--resume",
        action="store_true",
        help="salvage the scratch stores of a previously killed --shards run "
        "before computing only the still-missing delta",
    )
    add_pool_flags(p_crun)
    add_json_flag(p_crun)
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_creport = campaign_sub.add_parser(
        "report", help="render the Markdown report (and CSV data files) from a store"
    )
    add_campaign_selection(p_creport)
    add_store_flag(p_creport)
    p_creport.add_argument(
        "--output",
        default=None,
        help="write report.md plus CSV data files into this directory "
        "instead of printing Markdown to stdout",
    )
    p_creport.set_defaults(func=_cmd_campaign_report)

    p_clist = campaign_sub.add_parser("list", help="list the built-in campaigns")
    add_json_flag(p_clist)
    p_clist.set_defaults(func=_cmd_campaign_list)

    p_cclean = campaign_sub.add_parser("clean", help="delete a campaign's result store")
    add_campaign_selection(p_cclean)
    add_store_flag(p_cclean)
    p_cclean.set_defaults(func=_cmd_campaign_clean)

    p_platform = sub.add_parser(
        "platform", help="inspect registered platforms and scenario machines"
    )
    platform_sub = p_platform.add_subparsers(dest="platform_command", required=True)

    p_plist = platform_sub.add_parser("list", help="list the registered platforms")
    add_json_flag(p_plist)
    p_plist.set_defaults(func=_cmd_platform_list)

    p_pdesc = platform_sub.add_parser(
        "describe",
        help="dump every model-relevant parameter of a platform "
        "(optionally with a scenario applied)",
    )
    p_pdesc.add_argument(
        "--platform", default="cray-xt4", help=f"platform name ({platform_names})"
    )
    # No --placement here: placement shapes a prediction's core mapping,
    # not the platform description itself.
    add_scenario_flags(p_pdesc, placement=False)
    add_json_flag(p_pdesc)
    p_pdesc.set_defaults(func=_cmd_platform_describe)

    p_pingpong = sub.add_parser(
        "pingpong", help="derive Table 2 LogGP parameters from simulated ping-pong"
    )
    p_pingpong.add_argument(
        "--platform", default="cray-xt4", help=f"platform name ({platform_names})"
    )
    p_pingpong.add_argument("--repetitions", type=int, default=5)
    p_pingpong.set_defaults(func=_cmd_pingpong)

    p_table3 = sub.add_parser("table3", help="print the Table 3 application parameters")
    p_table3.set_defaults(func=_cmd_table3)

    p_workrate = sub.add_parser("workrate", help="measure Wg from the numpy kernels")
    p_workrate.add_argument("--cells", type=int, default=10)
    p_workrate.add_argument("--repetitions", type=int, default=2)
    p_workrate.set_defaults(func=_cmd_workrate)

    p_lint = sub.add_parser(
        "lint",
        help="run the repository invariant checker (see docs/lint.md)",
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=run_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.func
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
