"""Chimaera application parameters (Table 3, column "Chimaera").

Chimaera is AWE's particle transport benchmark.  Like Sweep3D it performs
eight sweeps (one per octant) per iteration, but its sweep precedence differs
(Figure 2(c)): four of the sweeps must complete *everywhere* before the next
one starts (``nfull = 4``) and two must complete at the main-diagonal corner
(``ndiag = 2``).  Chimaera computes ten angles per cell, has a fixed tile
height of one cell (the paper notes that AWE were implementing an ``Htile``
parameter following this model's projections), and performs one all-reduce
per iteration.

The paper was the first to document Chimaera's sweep structure and the first
analytic model of the code; the 240^3 problem used throughout Section 5 needs
419 iterations per time step.
"""

from __future__ import annotations

from repro.apps.base import (
    AllReduceNonWavefront,
    FillClass,
    SweepPhase,
    SweepSchedule,
    WavefrontSpec,
)
from repro.core.decomposition import Corner, ProblemSize

__all__ = [
    "chimaera_schedule",
    "chimaera",
    "CHIMAERA_WG_US",
    "CHIMAERA_ANGLES",
    "CHIMAERA_DEFAULT_ITERATIONS",
]

#: Calibrated per-cell work rate (all ten angles), microseconds.  See
#: DESIGN.md section 5 for the calibration rationale.
CHIMAERA_WG_US: float = 0.55

#: Number of angles computed per cell.
CHIMAERA_ANGLES: int = 10

#: Iterations needed to complete one time step of the 240^3 benchmark
#: problem (Section 5 of the paper).
CHIMAERA_DEFAULT_ITERATIONS: int = 419

_BYTES_PER_VALUE: int = 8


def chimaera_schedule() -> SweepSchedule:
    """The eight-sweep schedule of one Chimaera iteration.

    The forward half ends with two full-completion hand-offs ("the fourth
    sweep does not begin until the processor at the opposite corner finishes
    the third sweep"), the backward half mirrors it, giving ``nfull = 4`` and
    ``ndiag = 2`` as reported in Table 3.
    """
    nw, ne, sw, se = (
        Corner.NORTH_WEST,
        Corner.NORTH_EAST,
        Corner.SOUTH_WEST,
        Corner.SOUTH_EAST,
    )
    return SweepSchedule.from_phases(
        [
            # Forward sweep group
            SweepPhase(origin=nw, fill=FillClass.NONE),
            SweepPhase(origin=nw, fill=FillClass.DIAG),
            SweepPhase(origin=sw, fill=FillClass.FULL),
            SweepPhase(origin=se, fill=FillClass.FULL),
            # Backward sweep group
            SweepPhase(origin=se, fill=FillClass.NONE),
            SweepPhase(origin=se, fill=FillClass.DIAG),
            SweepPhase(origin=ne, fill=FillClass.FULL),
            SweepPhase(origin=nw, fill=FillClass.FULL),
        ]
    )


def chimaera(
    problem: ProblemSize,
    *,
    htile: float = 1.0,
    iterations: int = CHIMAERA_DEFAULT_ITERATIONS,
    time_steps: int = 1,
    energy_groups: int = 1,
    wg_us: float = CHIMAERA_WG_US,
    angles: int = CHIMAERA_ANGLES,
) -> WavefrontSpec:
    """Build the Table 3 parameterisation of a Chimaera run.

    ``htile`` defaults to the code's current fixed tile height of one cell;
    the Figure 5 study varies it to quantify the benefit of the blocking
    parameter AWE were adding to the code.
    """
    return WavefrontSpec(
        name="chimaera",
        problem=problem,
        wg_us=wg_us,
        wg_pre_us=0.0,
        htile=htile,
        schedule=chimaera_schedule(),
        boundary_bytes_per_cell=_BYTES_PER_VALUE * angles,
        iterations=iterations,
        time_steps=time_steps,
        energy_groups=energy_groups,
        nonwavefront=AllReduceNonWavefront(count=1),
    )
