"""Sweep3D application parameters (Table 3, column "Sweep3D").

Sweep3D is the LANL ASC benchmark representing discrete-ordinates (Sn)
particle transport.  Each iteration performs eight sweeps, one per octant of
the angular domain; within a sweep the tile height is controlled by the
``mk`` blocking parameter and the angle blocking by ``mmi`` (angles computed
before boundary exchange) out of ``mmo`` total angles per octant.  The model
folds ``mk``, ``mmi`` and ``mmo`` into the single effective tile height
``Htile = mk * mmi / mmo`` (Section 4.1) while ``Wg`` remains the measured
computation time for *all* angles of one cell.

Sweep precedence (Section 2.2 / Figure 2(b)): sweeps are issued in octant
pairs from each corner; two transitions per iteration wait for the previous
sweep at the main-diagonal corner (``ndiag = 2``) and two wait for it to
complete everywhere (``nfull = 2``, including the end of the iteration).  Two
all-reduces close every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import (
    AllReduceNonWavefront,
    FillClass,
    SweepPhase,
    SweepSchedule,
    WavefrontSpec,
)
from repro.core.decomposition import Corner, ProblemSize

__all__ = [
    "Sweep3DConfig",
    "sweep3d_schedule",
    "sweep3d",
    "SWEEP3D_WG_US",
    "SWEEP3D_ANGLES",
    "SWEEP3D_DEFAULT_ITERATIONS",
]

#: Calibrated per-cell work rate for all mmo angles, microseconds.  See
#: DESIGN.md section 5: chosen so that iteration times land in the same range
#: as the paper's figures; re-measurable via ``repro.calibration.workrate``.
SWEEP3D_WG_US: float = 0.37

#: Default number of angles per octant (the paper sets ``mmo = 6``).
SWEEP3D_ANGLES: int = 6

#: Iterations per time step used throughout the paper's Section 5 (the
#: benchmark default is 12; the paper argues 120 is more representative).
SWEEP3D_DEFAULT_ITERATIONS: int = 120

#: Bytes per boundary value (double precision).
_BYTES_PER_VALUE: int = 8


@dataclass(frozen=True)
class Sweep3DConfig:
    """The Sweep3D input parameters that affect the performance model.

    ``mk`` is the k-block (tile) height in cells, ``mmi`` the number of
    angles computed before each boundary exchange and ``mmo`` the total
    number of angles per octant.
    """

    mk: int = 4
    mmi: int = 3
    mmo: int = SWEEP3D_ANGLES

    def __post_init__(self) -> None:
        if min(self.mk, self.mmi, self.mmo) < 1:
            raise ValueError("mk, mmi and mmo must be positive")
        if self.mmi > self.mmo:
            raise ValueError("mmi cannot exceed mmo")
        if self.mmo % self.mmi != 0:
            raise ValueError("mmo must be a multiple of mmi")

    @property
    def htile(self) -> float:
        """Effective tile height ``Htile = mk * mmi / mmo`` (Table 3)."""
        return self.mk * self.mmi / self.mmo

    @classmethod
    def for_htile(cls, htile: float, mmi: int = 3, mmo: int = SWEEP3D_ANGLES) -> "Sweep3DConfig":
        """Build a configuration whose effective tile height equals ``htile``.

        The paper sweeps ``Htile`` directly (Figure 5); this helper maps a
        requested ``Htile`` back onto an ``mk`` value (``mk = htile * mmo /
        mmi``), which must come out integral.
        """
        mk = htile * mmo / mmi
        if abs(mk - round(mk)) > 1e-9 or mk < 1:
            raise ValueError(
                f"Htile={htile} is not representable with mmi={mmi}, mmo={mmo}"
            )
        return cls(mk=int(round(mk)), mmi=mmi, mmo=mmo)


def sweep3d_schedule() -> SweepSchedule:
    """The eight-sweep schedule of one Sweep3D iteration.

    Sweeps are issued in octant pairs from each corner of the processor
    array.  The hand-offs between pairs alternate between waiting at the
    main-diagonal corner (exposing a diagonal fill) and waiting for full
    completion (exposing a full fill), giving ``nfull = 2`` and ``ndiag = 2``
    as in Table 3.
    """
    nw, ne, sw, se = (
        Corner.NORTH_WEST,
        Corner.NORTH_EAST,
        Corner.SOUTH_WEST,
        Corner.SOUTH_EAST,
    )
    return SweepSchedule.from_phases(
        [
            SweepPhase(origin=nw, fill=FillClass.NONE),   # octant 1
            SweepPhase(origin=nw, fill=FillClass.DIAG),   # octant 2
            SweepPhase(origin=sw, fill=FillClass.NONE),   # octant 3
            SweepPhase(origin=sw, fill=FillClass.FULL),   # octant 4
            SweepPhase(origin=se, fill=FillClass.NONE),   # octant 5
            SweepPhase(origin=se, fill=FillClass.DIAG),   # octant 6
            SweepPhase(origin=ne, fill=FillClass.NONE),   # octant 7
            SweepPhase(origin=ne, fill=FillClass.FULL),   # octant 8
        ]
    )


def sweep3d(
    problem: ProblemSize,
    *,
    config: Sweep3DConfig | None = None,
    iterations: int = SWEEP3D_DEFAULT_ITERATIONS,
    time_steps: int = 1,
    energy_groups: int = 1,
    wg_us: float = SWEEP3D_WG_US,
) -> WavefrontSpec:
    """Build the Table 3 parameterisation of a Sweep3D run.

    Parameters
    ----------
    problem:
        Global cell grid (the paper studies 20M-cell and 10^9-cell cubes).
    config:
        ``mk`` / ``mmi`` / ``mmo`` blocking parameters; defaults to
        ``mk=4, mmi=3, mmo=6`` which gives ``Htile = 2``, the value the
        paper recommends on the XT4.
    iterations, time_steps, energy_groups:
        Run length parameters used by the Section 5 studies.
    wg_us:
        Per-cell (all angles) work rate; override with a measured value when
        available.
    """
    if config is None:
        config = Sweep3DConfig()
    return WavefrontSpec(
        name="sweep3d",
        problem=problem,
        wg_us=wg_us,
        wg_pre_us=0.0,
        htile=config.htile,
        schedule=sweep3d_schedule(),
        boundary_bytes_per_cell=_BYTES_PER_VALUE * config.mmo,
        iterations=iterations,
        time_steps=time_steps,
        energy_groups=energy_groups,
        nonwavefront=AllReduceNonWavefront(count=2),
    )
