"""Standard problem sizes and benchmark workloads used in the paper.

Section 5 of the paper evaluates:

* Chimaera on 240^3 cells (the largest cubic problem shipped with the
  benchmark; 419 iterations per time step) and on 240 x 240 x 960;
* Sweep3D on 20 million cells and on 10^9 cells (the two LANL problem sizes
  of interest), with 120 iterations per time step, mmo = 6 angles, and - for
  the production-scale projections - 30 energy groups and 10^4 time steps;
* LU on the NAS class sizes.

The helpers here build ready-made :class:`~repro.apps.base.WavefrontSpec`
instances for those workloads so that examples, tests and benchmark scripts
all agree on the exact configuration.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.base import WavefrontSpec
from repro.apps.chimaera import chimaera
from repro.apps.lu import lu
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.core.decomposition import ProblemSize

__all__ = [
    "CHIMAERA_240_CUBED",
    "CHIMAERA_240_240_960",
    "SWEEP3D_20M",
    "SWEEP3D_1B",
    "NAS_LU_CLASSES",
    "chimaera_240cubed",
    "chimaera_elongated",
    "sweep3d_20m",
    "sweep3d_1billion",
    "sweep3d_production_1billion",
    "lu_class",
    "standard_workloads",
]

#: The Chimaera benchmark's largest cubic problem.
CHIMAERA_240_CUBED = ProblemSize.cube(240)

#: The elongated Chimaera problem also of interest to AWE (Section 5.1).
CHIMAERA_240_240_960 = ProblemSize(240, 240, 960)

#: Sweep3D "20 million cells" problem (272^3 = 20.1M cells).
SWEEP3D_20M = ProblemSize.of_total(20e6)

#: Sweep3D "10^9 cells" problem (1000^3).
SWEEP3D_1B = ProblemSize.cube(1000)

#: NAS LU class problem sizes.
NAS_LU_CLASSES: Dict[str, ProblemSize] = {
    "A": ProblemSize.cube(64),
    "B": ProblemSize.cube(102),
    "C": ProblemSize.cube(162),
    "D": ProblemSize.cube(408),
}

#: Energy groups used by the production-scale Sweep3D projections (Fig. 6-10).
PRODUCTION_ENERGY_GROUPS: int = 30

#: Time steps used by the production-scale Sweep3D projections.
PRODUCTION_TIME_STEPS: int = 10_000


def chimaera_240cubed(*, htile: float = 1.0, time_steps: int = 1) -> WavefrontSpec:
    """Chimaera on the 240^3 problem, 419 iterations per time step."""
    return chimaera(CHIMAERA_240_CUBED, htile=htile, time_steps=time_steps)


def chimaera_elongated(*, htile: float = 1.0, time_steps: int = 1) -> WavefrontSpec:
    """Chimaera on the 240 x 240 x 960 problem (Section 5.1)."""
    return chimaera(CHIMAERA_240_240_960, htile=htile, time_steps=time_steps)


def sweep3d_20m(*, htile: float = 2.0, iterations: int = 480, time_steps: int = 1) -> WavefrontSpec:
    """Sweep3D on the 20M-cell problem.

    Figure 5 of the paper compares this problem (480 iterations) against
    Chimaera 240^3 (419 iterations), so 480 is the default here.
    """
    config = Sweep3DConfig.for_htile(htile)
    return sweep3d(SWEEP3D_20M, config=config, iterations=iterations, time_steps=time_steps)


def sweep3d_1billion(*, htile: float = 2.0, iterations: int = 120, time_steps: int = 1) -> WavefrontSpec:
    """Sweep3D on the 10^9-cell problem with a single energy group."""
    config = Sweep3DConfig.for_htile(htile)
    return sweep3d(SWEEP3D_1B, config=config, iterations=iterations, time_steps=time_steps)


def sweep3d_production_1billion(*, htile: float = 2.0) -> WavefrontSpec:
    """The production-scale 10^9-cell Sweep3D run used by Figures 6-10.

    30 energy groups and 10^4 time steps, 120 iterations per time step.
    """
    config = Sweep3DConfig.for_htile(htile)
    return sweep3d(
        SWEEP3D_1B,
        config=config,
        iterations=120,
        time_steps=PRODUCTION_TIME_STEPS,
        energy_groups=PRODUCTION_ENERGY_GROUPS,
    )


def lu_class(nas_class: str, *, time_steps: int = 1) -> WavefrontSpec:
    """LU at one of the NAS class sizes ("A", "B", "C" or "D")."""
    try:
        problem = NAS_LU_CLASSES[nas_class.upper()]
    except KeyError as exc:
        raise KeyError(
            f"unknown NAS class {nas_class!r}; choose from {sorted(NAS_LU_CLASSES)}"
        ) from exc
    return lu(problem, time_steps=time_steps)


def standard_workloads() -> Dict[str, Callable[[], WavefrontSpec]]:
    """Registry of named workload factories, used by the CLI and benches."""
    return {
        "chimaera-240": chimaera_240cubed,
        "chimaera-240x240x960": chimaera_elongated,
        "sweep3d-20m": sweep3d_20m,
        "sweep3d-1b": sweep3d_1billion,
        "sweep3d-1b-production": sweep3d_production_1billion,
        "lu-classA": lambda: lu_class("A"),
        "lu-classB": lambda: lu_class("B"),
        "lu-classC": lambda: lu_class("C"),
        "lu-classD": lambda: lu_class("D"),
    }
