"""Application parameterisation of wavefront codes (Table 3 of the paper).

The plug-and-play model characterises a wavefront application by a small set
of *application parameters*:

* the problem size ``Nx x Ny x Nz``;
* the per-cell computation times ``Wg`` (after the boundary values arrive)
  and ``Wg,pre`` (pre-computation before the receives - non-zero only in LU);
* the effective tile height ``Htile`` (for Sweep3D, ``mk * mmi / mmo``);
* the number of sweeps per iteration ``nsweeps`` and the sweep precedence
  structure summarised by ``nfull`` and ``ndiag``;
* the east-west / north-south boundary message sizes; and
* ``Tnonwavefront``, the work performed between sweeps / at the end of each
  iteration (a stencil for LU, one or two all-reduces for the transport
  codes).

This module defines the data types carrying those parameters
(:class:`WavefrontSpec`, :class:`SweepSchedule`, the ``Tnonwavefront``
strategies) plus the *full* sweep schedule description (per-sweep origin
corner and hand-off rule) that the discrete-event simulator executes and from
which ``nfull``/``ndiag`` are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional, Protocol, Sequence

from repro.core.comm import ALLREDUCE_PAYLOAD_BYTES, allreduce_time, total_comm
from repro.core.decomposition import Corner, ProblemSize, ProcessorGrid
from repro.core.loggp import Platform
from repro.util.caching import cached_field_hash

__all__ = [
    "FillClass",
    "SweepPhase",
    "SweepSchedule",
    "NonWavefrontModel",
    "NoNonWavefront",
    "AllReduceNonWavefront",
    "StencilNonWavefront",
    "WavefrontSpec",
]


class FillClass(Enum):
    """How much of a sweep's pipeline fill is exposed on the critical path.

    The class of sweep ``k`` is determined by where sweep ``k+1`` (or the end
    of the iteration, for the last sweep) waits for sweep ``k``:

    ``NONE``
        the next sweep originates at the same corner and starts as soon as
        that corner finishes its stack - no fill is exposed;
    ``DIAG``
        the next sweep waits for sweep ``k`` to complete at the corner on the
        main diagonal of the wavefronts (an adjacent corner of the array) -
        a diagonal fill ``Tdiagfill`` is exposed;
    ``FULL``
        the next sweep waits for sweep ``k`` to complete everywhere (equiv.
        at the opposite corner) - a full fill ``Tfullfill`` is exposed.

    ``nfull`` in Table 3 counts the FULL sweeps and ``ndiag`` the DIAG
    sweeps.
    """

    NONE = "none"
    DIAG = "diag"
    FULL = "full"


@dataclass(frozen=True)
class SweepPhase:
    """One sweep of an iteration.

    Attributes
    ----------
    origin:
        Corner of the processor array where the sweep originates.
    fill:
        The :class:`FillClass` of this sweep (see above).  The last sweep of
        an iteration is always ``FULL`` because the iteration cannot end
        before the sweep completes everywhere.
    """

    origin: Corner
    fill: FillClass = FillClass.NONE


@dataclass(frozen=True)
class SweepSchedule:
    """The ordered sweeps performed in each iteration of a wavefront code."""

    phases: tuple[SweepPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a sweep schedule needs at least one sweep")
        if self.phases[-1].fill is not FillClass.FULL:
            raise ValueError(
                "the last sweep of an iteration must have FillClass.FULL: "
                "the iteration cannot end before it completes everywhere"
            )

    @classmethod
    def from_phases(cls, phases: Sequence[SweepPhase]) -> "SweepSchedule":
        return cls(phases=tuple(phases))

    @property
    def nsweeps(self) -> int:
        """Number of sweeps per iteration (Table 3)."""
        return len(self.phases)

    @property
    def nfull(self) -> int:
        """Number of sweeps that must fully complete before the next begins."""
        return sum(1 for phase in self.phases if phase.fill is FillClass.FULL)

    @property
    def ndiag(self) -> int:
        """Number of sweeps that must complete at the main-diagonal corner."""
        return sum(1 for phase in self.phases if phase.fill is FillClass.DIAG)

    def repeated(self, times: int) -> "SweepSchedule":
        """The schedule repeated ``times`` times within a single iteration.

        Used by the Section 5.5 redesign study: pipelining the energy groups
        turns an iteration of 8 sweeps into one of ``8 x n_groups`` sweeps
        while keeping ``nfull`` and ``ndiag`` fixed - only the last
        repetition's precedence structure is exposed, every earlier
        repetition hands off corner-to-corner.
        """
        if times < 1:
            raise ValueError("times must be >= 1")
        if times == 1:
            return self
        relaxed = tuple(
            SweepPhase(origin=phase.origin, fill=FillClass.NONE)
            for phase in self.phases
        )
        return SweepSchedule(phases=relaxed * (times - 1) + self.phases)


class NonWavefrontModel(Protocol):
    """Model of ``Tnonwavefront``: work done between sweeps / iterations."""

    def evaluate(
        self, platform: Platform, spec: "WavefrontSpec", grid: ProcessorGrid
    ) -> float:
        """Return the per-iteration non-wavefront time in microseconds."""
        ...

    def evaluate_components(
        self, platform: Platform, spec: "WavefrontSpec", grid: ProcessorGrid
    ) -> tuple[float, float]:
        """Return the ``(computation, communication)`` split of the time."""
        ...

    def describe(self) -> str:
        """Short human-readable description for reports."""
        ...


@dataclass(frozen=True)
class NoNonWavefront:
    """No work between sweeps (``Tnonwavefront = 0``)."""

    def evaluate(
        self, platform: Platform, spec: "WavefrontSpec", grid: ProcessorGrid
    ) -> float:
        return 0.0

    def evaluate_components(
        self, platform: Platform, spec: "WavefrontSpec", grid: ProcessorGrid
    ) -> tuple[float, float]:
        return (0.0, 0.0)

    def describe(self) -> str:
        return "none"


@dataclass(frozen=True)
class AllReduceNonWavefront:
    """``count`` MPI all-reduce operations per iteration (Sweep3D: 2, Chimaera: 1)."""

    count: int = 1
    payload_bytes: int = ALLREDUCE_PAYLOAD_BYTES

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")

    def evaluate(
        self, platform: Platform, spec: "WavefrontSpec", grid: ProcessorGrid
    ) -> float:
        return self.count * allreduce_time(
            platform, grid.total_processors, self.payload_bytes
        )

    def evaluate_components(
        self, platform: Platform, spec: "WavefrontSpec", grid: ProcessorGrid
    ) -> tuple[float, float]:
        # The all-reduce is pure communication in the paper's cost breakdown.
        return (0.0, self.evaluate(platform, spec, grid))

    def describe(self) -> str:
        return f"{self.count} x allreduce"


@dataclass(frozen=True)
class StencilNonWavefront:
    """LU's inter-iteration stencil update (``Tstencil``).

    After its two sweeps, LU applies a four-point stencil (the RHS / l2-norm
    computation) across the local subdomain and exchanges boundary faces with
    its four neighbours.  Following the paper ("a sum of terms with similar
    simplicity and abstraction as the all-reduce model") we model it as

    ``Tstencil = wg_stencil * (Nx/n) * (Ny/m) * Nz``            (local work)
    ``        + exchanges  * TotalComm(face message)``          (halo swap)
    ``        + allreduce``                                      (norm check)
    """

    wg_stencil_us: float
    exchanges: int = 4
    include_allreduce: bool = True

    def __post_init__(self) -> None:
        if self.wg_stencil_us < 0:
            raise ValueError("wg_stencil_us must be non-negative")
        if self.exchanges < 0:
            raise ValueError("exchanges must be non-negative")

    def evaluate(
        self, platform: Platform, spec: "WavefrontSpec", grid: ProcessorGrid
    ) -> float:
        work, comm = self.evaluate_components(platform, spec, grid)
        return work + comm

    def evaluate_components(
        self, platform: Platform, spec: "WavefrontSpec", grid: ProcessorGrid
    ) -> tuple[float, float]:
        sub_x, sub_y, sub_z = spec.problem.subdomain(grid)
        work = platform.scaled_work(self.wg_stencil_us * sub_x * sub_y * sub_z)
        face_bytes = max(
            spec.message_size_ew(grid), spec.message_size_ns(grid)
        )
        comm = self.exchanges * total_comm(platform, face_bytes, on_chip=False)
        reduce_cost = (
            allreduce_time(platform, grid.total_processors)
            if self.include_allreduce
            else 0.0
        )
        return (work, comm + reduce_cost)

    def describe(self) -> str:
        return f"stencil (wg={self.wg_stencil_us} us) + {self.exchanges} halo exchanges"


@dataclass(frozen=True)
class WavefrontSpec:
    """Complete Table 3 parameterisation of one wavefront application run.

    Attributes
    ----------
    name:
        Benchmark name (``"lu"``, ``"sweep3d"``, ``"chimaera"``, or a custom
        application).
    problem:
        Global data grid.
    wg_us:
        ``Wg`` - computation time for *all* angles of one data cell, in
        microseconds, measured (or calibrated) on the target core.
    wg_pre_us:
        ``Wg,pre`` - per-cell pre-computation performed before the MPI
        receives (zero for Sweep3D and Chimaera).
    htile:
        ``Htile`` - effective tile height in cells.  Sweep3D exposes it as
        ``mk * mmi / mmo``; LU and Chimaera have a fixed height of 1 (until
        the Chimaera blocking parameter the paper advocates is implemented).
    schedule:
        The sweep structure of one iteration.
    boundary_bytes_per_cell:
        Bytes of boundary data exchanged per boundary cell *column* (i.e. per
        cell of the tile face, covering all angles): ``40`` for LU, ``8 *
        #angles`` for the transport codes.
    iterations:
        Iterations per time step (Chimaera: 419 for the 240^3 benchmark,
        Sweep3D: 120 as used throughout the paper's Section 5).
    time_steps:
        Number of time steps in the full simulation (used by the Section 5
        studies; 1 for a single-time-step run).
    energy_groups:
        Number of energy groups simulated; execution time scales linearly
        (the paper uses 30 for the 10^9-cell production projections).
    nonwavefront:
        Model of the work between sweeps / iterations.
    """

    name: str
    problem: ProblemSize
    wg_us: float
    schedule: SweepSchedule
    boundary_bytes_per_cell: float
    wg_pre_us: float = 0.0
    htile: float = 1.0
    iterations: int = 1
    time_steps: int = 1
    energy_groups: int = 1
    nonwavefront: NonWavefrontModel = field(default_factory=NoNonWavefront)

    def __post_init__(self) -> None:
        if self.wg_us <= 0:
            raise ValueError("wg_us must be positive")
        if self.wg_pre_us < 0:
            raise ValueError("wg_pre_us must be non-negative")
        if self.htile <= 0:
            raise ValueError("htile must be positive")
        if self.boundary_bytes_per_cell <= 0:
            raise ValueError("boundary_bytes_per_cell must be positive")
        if min(self.iterations, self.time_steps, self.energy_groups) < 1:
            raise ValueError("iterations, time_steps and energy_groups must be >= 1")

    def __hash__(self) -> int:
        # Specs key every prediction memo; the generated hash re-walks the
        # nested problem/schedule/nonwavefront tree on each dict operation.
        return cached_field_hash(self)

    # -- Table 3 derived quantities -------------------------------------------------

    @property
    def nsweeps(self) -> int:
        return self.schedule.nsweeps

    @property
    def nfull(self) -> int:
        return self.schedule.nfull

    @property
    def ndiag(self) -> int:
        return self.schedule.ndiag

    def tiles_per_stack(self) -> float:
        """Number of tiles in one processor's stack, ``Nz / Htile``."""
        return self.problem.nz / self.htile

    def message_size_ew(self, grid: ProcessorGrid) -> float:
        """East-west boundary message size in bytes (Table 3).

        The east/west face of a tile is ``Htile x Ny/m`` cells, each
        contributing ``boundary_bytes_per_cell`` bytes.
        """
        return self.boundary_bytes_per_cell * self.htile * (self.problem.ny / grid.m)

    def message_size_ns(self, grid: ProcessorGrid) -> float:
        """North-south boundary message size in bytes (Table 3)."""
        return self.boundary_bytes_per_cell * self.htile * (self.problem.nx / grid.n)

    def work_per_tile(self, grid: ProcessorGrid, platform: Platform) -> float:
        """``W = Wg * Htile * Nx/n * Ny/m`` (equation (r1b)), microseconds."""
        sub_x = self.problem.nx / grid.n
        sub_y = self.problem.ny / grid.m
        return platform.scaled_work(self.wg_us * self.htile * sub_x * sub_y)

    def pre_work_per_tile(self, grid: ProcessorGrid, platform: Platform) -> float:
        """``Wpre = Wg,pre * Htile * Nx/n * Ny/m`` (equation (r1a)), microseconds."""
        sub_x = self.problem.nx / grid.n
        sub_y = self.problem.ny / grid.m
        return platform.scaled_work(self.wg_pre_us * self.htile * sub_x * sub_y)

    def nonwavefront_time(self, platform: Platform, grid: ProcessorGrid) -> float:
        """``Tnonwavefront`` for one iteration, microseconds."""
        return self.nonwavefront.evaluate(platform, self, grid)

    # -- convenience constructors ---------------------------------------------------

    def with_htile(self, htile: float) -> "WavefrontSpec":
        """A copy with a different tile height (the Figure 5 design study)."""
        return replace(self, htile=htile)

    def with_problem(self, problem: ProblemSize) -> "WavefrontSpec":
        return replace(self, problem=problem)

    def with_iterations(self, iterations: int) -> "WavefrontSpec":
        return replace(self, iterations=iterations)

    def with_time_steps(self, time_steps: int) -> "WavefrontSpec":
        return replace(self, time_steps=time_steps)

    def with_energy_groups(self, energy_groups: int) -> "WavefrontSpec":
        return replace(self, energy_groups=energy_groups)

    def with_schedule(self, schedule: SweepSchedule) -> "WavefrontSpec":
        return replace(self, schedule=schedule)

    def with_wg(self, wg_us: float, wg_pre_us: Optional[float] = None) -> "WavefrontSpec":
        """A copy with re-measured work rates (see ``repro.calibration.workrate``)."""
        if wg_pre_us is None:
            wg_pre_us = self.wg_pre_us
        return replace(self, wg_us=wg_us, wg_pre_us=wg_pre_us)

    def table3_row(self) -> dict[str, object]:
        """The Table 3 view of this application's parameters."""
        return {
            "application": self.name,
            "Nx,Ny,Nz": (self.problem.nx, self.problem.ny, self.problem.nz),
            "Wg (us)": self.wg_us,
            "Wg,pre (us)": self.wg_pre_us,
            "Htile": self.htile,
            "nsweeps": self.nsweeps,
            "nfull": self.nfull,
            "ndiag": self.ndiag,
            "Tnonwavefront": self.nonwavefront.describe(),
            "boundary bytes/cell": self.boundary_bytes_per_cell,
        }
