"""Application parameterisations of wavefront codes (Table 3 of the paper).

This package turns each benchmark (LU, Sweep3D, Chimaera) - and any custom
wavefront application a user wants to evaluate - into a
:class:`~repro.apps.base.WavefrontSpec`: the small set of plug-and-play input
parameters that the reusable model consumes.

>>> from repro.apps import sweep3d, chimaera, lu
>>> from repro.core.decomposition import ProblemSize
>>> spec = chimaera(ProblemSize.cube(240))
>>> (spec.nsweeps, spec.nfull, spec.ndiag)
(8, 4, 2)
"""

from repro.apps.base import (
    AllReduceNonWavefront,
    FillClass,
    NoNonWavefront,
    NonWavefrontModel,
    StencilNonWavefront,
    SweepPhase,
    SweepSchedule,
    WavefrontSpec,
)
from repro.apps.chimaera import CHIMAERA_ANGLES, CHIMAERA_WG_US, chimaera, chimaera_schedule
from repro.apps.lu import LU_WG_PRE_US, LU_WG_US, lu, lu_schedule
from repro.apps.sweep3d import (
    SWEEP3D_ANGLES,
    SWEEP3D_WG_US,
    Sweep3DConfig,
    sweep3d,
    sweep3d_schedule,
)
from repro.apps import workloads

__all__ = [
    "AllReduceNonWavefront",
    "FillClass",
    "NoNonWavefront",
    "NonWavefrontModel",
    "StencilNonWavefront",
    "SweepPhase",
    "SweepSchedule",
    "WavefrontSpec",
    "chimaera",
    "chimaera_schedule",
    "CHIMAERA_ANGLES",
    "CHIMAERA_WG_US",
    "lu",
    "lu_schedule",
    "LU_WG_US",
    "LU_WG_PRE_US",
    "sweep3d",
    "sweep3d_schedule",
    "Sweep3DConfig",
    "SWEEP3D_ANGLES",
    "SWEEP3D_WG_US",
    "workloads",
]
