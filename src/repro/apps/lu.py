"""LU (NAS parallel benchmark) application parameters (Table 3, column "LU").

LU solves the compressible Navier-Stokes equations with an SSOR scheme whose
lower- and upper-triangular solves are pipelined wavefront sweeps: each
iteration performs two sweeps, one from processor ``(1,1)`` towards
``(n,m)`` and one back.  Both sweeps must fully complete before the next
phase (``nfull = 2``, ``ndiag = 0``).  Unlike the transport codes, LU

* pre-computes part of each tile *before* the boundary receives
  (``Wg,pre > 0``, Figure 4(a)),
* works on tiles of fixed height one cell,
* exchanges 40 bytes per boundary cell (five double-precision flow
  variables), and
* performs a stencil-based RHS update (``Tstencil``) between iterations
  rather than an all-reduce.
"""

from __future__ import annotations

from repro.apps.base import (
    FillClass,
    StencilNonWavefront,
    SweepPhase,
    SweepSchedule,
    WavefrontSpec,
)
from repro.core.decomposition import Corner, ProblemSize

__all__ = [
    "lu_schedule",
    "lu",
    "LU_WG_US",
    "LU_WG_PRE_US",
    "LU_STENCIL_WG_US",
    "LU_DEFAULT_ITERATIONS",
    "LU_BOUNDARY_BYTES_PER_CELL",
]

#: Calibrated per-cell work rate for the triangular solves, microseconds.
LU_WG_US: float = 0.40

#: Calibrated per-cell pre-computation (performed before the receives).
LU_WG_PRE_US: float = 0.10

#: Calibrated per-cell cost of the inter-iteration stencil / RHS update.
LU_STENCIL_WG_US: float = 0.20

#: NAS LU class C performs 250 SSOR iterations; used as the default here.
LU_DEFAULT_ITERATIONS: int = 250

#: Five double-precision flow variables per boundary cell = 40 bytes
#: (Table 3: message size = 40 * Ny/m east-west, 40 * Nx/n north-south).
LU_BOUNDARY_BYTES_PER_CELL: int = 40


def lu_schedule() -> SweepSchedule:
    """The two-sweep schedule of one LU SSOR iteration.

    The lower-triangular sweep runs from ``(1,1)`` to ``(n,m)`` and must
    fully complete before the upper-triangular sweep starts back from
    ``(n,m)``; the iteration ends when the second sweep completes everywhere.
    Hence ``nfull = 2`` and ``ndiag = 0`` (Table 3).
    """
    return SweepSchedule.from_phases(
        [
            SweepPhase(origin=Corner.NORTH_WEST, fill=FillClass.FULL),
            SweepPhase(origin=Corner.SOUTH_EAST, fill=FillClass.FULL),
        ]
    )


def lu(
    problem: ProblemSize,
    *,
    iterations: int = LU_DEFAULT_ITERATIONS,
    time_steps: int = 1,
    wg_us: float = LU_WG_US,
    wg_pre_us: float = LU_WG_PRE_US,
    stencil_wg_us: float = LU_STENCIL_WG_US,
) -> WavefrontSpec:
    """Build the Table 3 parameterisation of an LU run.

    ``problem`` is typically one of the NAS classes (A: 64^3, B: 102^3,
    C: 162^3, D: 408^3); see :mod:`repro.apps.workloads`.
    """
    return WavefrontSpec(
        name="lu",
        problem=problem,
        wg_us=wg_us,
        wg_pre_us=wg_pre_us,
        htile=1.0,
        schedule=lu_schedule(),
        boundary_bytes_per_cell=LU_BOUNDARY_BYTES_PER_CELL,
        iterations=iterations,
        time_steps=time_steps,
        energy_groups=1,
        nonwavefront=StencilNonWavefront(wg_stencil_us=stencil_wg_us),
    )
