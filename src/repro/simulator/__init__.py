"""Discrete-event simulator of wavefront runs on an XT4-like machine.

This package is the reproduction's stand-in for the paper's measurements on
the ORNL Cray XT3/XT4 (see DESIGN.md, "What we cannot have"): it executes the
benchmarks' actual blocking-MPI control flow on a simulated cluster whose
message costs follow the measured XT4 protocol behaviour, and whose nodes
have shared buses that concurrent DMA transfers must queue for.

Main entry points:

* :func:`~repro.simulator.wavefront.simulate_wavefront` - run LU / Sweep3D /
  Chimaera (or a custom spec) and obtain the simulated per-iteration time;
* :func:`~repro.simulator.pingpong.ping_pong_sweep` - the Figure 3
  microbenchmark;
* :func:`~repro.simulator.pingpong.allreduce_benchmark` - the all-reduce cost
  used to check equation (9).
"""

from repro.simulator.engine import SimulationError, Simulator
from repro.simulator.machine import (
    Compute,
    MachineStats,
    Mark,
    RankStats,
    Recv,
    Send,
    SimulatedMachine,
    WaitBarrier,
    linear_node_assignment,
)
from repro.simulator.collectives import allreduce_ops, pairwise_exchange_ops
from repro.simulator.pingpong import (
    DEFAULT_MESSAGE_SIZES,
    PingPongSample,
    allreduce_benchmark,
    ping_pong,
    ping_pong_sweep,
)
from repro.simulator.fastpath import aggregation_unsupported_reason
from repro.simulator.resources import FifoBus, NodeResources
from repro.simulator.wavefront import (
    SIMULATOR_ENGINES,
    WavefrontSimulationResult,
    WavefrontSimulator,
    simulate_wavefront,
)

__all__ = [
    "SIMULATOR_ENGINES",
    "aggregation_unsupported_reason",
    "SimulationError",
    "Simulator",
    "Compute",
    "MachineStats",
    "Mark",
    "RankStats",
    "Recv",
    "Send",
    "SimulatedMachine",
    "WaitBarrier",
    "linear_node_assignment",
    "allreduce_ops",
    "pairwise_exchange_ops",
    "DEFAULT_MESSAGE_SIZES",
    "PingPongSample",
    "allreduce_benchmark",
    "ping_pong",
    "ping_pong_sweep",
    "FifoBus",
    "NodeResources",
    "WavefrontSimulationResult",
    "WavefrontSimulator",
    "simulate_wavefront",
]
