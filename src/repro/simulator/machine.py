"""Simulated message-passing machine.

This module is the heart of the discrete-event substrate: it models a
cluster of multi-core nodes whose cores run *rank programs* (Python
generators yielding :class:`Compute`, :class:`Send`, :class:`Recv`,
:class:`Mark` and :class:`WaitBarrier` operations) under blocking MPI
semantics, with message costs that follow the measured behaviour of the Cray
XT4's MPI (Section 3 of the paper):

* off-node messages of at most 1 KiB use the eager protocol
  (``o + M G + L + o`` end to end); larger messages perform a rendezvous
  handshake before the payload moves;
* on-chip messages use a memory copy below 1 KiB and a DMA transfer above;
* every DMA transfer (off-node injection/delivery and large on-chip copies)
  crosses the node's shared bus, a FIFO resource - the queueing delay that
  concurrent transfers experience is the mechanistic origin of the Table 6
  contention term.

The machine knows nothing about wavefronts; :mod:`repro.simulator.wavefront`
builds the per-rank programs for LU / Sweep3D / Chimaera and
:mod:`repro.simulator.pingpong` builds the microbenchmarks.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Deque, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.core.faults import FAULT_STREAM_STRIDE
from repro.core.loggp import Platform
from repro.simulator.engine import SimulationError, Simulator
from repro.simulator.resources import FifoBus, LinkResources, NodeResources

__all__ = [
    "Compute",
    "Send",
    "Recv",
    "Mark",
    "WaitBarrier",
    "RankProgram",
    "RankStats",
    "MachineStats",
    "SimulatedMachine",
    "linear_node_assignment",
]


# ---------------------------------------------------------------------------
# Rank program operations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Compute:
    """Busy the core for ``duration`` microseconds of computation."""

    duration: float
    label: str = "compute"


@dataclass(frozen=True)
class Send:
    """Blocking send of ``nbytes`` to rank ``dst`` with the given tag."""

    dst: int
    nbytes: float
    tag: int


@dataclass(frozen=True)
class Recv:
    """Blocking receive of the next message from ``src`` with the given tag."""

    src: int
    tag: int


@dataclass(frozen=True)
class Mark:
    """Record that this rank reached the named point (e.g. finished a sweep)."""

    key: Hashable


@dataclass(frozen=True)
class WaitBarrier:
    """Block until the named barrier has been released by the driver."""

    key: Hashable


Op = object
RankProgram = Iterator[Op]


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

@dataclass
class RankStats:
    """Per-rank accounting of where virtual time went."""

    compute_time: float = 0.0
    send_time: float = 0.0
    recv_time: float = 0.0
    barrier_time: float = 0.0
    messages_sent: int = 0
    bytes_sent: float = 0.0
    finish_time: float = 0.0
    fault_time: float = 0.0
    failures: int = 0
    checkpoints: int = 0

    @property
    def comm_time(self) -> float:
        return self.send_time + self.recv_time


@dataclass
class MachineStats:
    """Aggregate statistics for a completed simulation."""

    ranks: List[RankStats]
    makespan: float
    events: int
    bus_queue_delay: float
    bus_transfers: int
    link_queue_delay: float = 0.0
    link_transfers: int = 0

    @property
    def total_compute_time(self) -> float:
        return sum(r.compute_time for r in self.ranks)

    @property
    def total_comm_time(self) -> float:
        return sum(r.comm_time for r in self.ranks)

    @property
    def total_messages(self) -> int:
        return sum(r.messages_sent for r in self.ranks)

    @property
    def total_bytes(self) -> float:
        return sum(r.bytes_sent for r in self.ranks)


# ---------------------------------------------------------------------------
# Internal message bookkeeping
# ---------------------------------------------------------------------------

@dataclass
class _Delivered:
    """A message whose payload arrival time is already known."""

    data_ready: float
    recv_cost: float
    nbytes: float


@dataclass
class _PendingRendezvous:
    """A rendezvous send waiting for the matching receive to be posted."""

    sender: int
    send_init: float
    nbytes: float


@dataclass
class _PendingRecv:
    """A receive posted before any matching message was available."""

    receiver: int
    post_time: float


def linear_node_assignment(total_ranks: int, cores_per_node: int) -> List[int]:
    """Assign ranks to nodes in contiguous blocks of ``cores_per_node``."""
    if total_ranks < 1 or cores_per_node < 1:
        raise ValueError("total_ranks and cores_per_node must be positive")
    return [rank // cores_per_node for rank in range(total_ranks)]


class SimulatedMachine:
    """A cluster of multi-core nodes executing rank programs.

    Parameters
    ----------
    platform:
        LogGP platform description (communication constants, node shape).
    total_ranks:
        Number of MPI ranks (cores running the application).
    rank_to_node:
        Node index of each rank.  Ranks on the same node communicate on-chip
        and share that node's bus(es).  Defaults to contiguous blocks of
        ``platform.node.cores_per_node`` ranks per node.  The platform's
        :class:`~repro.core.hetero.SpeedProfile` (when present) is resolved
        against these indices: ranks on slow nodes run their ``Compute``
        operations proportionally longer.
    rank_to_chip:
        Chip index of each rank on hierarchical platforms.  Ranks on the
        same node but different chips exchange messages over the platform's
        ``intra_node`` link; defaults to one chip per node (every same-node
        message is on-chip, the legacy behaviour).
    enable_contention:
        When False the shared-bus queueing is skipped, giving the
        contention-free timings of Table 1 exactly (useful for unit tests and
        for quantifying the contention effect).
    link_contention:
        When True, off-node (and intra-node) payload transfers additionally
        queue on a per-directed-link FIFO (:class:`LinkResources`), so
        overlapping messages between the same node pair serialise instead of
        the paper's contention-free network.  Off by default - the paper's
        model, and the conformance baseline, assume a contention-free
        interconnect.
    fault_seed:
        Seed of the per-rank failure streams when the platform carries a
        non-null :class:`~repro.core.faults.FaultModel`.  Rank ``r`` draws
        its exponential inter-failure times from
        ``Random(fault_seed * FAULT_STREAM_STRIDE + r)`` - a different
        stride from the noise streams, so fault schedules never depend on
        noise seeds.
    """

    def __init__(
        self,
        platform: Platform,
        total_ranks: int,
        rank_to_node: Optional[List[int]] = None,
        *,
        rank_to_chip: Optional[List[int]] = None,
        enable_contention: bool = True,
        link_contention: bool = False,
        fault_seed: int = 0,
    ) -> None:
        if total_ranks < 1:
            raise ValueError("total_ranks must be positive")
        self.platform = platform
        self.total_ranks = total_ranks
        if rank_to_node is None:
            rank_to_node = linear_node_assignment(
                total_ranks, platform.node.cores_per_node
            )
        if len(rank_to_node) != total_ranks:
            raise ValueError("rank_to_node must have one entry per rank")
        self.rank_to_node = list(rank_to_node)
        if rank_to_chip is None:
            rank_to_chip = list(self.rank_to_node)
        if len(rank_to_chip) != total_ranks:
            raise ValueError("rank_to_chip must have one entry per rank")
        self.rank_to_chip = list(rank_to_chip)
        self._work_scale = [
            platform.node_speed_multiplier(node) for node in self.rank_to_node
        ]
        self.enable_contention = enable_contention
        self.link_contention = link_contention
        self._links: Optional[LinkResources] = (
            LinkResources() if link_contention else None
        )
        # Time-varying slowdown windows sample the profile at each compute
        # operation's start time; None when no window can change anything,
        # so the homogeneous fast path stays untouched bit for bit.
        profile = platform.speed_profile
        self._window_profile = (
            profile if profile is not None and profile.has_windows else None
        )
        # Fault state: per-rank seeded failure streams plus work-since-last-
        # checkpoint accounting.  None when the model is absent or null so
        # the fault-free path never constructs an RNG or touches a float.
        faults = platform.faults
        self.faults = faults if faults is not None and not faults.is_null else None
        self._work_since_checkpoint = [0.0] * total_ranks
        self._fault_rngs: List[Random] = []
        self._next_failure: List[float] = []
        if self.faults is not None and self.faults.fails:
            self._fault_rngs = [
                Random(fault_seed * FAULT_STREAM_STRIDE + rank)
                for rank in range(total_ranks)
            ]
            rate = 1.0 / self.faults.mtbf_us
            self._next_failure = [
                rng.expovariate(rate) for rng in self._fault_rngs
            ]
        self.sim = Simulator()

        # Build per-node shared resources and per-rank core indices.
        self._nodes: Dict[int, NodeResources] = {}
        self._core_index: List[int] = [0] * total_ranks
        counts: Dict[int, int] = defaultdict(int)
        for rank, node in enumerate(self.rank_to_node):
            self._core_index[rank] = counts[node]
            counts[node] += 1
        for node, count in counts.items():
            cores = max(count, 1)
            buses = platform.node.buses_per_node
            # A node cannot have more bus groups than cores actually placed on it.
            buses = min(buses, cores)
            while cores % buses != 0:
                buses -= 1
            self._nodes[node] = NodeResources(cores_per_node=cores, buses_per_node=buses)

        self._programs: Dict[int, RankProgram] = {}
        self._start_times: Dict[int, float] = {}
        self._done: Dict[int, bool] = {}
        self.stats = [RankStats() for _ in range(total_ranks)]

        self._mailbox: Dict[Tuple[int, int, int], Deque[_Delivered]] = defaultdict(deque)
        self._pending_sends: Dict[Tuple[int, int, int], Deque[_PendingRendezvous]] = defaultdict(deque)
        self._pending_recvs: Dict[Tuple[int, int, int], Deque[_PendingRecv]] = defaultdict(deque)
        self._recv_blocked_since: Dict[int, float] = {}
        self._send_blocked_since: Dict[int, float] = {}

        self._barriers_released: Dict[Hashable, bool] = {}
        self._barrier_waiters: Dict[Hashable, List[Tuple[int, float]]] = defaultdict(list)
        self._marks: Dict[Hashable, int] = defaultdict(int)
        self._mark_callbacks: Dict[Hashable, List[Callable[[float], None]]] = defaultdict(list)

    # -- topology helpers -----------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return self.rank_to_node[rank]

    def same_node(self, a: int, b: int) -> bool:
        return self.rank_to_node[a] == self.rank_to_node[b]

    def same_chip(self, a: int, b: int) -> bool:
        return self.rank_to_chip[a] == self.rank_to_chip[b]

    def _link_params(self, a: int, b: int):
        """Off-node-protocol LogGP parameters for a non-on-chip hop.

        Hierarchical platforms route same-node chip-to-chip messages over
        the ``intra_node`` link; everything else uses the machine
        interconnect.
        """
        if (
            self.platform.intra_node is not None
            and self.same_node(a, b)
            and not self.same_chip(a, b)
        ):
            return self.platform.intra_node
        return self.platform.off_node

    def bus_of(self, rank: int) -> FifoBus:
        node = self._nodes[self.rank_to_node[rank]]
        return node.bus_for_core(self._core_index[rank])

    # -- program / barrier / mark API -------------------------------------------------

    def add_rank_program(
        self, rank: int, program: RankProgram, *, start_time: float = 0.0
    ) -> None:
        """Register the program generator that rank ``rank`` will execute.

        ``start_time`` delays the rank's first operation to the given virtual
        time; the aggregated wavefront fast path uses it to hand per-rank
        sweep-completion times over to an event-driven non-wavefront phase.
        """
        if not 0 <= rank < self.total_ranks:
            raise ValueError(f"rank {rank} out of range")
        if rank in self._programs:
            raise ValueError(f"rank {rank} already has a program")
        if start_time < 0.0:
            raise ValueError("start_time must be non-negative")
        self._programs[rank] = program
        self._done[rank] = False
        self._start_times[rank] = start_time

    def define_barrier(self, key: Hashable) -> None:
        """Declare a barrier that ranks may wait on (initially closed)."""
        self._barriers_released.setdefault(key, False)

    def release_barrier(self, key: Hashable) -> None:
        """Open a barrier, resuming every rank blocked on it."""
        self._barriers_released[key] = True
        waiters = self._barrier_waiters.pop(key, [])
        for rank, blocked_since in waiters:
            self.stats[rank].barrier_time += self.sim.now - blocked_since
            self._schedule_advance(rank, self.sim.now)

    def on_mark(self, key: Hashable, count: int, callback: Callable[[float], None]) -> None:
        """Invoke ``callback(time)`` once ``count`` ranks have marked ``key``."""

        def check(_time: float) -> None:
            if self._marks[key] >= count:
                callback(self.sim.now)

        self._mark_callbacks[key].append(check)
        # The count may already have been reached before registration.
        check(self.sim.now)

    def mark_count(self, key: Hashable) -> int:
        return self._marks[key]

    # -- execution --------------------------------------------------------------------

    def run(self, *, max_events: Optional[int] = None) -> MachineStats:
        """Execute every registered rank program to completion."""
        for rank in self._programs:
            self._schedule_advance(rank, self._start_times.get(rank, 0.0))
        self.sim.run(max_events=max_events)
        unfinished = [rank for rank, done in self._done.items() if not done]
        if unfinished:
            raise SimulationError(
                f"simulation deadlocked: ranks {unfinished[:8]} did not finish "
                f"(t={self.sim.now}, {self.sim.events_processed} events)"
            )
        makespan = max((s.finish_time for s in self.stats), default=self.sim.now)
        return MachineStats(
            ranks=self.stats,
            makespan=makespan,
            events=self.sim.events_processed,
            bus_queue_delay=sum(n.total_queue_delay for n in self._nodes.values()),
            bus_transfers=sum(n.total_transfers for n in self._nodes.values()),
            link_queue_delay=(
                self._links.total_queue_delay if self._links is not None else 0.0
            ),
            link_transfers=(
                self._links.total_transfers if self._links is not None else 0
            ),
        )

    def _schedule_advance(self, rank: int, time: float) -> None:
        self.sim.schedule_at(time, lambda: self._advance(rank))

    def _advance(self, rank: int) -> None:
        """Drive ``rank``'s program until it blocks or finishes."""
        program = self._programs[rank]
        while True:
            try:
                op = next(program)
            except StopIteration:
                self._done[rank] = True
                self.stats[rank].finish_time = self.sim.now
                return
            resume = self._handle(rank, op)
            if resume is None:
                return  # blocked; an external event will reschedule us
            if resume > self.sim.now + 1e-12:
                self._schedule_advance(rank, resume)
                return
            # Operation completed instantaneously (or in the past); continue.

    # -- operation handlers -------------------------------------------------------------

    def _handle(self, rank: int, op: Op) -> Optional[float]:
        if isinstance(op, Compute):
            if op.duration < 0:
                raise SimulationError("negative compute duration")
            duration = self.platform.scaled_work(op.duration)
            scale = self._work_scale[rank]
            if scale != 1.0:  # repro: noqa[RPR004] homogeneous ranks carry exactly 1.0; multiply only when heterogeneity is configured
                duration *= scale
            if self._window_profile is not None:
                factor = self._window_profile.window_factor(
                    self.rank_to_node[rank], self.sim.now
                )
                if factor != 1.0:  # repro: noqa[RPR004] outside every window the factor is exactly 1.0 (bit-for-bit identity)
                    duration *= factor
            if self.faults is None:
                self.stats[rank].compute_time += duration
                return self.sim.now + duration
            end = self._faulted_compute(rank, self.sim.now, duration)
            self.stats[rank].compute_time += end - self.sim.now
            self.stats[rank].fault_time += (end - self.sim.now) - duration
            return end
        if isinstance(op, Send):
            return self._handle_send(rank, op)
        if isinstance(op, Recv):
            return self._handle_recv(rank, op)
        if isinstance(op, Mark):
            self._marks[op.key] += 1
            for callback in self._mark_callbacks.get(op.key, []):
                callback(self.sim.now)
            return self.sim.now
        if isinstance(op, WaitBarrier):
            if self._barriers_released.get(op.key, False):
                return self.sim.now
            self._barrier_waiters[op.key].append((rank, self.sim.now))
            return None
        raise SimulationError(f"unknown operation {op!r}")

    # -- fault path --------------------------------------------------------------------

    def _faulted_compute(self, rank: int, start: float, duration: float) -> float:
        """Wall-clock end of ``duration`` µs of work starting at ``start``.

        Replays the rank's compute timeline through the platform's
        :class:`~repro.core.faults.FaultModel`: every
        ``checkpoint_interval_us`` of accumulated work pays one
        ``checkpoint_cost_us`` dump, and when the rank's seeded failure
        stream strikes, the rank pays ``repair_us + restart_us`` of
        downtime and *redoes* everything computed since the last
        checkpoint.  A failure whose timestamp passed while the rank was
        communicating or idle still costs the downtime and the rework at
        the next compute operation (the node lost its state either way).
        """
        fm = self.faults
        interval = fm.checkpoint_interval_us
        checkpointing = interval != math.inf
        fails = bool(self._fault_rngs)
        now = start
        remaining = duration
        work = self._work_since_checkpoint[rank]
        stats = self.stats[rank]
        while remaining > 0.0:
            step = min(remaining, interval - work) if checkpointing else remaining
            if fails and self._next_failure[rank] < now + step:
                failure = self._next_failure[rank]
                # The step's progress up to the failure cancels against its
                # own rework; on top of that, work from *earlier* operations
                # since the last checkpoint is lost and must be redone.
                remaining += work
                now = max(now, failure) + fm.repair_us + fm.restart_us
                work = 0.0
                stats.failures += 1
                self._next_failure[rank] = now + self._fault_rngs[rank].expovariate(
                    1.0 / fm.mtbf_us
                )
                continue
            now += step
            remaining -= step
            work += step
            if checkpointing and work >= interval:
                now += fm.checkpoint_cost_us
                work = 0.0
                stats.checkpoints += 1
        self._work_since_checkpoint[rank] = work
        return now

    # -- send path ---------------------------------------------------------------------

    def _dma_duration(self, nbytes: float) -> float:
        on_chip = self.platform.on_chip
        if on_chip is None:
            return 0.0
        return on_chip.dma_setup + nbytes * on_chip.gap_per_byte_dma

    def _bus_delay(self, rank: int, request_time: float, nbytes: float) -> float:
        """Queueing delay for a DMA crossing ``rank``'s node bus."""
        if not self.enable_contention or self.platform.on_chip is None:
            return 0.0
        node = self._nodes[self.rank_to_node[rank]]
        if node.cores_per_bus <= 1:
            return 0.0
        return self.bus_of(rank).queueing_delay(request_time, self._dma_duration(nbytes))

    def _link_delay(
        self, src: int, dst: int, request_time: float, duration: float
    ) -> float:
        """FIFO queueing delay on the directed link between two nodes.

        Exactly 0.0 when link contention is disabled (the contention-free
        LogGP network of the paper); same-node chip-to-chip messages share
        the node's ``(n, n)`` intra-node link.
        """
        if self._links is None:
            return 0.0
        return self._links.queueing_delay(
            self.rank_to_node[src], self.rank_to_node[dst], request_time, duration
        )

    def _handle_send(self, rank: int, op: Send) -> Optional[float]:
        if not 0 <= op.dst < self.total_ranks:
            raise SimulationError(f"send to unknown rank {op.dst}")
        if op.nbytes < 0:
            raise SimulationError("negative message size")
        self.stats[rank].messages_sent += 1
        self.stats[rank].bytes_sent += op.nbytes
        now = self.sim.now
        on_chip = self.same_node(rank, op.dst) and (
            self.platform.intra_node is None or self.same_chip(rank, op.dst)
        )
        key = (op.dst, rank, op.tag)

        if on_chip and self.platform.on_chip is not None:
            params = self.platform.on_chip
            if op.nbytes <= params.eager_limit:
                sender_resume = now + params.copy_overhead
                data_ready = sender_resume + op.nbytes * params.gap_per_byte_copy
            else:
                setup_done = now + params.overhead
                delay = self._bus_delay(rank, setup_done, op.nbytes)
                sender_resume = setup_done
                data_ready = setup_done + delay + op.nbytes * params.gap_per_byte_dma
            self._deliver(key, _Delivered(data_ready, params.copy_overhead, op.nbytes))
            self.stats[rank].send_time += sender_resume - now
            return sender_resume

        params_off = self._link_params(rank, op.dst)
        if op.nbytes <= params_off.eager_limit:
            sender_resume = now + params_off.overhead
            base_ready = (
                sender_resume + op.nbytes * params_off.gap_per_byte + params_off.latency
            )
            delay_src = self._bus_delay(rank, sender_resume, op.nbytes)
            delay_link = self._link_delay(
                rank, op.dst, sender_resume + delay_src,
                op.nbytes * params_off.gap_per_byte,
            )
            delay_dst = self._bus_delay(
                op.dst, base_ready + delay_src + delay_link, op.nbytes
            )
            data_ready = base_ready + delay_src + delay_link + delay_dst
            self._deliver(key, _Delivered(data_ready, params_off.overhead, op.nbytes))
            self.stats[rank].send_time += sender_resume - now
            return sender_resume

        # Rendezvous: the sender blocks until the receiver has posted the
        # matching receive and the handshake completes.
        pending_recv_queue = self._pending_recvs.get(key)
        if pending_recv_queue:
            pending = pending_recv_queue.popleft()
            return self._complete_rendezvous(
                rank, op.dst, op.tag, op.nbytes, send_init=now, recv_post=pending.post_time,
                resume_receiver=True,
            )
        self._pending_sends[key].append(_PendingRendezvous(rank, now, op.nbytes))
        self._send_blocked_since[rank] = now
        return None

    def _complete_rendezvous(
        self,
        sender: int,
        receiver: int,
        tag: int,
        nbytes: float,
        *,
        send_init: float,
        recv_post: float,
        resume_receiver: bool,
    ) -> float:
        """Finish the timing of a rendezvous transfer.

        Returns the sender's resume time.  When ``resume_receiver`` is True
        the receiver is blocked in its ``Recv`` and is scheduled to resume
        when the payload lands; otherwise the payload is placed in the
        mailbox for a future ``Recv``.
        """
        params = self._link_params(sender, receiver)
        # Request-to-send reaches the receiver; the reply returns once the
        # receive has been posted (h = 2 (L + oh) when it already has been).
        request_arrives = send_init + params.overhead + params.latency
        reply_sent = max(request_arrives, recv_post) + params.handshake_overhead
        reply_arrives = reply_sent + params.latency + params.handshake_overhead
        sender_resume = reply_arrives
        transfer_start = reply_arrives + params.overhead
        base_ready = transfer_start + nbytes * params.gap_per_byte + params.latency
        delay_src = self._bus_delay(sender, transfer_start, nbytes)
        delay_link = self._link_delay(
            sender, receiver, transfer_start + delay_src,
            nbytes * params.gap_per_byte,
        )
        delay_dst = self._bus_delay(
            receiver, base_ready + delay_src + delay_link, nbytes
        )
        data_ready = base_ready + delay_src + delay_link + delay_dst

        blocked_since = self._send_blocked_since.pop(sender, send_init)
        self.stats[sender].send_time += sender_resume - blocked_since

        recv_done = data_ready + params.overhead
        if resume_receiver:
            blocked = self._recv_blocked_since.pop(receiver, recv_post)
            self.stats[receiver].recv_time += recv_done - blocked
            self._schedule_advance(receiver, recv_done)
        else:
            key = (receiver, sender, tag)
            self._deliver(key, _Delivered(data_ready, params.overhead, nbytes))
        return sender_resume

    def _deliver(self, key: Tuple[int, int, int], message: _Delivered) -> None:
        """Place a message in the destination mailbox, waking a blocked receiver."""
        receiver = key[0]
        pending = self._pending_recvs.get(key)
        if pending:
            record = pending.popleft()
            resume = max(self.sim.now, message.data_ready) + message.recv_cost
            blocked = self._recv_blocked_since.pop(receiver, record.post_time)
            self.stats[receiver].recv_time += resume - blocked
            self._schedule_advance(receiver, resume)
            return
        self._mailbox[key].append(message)

    # -- receive path --------------------------------------------------------------------

    def _handle_recv(self, rank: int, op: Recv) -> Optional[float]:
        if not 0 <= op.src < self.total_ranks:
            raise SimulationError(f"receive from unknown rank {op.src}")
        now = self.sim.now
        key = (rank, op.src, op.tag)

        queue = self._mailbox.get(key)
        if queue:
            message = queue.popleft()
            resume = max(now, message.data_ready) + message.recv_cost
            self.stats[rank].recv_time += resume - now
            return resume

        pending_send_queue = self._pending_sends.get(key)
        if pending_send_queue:
            pending = pending_send_queue.popleft()
            self._recv_blocked_since[rank] = now
            sender_resume = self._complete_rendezvous(
                pending.sender, rank, op.tag, pending.nbytes,
                send_init=pending.send_init, recv_post=now, resume_receiver=True,
            )
            self._schedule_advance(pending.sender, sender_resume)
            return None

        self._pending_recvs[key].append(_PendingRecv(rank, now))
        self._recv_blocked_since[rank] = now
        return None
