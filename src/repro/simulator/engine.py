"""Discrete-event simulation kernel.

A minimal, dependency-free event engine: events are ``(time, sequence,
callback)`` triples kept in a binary heap; ties in time are broken by
insertion order so that simulations are fully deterministic.  The engine
knows nothing about MPI or wavefronts - those live in
:mod:`repro.simulator.machine` and :mod:`repro.simulator.wavefront` - it only
advances virtual time and runs callbacks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when a simulation reaches an inconsistent state (e.g. deadlock)."""


@dataclass
class Simulator:
    """The event loop.

    Attributes
    ----------
    now:
        Current virtual time in microseconds.  Only ever moves forward.
    """

    now: float = 0.0
    _queue: List[Tuple[float, int, Callable[[], None]]] = field(default_factory=list)
    _sequence: int = 0
    _events_processed: int = 0

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute virtual time ``time``."""
        if time < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self.now}"
            )
        heapq.heappush(self._queue, (max(time, self.now), self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.schedule_at(self.now + delay, callback)

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Process the next event.  Returns ``False`` when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self.now = time
        self._events_processed += 1
        callback()
        return True

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event queue drains (or a limit is hit).

        ``until`` stops the simulation once virtual time would exceed the
        given value; ``max_events`` bounds the number of processed events
        (a guard against accidental infinite event loops).  Returns the final
        virtual time.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"event limit of {max_events} exceeded at t={self.now}"
                )
            self.step()
            processed += 1
        return self.now
