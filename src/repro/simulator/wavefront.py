"""Discrete-event simulation of a full wavefront application run.

This module translates a :class:`~repro.apps.base.WavefrontSpec` into one
rank program per core and executes it on the
:class:`~repro.simulator.machine.SimulatedMachine`.  Each rank follows the
benchmark's actual control flow (Figure 4 of the paper):

.. code-block:: none

    for each sweep in the iteration's schedule:
        for each tile in the stack:
            pre-compute            (LU only)
            receive from upstream-x; receive from upstream-y
            compute the tile
            send to downstream-x;   send to downstream-y
    all-reduce(s) or stencil update between iterations

with blocking MPI semantics, the eager/rendezvous protocol switch, and
shared-bus contention all supplied by the machine model.  The simulated
per-iteration time is the "measured" quantity against which the analytic
plug-and-play model is validated (the role the Cray XT4 plays in the paper).

Sweep precedence: a sweep whose predecessor has ``FillClass.FULL`` may not
start anywhere until the predecessor has completed on every rank (a
data-dependency barrier with no cost of its own); ``DIAG`` and ``NONE``
hand-offs are enforced naturally by each rank processing its sweeps in
program order, because the successor sweep originates at the corner where
the gating completion happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.apps.base import (
    AllReduceNonWavefront,
    FillClass,
    NoNonWavefront,
    StencilNonWavefront,
    WavefrontSpec,
)
from repro.core.decomposition import CoreMapping, Corner, ProcessorGrid, decompose
from repro.core.hetero import NoiseModel, SampledNoise, chip_index_of, node_index_of
from repro.core.loggp import Platform
from repro.core.multicore import resolve_core_mapping
from repro.simulator.collectives import allreduce_ops, allreduce_tag_span
from repro.simulator.fastpath import aggregation_unsupported_reason, run_aggregated
from repro.simulator.machine import (
    Compute,
    MachineStats,
    Mark,
    Op,
    Recv,
    Send,
    SimulatedMachine,
    WaitBarrier,
)

__all__ = [
    "SIMULATOR_ENGINES",
    "WavefrontSimulationResult",
    "WavefrontSimulator",
    "simulate_wavefront",
]

#: Valid ``engine`` arguments of :class:`WavefrontSimulator` /
#: :func:`simulate_wavefront`: ``"auto"`` uses the diagonal-aggregated fast
#: path whenever it is exact for the configuration (see
#: :mod:`repro.simulator.fastpath`) and the per-rank event engine otherwise;
#: ``"event"`` forces the event engine; ``"aggregated"`` forces the fast path
#: (raising ``ValueError`` when the configuration is unsupported).
SIMULATOR_ENGINES: Tuple[str, ...] = ("auto", "event", "aggregated")

#: Tag space reserved for boundary-exchange messages per (iteration, sweep).
_SWEEP_TAG_STRIDE = 4
#: Base of the tag space used by the non-wavefront phase of each iteration.
_NONWAVEFRONT_TAG_BASE = 1_000_000


@dataclass(frozen=True)
class WavefrontSimulationResult:
    """Outputs of a simulated wavefront run."""

    spec_name: str
    platform_name: str
    grid: ProcessorGrid
    core_mapping: CoreMapping
    iterations: int
    makespan_us: float
    sweep_completion_us: Tuple[float, ...]
    stats: MachineStats

    @property
    def time_per_iteration_us(self) -> float:
        return self.makespan_us / self.iterations

    @property
    def total_processors(self) -> int:
        return self.grid.total_processors


def _corner_directions(grid: ProcessorGrid, origin: Corner) -> Tuple[int, int, int, int]:
    """Return ``(oi, oj, dx, dy)``: origin coordinates and sweep direction."""
    return grid.sweep_directions(origin)


class WavefrontSimulator:
    """Builds and runs the simulation of a wavefront application.

    Parameters
    ----------
    spec, platform:
        The application and machine to simulate.
    grid / total_cores:
        Logical processor array (exactly one must be provided).
    core_mapping:
        ``Cx x Cy`` rectangle of cores per node; defaults to the paper's
        mapping for the platform's ``cores_per_node``.
    iterations:
        Number of iterations to simulate (1 is enough for per-iteration
        validation; more iterations exercise the inter-iteration phases).
    simulate_nonwavefront:
        Include the all-reduce / stencil phase between iterations.
    enable_contention:
        Toggle the shared-bus queueing (Table 6's effect).
    compute_noise:
        Amplitude of multiplicative compute-time jitter: each tile's work is
        scaled by a factor drawn uniformly from ``[1, 1 + compute_noise]``
        (per rank, per tile, deterministic given ``noise_seed``).  Models OS
        noise / work imbalance and lets robustness of the model's predictions
        be studied; zero (the default) reproduces the paper's noise-free
        setting.  Equivalent to (and taking precedence over)
        ``noise_model=SampledNoise(compute_noise)``.
    noise_model:
        A :class:`~repro.core.hetero.NoiseModel` stretching each tile's
        compute time; overrides the platform's ``noise`` field.  The
        effective model resolves as ``compute_noise`` (legacy) >
        ``noise_model`` > ``platform.noise`` > quiet.
    noise_seed:
        Seed for the jitter stream.  All noise is drawn from per-rank
        :class:`random.Random` instances derived from this seed (see
        :meth:`rank_jitter_stream`); no module-level random state is
        consulted, so two runs with the same seed are bit-identical.
    fault_seed:
        Seed for the per-rank failure streams consumed when the platform
        carries a non-null :class:`~repro.core.faults.FaultModel`.
        Derived with a different stride than the noise streams, so fault
        schedules are independent of ``noise_seed`` (and vice versa).
    link_contention:
        Queue overlapping off-node payloads on per-directed-link FIFOs
        instead of the paper's contention-free network (see
        :class:`~repro.simulator.resources.LinkResources`).  Forces the
        event engine.
    engine:
        Execution engine: ``"auto"`` (default) selects the
        diagonal-aggregated fast path for noise-free homogeneous runs and
        the per-rank event engine otherwise; ``"event"`` / ``"aggregated"``
        force one engine (see :data:`SIMULATOR_ENGINES`).
    """

    def __init__(
        self,
        spec: WavefrontSpec,
        platform: Platform,
        *,
        grid: Optional[ProcessorGrid] = None,
        total_cores: Optional[int] = None,
        core_mapping: Optional[CoreMapping] = None,
        iterations: int = 1,
        simulate_nonwavefront: bool = True,
        enable_contention: bool = True,
        compute_noise: float = 0.0,
        noise_model: Optional[NoiseModel] = None,
        noise_seed: int = 0,
        fault_seed: int = 0,
        link_contention: bool = False,
        engine: str = "auto",
    ) -> None:
        if (grid is None) == (total_cores is None):
            raise ValueError("specify exactly one of grid or total_cores")
        if grid is None:
            assert total_cores is not None
            grid = decompose(total_cores)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if compute_noise < 0:
            raise ValueError("compute_noise must be non-negative")
        if engine not in SIMULATOR_ENGINES:
            raise ValueError(f"engine must be one of {SIMULATOR_ENGINES}, got {engine!r}")
        self.engine = engine
        self.spec = spec
        self.platform = platform
        self.grid = grid
        self.core_mapping = resolve_core_mapping(platform, core_mapping)
        self.iterations = iterations
        self.simulate_nonwavefront = simulate_nonwavefront
        self.enable_contention = enable_contention
        self.compute_noise = compute_noise
        self.noise_seed = noise_seed
        self.fault_seed = fault_seed
        self.link_contention = link_contention
        # Effective background-noise model: legacy compute_noise > explicit
        # noise_model > the platform's own noise field > quiet.  A null
        # model is normalised to None so the engine choice and the jitter
        # streams see "no noise" exactly as before.
        if compute_noise > 0.0:
            effective: Optional[NoiseModel] = SampledNoise(compute_noise)
        elif noise_model is not None:
            effective = noise_model
        else:
            effective = platform.noise
        if effective is not None and effective.is_null:
            effective = None
        self.noise_model = effective

        self._tiles = max(1, int(round(spec.tiles_per_stack())))
        self._w = spec.work_per_tile(grid, platform) / platform.compute_scale
        self._wpre = spec.pre_work_per_tile(grid, platform) / platform.compute_scale
        self._ew_bytes = spec.message_size_ew(grid)
        self._ns_bytes = spec.message_size_ns(grid)

    # -- rank/node mapping -------------------------------------------------------------

    def rank_to_node(self) -> List[int]:
        """Node index of every rank, from the ``Cx x Cy`` core rectangles.

        Delegates to :func:`repro.core.hetero.node_index_of` - the single
        definition of node numbering, shared with the analytic model's
        speed-profile resolution so a straggler index means the same
        physical node to both engines.
        """
        grid, mapping = self.grid, self.core_mapping
        return [
            node_index_of(grid, mapping, *grid.position_of(rank))
            for rank in range(grid.total_processors)
        ]

    def rank_to_chip(self) -> List[int]:
        """Chip index of every rank, from the chip sub-rectangles.

        On non-hierarchical platforms the chip rectangle equals the node
        rectangle, so this coincides with :meth:`rank_to_node` and every
        same-node message stays on-chip.
        """
        grid, mapping = self.grid, self.core_mapping
        return [
            chip_index_of(grid, mapping, *grid.position_of(rank))
            for rank in range(grid.total_processors)
        ]

    # -- noise -------------------------------------------------------------------------

    def rank_jitter_stream(self, rank: int) -> Optional[Random]:
        """The injected jitter stream for ``rank`` (None when not needed).

        Each rank owns an independent :class:`random.Random` seeded from
        ``(noise_seed, rank)``, so runs are reproducible bit-for-bit for a
        given seed regardless of rank interleaving, other simulations in the
        process, or the global :mod:`random` state.  Deterministic noise
        models (and quiet runs) need no stream and get ``None``.
        """
        if self.noise_model is None or not self.noise_model.is_stochastic:
            return None
        return Random(self.noise_seed * 1_000_003 + rank)

    # -- program construction ----------------------------------------------------------

    def _sweep_tag(self, iteration: int, sweep: int, direction: int) -> int:
        return (iteration * self.spec.nsweeps + sweep) * _SWEEP_TAG_STRIDE + direction

    def _rank_program(self, rank: int) -> Iterator[Op]:
        grid = self.grid
        spec = self.spec
        i, j = grid.position_of(rank)
        phases = spec.schedule.phases
        jitter = self.rank_jitter_stream(rank)
        noise = self.noise_model

        def work(amount: float) -> float:
            if noise is None:
                return amount
            return amount * noise.factor(jitter)

        for iteration in range(self.iterations):
            for sweep_index, phase in enumerate(phases):
                if sweep_index > 0 and phases[sweep_index - 1].fill is FillClass.FULL:
                    yield WaitBarrier(("sweep", iteration, sweep_index - 1))
                oi, oj, dx, dy = _corner_directions(grid, phase.origin)
                opposite_i = grid.n + 1 - oi
                opposite_j = grid.m + 1 - oj
                has_up_x = i != oi
                has_up_y = j != oj
                has_down_x = i != opposite_i
                has_down_y = j != opposite_j
                up_x = grid.rank_of(i - dx, j) if has_up_x else -1
                up_y = grid.rank_of(i, j - dy) if has_up_y else -1
                down_x = grid.rank_of(i + dx, j) if has_down_x else -1
                down_y = grid.rank_of(i, j + dy) if has_down_y else -1
                tag_x = self._sweep_tag(iteration, sweep_index, 0)
                tag_y = self._sweep_tag(iteration, sweep_index, 1)

                for _tile in range(self._tiles):
                    if self._wpre > 0.0:
                        yield Compute(work(self._wpre), label="pre")
                    if has_up_x:
                        yield Recv(src=up_x, tag=tag_x)
                    if has_up_y:
                        yield Recv(src=up_y, tag=tag_y)
                    yield Compute(work(self._w), label="tile")
                    if has_down_x:
                        yield Send(dst=down_x, nbytes=self._ew_bytes, tag=tag_x)
                    if has_down_y:
                        yield Send(dst=down_y, nbytes=self._ns_bytes, tag=tag_y)
                yield Mark(("sweep", iteration, sweep_index))

            if self.simulate_nonwavefront:
                yield from self._nonwavefront_ops(rank, i, j, iteration, work=work)
            yield Mark(("iteration", iteration))

    def _nonwavefront_ops(
        self, rank: int, i: int, j: int, iteration: int, work=None
    ) -> Iterator[Op]:
        """Non-wavefront phase ops; ``work`` applies the caller's noise.

        The rank program passes its per-rank noise closure so background
        noise stretches the stencil / custom compute exactly like tile
        compute (matching the analytic model's mean-inflation treatment);
        the aggregated engine's hybrid phase passes nothing - it only runs
        on noise-free configurations.
        """
        if work is None:
            def work(amount: float) -> float:
                return amount
        spec = self.spec
        grid = self.grid
        total = grid.total_processors
        tag_base = _NONWAVEFRONT_TAG_BASE + iteration * 10_000
        strategy = spec.nonwavefront
        if isinstance(strategy, NoNonWavefront):
            return
        if isinstance(strategy, AllReduceNonWavefront):
            span = allreduce_tag_span(total)
            for index in range(strategy.count):
                yield from allreduce_ops(
                    rank, total, strategy.payload_bytes, tag_base + index * span
                )
            return
        if isinstance(strategy, StencilNonWavefront):
            sub_x, sub_y, sub_z = spec.problem.subdomain(grid)
            amount = strategy.wg_stencil_us * sub_x * sub_y * sub_z
            yield Compute(work(amount), label="stencil")
            yield from self._halo_exchange_ops(rank, i, j, tag_base)
            if strategy.include_allreduce:
                yield from allreduce_ops(rank, total, 8, tag_base + 100)
            return
        # Custom strategies: represent their cost as pure computation of the
        # modelled duration so the simulation still covers them.
        yield Compute(
            work(strategy.evaluate(self.platform, spec, grid)), label="nonwavefront"
        )

    def _halo_exchange_ops(self, rank: int, i: int, j: int, tag_base: int) -> Iterator[Op]:
        """A four-neighbour halo swap, deadlock-free via red/black ordering."""
        grid = self.grid
        neighbours: List[Tuple[int, float, int]] = []
        if i > 1:
            neighbours.append((grid.rank_of(i - 1, j), self._ew_bytes, tag_base + 1))
        if i < grid.n:
            neighbours.append((grid.rank_of(i + 1, j), self._ew_bytes, tag_base + 1))
        if j > 1:
            neighbours.append((grid.rank_of(i, j - 1), self._ns_bytes, tag_base + 2))
        if j < grid.m:
            neighbours.append((grid.rank_of(i, j + 1), self._ns_bytes, tag_base + 2))
        red = (i + j) % 2 == 0
        if red:
            for dst, nbytes, tag in neighbours:
                yield Send(dst=dst, nbytes=nbytes, tag=tag)
            for src, _nbytes, tag in neighbours:
                yield Recv(src=src, tag=tag)
        else:
            for src, _nbytes, tag in neighbours:
                yield Recv(src=src, tag=tag)
            for dst, nbytes, tag in neighbours:
                yield Send(dst=dst, nbytes=nbytes, tag=tag)

    # -- execution ----------------------------------------------------------------------

    def aggregation_unsupported_reason(self) -> Optional[str]:
        """Why the aggregated engine cannot run this configuration (None = it can)."""
        return aggregation_unsupported_reason(self)

    def run(self, *, max_events: Optional[int] = None) -> WavefrontSimulationResult:
        """Run the configured engine and collect results.

        With ``engine="auto"`` the diagonal-aggregated fast path (exact for
        noise-free homogeneous configurations, and orders of magnitude faster
        at scale) is used whenever it applies; otherwise the per-rank event
        engine is built and executed.
        """
        engine = self.engine
        if engine == "auto":
            engine = "aggregated" if self.aggregation_unsupported_reason() is None else "event"
        if engine == "aggregated":
            makespan, sweep_completion, stats = run_aggregated(self, max_events=max_events)
            return self._build_result(makespan, sweep_completion, stats)
        return self._run_event_engine(max_events=max_events)

    def _build_result(
        self,
        makespan: float,
        sweep_completion: Dict[Tuple[int, int], float],
        stats: MachineStats,
    ) -> WavefrontSimulationResult:
        """Assemble the result object shared by both engines."""
        phases = self.spec.schedule.phases
        ordered_completions = tuple(
            sweep_completion[(it, s)]
            for it in range(self.iterations)
            for s in range(len(phases))
            if (it, s) in sweep_completion
        )
        return WavefrontSimulationResult(
            spec_name=self.spec.name,
            platform_name=self.platform.name,
            grid=self.grid,
            core_mapping=self.core_mapping,
            iterations=self.iterations,
            makespan_us=makespan,
            sweep_completion_us=ordered_completions,
            stats=stats,
        )

    def _run_event_engine(
        self, *, max_events: Optional[int] = None
    ) -> WavefrontSimulationResult:
        """Build the event machine and rank programs, run them, collect results."""
        total = self.grid.total_processors
        machine = SimulatedMachine(
            self.platform,
            total,
            rank_to_node=self.rank_to_node(),
            rank_to_chip=self.rank_to_chip(),
            enable_contention=self.enable_contention,
            link_contention=self.link_contention,
            fault_seed=self.fault_seed,
        )

        sweep_completion: Dict[Tuple[int, int], float] = {}
        phases = self.spec.schedule.phases
        for iteration in range(self.iterations):
            for sweep_index, phase in enumerate(phases):
                key = ("sweep", iteration, sweep_index)
                machine.define_barrier(key)

                def release(time: float, key=key, it=iteration, s=sweep_index) -> None:
                    sweep_completion[(it, s)] = time
                    machine.release_barrier(key)

                machine.on_mark(key, total, release)

        for rank in range(total):
            machine.add_rank_program(rank, self._rank_program(rank))

        stats = machine.run(max_events=max_events)
        return self._build_result(stats.makespan, sweep_completion, stats)


def simulate_wavefront(
    spec: WavefrontSpec,
    platform: Platform,
    *,
    grid: Optional[ProcessorGrid] = None,
    total_cores: Optional[int] = None,
    core_mapping: Optional[CoreMapping] = None,
    iterations: int = 1,
    simulate_nonwavefront: bool = True,
    enable_contention: bool = True,
    compute_noise: float = 0.0,
    noise_model: Optional[NoiseModel] = None,
    noise_seed: int = 0,
    fault_seed: int = 0,
    link_contention: bool = False,
    engine: str = "auto",
    max_events: Optional[int] = None,
) -> WavefrontSimulationResult:
    """Convenience wrapper: build a :class:`WavefrontSimulator` and run it."""
    simulator = WavefrontSimulator(
        spec,
        platform,
        grid=grid,
        total_cores=total_cores,
        core_mapping=core_mapping,
        iterations=iterations,
        simulate_nonwavefront=simulate_nonwavefront,
        enable_contention=enable_contention,
        compute_noise=compute_noise,
        noise_model=noise_model,
        noise_seed=noise_seed,
        fault_seed=fault_seed,
        link_contention=link_contention,
        engine=engine,
    )
    return simulator.run(max_events=max_events)
