"""Simulated MPI microbenchmarks (Section 3 of the paper).

``ping_pong`` reproduces the measurement procedure behind Figure 3: two ranks
exchange a message of a given size back and forth ``repetitions`` times and
report *half* the average round-trip time.  Placing the two ranks on the same
node measures the on-chip path (Figure 3(b)); placing them on different nodes
measures the off-node path (Figure 3(a)).

``allreduce_benchmark`` measures the simulated cost of an ``MPI_Allreduce``
over ``P`` ranks, used to check the equation (9) model.

The resulting (message size, time) curves feed
:mod:`repro.calibration.fitting`, which re-derives the LogGP constants the
same way the paper does from its measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.core.loggp import Platform
from repro.simulator.collectives import allreduce_ops
from repro.simulator.machine import Op, Recv, Send, SimulatedMachine

__all__ = [
    "PingPongSample",
    "ping_pong",
    "ping_pong_sweep",
    "allreduce_benchmark",
    "DEFAULT_MESSAGE_SIZES",
]

#: Message sizes (bytes) matching the x-axis of Figure 3: 64 B to 12 KiB,
#: with extra points bracketing the 1 KiB protocol switch.
DEFAULT_MESSAGE_SIZES: tuple[int, ...] = (
    64, 128, 256, 512, 768, 1024, 1025, 1536, 2048, 3072, 4096, 6144, 8192, 10240, 12288,
)


@dataclass(frozen=True)
class PingPongSample:
    """One point of the ping-pong curve."""

    message_bytes: int
    one_way_time_us: float
    on_chip: bool


def _pingpong_program(rank: int, peer: int, nbytes: float, repetitions: int) -> Iterator[Op]:
    """Rank 0 sends first; rank 1 echoes.  Each repetition is one round trip."""
    for rep in range(repetitions):
        tag = rep
        if rank == 0:
            yield Send(dst=peer, nbytes=nbytes, tag=tag)
            yield Recv(src=peer, tag=tag)
        else:
            yield Recv(src=peer, tag=tag)
            yield Send(dst=peer, nbytes=nbytes, tag=tag)


def ping_pong(
    platform: Platform,
    message_bytes: int,
    *,
    on_chip: bool,
    repetitions: int = 10,
) -> PingPongSample:
    """Simulate a ping-pong exchange and return half the mean round-trip time."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if on_chip and platform.on_chip is None:
        raise ValueError(f"platform {platform.name!r} has no on-chip path to measure")
    rank_to_node = [0, 0] if on_chip else [0, 1]
    machine = SimulatedMachine(platform, 2, rank_to_node=rank_to_node)
    machine.add_rank_program(0, _pingpong_program(0, 1, message_bytes, repetitions))
    machine.add_rank_program(1, _pingpong_program(1, 0, message_bytes, repetitions))
    stats = machine.run()
    one_way = stats.makespan / (2.0 * repetitions)
    return PingPongSample(
        message_bytes=int(message_bytes), one_way_time_us=one_way, on_chip=on_chip
    )


def ping_pong_sweep(
    platform: Platform,
    *,
    on_chip: bool,
    message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
    repetitions: int = 10,
) -> List[PingPongSample]:
    """Run the ping-pong benchmark over a range of message sizes (Figure 3)."""
    return [
        ping_pong(platform, size, on_chip=on_chip, repetitions=repetitions)
        for size in message_sizes
    ]


def allreduce_benchmark(
    platform: Platform,
    total_ranks: int,
    *,
    payload_bytes: int = 8,
    repetitions: int = 3,
) -> float:
    """Simulated time of one ``MPI_Allreduce`` over ``total_ranks`` ranks (µs)."""
    if total_ranks < 1:
        raise ValueError("total_ranks must be >= 1")
    if total_ranks == 1:
        return 0.0

    def program(rank: int) -> Iterator[Op]:
        for rep in range(repetitions):
            yield from allreduce_ops(rank, total_ranks, payload_bytes, rep * 100)

    machine = SimulatedMachine(platform, total_ranks)
    for rank in range(total_ranks):
        machine.add_rank_program(rank, program(rank))
    stats = machine.run()
    return stats.makespan / repetitions
