"""Rank-program building blocks for MPI collective operations.

The simulator expresses collectives in terms of the same point-to-point
``Send`` / ``Recv`` operations as the application code, so that their cost
emerges from the machine model rather than being asserted.  The all-reduce
uses the classic recursive-doubling algorithm (with the standard fold-in of
ranks beyond the largest power of two), which is what small-payload
``MPI_Allreduce`` implementations use in practice.

Each helper is a generator of operations to be ``yield from``-ed inside a
rank program.
"""

from __future__ import annotations

from typing import Iterator

from repro.simulator.machine import Op, Recv, Send

__all__ = ["allreduce_ops", "largest_power_of_two", "pairwise_exchange_ops"]


def largest_power_of_two(value: int) -> int:
    """Largest power of two that is <= ``value`` (``value`` must be >= 1)."""
    if value < 1:
        raise ValueError("value must be >= 1")
    power = 1
    while power * 2 <= value:
        power *= 2
    return power


def pairwise_exchange_ops(
    rank: int, partner: int, nbytes: float, tag: int
) -> Iterator[Op]:
    """A deadlock-free blocking send/recv exchange between two ranks.

    The lower-numbered rank sends first; the higher-numbered rank receives
    first.  With blocking semantics this ordering can never deadlock even for
    rendezvous-sized payloads.
    """
    if rank == partner:
        return
    if rank < partner:
        yield Send(dst=partner, nbytes=nbytes, tag=tag)
        yield Recv(src=partner, tag=tag)
    else:
        yield Recv(src=partner, tag=tag)
        yield Send(dst=partner, nbytes=nbytes, tag=tag)


def allreduce_ops(
    rank: int, total_ranks: int, nbytes: float, tag_base: int
) -> Iterator[Op]:
    """Operations performed by ``rank`` in a ``total_ranks``-wide all-reduce.

    Recursive doubling over the largest power-of-two subset, with the extra
    ranks folding their contribution into a partner first and receiving the
    final result afterwards.  ``tag_base`` must leave room for
    ``2 + log2(total_ranks)`` consecutive tags.
    """
    if total_ranks < 1:
        raise ValueError("total_ranks must be >= 1")
    if total_ranks == 1:
        return
    p2 = largest_power_of_two(total_ranks)
    remainder = total_ranks - p2

    # Phase 0: ranks beyond the power-of-two boundary fold into a partner.
    if rank >= p2:
        yield Send(dst=rank - p2, nbytes=nbytes, tag=tag_base)
    elif rank < remainder:
        yield Recv(src=rank + p2, tag=tag_base)

    # Phase 1..log2(p2): recursive doubling among the first p2 ranks.
    if rank < p2:
        distance = 1
        phase = 1
        while distance < p2:
            partner = rank ^ distance
            yield from pairwise_exchange_ops(rank, partner, nbytes, tag_base + phase)
            distance *= 2
            phase += 1

    # Final phase: deliver the result back to the folded-in ranks.
    final_tag = tag_base + 1 + p2.bit_length()
    if rank >= p2:
        yield Recv(src=rank - p2, tag=final_tag)
    elif rank < remainder:
        yield Send(dst=rank + p2, nbytes=nbytes, tag=final_tag)


def allreduce_tag_span(total_ranks: int) -> int:
    """Number of distinct tags an all-reduce over ``total_ranks`` may use."""
    p2 = largest_power_of_two(max(total_ranks, 1))
    return 3 + p2.bit_length()
