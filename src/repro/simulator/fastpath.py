"""Diagonal-aggregated fast path for noise-free homogeneous wavefront runs.

The event-driven machine (:mod:`repro.simulator.machine`) processes roughly
five heap events per rank per tile; at the validation matrix's largest
configurations (4096+ cores, hundreds of tiles, eight sweeps) that is tens of
millions of events in pure Python and dominates every model-vs-simulator
comparison.  This module replaces the event loop with an arithmetic
recurrence for the configurations where the event order is provably
irrelevant, advancing all ranks of a wavefront diagonal as a group - one
pass per (diagonal, tile) instead of one event per rank per operation.

When the fast path applies
--------------------------

The rank programs built by :class:`~repro.simulator.wavefront
.WavefrontSimulator` interact only through point-to-point messages and
barriers.  With

* no compute noise (every ``Compute`` duration is deterministic), and
* no on-chip traffic (one core per node, or a platform without on-chip
  parameters - so every message uses the off-node LogGP sub-model and the
  shared-bus queue is never entered),

every operation's completion time is a closed-form function of its
predecessors: the max-plus recurrence written out in :func:`_advance_sweep`.
The expressions mirror :meth:`SimulatedMachine._handle_send` /
``_handle_recv`` / ``_complete_rendezvous`` term by term (including the
floating-point association order), so the aggregated engine reproduces the
per-rank engine's timings exactly - the regression tests assert agreement to
``<= 1e-9`` relative, and in practice the times are bit-identical.

Multi-core mappings (heterogeneous on-chip/off-node costs plus bus
contention) and noisy runs fall back to the event engine automatically; see
:func:`aggregation_unsupported_reason`.

The non-wavefront phase (all-reduces, LU's stencil halo exchange) is a
negligible fraction of the events but has data-dependent communication
patterns, so it is executed on the real event machine, started from the
per-rank sweep-completion times (``start_time`` support in
:meth:`SimulatedMachine.add_rank_program`) - the hybrid stays exact for
every :class:`~repro.apps.base.NonWavefrontModel` strategy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.apps.base import AllReduceNonWavefront, FillClass, NoNonWavefront
from repro.core.decomposition import ProcessorGrid
from repro.simulator.engine import SimulationError
from repro.simulator.machine import MachineStats, RankStats, SimulatedMachine

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.simulator.wavefront import WavefrontSimulator

__all__ = ["aggregation_unsupported_reason", "run_aggregated"]


def aggregation_unsupported_reason(simulator: "WavefrontSimulator") -> Optional[str]:
    """Why the aggregated engine cannot run this configuration (None = it can).

    The fast path requires every operation's timing to be a deterministic
    function of its dependencies alone *and* position-independent costs: no
    per-rank jitter, no per-node speed multipliers, and no shared on-chip
    resources (bus queues) whose state depends on event order.
    """
    if simulator.noise_model is not None:
        return "background noise applies per-tile jitter to compute times"
    profile = simulator.platform.speed_profile
    if profile is not None and profile.has_windows:
        return "time-varying slowdown windows make compute costs depend on event times"
    if profile is not None and not profile.is_trivial:
        return "heterogeneous speed profile gives ranks position-dependent work"
    faults = simulator.platform.faults
    if faults is not None and not faults.is_null:
        return "fault injection and checkpoint costs depend on each rank's timeline"
    if getattr(simulator, "link_contention", False):
        return "per-link FIFO contention makes message costs depend on event order"
    if (
        simulator.platform.on_chip is not None
        and simulator.core_mapping.cores_per_node > 1
    ):
        return (
            "multi-core core mapping mixes on-chip and off-node message costs "
            "and engages the shared-bus queue"
        )
    return None


# ---------------------------------------------------------------------------
# Per-sweep topology tables
# ---------------------------------------------------------------------------

def _sweep_topology(grid: ProcessorGrid, origin) -> "_SweepTopology":
    """Neighbour ranks and diagonal processing order for one sweep origin."""
    n, m = grid.n, grid.m
    oi, oj, dx, dy = grid.sweep_directions(origin)
    opposite_i = n + 1 - oi
    opposite_j = m + 1 - oj
    total = n * m
    up_x = [-1] * total
    up_y = [-1] * total
    down_x = [-1] * total
    down_y = [-1] * total
    diagonals: List[List[int]] = [[] for _ in range(n + m - 1)]
    for rank in range(total):
        i, j = grid.position_of(rank)
        if i != oi:
            up_x[rank] = grid.rank_of(i - dx, j)
        if j != oj:
            up_y[rank] = grid.rank_of(i, j - dy)
        if i != opposite_i:
            down_x[rank] = grid.rank_of(i + dx, j)
        if j != opposite_j:
            down_y[rank] = grid.rank_of(i, j + dy)
        diagonals[abs(i - oi) + abs(j - oj)].append(rank)
    nodes = [
        (rank, up_x[rank], up_y[rank], down_x[rank], down_y[rank])
        for diagonal in diagonals
        for rank in diagonal
    ]
    return _SweepTopology(
        nodes=nodes, diagonals=diagonals, down_y=down_y
    )


class _SweepTopology:
    """Per-origin sweep tables: ranks in diagonal order with their partners.

    ``nodes`` lists ``(rank, up_x, up_y, down_x, down_y)`` tuples by
    increasing wavefront diagonal (Manhattan distance from the origin; -1
    marks a missing partner); ``diagonals`` groups the rank ids per
    diagonal; ``down_y`` is the per-rank south partner for the tile-major
    finalisation passes.
    """

    __slots__ = ("nodes", "diagonals", "down_y")

    def __init__(self, nodes, diagonals, down_y) -> None:
        self.nodes = nodes
        self.diagonals = diagonals
        self.down_y = down_y


# ---------------------------------------------------------------------------
# The aggregated sweep recurrence
# ---------------------------------------------------------------------------

def _advance_sweep(
    cursor: List[float],
    tiles: int,
    topology: _SweepTopology,
    off_node,
    ew_bytes: float,
    ns_bytes: float,
    w_eff: float,
    wpre_eff: float,
    comp_t: List[float],
    send_t: List[float],
    recv_t: List[float],
    msgs: List[int],
    byts: List[float],
) -> None:
    """Advance every rank through one sweep's tile loop, in place.

    ``cursor[r]`` enters as rank ``r``'s time after the previous sweep (or
    barrier) and leaves as its time after this sweep's final send completes
    (where the rank executes its ``Mark``).  All timing expressions replicate
    the event machine's formulas with the same floating-point association:

    eager (``nbytes <= eager_limit``)::

        sender_resume = init + o
        data_ready    = sender_resume + nbytes*G + L
        recv_done     = max(post, data_ready) + o

    rendezvous::

        reply_arrives = max((init + o) + L, post) + oh + L + oh
        sender_resume = reply_arrives
        data_ready    = ((reply_arrives + o) + nbytes*G) + L
        recv_done     = data_ready + o

    Eager sends complete independently of the receiver, so an eager-only
    sweep has no downstream feedback and each rank's tile loop runs to
    completion in one go (:func:`_advance_sweep_eager`).  A rendezvous send
    couples the sender to the receiver's receive-post time, which forces the
    tile-major two-pass schedule of :func:`_advance_sweep_rendezvous`.
    """
    eager_limit = off_node.eager_limit
    # Structural message accounting: every rank with a downstream partner
    # sends exactly one message per tile in that direction.
    for rank, _ux, _uy, dxr, dyr in topology.nodes:
        if dxr >= 0:
            msgs[rank] += tiles
            byts[rank] += tiles * ew_bytes
        if dyr >= 0:
            msgs[rank] += tiles
            byts[rank] += tiles * ns_bytes
    if ew_bytes <= eager_limit and ns_bytes <= eager_limit:
        _advance_sweep_eager(
            cursor, tiles, topology, off_node, ew_bytes, ns_bytes,
            w_eff, wpre_eff, comp_t, send_t, recv_t,
        )
    else:
        _advance_sweep_rendezvous(
            cursor, tiles, topology, off_node, ew_bytes, ns_bytes,
            w_eff, wpre_eff, comp_t, send_t, recv_t,
        )


def _advance_sweep_eager(
    cursor: List[float],
    tiles: int,
    topology: _SweepTopology,
    off_node,
    ew_bytes: float,
    ns_bytes: float,
    w_eff: float,
    wpre_eff: float,
    comp_t: List[float],
    send_t: List[float],
    recv_t: List[float],
) -> None:
    """Eager-only sweep: advance each rank through its whole tile loop.

    With eager sends the sender resumes after ``o`` regardless of the
    receiver, so a rank's timeline depends only on its two upstream
    neighbours' full histories - available once their diagonals are done.
    Per-rank message-arrival histories are kept only while the next diagonal
    still needs them.
    """
    o = off_node.overhead
    lat = off_node.latency
    gap = off_node.gap_per_byte
    mg_x = ew_bytes * gap
    mg_y = ns_bytes * gap
    w_tile = w_eff + wpre_eff

    # rank -> list of per-tile east-west send inits (compute ends) and
    # north-south send inits, consumed by the next diagonal.
    e_hist: Dict[int, List[float]] = {}
    s_hist: Dict[int, List[float]] = {}
    diagonals = topology.diagonals
    up_x, up_y, down_x, down_y = (
        [0] * len(cursor), [0] * len(cursor), [0] * len(cursor), [0] * len(cursor),
    )
    for rank, uxr, uyr, dxr, dyr in topology.nodes:
        up_x[rank], up_y[rank], down_x[rank], down_y[rank] = uxr, uyr, dxr, dyr

    for index, diagonal in enumerate(diagonals):
        for r in diagonal:
            uxr = up_x[r]
            uyr = up_y[r]
            ex = e_hist[uxr] if uxr >= 0 else None
            sy = s_hist[uyr] if uyr >= 0 else None
            has_dx = down_x[r] >= 0
            has_dy = down_y[r] >= 0
            my_e: Optional[List[float]] = [] if has_dx else None
            my_s: Optional[List[float]] = [] if has_dy else None
            c = cursor[r]
            comp_acc = 0.0
            send_acc = 0.0
            recv_acc = 0.0
            for t in range(tiles):
                p = c + wpre_eff
                if ex is not None:
                    ready = ((ex[t] + o) + mg_x) + lat
                    done = (ready if ready > p else p) + o
                    recv_acc += done - p
                    p = done
                if sy is not None:
                    ready = ((sy[t] + o) + mg_y) + lat
                    done = (ready if ready > p else p) + o
                    recv_acc += done - p
                    p = done
                c = p + w_eff
                comp_acc += w_tile
                if my_e is not None:
                    my_e.append(c)
                if has_dx:
                    c = c + o
                    send_acc += o
                if my_s is not None:
                    my_s.append(c)
                if has_dy:
                    c = c + o
                    send_acc += o
            cursor[r] = c
            comp_t[r] += comp_acc
            send_t[r] += send_acc
            recv_t[r] += recv_acc
            if my_e is not None:
                e_hist[r] = my_e
            if my_s is not None:
                s_hist[r] = my_s
        # Histories of diagonal ``index - 1`` were consumed by this diagonal.
        if index >= 1:
            for r in diagonals[index - 1]:
                e_hist.pop(r, None)
                s_hist.pop(r, None)


def _advance_sweep_rendezvous(
    cursor: List[float],
    tiles: int,
    topology: _SweepTopology,
    off_node,
    ew_bytes: float,
    ns_bytes: float,
    w_eff: float,
    wpre_eff: float,
    comp_t: List[float],
    send_t: List[float],
    recv_t: List[float],
) -> None:
    """Tile-major sweep recurrence for sweeps with rendezvous messages.

    A rendezvous sender resumes only once the receiver posts the matching
    receive, so each tile is advanced in two passes: pass 1 (any order)
    finishes the previous tile's north-south sends - their receive posts
    belong to the previous tile and are already known - and posts the first
    receive; pass 2 walks the wavefront diagonals in order, where a rank's
    receives depend on the previous diagonal's send inits and its east-west
    send completion depends on ``post0`` of the next diagonal (from pass 1).
    """
    total = len(cursor)
    o = off_node.overhead
    lat = off_node.latency
    oh = off_node.handshake_overhead
    eager_limit = off_node.eager_limit
    gap = off_node.gap_per_byte
    mg_x = ew_bytes * gap
    mg_y = ns_bytes * gap
    rdv_x = ew_bytes > eager_limit
    rdv_y = ns_bytes > eager_limit
    w_tile = w_eff + wpre_eff
    nodes = topology.nodes
    down_y = topology.down_y

    post0 = [0.0] * total  # time the rank posts its first receive of the tile
    posty = [0.0] * total  # time the rank posts its north-south receive
    e_arr = [0.0] * total  # compute-end: init time of the east-west send
    scx = [0.0] * total    # east-west send completion: init of the N-S send

    def finish_ns_sends(dest: List[float], add_wpre: bool) -> None:
        """Complete every rank's pending N-S send and store the new cursor.

        The receive posts the completions depend on (``posty`` of the south
        partner) belong to the tile being finished and are already known.
        """
        for r in range(total):
            c = scx[r]
            dyr = down_y[r]
            if dyr >= 0:
                if rdv_y:
                    done = max((c + o) + lat, posty[dyr]) + oh + lat + oh
                else:
                    done = c + o
                send_t[r] += done - c
                c = done
            dest[r] = c + wpre_eff if add_wpre else c

    for tile in range(tiles):
        # -- pass 1: finish the previous tile's N-S sends, post the first recv
        if tile == 0:
            for r in range(total):
                post0[r] = cursor[r] + wpre_eff
        else:
            finish_ns_sends(post0, True)

        # -- pass 2: advance each wavefront diagonal as a group
        for r, uxr, uyr, dxr, _dyr in nodes:
            p = post0[r]
            if uxr >= 0:
                init = e_arr[uxr]
                if rdv_x:
                    reply = max((init + o) + lat, p) + oh + lat + oh
                    done = (((reply + o) + mg_x) + lat) + o
                else:
                    ready = ((init + o) + mg_x) + lat
                    done = (ready if ready > p else p) + o
                recv_t[r] += done - p
                p = done
            posty[r] = p
            if uyr >= 0:
                init = scx[uyr]
                if rdv_y:
                    reply = max((init + o) + lat, p) + oh + lat + oh
                    done = (((reply + o) + mg_y) + lat) + o
                else:
                    ready = ((init + o) + mg_y) + lat
                    done = (ready if ready > p else p) + o
                recv_t[r] += done - p
                p = done
            ce = p + w_eff
            e_arr[r] = ce
            comp_t[r] += w_tile
            if dxr >= 0:
                if rdv_x:
                    sc = max((ce + o) + lat, post0[dxr]) + oh + lat + oh
                else:
                    sc = ce + o
                send_t[r] += sc - ce
                scx[r] = sc
            else:
                scx[r] = ce

    # -- final pass: complete the last tile's N-S sends
    finish_ns_sends(cursor, False)


# ---------------------------------------------------------------------------
# Arithmetic all-reduce (the transport codes' non-wavefront phase)
# ---------------------------------------------------------------------------

def _one_way_times(
    t_send: float, t_recv: float, off_node, mg: float, rdv: bool
) -> Tuple[float, float]:
    """(sender resume, receiver done) for a single Send/Recv pair."""
    o = off_node.overhead
    lat = off_node.latency
    if rdv:
        oh = off_node.handshake_overhead
        reply = max((t_send + o) + lat, t_recv) + oh + lat + oh
        return reply, ((((reply + o) + mg) + lat)) + o
    ready = ((t_send + o) + mg) + lat
    return t_send + o, (ready if ready > t_recv else t_recv) + o


def _advance_allreduce(
    cursor: List[float],
    nbytes: float,
    count: int,
    off_node,
    send_t: List[float],
    recv_t: List[float],
    msgs: List[int],
    byts: List[float],
) -> None:
    """Advance every rank through ``count`` recursive-doubling all-reduces.

    Mirrors :func:`repro.simulator.collectives.allreduce_ops` operation by
    operation: a fold-in of the ranks beyond the largest power of two,
    ``log2`` pairwise-exchange phases, and the fold-out.  In a pairwise
    exchange the lower rank sends first and then receives; the higher rank
    receives first and then sends - the timing expressions are the
    one-way formulas of :func:`_one_way_times` chained in that order.
    """
    total = len(cursor)
    if total < 2 or count < 1:
        return
    mg = nbytes * off_node.gap_per_byte
    rdv = nbytes > off_node.eager_limit
    p2 = 1
    while p2 * 2 <= total:
        p2 *= 2

    for _ in range(count):
        # Phase 0: ranks beyond the power-of-two boundary fold into a partner.
        for r in range(p2, total):
            partner = r - p2
            resume, done = _one_way_times(cursor[r], cursor[partner], off_node, mg, rdv)
            send_t[r] += resume - cursor[r]
            recv_t[partner] += done - cursor[partner]
            msgs[r] += 1
            byts[r] += nbytes
            cursor[r] = resume
            cursor[partner] = done

        # Recursive doubling among the first p2 ranks (disjoint pairs per phase).
        distance = 1
        while distance < p2:
            for low in range(p2):
                high = low ^ distance
                if high < low:
                    continue
                t_low, t_high = cursor[low], cursor[high]
                # Lower rank sends; higher rank's receive completes.
                low_resume, high_recv_done = _one_way_times(
                    t_low, t_high, off_node, mg, rdv
                )
                send_t[low] += low_resume - t_low
                recv_t[high] += high_recv_done - t_high
                # Higher rank replies; lower rank posted its receive at resume.
                high_resume, low_recv_done = _one_way_times(
                    high_recv_done, low_resume, off_node, mg, rdv
                )
                send_t[high] += high_resume - high_recv_done
                recv_t[low] += low_recv_done - low_resume
                msgs[low] += 1
                msgs[high] += 1
                byts[low] += nbytes
                byts[high] += nbytes
                cursor[low] = low_recv_done
                cursor[high] = high_resume
            distance *= 2

        # Final phase: deliver the result back to the folded-in ranks.
        for r in range(p2, total):
            partner = r - p2
            resume, done = _one_way_times(cursor[partner], cursor[r], off_node, mg, rdv)
            send_t[partner] += resume - cursor[partner]
            recv_t[r] += done - cursor[r]
            msgs[partner] += 1
            byts[partner] += nbytes
            cursor[partner] = resume
            cursor[r] = done


# ---------------------------------------------------------------------------
# Full-run driver
# ---------------------------------------------------------------------------

def run_aggregated(
    simulator: "WavefrontSimulator", *, max_events: Optional[int] = None
) -> Tuple[float, Dict[Tuple[int, int], float], MachineStats]:
    """Execute a full wavefront run with the aggregated engine.

    Returns ``(makespan_us, sweep_completion, stats)`` for
    :meth:`WavefrontSimulator.run` to wrap into a
    :class:`~repro.simulator.wavefront.WavefrontSimulationResult`.  The
    ``events`` statistic counts group-advance steps (one per rank per tile
    per sweep) plus any events of the hybrid non-wavefront sub-simulations;
    ``max_events`` bounds that combined count like the event engine's limit.

    Raises :class:`ValueError` when the configuration is unsupported (use
    :func:`aggregation_unsupported_reason` to pre-check).
    """
    reason = aggregation_unsupported_reason(simulator)
    if reason is not None:
        raise ValueError(f"aggregated engine unsupported: {reason}")

    grid = simulator.grid
    spec = simulator.spec
    platform = simulator.platform
    total = grid.total_processors
    phases = spec.schedule.phases
    tiles = simulator._tiles
    w_eff = platform.scaled_work(simulator._w)
    wpre_eff = platform.scaled_work(simulator._wpre) if simulator._wpre > 0.0 else 0.0
    ew_bytes = simulator._ew_bytes
    ns_bytes = simulator._ns_bytes
    off_node = platform.off_node

    topologies: Dict[object, tuple] = {}
    for phase in phases:
        if phase.origin not in topologies:
            topologies[phase.origin] = _sweep_topology(grid, phase.origin)

    cursor = [0.0] * total
    comp_t = [0.0] * total
    send_t = [0.0] * total
    recv_t = [0.0] * total
    barr_t = [0.0] * total
    msgs = [0] * total
    byts = [0.0] * total
    sweep_completion: Dict[Tuple[int, int], float] = {}
    steps = 0
    hybrid_events = 0
    bus_queue_delay = 0.0
    bus_transfers = 0
    # The non-wavefront phase: nothing, an arithmetic all-reduce, or (for
    # stencil / custom strategies) a hybrid event-machine sub-simulation.
    skip_nonwavefront = not simulator.simulate_nonwavefront or isinstance(
        spec.nonwavefront, NoNonWavefront
    )
    arithmetic_allreduce = (
        not skip_nonwavefront
        and isinstance(spec.nonwavefront, AllReduceNonWavefront)
    )

    for iteration in range(simulator.iterations):
        for sweep_index, phase in enumerate(phases):
            if sweep_index > 0 and phases[sweep_index - 1].fill is FillClass.FULL:
                release = sweep_completion[(iteration, sweep_index - 1)]
                for r in range(total):
                    if cursor[r] < release:
                        barr_t[r] += release - cursor[r]
                        cursor[r] = release
            steps += total * tiles
            if max_events is not None and steps + hybrid_events > max_events:
                raise SimulationError(
                    f"event limit of {max_events} exceeded "
                    f"(aggregated engine, {steps} group-advance steps)"
                )
            _advance_sweep(
                cursor,
                tiles,
                topologies[phase.origin],
                off_node,
                ew_bytes,
                ns_bytes,
                w_eff,
                wpre_eff,
                comp_t,
                send_t,
                recv_t,
                msgs,
                byts,
            )
            sweep_completion[(iteration, sweep_index)] = max(cursor)

        if arithmetic_allreduce:
            strategy = spec.nonwavefront
            steps += total * strategy.count
            if max_events is not None and steps + hybrid_events > max_events:
                raise SimulationError(
                    f"event limit of {max_events} exceeded "
                    f"(aggregated engine, {steps} group-advance steps)"
                )
            _advance_allreduce(
                cursor,
                strategy.payload_bytes,
                strategy.count,
                off_node,
                send_t,
                recv_t,
                msgs,
                byts,
            )
        elif not skip_nonwavefront:
            remaining = None if max_events is None else max_events - steps - hybrid_events
            stats = _run_nonwavefront_phase(simulator, iteration, cursor, remaining)
            hybrid_events += stats.events
            bus_queue_delay += stats.bus_queue_delay
            bus_transfers += stats.bus_transfers
            for r in range(total):
                rank_stats = stats.ranks[r]
                comp_t[r] += rank_stats.compute_time
                send_t[r] += rank_stats.send_time
                recv_t[r] += rank_stats.recv_time
                barr_t[r] += rank_stats.barrier_time
                msgs[r] += rank_stats.messages_sent
                byts[r] += rank_stats.bytes_sent
                cursor[r] = rank_stats.finish_time

    ranks = [
        RankStats(
            compute_time=comp_t[r],
            send_time=send_t[r],
            recv_time=recv_t[r],
            barrier_time=barr_t[r],
            messages_sent=msgs[r],
            bytes_sent=byts[r],
            finish_time=cursor[r],
        )
        for r in range(total)
    ]
    makespan = max(cursor) if cursor else 0.0
    stats = MachineStats(
        ranks=ranks,
        makespan=makespan,
        events=steps + hybrid_events,
        bus_queue_delay=bus_queue_delay,
        bus_transfers=bus_transfers,
    )
    return makespan, sweep_completion, stats


def _run_nonwavefront_phase(
    simulator: "WavefrontSimulator",
    iteration: int,
    cursor: List[float],
    max_events: Optional[int],
) -> MachineStats:
    """Run one iteration's non-wavefront ops on the event machine.

    Each rank's program starts at its sweep-phase finish time, so the hybrid
    shares the aggregated run's absolute timeline and stays exact.
    """
    grid = simulator.grid
    total = grid.total_processors
    machine = SimulatedMachine(
        simulator.platform,
        total,
        rank_to_node=simulator.rank_to_node(),
        rank_to_chip=simulator.rank_to_chip(),
        enable_contention=simulator.enable_contention,
    )
    for rank in range(total):
        i, j = grid.position_of(rank)
        machine.add_rank_program(
            rank,
            simulator._nonwavefront_ops(rank, i, j, iteration),
            start_time=cursor[rank],
        )
    return machine.run(max_events=max_events)
