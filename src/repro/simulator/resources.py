"""Shared hardware resources of a simulated node.

The only resource the paper's contention model cares about is each node's
shared memory bus, which every DMA transfer between kernel memory and the
NIC (off-node messages) or between the cores' memories (large on-chip
messages) must cross.  :class:`FifoBus` serialises those transfers in
first-come-first-served order; the extra queueing delay experienced by a
transfer is the mechanistic counterpart of the ``I`` interference term of
Table 6.

A node may have several independent buses (Section 5.3's 16-core node with
one bus per group of four cores); :class:`NodeResources` owns one
:class:`FifoBus` per bus group and routes each core to its group's bus.

:class:`LinkResources` extends the same FIFO mechanism to the *network*:
one :class:`FifoBus` per directed node pair, so overlapping off-node
payloads on a shared link serialise instead of the contention-free LogGP
assumption.  It is opt-in (``link_contention`` on the simulator) because
the paper's model - and therefore the conformance baseline - is
contention-free off-node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["FifoBus", "NodeResources", "LinkResources"]


@dataclass
class FifoBus:
    """A serially shared bus.

    ``acquire(request_time, duration)`` reserves the bus for ``duration``
    starting no earlier than ``request_time`` and returns the *grant* time
    (when the transfer actually starts).  The queueing delay is
    ``grant - request_time``.
    """

    next_free: float = 0.0
    total_busy: float = 0.0
    total_queue_delay: float = 0.0
    transfers: int = 0

    def acquire(self, request_time: float, duration: float) -> float:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        grant = max(self.next_free, request_time)
        self.next_free = grant + duration
        self.total_busy += duration
        self.total_queue_delay += grant - request_time
        self.transfers += 1
        return grant

    def queueing_delay(self, request_time: float, duration: float) -> float:
        """Acquire the bus and return only the queueing delay incurred."""
        grant = self.acquire(request_time, duration)
        return grant - request_time


@dataclass
class NodeResources:
    """Per-node shared resources: one bus per bus group.

    ``cores_per_bus`` cores share each bus; core ``c`` (0-based index within
    the node) uses bus ``c // cores_per_bus``.
    """

    cores_per_node: int
    buses_per_node: int = 1
    buses: List[FifoBus] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cores_per_node < 1 or self.buses_per_node < 1:
            raise ValueError("cores_per_node and buses_per_node must be positive")
        if self.cores_per_node % self.buses_per_node != 0:
            raise ValueError("cores_per_node must be a multiple of buses_per_node")
        if not self.buses:
            self.buses = [FifoBus() for _ in range(self.buses_per_node)]

    @property
    def cores_per_bus(self) -> int:
        return self.cores_per_node // self.buses_per_node

    def bus_for_core(self, core_index: int) -> FifoBus:
        if not 0 <= core_index < self.cores_per_node:
            raise ValueError(
                f"core index {core_index} outside node with {self.cores_per_node} cores"
            )
        return self.buses[core_index // self.cores_per_bus]

    @property
    def total_queue_delay(self) -> float:
        return sum(bus.total_queue_delay for bus in self.buses)

    @property
    def total_transfers(self) -> int:
        return sum(bus.transfers for bus in self.buses)


@dataclass
class LinkResources:
    """Per-link FIFO queues for contention-aware off-node communication.

    Each *directed* ``(src_node, dst_node)`` pair owns one
    :class:`FifoBus`; a payload transfer occupies its link for the
    payload's serialisation time, so overlapping messages between the same
    node pair queue in FIFO order.  Links are created lazily on first use.
    """

    links: Dict[Tuple[int, int], FifoBus] = field(default_factory=dict)

    def link_for(self, src_node: int, dst_node: int) -> FifoBus:
        key = (src_node, dst_node)
        link = self.links.get(key)
        if link is None:
            link = self.links[key] = FifoBus()
        return link

    def queueing_delay(
        self, src_node: int, dst_node: int, request_time: float, duration: float
    ) -> float:
        """Reserve the directed link and return the queueing delay incurred."""
        return self.link_for(src_node, dst_node).queueing_delay(request_time, duration)

    @property
    def total_queue_delay(self) -> float:
        return sum(link.total_queue_delay for link in self.links.values())

    @property
    def total_transfers(self) -> int:
        return sum(link.transfers for link in self.links.values())
