"""Measuring per-cell work rates (``Wg``, ``Wg,pre``) from the real kernels.

The paper's Table 3 lists ``Wg`` as "measured": the application is run on a
small number of processors (at least four, so the executed code path matches
larger configurations) and the time per cell is extracted.  Here the
measurement runs the numpy kernels of :mod:`repro.kernels` and times them
with ``time.perf_counter``.

The absolute values measured on this machine are *not* the Cray XT4's
(DESIGN.md documents the calibrated defaults used to reproduce the paper's
figure magnitudes), but the code path is the same a user would follow to
parameterise the model for their own code and machine: measure, build a
:class:`~repro.apps.base.WavefrontSpec` with the measured rates, predict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps.base import WavefrontSpec
from repro.core.decomposition import ProblemSize
from repro.kernels.ssor import SsorParameters, lower_sweep_block
from repro.kernels.stencil import seven_point_stencil
from repro.kernels.transport import AngleSet, sweep_cell_block

__all__ = [
    "WorkRateMeasurement",
    "measure_transport_wg",
    "measure_ssor_wg",
    "measure_stencil_wg",
    "calibrated_spec",
]


@dataclass(frozen=True)
class WorkRateMeasurement:
    """A measured per-cell work rate."""

    kernel: str
    cells: int
    repetitions: int
    total_seconds: float

    @property
    def wg_us(self) -> float:
        """Microseconds of work per cell (per sweep / per application of the kernel)."""
        return self.total_seconds * 1e6 / (self.cells * self.repetitions)


def _time_kernel(fn: Callable[[], None], repetitions: int) -> float:
    # One warm-up call so that allocation and caching effects do not bias the
    # measurement (the guides' "no optimisation without measuring" workflow).
    fn()
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return time.perf_counter() - start


def measure_transport_wg(
    *,
    cells_per_side: int = 10,
    angles: int = 6,
    repetitions: int = 3,
) -> WorkRateMeasurement:
    """Measure the per-cell cost of the discrete-ordinates sweep kernel."""
    if cells_per_side < 2:
        raise ValueError("cells_per_side must be >= 2")
    rng = np.random.default_rng(42)
    shape = (cells_per_side, cells_per_side, cells_per_side)
    source = rng.random(shape)
    sigma = rng.random(shape) + 0.5
    angle_set = AngleSet.uniform(angles)

    def run() -> None:
        sweep_cell_block(source, sigma, angle_set)

    elapsed = _time_kernel(run, repetitions)
    return WorkRateMeasurement(
        kernel="transport-sweep",
        cells=int(np.prod(shape)),
        repetitions=repetitions,
        total_seconds=elapsed,
    )


def measure_ssor_wg(
    *,
    cells_per_side: int = 12,
    repetitions: int = 3,
    params: SsorParameters = SsorParameters(),
) -> WorkRateMeasurement:
    """Measure the per-cell cost of one LU lower-triangular sweep."""
    rng = np.random.default_rng(43)
    shape = (cells_per_side, cells_per_side, cells_per_side)
    values = rng.random(shape)
    rhs = rng.random(shape)

    def run() -> None:
        lower_sweep_block(values, rhs, params)

    elapsed = _time_kernel(run, repetitions)
    return WorkRateMeasurement(
        kernel="ssor-lower-sweep",
        cells=int(np.prod(shape)),
        repetitions=repetitions,
        total_seconds=elapsed,
    )


def measure_stencil_wg(
    *,
    cells_per_side: int = 64,
    repetitions: int = 10,
) -> WorkRateMeasurement:
    """Measure the per-cell cost of the inter-iteration stencil update."""
    rng = np.random.default_rng(44)
    values = rng.random((cells_per_side, cells_per_side, cells_per_side))

    def run() -> None:
        seven_point_stencil(values)

    elapsed = _time_kernel(run, repetitions)
    return WorkRateMeasurement(
        kernel="seven-point-stencil",
        cells=int(values.size),
        repetitions=repetitions,
        total_seconds=elapsed,
    )


def calibrated_spec(
    spec: WavefrontSpec,
    measurement: WorkRateMeasurement,
    *,
    pre_measurement: WorkRateMeasurement | None = None,
) -> WavefrontSpec:
    """Return ``spec`` with its work rates replaced by measured values."""
    wg_pre = pre_measurement.wg_us if pre_measurement is not None else spec.wg_pre_us
    return spec.with_wg(measurement.wg_us, wg_pre)
