"""Deriving LogGP parameters from ping-pong measurements (Section 3).

The paper obtains Table 2 by measuring half round-trip times of an MPI
ping-pong for a range of message sizes and solving the Table 1 equations
simultaneously:

* the common slope of the time-vs-size curve gives the gap per byte ``G``
  (or ``Gcopy`` / ``Gdma`` on-chip);
* the small-message intercept gives ``2 o + L`` (off-node) or ``2 ocopy``
  (on-chip);
* the jump at the eager limit, together with the large-message intercept,
  pins down ``o`` and ``L`` (off-node) or ``odma`` (on-chip).

The same procedure is applied here to the *simulated* ping-pong measurements
of :mod:`repro.simulator.pingpong`, closing the loop measurement -> fit ->
application model exactly as in the paper.  The fitting functions also work
on any user-supplied (size, time) samples, e.g. real mpi4py measurements from
a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.comm import total_comm_off_node, total_comm_on_chip
from repro.core.loggp import DEFAULT_EAGER_LIMIT_BYTES, OffNodeParams, OnChipParams, Platform
from repro.simulator.pingpong import DEFAULT_MESSAGE_SIZES, PingPongSample, ping_pong_sweep

__all__ = [
    "FitQuality",
    "FittedPlatformParameters",
    "fit_off_node",
    "fit_on_chip",
    "derive_platform_parameters",
]

Sample = Tuple[float, float]  # (message bytes, one-way time in µs)


@dataclass(frozen=True)
class FitQuality:
    """Goodness of fit of a LogGP sub-model against its samples."""

    max_relative_error: float
    mean_relative_error: float
    samples: int


def _as_samples(samples: Sequence[Sample] | Sequence[PingPongSample]) -> list[Sample]:
    converted: list[Sample] = []
    for sample in samples:
        if isinstance(sample, PingPongSample):
            converted.append((float(sample.message_bytes), float(sample.one_way_time_us)))
        else:
            size, time = sample
            converted.append((float(size), float(time)))
    converted.sort(key=lambda pair: pair[0])
    if len(converted) < 4:
        raise ValueError("need at least four samples to fit the LogGP model")
    return converted


def _slope(points: list[Sample]) -> float:
    """Least-squares slope of time vs size."""
    count = len(points)
    mean_x = sum(p[0] for p in points) / count
    mean_y = sum(p[1] for p in points) / count
    num = sum((x - mean_x) * (y - mean_y) for x, y in points)
    den = sum((x - mean_x) ** 2 for x, y in points)
    if den == 0.0:  # repro: noqa[RPR004] identical sample sizes give an exactly-zero variance; fail loud
        raise ValueError("cannot fit a slope to samples with identical sizes")
    return num / den


def _intercept(points: list[Sample], slope: float) -> float:
    count = len(points)
    return sum(y - slope * x for x, y in points) / count


def _split(
    samples: list[Sample], eager_limit: int
) -> Tuple[list[Sample], list[Sample]]:
    small = [s for s in samples if s[0] <= eager_limit]
    large = [s for s in samples if s[0] > eager_limit]
    if len(small) < 2 or len(large) < 2:
        raise ValueError(
            "need at least two samples on each side of the eager limit "
            f"({eager_limit} bytes)"
        )
    return small, large


def fit_off_node(
    samples: Sequence[Sample] | Sequence[PingPongSample],
    *,
    eager_limit: int = DEFAULT_EAGER_LIMIT_BYTES,
) -> Tuple[OffNodeParams, FitQuality]:
    """Fit ``(G, L, o)`` from off-node ping-pong samples.

    The small- and large-message regimes share the slope ``G``; their
    intercepts are ``2o + L`` and ``3o + h + L`` respectively with
    ``h = 2L`` (``oh`` assumed negligible, as in the paper), which yields a
    closed-form simultaneous solution for ``o`` and ``L``.
    """
    points = _as_samples(samples)
    small, large = _split(points, eager_limit)
    slope_small = _slope(small)
    slope_large = _slope(large)
    gap = (slope_small + slope_large) / 2.0
    intercept_small = _intercept(small, gap)   # = 2 o + L
    intercept_large = _intercept(large, gap)   # = 3 o + h + L = 3 o + 3 L (oh = 0)... see below
    # With h = 2 (L + oh) and oh = 0: intercept_large - intercept_small = o + 2 L
    diff = intercept_large - intercept_small
    # Solve  2 o + L = intercept_small,  o + 2 L = diff:
    latency = (2.0 * diff - intercept_small) / 3.0
    overhead = (intercept_small - latency) / 2.0
    latency = max(latency, 0.0)
    overhead = max(overhead, 0.0)
    params = OffNodeParams(
        latency=latency,
        overhead=overhead,
        gap_per_byte=max(gap, 0.0),
        handshake_overhead=0.0,
        eager_limit=eager_limit,
    )
    quality = _quality(points, lambda size: total_comm_off_node(params, size))
    return params, quality


def fit_on_chip(
    samples: Sequence[Sample] | Sequence[PingPongSample],
    *,
    eager_limit: int = DEFAULT_EAGER_LIMIT_BYTES,
) -> Tuple[OnChipParams, FitQuality]:
    """Fit ``(Gcopy, Gdma, ocopy, odma)`` from on-chip ping-pong samples.

    The two regimes have different slopes; the small-message intercept is
    ``2 ocopy`` and the large-message intercept ``2 ocopy + odma``.
    """
    points = _as_samples(samples)
    small, large = _split(points, eager_limit)
    gap_copy = max(_slope(small), 0.0)
    gap_dma = max(_slope(large), 0.0)
    intercept_small = _intercept(small, gap_copy)
    intercept_large = _intercept(large, gap_dma)
    copy_overhead = max(intercept_small / 2.0, 0.0)
    dma_setup = max(intercept_large - intercept_small, 0.0)
    params = OnChipParams(
        copy_overhead=copy_overhead,
        dma_setup=dma_setup,
        gap_per_byte_copy=gap_copy,
        gap_per_byte_dma=gap_dma,
        eager_limit=eager_limit,
    )
    quality = _quality(points, lambda size: total_comm_on_chip(params, size))
    return params, quality


def _quality(points: list[Sample], model) -> FitQuality:
    errors = []
    for size, measured in points:
        predicted = model(size)
        if measured > 0:
            errors.append(abs(predicted - measured) / measured)
    if not errors:
        return FitQuality(max_relative_error=0.0, mean_relative_error=0.0, samples=0)
    return FitQuality(
        max_relative_error=max(errors),
        mean_relative_error=sum(errors) / len(errors),
        samples=len(errors),
    )


@dataclass(frozen=True)
class FittedPlatformParameters:
    """Table 2 as re-derived from (simulated) measurements."""

    off_node: OffNodeParams
    off_node_quality: FitQuality
    on_chip: OnChipParams | None
    on_chip_quality: FitQuality | None

    def table2_rows(self) -> list[tuple[str, float]]:
        rows = [
            ("G (us/byte)", self.off_node.gap_per_byte),
            ("L (us)", self.off_node.latency),
            ("o (us)", self.off_node.overhead),
        ]
        if self.on_chip is not None:
            rows.extend(
                [
                    ("Gcopy (us/byte)", self.on_chip.gap_per_byte_copy),
                    ("Gdma (us/byte)", self.on_chip.gap_per_byte_dma),
                    ("o_onchip (us)", self.on_chip.overhead),
                    ("ocopy (us)", self.on_chip.copy_overhead),
                ]
            )
        return rows


def derive_platform_parameters(
    platform: Platform,
    *,
    message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
    repetitions: int = 10,
) -> FittedPlatformParameters:
    """Run the simulated ping-pong benchmark on ``platform`` and re-fit Table 2.

    This is the end-to-end Section 3 procedure: measure -> fit -> parameters.
    For the Cray XT4 the fitted values recover the platform's configured
    constants to within the fit tolerance, which the Table 2 benchmark
    asserts.
    """
    off_samples = ping_pong_sweep(
        platform, on_chip=False, message_sizes=message_sizes, repetitions=repetitions
    )
    off_params, off_quality = fit_off_node(
        off_samples, eager_limit=platform.off_node.eager_limit
    )
    on_params = None
    on_quality = None
    if platform.on_chip is not None:
        on_samples = ping_pong_sweep(
            platform, on_chip=True, message_sizes=message_sizes, repetitions=repetitions
        )
        on_params, on_quality = fit_on_chip(
            on_samples, eager_limit=platform.on_chip.eager_limit
        )
    return FittedPlatformParameters(
        off_node=off_params,
        off_node_quality=off_quality,
        on_chip=on_params,
        on_chip_quality=on_quality,
    )
