"""Parameter measurement and fitting (Section 3 of the paper).

* :mod:`repro.calibration.fitting` - re-derive the Table 2 LogGP constants
  from ping-pong measurements (simulated or user supplied);
* :mod:`repro.calibration.workrate` - measure per-cell work rates (``Wg``)
  from the real numpy kernels.
"""

from repro.calibration.fitting import (
    FitQuality,
    FittedPlatformParameters,
    derive_platform_parameters,
    fit_off_node,
    fit_on_chip,
)
from repro.calibration.workrate import (
    WorkRateMeasurement,
    calibrated_spec,
    measure_ssor_wg,
    measure_stencil_wg,
    measure_transport_wg,
)

__all__ = [
    "FitQuality",
    "FittedPlatformParameters",
    "derive_platform_parameters",
    "fit_off_node",
    "fit_on_chip",
    "WorkRateMeasurement",
    "calibrated_spec",
    "measure_ssor_wg",
    "measure_stencil_wg",
    "measure_transport_wg",
]
