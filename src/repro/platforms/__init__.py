"""Concrete platform descriptions.

The paper validates its models on the dual-core Cray XT3/XT4 at ORNL and
compares the fitted communication constants with the older IBM SP/2 numbers
from Sundaram-Stukel & Vernon [3].  Both machines are provided here as
factory functions, together with a generic builder for hypothetical
platforms used in the Section 5 design studies.

>>> from repro.platforms import cray_xt4
>>> xt4 = cray_xt4()
>>> xt4.node.cores_per_node
2
"""

from repro.platforms.xt4 import (
    cray_xt3,
    cray_xt4,
    cray_xt4_quad_chip,
    cray_xt4_single_core,
)
from repro.platforms.sp2 import ibm_sp2
from repro.platforms.custom import custom_platform, platform_registry, get_platform
from repro.platforms.spec import (
    PlatformSpec,
    describe_platform,
    parse_fault_model,
    parse_noise_model,
    parse_placement,
    parse_slowdown_windows,
    parse_speed_profile,
)

__all__ = [
    "cray_xt3",
    "cray_xt4",
    "cray_xt4_quad_chip",
    "cray_xt4_single_core",
    "ibm_sp2",
    "custom_platform",
    "platform_registry",
    "get_platform",
    "PlatformSpec",
    "describe_platform",
    "parse_fault_model",
    "parse_noise_model",
    "parse_placement",
    "parse_slowdown_windows",
    "parse_speed_profile",
]
