"""Declarative platform composition: scenarios the paper never measured.

:class:`PlatformSpec` composes a *scenario machine* from a named base
platform plus the heterogeneity extensions of :mod:`repro.core.hetero`:

* a hierarchical interconnect (``cores_per_chip`` + intra-node LogGP
  parameters - messages then resolve per hop to intra-chip, intra-node or
  inter-node costs by rank placement);
* a per-node compute-speed profile (stragglers / slow nodes), optionally
  with time-varying slowdown windows;
* a background-noise model (none / fixed-quantum OS jitter / sampled);
* a fault model (MTBF / repair / checkpoint interval and dump cost, see
  :mod:`repro.core.faults` and ``docs/faults.md``).

The string forms parsed by :func:`parse_speed_profile`,
:func:`parse_noise_model`, :func:`parse_placement`,
:func:`parse_fault_model` and :func:`parse_slowdown_windows` are the
campaign-axis and CLI syntax (``--speed-profile stragglers:1x2.0``,
``--noise quantum:50/1000``, ``--placement 2x1``,
``--faults mtbf:2e9/interval:1e6/dump:5e3``,
``--slowdown-windows 0-1e6x2.0@0``); see ``docs/platforms.md`` and
``docs/faults.md`` for the schema and worked examples.

>>> spec = PlatformSpec(base="cray-xt4",
...                     speed_profile="stragglers:1x2.0",
...                     noise="quantum:50/1000")
>>> platform = spec.build()
>>> platform.speed_profile.slow_nodes, platform.noise.mean_inflation()
((0,), 1.05)
>>> platform.is_homogeneous
False
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple, Union

from repro.core.decomposition import CoreMapping
from repro.core.faults import FaultModel
from repro.core.hetero import (
    FixedQuantumNoise,
    NoiseModel,
    SampledNoise,
    SlowdownWindow,
    SpeedProfile,
)
from repro.core.loggp import OffNodeParams, Platform

__all__ = [
    "PlatformSpec",
    "parse_speed_profile",
    "parse_noise_model",
    "parse_placement",
    "parse_fault_model",
    "parse_slowdown_windows",
    "describe_platform",
]


# ---------------------------------------------------------------------------
# String forms (campaign axes, CLI flags)
# ---------------------------------------------------------------------------

def parse_speed_profile(
    text: Union[str, SpeedProfile, None],
) -> Optional[SpeedProfile]:
    """Parse the campaign/CLI speed-profile syntax.

    Accepted forms (``None`` and ``"none"`` mean the homogeneous machine):

    * ``"stragglers:<count>x<slowdown>"`` - the first ``count`` nodes run
      their work ``slowdown`` times slower;
    * ``"nodes:<i,j,...>x<slowdown>"`` - the listed node indices are slow;
    * ``"baseline:<factor>"`` - every node scaled by ``factor``.

    >>> parse_speed_profile("stragglers:2x1.5").slow_nodes
    (0, 1)
    >>> parse_speed_profile("nodes:3,7x2.0").slow_nodes
    (3, 7)
    >>> parse_speed_profile("none") is None
    True
    """
    if text is None or isinstance(text, SpeedProfile):
        return text
    cleaned = text.strip().lower()
    if cleaned in ("", "none"):
        return None
    kind, _, rest = cleaned.partition(":")
    try:
        if kind == "stragglers":
            count, _, slowdown = rest.partition("x")
            return SpeedProfile.stragglers(int(count), float(slowdown))
        if kind == "nodes":
            nodes, _, slowdown = rest.partition("x")
            indices = tuple(int(item) for item in nodes.split(",") if item)
            return SpeedProfile(slowdown=float(slowdown), slow_nodes=indices)
        if kind == "baseline":
            return SpeedProfile(baseline=float(rest))
    except ValueError as exc:
        raise ValueError(f"invalid speed profile {text!r}: {exc}") from exc
    raise ValueError(
        f"unknown speed profile {text!r}; expected 'none', "
        "'stragglers:<count>x<slowdown>', 'nodes:<i,j,...>x<slowdown>' "
        "or 'baseline:<factor>'"
    )


def parse_noise_model(
    text: Union[str, NoiseModel, None],
) -> Optional[NoiseModel]:
    """Parse the campaign/CLI noise-model syntax.

    Accepted forms: ``"none"``, ``"quantum:<quantum_us>/<period_us>"``
    (fixed-quantum OS jitter) and ``"sampled:<amplitude>"`` (multiplicative
    jitter drawn from the per-rank streams).

    >>> parse_noise_model("quantum:50/1000").mean_inflation()
    1.05
    >>> parse_noise_model("sampled:0.1").is_stochastic
    True
    >>> parse_noise_model("none") is None
    True
    """
    if text is None or isinstance(text, NoiseModel):
        return text
    cleaned = text.strip().lower()
    if cleaned in ("", "none"):
        return None
    kind, _, rest = cleaned.partition(":")
    try:
        if kind == "quantum":
            quantum, _, period = rest.partition("/")
            return FixedQuantumNoise(
                quantum_us=float(quantum),
                period_us=float(period) if period else 1000.0,
            )
        if kind == "sampled":
            return SampledNoise(amplitude=float(rest))
    except ValueError as exc:
        raise ValueError(f"invalid noise model {text!r}: {exc}") from exc
    raise ValueError(
        f"unknown noise model {text!r}; expected 'none', "
        "'quantum:<quantum_us>/<period_us>' or 'sampled:<amplitude>'"
    )


def parse_placement(
    text: Union[str, CoreMapping, None], platform: Platform
) -> Optional[CoreMapping]:
    """Parse the campaign/CLI rank-placement syntax into a core mapping.

    ``None``/``"none"``/``"default"`` select the paper's default rectangle
    for the platform; ``"rowwise"`` lays a node's cores along the east-west
    axis (``C x 1``), ``"colwise"`` along north-south (``1 x C``), and an
    explicit ``"<cx>x<cy>"`` pins the rectangle (its product must equal the
    platform's cores per node).

    >>> from repro.platforms import cray_xt4
    >>> parse_placement("rowwise", cray_xt4())
    CoreMapping(cx=2, cy=1, chip_cx=None, chip_cy=None)
    >>> parse_placement("default", cray_xt4()) is None
    True
    """
    if text is None or isinstance(text, CoreMapping):
        return text
    cleaned = text.strip().lower()
    if cleaned in ("", "none", "default"):
        return None
    cores = platform.node.cores_per_node
    if cleaned == "rowwise":
        return CoreMapping(cx=cores, cy=1)
    if cleaned == "colwise":
        return CoreMapping(cx=1, cy=cores)
    cx, sep, cy = cleaned.partition("x")
    if sep:
        try:
            mapping = CoreMapping(cx=int(cx), cy=int(cy))
        except ValueError as exc:
            raise ValueError(f"invalid placement {text!r}: {exc}") from exc
        if mapping.cores_per_node != cores:
            raise ValueError(
                f"placement {text!r} maps {mapping.cores_per_node} cores but "
                f"platform {platform.name!r} has {cores} per node"
            )
        return mapping
    raise ValueError(
        f"unknown placement {text!r}; expected 'default', 'rowwise', "
        "'colwise' or '<cx>x<cy>'"
    )


_FAULT_KEYS = {
    "mtbf": "mtbf_us",
    "repair": "repair_us",
    "restart": "restart_us",
    "interval": "checkpoint_interval_us",
    "dump": "checkpoint_cost_us",
}


def parse_fault_model(
    text: Union[str, FaultModel, None],
) -> Optional[FaultModel]:
    """Parse the campaign/CLI fault-model syntax.

    The form is slash-separated ``key:value`` pairs (microseconds), any
    subset of ``mtbf`` (mean time between failures), ``repair`` (downtime
    per failure), ``restart`` (restart cost per failure), ``interval``
    (checkpoint period) and ``dump`` (cost per checkpoint dump); ``None``
    and ``"none"`` mean the fault-free machine.

    >>> parse_fault_model("mtbf:2e9/repair:1e6/interval:1e6/dump:5e3").mtbf_us
    2000000000.0
    >>> parse_fault_model("interval:1e6/dump:5e3").fails
    False
    >>> parse_fault_model("none") is None
    True
    """
    if text is None or isinstance(text, FaultModel):
        return text
    cleaned = text.strip().lower()
    if cleaned in ("", "none"):
        return None
    kwargs = {}
    for item in cleaned.split("/"):
        key, sep, value = item.partition(":")
        if not sep or key not in _FAULT_KEYS:
            raise ValueError(
                f"unknown fault model {text!r}; expected 'none' or "
                "slash-separated 'key:value' pairs with keys "
                "'mtbf', 'repair', 'restart', 'interval', 'dump' "
                "(all microseconds), e.g. 'mtbf:2e9/interval:1e6/dump:5e3'"
            )
        try:
            kwargs[_FAULT_KEYS[key]] = float(value)
        except ValueError as exc:
            raise ValueError(f"invalid fault model {text!r}: {exc}") from exc
    return FaultModel(**kwargs)


def parse_slowdown_windows(
    text: Union[str, Tuple[SlowdownWindow, ...], None],
) -> Tuple[SlowdownWindow, ...]:
    """Parse the campaign/CLI time-varying slowdown-window syntax.

    Each semicolon-separated entry is ``"<start>-<end>x<factor>"`` with an
    optional ``"@<i,j,...>"`` node-index suffix (no suffix applies to every
    node); times are microseconds.  ``None`` and ``"none"`` mean no windows.

    >>> [w.factor for w in parse_slowdown_windows("0-1e6x2.0;2e6-3e6x1.5@0,3")]
    [2.0, 1.5]
    >>> parse_slowdown_windows("0-1e6x2.0@1")[0].nodes
    (1,)
    >>> parse_slowdown_windows("none")
    ()
    """
    if text is None:
        return ()
    if isinstance(text, tuple):
        return text
    cleaned = text.strip().lower()
    if cleaned in ("", "none"):
        return ()
    windows = []
    for entry in cleaned.split(";"):
        body, _, nodes_text = entry.partition("@")
        span, sep, factor = body.partition("x")
        start, span_sep, end = span.partition("-")
        if not sep or not span_sep:
            raise ValueError(
                f"unknown slowdown window {entry!r}; expected "
                "'<start_us>-<end_us>x<factor>[@<i,j,...>]' entries "
                "separated by ';' (or 'none')"
            )
        try:
            nodes = tuple(
                int(item) for item in nodes_text.split(",") if item
            )
            windows.append(
                SlowdownWindow(
                    start_us=float(start),
                    end_us=float(end),
                    factor=float(factor),
                    nodes=nodes,
                )
            )
        except ValueError as exc:
            raise ValueError(f"invalid slowdown window {entry!r}: {exc}") from exc
    return tuple(windows)


# ---------------------------------------------------------------------------
# Declarative composition
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlatformSpec:
    """A machine scenario: base platform + heterogeneity extensions.

    All fields accept either parsed objects or their string forms, so specs
    round-trip through JSON (:meth:`from_dict`).  ``build`` resolves the
    base name through :func:`repro.platforms.get_platform` and layers the
    extensions on top.
    """

    base: str = "cray-xt4"
    name: Optional[str] = None
    cores_per_node: Optional[int] = None
    buses_per_node: Optional[int] = None
    cores_per_chip: Optional[int] = None
    intra_node_latency_us: Optional[float] = None
    intra_node_overhead_us: Optional[float] = None
    intra_node_gap_per_byte_us: Optional[float] = None
    speed_profile: Union[str, SpeedProfile, None] = None
    noise: Union[str, NoiseModel, None] = None
    slowdown_windows: Union[str, Tuple[SlowdownWindow, ...], None] = None
    faults: Union[str, FaultModel, None] = None

    def build(self) -> Platform:
        """Resolve the spec into a concrete :class:`Platform`."""
        from repro.platforms import get_platform  # late import: avoids a cycle

        platform = get_platform(self.base)
        if self.cores_per_node is not None:
            platform = platform.with_cores_per_node(
                self.cores_per_node, self.buses_per_node or 1
            )
        if self.cores_per_chip is not None:
            if self.intra_node_overhead_us is None:
                raise ValueError(
                    "a chip subdivision needs intra-node link parameters "
                    "(at least intra_node_overhead_us)"
                )
            intra = OffNodeParams(
                latency=self.intra_node_latency_us or 0.0,
                overhead=self.intra_node_overhead_us,
                gap_per_byte=self.intra_node_gap_per_byte_us or 0.0,
                eager_limit=platform.off_node.eager_limit,
            )
            platform = platform.with_hierarchy(self.cores_per_chip, intra)
        profile = parse_speed_profile(self.speed_profile)
        windows = parse_slowdown_windows(self.slowdown_windows)
        if windows:
            from dataclasses import replace

            profile = replace(profile or SpeedProfile(), windows=windows)
        if profile is not None:
            platform = platform.with_speed_profile(profile)
        noise = parse_noise_model(self.noise)
        if noise is not None:
            platform = platform.with_noise(noise)
        fault_model = parse_fault_model(self.faults)
        if fault_model is not None:
            platform = platform.with_faults(fault_model)
        if self.name is not None:
            from dataclasses import replace

            platform = replace(platform, name=self.name)
        return platform

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        """Build a spec from a plain dict; unknown keys fail loudly."""
        known = {field for field in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown platform spec field(s) {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**dict(data))


# ---------------------------------------------------------------------------
# Introspection (CLI `platform describe`)
# ---------------------------------------------------------------------------

def describe_platform(platform: Platform) -> dict[str, Any]:
    """A JSON-serialisable description of every model-relevant parameter."""
    record: dict[str, Any] = {
        "name": platform.name,
        "cores_per_node": platform.node.cores_per_node,
        "buses_per_node": platform.node.buses_per_node,
        "chips_per_node": platform.node.chips_per_node,
        "cores_per_chip": platform.node.cores_per_chip,
        "compute_scale": platform.compute_scale,
        "is_multicore": platform.is_multicore,
        "is_hierarchical": platform.is_hierarchical,
        "is_homogeneous": platform.is_homogeneous,
        "off_node": {
            "latency_us": platform.off_node.latency,
            "overhead_us": platform.off_node.overhead,
            "gap_per_byte_us": platform.off_node.gap_per_byte,
            "handshake_overhead_us": platform.off_node.handshake_overhead,
            "eager_limit_bytes": platform.off_node.eager_limit,
        },
    }
    if platform.on_chip is not None:
        record["on_chip"] = {
            "copy_overhead_us": platform.on_chip.copy_overhead,
            "dma_setup_us": platform.on_chip.dma_setup,
            "gap_per_byte_copy_us": platform.on_chip.gap_per_byte_copy,
            "gap_per_byte_dma_us": platform.on_chip.gap_per_byte_dma,
            "eager_limit_bytes": platform.on_chip.eager_limit,
        }
    if platform.intra_node is not None:
        record["intra_node"] = {
            "latency_us": platform.intra_node.latency,
            "overhead_us": platform.intra_node.overhead,
            "gap_per_byte_us": platform.intra_node.gap_per_byte,
            "eager_limit_bytes": platform.intra_node.eager_limit,
        }
    if platform.speed_profile is not None:
        record["speed_profile"] = {
            "baseline": platform.speed_profile.baseline,
            "slowdown": platform.speed_profile.slowdown,
            "slow_nodes": list(platform.speed_profile.slow_nodes),
        }
        if platform.speed_profile.windows:
            record["speed_profile"]["windows"] = [
                {
                    "start_us": window.start_us,
                    "end_us": window.end_us,
                    "factor": window.factor,
                    "nodes": list(window.nodes),
                }
                for window in platform.speed_profile.windows
            ]
    if platform.noise is not None:
        noise = platform.noise
        record["noise"] = {
            "model": type(noise).__name__,
            "mean_inflation": noise.mean_inflation(),
            "stochastic": noise.is_stochastic,
        }
    if platform.faults is not None:
        faults = platform.faults
        record["faults"] = {
            # infinities become null so the record stays strict JSON
            "mtbf_us": None if math.isinf(faults.mtbf_us) else faults.mtbf_us,
            "repair_us": faults.repair_us,
            "restart_us": faults.restart_us,
            "checkpoint_interval_us": (
                None
                if math.isinf(faults.checkpoint_interval_us)
                else faults.checkpoint_interval_us
            ),
            "checkpoint_cost_us": faults.checkpoint_cost_us,
            "checkpoint_inflation": faults.checkpoint_inflation(),
        }
    return record
