"""IBM SP/2 platform parameters.

Section 3.1 of the paper compares the fitted Cray XT4 constants against the
IBM SP/2 values reported by Sundaram-Stukel & Vernon (PPoPP'99):
``G = 0.07 µs/byte``, ``L = 23 µs`` and ``o = 23 µs`` - one to two orders of
magnitude slower than the XT4.  The SP/2 is a single-core-per-node machine,
so it carries no on-chip parameters.

The SP/2 platform is used in this reproduction to show that the plug-and-play
model recovers the qualitative conclusions of the earlier work, e.g. that the
optimal tile height ``Htile`` is larger (5-10) on a platform with expensive
communication than on the XT4 (2-5), and that synchronisation terms matter on
the SP/2 but are negligible on the XT4.
"""

from __future__ import annotations

from repro.core.loggp import NodeArchitecture, OffNodeParams, Platform

#: SP/2 gap per byte, µs/byte (from Sundaram-Stukel & Vernon [3]).
SP2_G: float = 0.07
#: SP/2 latency, µs.
SP2_L: float = 23.0
#: SP/2 send/receive overhead, µs.
SP2_O: float = 23.0
#: The SP/2 MPI also switches protocol around 1 KiB; we keep the same eager
#: limit so the model equations remain comparable across platforms.
SP2_EAGER_LIMIT: int = 1024


def ibm_sp2() -> Platform:
    """The IBM SP/2 as characterised in Sundaram-Stukel & Vernon [3]."""
    return Platform(
        name="ibm-sp2",
        off_node=OffNodeParams(
            latency=SP2_L,
            overhead=SP2_O,
            gap_per_byte=SP2_G,
            handshake_overhead=0.0,
            eager_limit=SP2_EAGER_LIMIT,
        ),
        on_chip=None,
        node=NodeArchitecture(cores_per_node=1, buses_per_node=1),
    )
