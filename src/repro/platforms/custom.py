"""Builder and registry for hypothetical platforms.

The model's whole point is "plug-and-play": procurement studies evaluate
machines that do not exist yet.  ``custom_platform`` builds a
:class:`~repro.core.loggp.Platform` from raw LogGP numbers, and the registry
maps short names (usable from the CLI and from example scripts) to factory
functions.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.loggp import NodeArchitecture, OffNodeParams, OnChipParams, Platform
from repro.platforms.sp2 import ibm_sp2
from repro.platforms.xt4 import (
    cray_xt3,
    cray_xt4,
    cray_xt4_quad_chip,
    cray_xt4_single_core,
)


def custom_platform(
    name: str,
    *,
    latency_us: float,
    overhead_us: float,
    gap_per_byte_us: float,
    eager_limit_bytes: int = 1024,
    handshake_overhead_us: float = 0.0,
    cores_per_node: int = 1,
    buses_per_node: int = 1,
    onchip_copy_overhead_us: Optional[float] = None,
    onchip_dma_setup_us: Optional[float] = None,
    onchip_gap_copy_us: Optional[float] = None,
    onchip_gap_dma_us: Optional[float] = None,
    compute_scale: float = 1.0,
) -> Platform:
    """Construct a platform from raw LogGP constants.

    On-chip parameters are required when ``cores_per_node > 1``; when only
    some of them are given, the remainder default to scaled versions of the
    off-node constants (half the overhead, the same gap), which is a
    reasonable first-order guess for a machine whose intra-node path has not
    been measured.
    """
    off_node = OffNodeParams(
        latency=latency_us,
        overhead=overhead_us,
        gap_per_byte=gap_per_byte_us,
        handshake_overhead=handshake_overhead_us,
        eager_limit=eager_limit_bytes,
    )
    on_chip: Optional[OnChipParams] = None
    any_onchip = any(
        value is not None
        for value in (
            onchip_copy_overhead_us,
            onchip_dma_setup_us,
            onchip_gap_copy_us,
            onchip_gap_dma_us,
        )
    )
    if cores_per_node > 1 or any_onchip:
        copy_overhead = (
            onchip_copy_overhead_us
            if onchip_copy_overhead_us is not None
            else overhead_us / 2.0
        )
        dma_setup = (
            onchip_dma_setup_us if onchip_dma_setup_us is not None else overhead_us / 2.0
        )
        gap_copy = (
            onchip_gap_copy_us if onchip_gap_copy_us is not None else gap_per_byte_us
        )
        gap_dma = (
            onchip_gap_dma_us
            if onchip_gap_dma_us is not None
            else gap_per_byte_us / 2.0
        )
        on_chip = OnChipParams(
            copy_overhead=copy_overhead,
            dma_setup=dma_setup,
            gap_per_byte_copy=gap_copy,
            gap_per_byte_dma=gap_dma,
            eager_limit=eager_limit_bytes,
        )
    return Platform(
        name=name,
        off_node=off_node,
        on_chip=on_chip,
        node=NodeArchitecture(
            cores_per_node=cores_per_node, buses_per_node=buses_per_node
        ),
        compute_scale=compute_scale,
    )


#: Registry of named platform factories, used by the CLI and the examples.
platform_registry: Dict[str, Callable[[], Platform]] = {
    "cray-xt4": cray_xt4,
    "cray-xt4-1core": cray_xt4_single_core,
    "cray-xt4-quad-chip": cray_xt4_quad_chip,
    "cray-xt3": cray_xt3,
    "ibm-sp2": ibm_sp2,
}


def get_platform(name: str) -> Platform:
    """Look up a platform by registry name.

    Raises ``KeyError`` with the list of known names when the name is
    unknown, which gives the CLI a helpful error message for free.
    """
    try:
        factory = platform_registry[name]
    except KeyError as exc:
        known = ", ".join(sorted(platform_registry))
        raise KeyError(f"unknown platform {name!r}; known platforms: {known}") from exc
    return factory()
