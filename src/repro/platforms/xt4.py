"""Cray XT3/XT4 platform parameters (Table 2 of the paper).

The XT4 at ORNL has dual-core 2.6 GHz Opteron nodes connected by a 3-D torus
(SeaStar interconnect).  Section 3 of the paper fits the LogGP constants
below from ping-pong measurements; Table 2 reports:

=============  ==========  =================  ===========
Off-node       Value       On-chip            Value
=============  ==========  =================  ===========
``G``          0.0004      ``Gcopy``          0.000789
``L``          0.305 µs    ``Gdma``           0.000072
``o``          3.92 µs     ``o``              3.80 µs
..             ..          ``ocopy``          1.98 µs
=============  ==========  =================  ===========

(µs/byte for the gap parameters).  The on-chip DMA setup time is
``odma = o - ocopy = 1.82 µs``.  1/G corresponds to an inter-node bandwidth
of 2.5 GB/s.
"""

from __future__ import annotations

from repro.core.loggp import NodeArchitecture, OffNodeParams, OnChipParams, Platform

#: Fitted off-node gap per byte, µs/byte (Table 2).
XT4_G: float = 0.0004
#: Fitted off-node latency, µs (Table 2).
XT4_L: float = 0.305
#: Fitted off-node overhead, µs (Table 2).
XT4_O: float = 3.92

#: Fitted on-chip copy gap per byte, µs/byte (Table 2).
XT4_G_COPY: float = 0.000789
#: Fitted on-chip DMA gap per byte, µs/byte (Table 2).
XT4_G_DMA: float = 0.000072
#: Fitted on-chip large-message overhead ``o = ocopy + odma``, µs (Table 2).
XT4_O_ONCHIP: float = 3.80
#: Fitted on-chip copy overhead, µs (Table 2).
XT4_O_COPY: float = 1.98
#: Derived on-chip DMA setup time, µs.
XT4_O_DMA: float = XT4_O_ONCHIP - XT4_O_COPY

#: Eager -> rendezvous protocol switch observed at 1 KiB (Section 3.1).
XT4_EAGER_LIMIT: int = 1024


def _xt4_off_node() -> OffNodeParams:
    return OffNodeParams(
        latency=XT4_L,
        overhead=XT4_O,
        gap_per_byte=XT4_G,
        handshake_overhead=0.0,
        eager_limit=XT4_EAGER_LIMIT,
    )


def _xt4_on_chip() -> OnChipParams:
    return OnChipParams(
        copy_overhead=XT4_O_COPY,
        dma_setup=XT4_O_DMA,
        gap_per_byte_copy=XT4_G_COPY,
        gap_per_byte_dma=XT4_G_DMA,
        eager_limit=XT4_EAGER_LIMIT,
    )


def cray_xt4(cores_per_node: int = 2, buses_per_node: int = 1) -> Platform:
    """The ORNL Cray XT4 with dual-core nodes (the paper's validation machine).

    ``cores_per_node`` / ``buses_per_node`` may be overridden to reproduce
    the Section 5.3 multi-core design study (Figure 10), which extrapolates
    the same communication constants to 1-16 cores per node and to nodes
    with one bus/NIC per group of four cores.
    """
    return Platform(
        name="cray-xt4" if cores_per_node == 2 else f"cray-xt4-{cores_per_node}core",
        off_node=_xt4_off_node(),
        on_chip=_xt4_on_chip(),
        node=NodeArchitecture(
            cores_per_node=cores_per_node, buses_per_node=buses_per_node
        ),
    )


def cray_xt4_single_core() -> Platform:
    """An XT4 configuration using only one core of each node.

    The paper's Section 4.2 model ("one core per node") and parts of the
    Section 5 studies use this configuration: all communication is off-node
    and there is no bus contention.
    """
    return Platform(
        name="cray-xt4-1core",
        off_node=_xt4_off_node(),
        on_chip=_xt4_on_chip(),
        node=NodeArchitecture(cores_per_node=1, buses_per_node=1),
    )


def cray_xt4_quad_chip() -> Platform:
    """A hypothetical quad-core XT4 node built from two dual-core chips.

    The Section 5.3 design studies extrapolate the XT4 constants to larger
    nodes; this variant additionally models the node as *two chips on an
    intra-node link* (think two sockets over HyperTransport): messages
    between the chips pay an intermediate LogGP parameterisation - half the
    off-node overhead, a quarter of its latency, half its gap - instead of
    the shared-memory on-chip costs.  It is the built-in example of a
    three-level hierarchical platform (see ``docs/platforms.md``).
    """
    intra_node = OffNodeParams(
        latency=XT4_L / 4.0,
        overhead=XT4_O / 2.0,
        gap_per_byte=XT4_G / 2.0,
        handshake_overhead=0.0,
        eager_limit=XT4_EAGER_LIMIT,
    )
    return Platform(
        name="cray-xt4-quad-chip",
        off_node=_xt4_off_node(),
        on_chip=_xt4_on_chip(),
        node=NodeArchitecture(
            cores_per_node=4, buses_per_node=1, cores_per_chip=2
        ),
        intra_node=intra_node,
    )


def cray_xt3(cores_per_node: int = 2) -> Platform:
    """The Cray XT3 partition (same SeaStar interconnect, same constants).

    The paper validates on a mixed XT3/XT4; for modelling purposes the two
    share the communication parameters, so this is an alias with a different
    name to keep experiment records explicit.
    """
    platform = cray_xt4(cores_per_node=cores_per_node)
    return Platform(
        name="cray-xt3",
        off_node=platform.off_node,
        on_chip=platform.on_chip,
        node=platform.node,
    )
