"""Shared-memory wavefront execution of the real kernels.

The performance model and the discrete-event simulator reason about the
wavefront dependency structure abstractly; this module *executes* it, on one
machine, with the real numpy kernels of :mod:`repro.kernels.transport` and
:mod:`repro.kernels.ssor`:

* the data grid is partitioned over a logical processor array exactly as in
  Figure 1(a);
* each (processor, tile) pair becomes a task whose dependencies are its
  upstream-x, upstream-y and previous-tile tasks - the same DAG the MPI code
  creates with its blocking sends and receives;
* tasks run either serially in wavefront (dependency-level) order or on a
  thread pool that releases a task the moment its dependencies finish.

Running the decomposed execution and checking it reproduces the whole-grid
reference sweep bit for bit is the correctness argument that the dependency
structure encoded in the rest of the library (and hence in the model) is the
right one.  The executor also reports how many dependency levels (pipeline
steps) the run needed, which equals ``n + m - 2 + #tiles`` - the quantity at
the heart of every wavefront performance model.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.decomposition import Corner, ProblemSize, ProcessorGrid
from repro.kernels.grid import Subdomain, partition
from repro.kernels.ssor import SsorParameters, lower_sweep_block, upper_sweep_block
from repro.kernels.transport import AngleSet, sweep_cell_block

__all__ = [
    "ExecutionReport",
    "WavefrontTaskGraph",
    "distributed_transport_sweep",
    "distributed_ssor_iteration",
]

TaskId = Tuple[int, int, int]  # (i, j, tile)


@dataclass
class ExecutionReport:
    """Bookkeeping from one executed sweep."""

    tasks_executed: int
    dependency_levels: int
    mode: str

    @property
    def pipeline_steps(self) -> int:
        """Alias matching the wavefront-model terminology."""
        return self.dependency_levels


@dataclass
class WavefrontTaskGraph:
    """The (processor, tile) task DAG of one sweep.

    ``origin`` selects the corner the sweep starts from; dependencies always
    point from a task to its upstream-x, upstream-y and previous-tile tasks
    relative to that origin.
    """

    grid: ProcessorGrid
    tiles: int
    origin: Corner = Corner.NORTH_WEST

    def __post_init__(self) -> None:
        if self.tiles < 1:
            raise ValueError("tiles must be >= 1")

    def _direction(self) -> Tuple[int, int, int, int]:
        oi, oj = self.grid.corner_position(self.origin)
        dx = 1 if oi == 1 else -1
        dy = 1 if oj == 1 else -1
        return oi, oj, dx, dy

    def dependencies(self, task: TaskId) -> List[TaskId]:
        i, j, t = task
        oi, oj, dx, dy = self._direction()
        deps: List[TaskId] = []
        if i != oi:
            deps.append((i - dx, j, t))
        if j != oj:
            deps.append((i, j - dy, t))
        if t > 0:
            deps.append((i, j, t - 1))
        return deps

    def level(self, task: TaskId) -> int:
        """Dependency depth of a task (its earliest possible pipeline step)."""
        i, j, t = task
        oi, oj, _, _ = self._direction()
        return abs(i - oi) + abs(j - oj) + t

    def tasks(self) -> List[TaskId]:
        return [
            (i, j, t)
            for t in range(self.tiles)
            for (i, j) in self.grid.positions()
        ]

    def total_levels(self) -> int:
        return (self.grid.n - 1) + (self.grid.m - 1) + self.tiles

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        kernel: Callable[[TaskId], None],
        *,
        threads: Optional[int] = None,
    ) -> ExecutionReport:
        """Execute every task, respecting dependencies.

        ``kernel(task)`` performs the real computation for one (processor,
        tile); it must only read data produced by the task's dependencies.
        With ``threads=None`` tasks run serially in dependency-level order;
        with ``threads >= 1`` a thread pool executes tasks as their
        dependencies complete (dependencies are enforced by the scheduler, so
        kernels need no locking for their own block data).
        """
        all_tasks = self.tasks()
        if threads is None:
            for task in sorted(all_tasks, key=self.level):
                kernel(task)
            return ExecutionReport(
                tasks_executed=len(all_tasks),
                dependency_levels=self.total_levels(),
                mode="serial",
            )
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return self._run_threaded(kernel, all_tasks, threads)

    def _run_threaded(
        self,
        kernel: Callable[[TaskId], None],
        all_tasks: List[TaskId],
        threads: int,
    ) -> ExecutionReport:
        remaining: Dict[TaskId, int] = {}
        dependents: Dict[TaskId, List[TaskId]] = {task: [] for task in all_tasks}
        for task in all_tasks:
            deps = self.dependencies(task)
            remaining[task] = len(deps)
            for dep in deps:
                dependents[dep].append(task)

        lock = threading.Lock()
        errors: List[BaseException] = []
        done = threading.Event()
        completed = 0
        total = len(all_tasks)

        executor = ThreadPoolExecutor(max_workers=threads)

        def submit(task: TaskId) -> None:
            executor.submit(run_task, task)

        def run_task(task: TaskId) -> None:
            nonlocal completed
            try:
                kernel(task)
            except BaseException as exc:  # propagate kernel failures to the caller
                with lock:
                    errors.append(exc)
                done.set()
                return
            ready: List[TaskId] = []
            with lock:
                completed += 1
                if completed == total:
                    done.set()
                for child in dependents[task]:
                    remaining[child] -= 1
                    if remaining[child] == 0:
                        ready.append(child)
            for child in ready:
                submit(child)

        roots = [task for task in all_tasks if remaining[task] == 0]
        try:
            for task in roots:
                submit(task)
            done.wait()
        finally:
            executor.shutdown(wait=True)
        if errors:
            raise errors[0]
        if completed != total:
            raise RuntimeError(
                f"wavefront execution incomplete: {completed}/{total} tasks ran"
            )
        return ExecutionReport(
            tasks_executed=total,
            dependency_levels=self.total_levels(),
            mode=f"threads={threads}",
        )


# ---------------------------------------------------------------------------
# Concrete drivers
# ---------------------------------------------------------------------------

def _tile_ranges(nz: int, htile: int) -> List[Tuple[int, int]]:
    if htile < 1:
        raise ValueError("htile must be >= 1")
    return [(z, min(z + htile, nz)) for z in range(0, nz, htile)]


def distributed_transport_sweep(
    source: np.ndarray,
    sigma: np.ndarray,
    angles: AngleSet,
    grid: ProcessorGrid,
    *,
    htile: int = 1,
    threads: Optional[int] = None,
) -> Tuple[np.ndarray, ExecutionReport]:
    """Run one transport sweep decomposed over ``grid`` with tiles of ``htile``.

    Returns the assembled global scalar flux and the execution report.  The
    result is identical (bit for bit) to :func:`repro.kernels.transport.
    sweep_full_grid` on the undecomposed arrays, which the tests assert.
    """
    if source.ndim != 3 or sigma.shape != source.shape:
        raise ValueError("source and sigma must be 3-D arrays of equal shape")
    nx, ny, nz = source.shape
    problem = ProblemSize(nx, ny, nz)
    blocks = partition(problem, grid)
    tile_ranges = _tile_ranges(nz, htile)
    scalar_flux = np.zeros_like(source)
    nang = angles.count

    # Boundary faces exchanged between tasks, keyed by the *consuming* task.
    faces_x: Dict[TaskId, np.ndarray] = {}
    faces_y: Dict[TaskId, np.ndarray] = {}
    faces_z: Dict[Tuple[int, int, int], np.ndarray] = {}
    store_lock = threading.Lock()

    def kernel(task: TaskId) -> None:
        i, j, t = task
        block: Subdomain = blocks[j - 1][i - 1]
        z0, z1 = tile_ranges[t]
        with store_lock:
            inc_x = faces_x.pop(task, None)
            inc_y = faces_y.pop(task, None)
            inc_z = faces_z.pop(task, None)
        if inc_x is None:
            inc_x = np.zeros((block.ny, z1 - z0, nang))
        if inc_y is None:
            inc_y = np.zeros((block.nx, z1 - z0, nang))
        if inc_z is None:
            inc_z = np.zeros((block.nx, block.ny, nang))
        sub_source = source[block.x_range[0] : block.x_range[1], block.y_range[0] : block.y_range[1], z0:z1]
        sub_sigma = sigma[block.x_range[0] : block.x_range[1], block.y_range[0] : block.y_range[1], z0:z1]
        result = sweep_cell_block(
            sub_source,
            sub_sigma,
            angles,
            incoming_x=inc_x,
            incoming_y=inc_y,
            incoming_z=inc_z,
        )
        scalar_flux[
            block.x_range[0] : block.x_range[1],
            block.y_range[0] : block.y_range[1],
            z0:z1,
        ] = result.scalar_flux
        with store_lock:
            if i < grid.n:
                faces_x[(i + 1, j, t)] = result.outgoing_x
            if j < grid.m:
                faces_y[(i, j + 1, t)] = result.outgoing_y
            if t + 1 < len(tile_ranges):
                faces_z[(i, j, t + 1)] = result.outgoing_z

    graph = WavefrontTaskGraph(grid=grid, tiles=len(tile_ranges), origin=Corner.NORTH_WEST)
    report = graph.run(kernel, threads=threads)
    return scalar_flux, report


def distributed_ssor_iteration(
    values: np.ndarray,
    rhs: np.ndarray,
    grid: ProcessorGrid,
    *,
    params: SsorParameters = SsorParameters(),
    threads: Optional[int] = None,
) -> Tuple[np.ndarray, ExecutionReport, ExecutionReport]:
    """One LU SSOR iteration (lower + upper sweep) decomposed over ``grid``.

    The upper sweep's task graph is only built after the lower sweep has
    completed on every block - the executable counterpart of LU's
    ``nfull = 2`` precedence.  Returns the updated field and the two sweeps'
    execution reports; the result matches
    :func:`repro.kernels.ssor.ssor_iteration` exactly.
    """
    if values.ndim != 3 or rhs.shape != values.shape:
        raise ValueError("values and rhs must be 3-D arrays of equal shape")
    nx, ny, nz = values.shape
    problem = ProblemSize(nx, ny, nz)
    blocks = partition(problem, grid)
    state = values.copy()
    store_lock = threading.Lock()

    def make_kernel(reverse: bool) -> Callable[[TaskId], None]:
        faces_x: Dict[TaskId, np.ndarray] = {}
        faces_y: Dict[TaskId, np.ndarray] = {}
        sweep = upper_sweep_block if reverse else lower_sweep_block
        step = -1 if reverse else 1

        def kernel(task: TaskId) -> None:
            i, j, _t = task
            block: Subdomain = blocks[j - 1][i - 1]
            with store_lock:
                inc_x = faces_x.pop(task, None)
                inc_y = faces_y.pop(task, None)
            sub_values = state[
                block.x_range[0] : block.x_range[1],
                block.y_range[0] : block.y_range[1],
                :,
            ]
            sub_rhs = rhs[
                block.x_range[0] : block.x_range[1],
                block.y_range[0] : block.y_range[1],
                :,
            ]
            updated, face_x, face_y, _face_z = sweep(
                sub_values, sub_rhs, params, incoming_x=inc_x, incoming_y=inc_y
            )
            state[
                block.x_range[0] : block.x_range[1],
                block.y_range[0] : block.y_range[1],
                :,
            ] = updated
            with store_lock:
                if 1 <= i + step <= grid.n:
                    faces_x[(i + step, j, 0)] = face_x
                if 1 <= j + step <= grid.m:
                    faces_y[(i, j + step, 0)] = face_y

        return kernel

    lower_graph = WavefrontTaskGraph(grid=grid, tiles=1, origin=Corner.NORTH_WEST)
    lower_report = lower_graph.run(make_kernel(reverse=False), threads=threads)
    upper_graph = WavefrontTaskGraph(grid=grid, tiles=1, origin=Corner.SOUTH_EAST)
    upper_report = upper_graph.run(make_kernel(reverse=True), threads=threads)
    return state, lower_report, upper_report
