"""Stencil kernels for the inter-iteration (non-wavefront) work.

LU's ``Tnonwavefront`` is a stencil-based right-hand-side update performed
between the two triangular sweeps of the next iteration.  The kernel here is
a standard 7-point (3-D) / 5-point (per-plane) update, fully vectorised with
numpy - unlike the sweeps it carries no sequential dependency, which is
precisely why the paper models it separately from the wavefront part.
"""

from __future__ import annotations

import numpy as np

__all__ = ["seven_point_stencil", "residual_norm"]


def seven_point_stencil(
    values: np.ndarray, *, alpha: float = 0.5, beta: float = 1.0
) -> np.ndarray:
    """One Jacobi-style 7-point stencil update.

    ``out = beta * values - alpha/6 * sum(face neighbours)`` with zero
    (Dirichlet) exterior boundaries.  The array is not modified in place.
    """
    if values.ndim != 3:
        raise ValueError("seven_point_stencil expects a 3-D array")
    out = beta * values.copy()
    accum = np.zeros_like(values)
    accum[1:, :, :] += values[:-1, :, :]
    accum[:-1, :, :] += values[1:, :, :]
    accum[:, 1:, :] += values[:, :-1, :]
    accum[:, :-1, :] += values[:, 1:, :]
    accum[:, :, 1:] += values[:, :, :-1]
    accum[:, :, :-1] += values[:, :, 1:]
    out -= (alpha / 6.0) * accum
    return out


def residual_norm(values: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square difference, the quantity the benchmarks all-reduce."""
    if values.shape != reference.shape:
        raise ValueError("arrays must have the same shape")
    diff = values - reference
    return float(np.sqrt(np.mean(diff * diff)))
