"""Real numpy kernels and a shared-memory wavefront executor.

These are the executable counterparts of the work the performance model
abstracts into ``Wg``:

* :mod:`repro.kernels.transport` - diamond-difference discrete-ordinates
  sweep (Sweep3D / Chimaera style work);
* :mod:`repro.kernels.ssor` - SSOR lower/upper triangular sweeps (LU);
* :mod:`repro.kernels.stencil` - the inter-iteration stencil update;
* :mod:`repro.kernels.grid` - grid partitioning and tiling;
* :mod:`repro.kernels.executor` - a dependency-driven (serial or threaded)
  executor that runs the decomposed sweeps and is checked against the
  whole-grid reference implementations.

They are used by the test suite (to show the dependency structure is
correct) and by :mod:`repro.calibration.workrate` (to measure ``Wg`` rather
than assume it).
"""

from repro.kernels.grid import Grid3D, Subdomain, block_bounds, partition
from repro.kernels.ssor import (
    SsorParameters,
    lower_sweep_block,
    ssor_iteration,
    upper_sweep_block,
)
from repro.kernels.stencil import residual_norm, seven_point_stencil
from repro.kernels.transport import AngleSet, SweepResult, sweep_cell_block, sweep_full_grid
from repro.kernels.executor import (
    ExecutionReport,
    WavefrontTaskGraph,
    distributed_ssor_iteration,
    distributed_transport_sweep,
)

__all__ = [
    "Grid3D",
    "Subdomain",
    "block_bounds",
    "partition",
    "SsorParameters",
    "lower_sweep_block",
    "ssor_iteration",
    "upper_sweep_block",
    "residual_norm",
    "seven_point_stencil",
    "AngleSet",
    "SweepResult",
    "sweep_cell_block",
    "sweep_full_grid",
    "ExecutionReport",
    "WavefrontTaskGraph",
    "distributed_ssor_iteration",
    "distributed_transport_sweep",
]
