"""3-D data grids, block decomposition and tiling.

The kernels in this package operate on small, real numpy grids so that the
wavefront *data dependencies* the performance model reasons about can be
executed and checked for correctness, and so that per-cell work rates
(``Wg``) can be measured rather than assumed.

A :class:`Grid3D` is the global ``Nx x Ny x Nz`` cell array; it can be
partitioned into a 2-D array of :class:`Subdomain` blocks (the same
decomposition as Figure 1(a) of the paper) and each block split into tiles of
``Htile`` planes in ``z``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.core.decomposition import ProblemSize, ProcessorGrid

__all__ = ["Grid3D", "Subdomain", "partition", "block_bounds"]


def block_bounds(extent: int, blocks: int, index: int) -> Tuple[int, int]:
    """Half-open ``[start, stop)`` bounds of block ``index`` out of ``blocks``.

    Cells are distributed as evenly as possible; the first ``extent % blocks``
    blocks get one extra cell, matching the convention of the benchmarks.
    """
    if blocks < 1 or not 0 <= index < blocks:
        raise ValueError("invalid block index")
    base = extent // blocks
    extra = extent % blocks
    start = index * base + min(index, extra)
    size = base + (1 if index < extra else 0)
    return start, start + size


@dataclass
class Grid3D:
    """A global 3-D cell array with one value per cell."""

    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.ndim != 3:
            raise ValueError("Grid3D requires a 3-D array")

    @classmethod
    def zeros(cls, problem: ProblemSize, dtype=np.float64) -> "Grid3D":
        return cls(np.zeros((problem.nx, problem.ny, problem.nz), dtype=dtype))

    @classmethod
    def random(cls, problem: ProblemSize, seed: int = 0) -> "Grid3D":
        rng = np.random.default_rng(seed)
        return cls(rng.random((problem.nx, problem.ny, problem.nz)))

    @property
    def problem(self) -> ProblemSize:
        nx, ny, nz = self.values.shape
        return ProblemSize(nx, ny, nz)

    def copy(self) -> "Grid3D":
        return Grid3D(self.values.copy())


@dataclass
class Subdomain:
    """One processor's block of the global grid.

    ``i``/``j`` are the (1-based) grid-position of the owning processor,
    ``x_range``/``y_range`` the half-open global index ranges it owns.
    """

    i: int
    j: int
    x_range: Tuple[int, int]
    y_range: Tuple[int, int]
    nz: int

    @property
    def nx(self) -> int:
        return self.x_range[1] - self.x_range[0]

    @property
    def ny(self) -> int:
        return self.y_range[1] - self.y_range[0]

    @property
    def cells(self) -> int:
        return self.nx * self.ny * self.nz

    def view(self, grid: Grid3D) -> np.ndarray:
        """A writable view of this subdomain's cells in the global array."""
        return grid.values[
            self.x_range[0] : self.x_range[1],
            self.y_range[0] : self.y_range[1],
            :,
        ]

    def tiles(self, htile: int) -> Iterator[Tuple[int, int]]:
        """Half-open ``z`` ranges of the tiles of height ``htile`` (bottom-up)."""
        if htile < 1:
            raise ValueError("htile must be >= 1")
        z = 0
        while z < self.nz:
            yield (z, min(z + htile, self.nz))
            z += htile


def partition(problem: ProblemSize, grid: ProcessorGrid) -> List[List[Subdomain]]:
    """Partition ``problem`` over ``grid`` (Figure 1(a) decomposition).

    Returns a ``grid.m x grid.n`` nested list indexed ``[j-1][i-1]``.
    """
    rows: List[List[Subdomain]] = []
    for j in range(1, grid.m + 1):
        row: List[Subdomain] = []
        y_range = block_bounds(problem.ny, grid.m, j - 1)
        for i in range(1, grid.n + 1):
            x_range = block_bounds(problem.nx, grid.n, i - 1)
            row.append(
                Subdomain(i=i, j=j, x_range=x_range, y_range=y_range, nz=problem.nz)
            )
        rows.append(row)
    return rows
