"""SSOR lower/upper triangular sweeps (the LU benchmark's wavefront work).

The NAS LU benchmark solves the Navier-Stokes equations with a symmetric
successive over-relaxation scheme whose two halves are wavefront sweeps: the
lower-triangular solve updates each cell from its already-updated west,
south and below neighbours, and the upper-triangular solve runs back from the
opposite corner.  This module implements a scalar model problem with the same
dependency structure:

lower sweep:  ``v[x,y,z] <- (1-omega) v[x,y,z]
                 + omega (rhs[x,y,z] + a (v[x-1,y,z] + v[x,y-1,z] + v[x,y,z-1])) / d``

upper sweep:  the mirror image from the high corner.

Like the transport kernel, the point is not CFD fidelity but a real,
executable embodiment of LU's data dependencies (including the fact that the
second sweep cannot start until the first has fully completed), usable for
correctness checks of the decomposed executor and for measuring ``Wg`` and
``Wg,pre``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["SsorParameters", "lower_sweep_block", "upper_sweep_block", "ssor_iteration"]


@dataclass(frozen=True)
class SsorParameters:
    """Relaxation parameters of the model SSOR scheme."""

    omega: float = 1.2
    coupling: float = 0.3
    diagonal: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.omega < 2:
            raise ValueError("omega must lie in (0, 2) for SSOR")
        if self.diagonal <= 0:
            raise ValueError("diagonal must be positive")


def _sweep_block(
    values: np.ndarray,
    rhs: np.ndarray,
    params: SsorParameters,
    *,
    reverse: bool,
    incoming_x: Optional[np.ndarray],
    incoming_y: Optional[np.ndarray],
    incoming_z: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    if values.ndim != 3 or rhs.shape != values.shape:
        raise ValueError("values and rhs must be 3-D arrays of equal shape")
    nx, ny, nz = values.shape
    out = values.copy()
    if incoming_x is None:
        incoming_x = np.zeros((ny, nz))
    if incoming_y is None:
        incoming_y = np.zeros((nx, nz))
    if incoming_z is None:
        incoming_z = np.zeros((nx, ny))
    if incoming_x.shape != (ny, nz) or incoming_y.shape != (nx, nz) or incoming_z.shape != (nx, ny):
        raise ValueError("incoming faces have inconsistent shapes")

    xs = range(nx - 1, -1, -1) if reverse else range(nx)
    ys = range(ny - 1, -1, -1) if reverse else range(ny)
    zs = range(nz - 1, -1, -1) if reverse else range(nz)
    step = -1 if reverse else 1

    omega, a, d = params.omega, params.coupling, params.diagonal
    for x in xs:
        for y in ys:
            for z in zs:
                up_x = out[x - step, y, z] if 0 <= x - step < nx else incoming_x[y, z]
                up_y = out[x, y - step, z] if 0 <= y - step < ny else incoming_y[x, z]
                up_z = out[x, y, z - step] if 0 <= z - step < nz else incoming_z[x, y]
                gauss = (rhs[x, y, z] + a * (up_x + up_y + up_z)) / d
                out[x, y, z] = (1.0 - omega) * out[x, y, z] + omega * gauss

    if reverse:
        face_x = out[0, :, :].copy()
        face_y = out[:, 0, :].copy()
        face_z = out[:, :, 0].copy()
    else:
        face_x = out[-1, :, :].copy()
        face_y = out[:, -1, :].copy()
        face_z = out[:, :, -1].copy()
    return out, face_x, face_y, face_z


def lower_sweep_block(
    values: np.ndarray,
    rhs: np.ndarray,
    params: SsorParameters = SsorParameters(),
    *,
    incoming_x: Optional[np.ndarray] = None,
    incoming_y: Optional[np.ndarray] = None,
    incoming_z: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lower-triangular sweep of one block (low corner towards high corner).

    Returns ``(updated_values, east_face, north_face, top_face)``; the faces
    are the boundary planes a downstream neighbour needs as its incoming
    data.
    """
    return _sweep_block(
        values,
        rhs,
        params,
        reverse=False,
        incoming_x=incoming_x,
        incoming_y=incoming_y,
        incoming_z=incoming_z,
    )


def upper_sweep_block(
    values: np.ndarray,
    rhs: np.ndarray,
    params: SsorParameters = SsorParameters(),
    *,
    incoming_x: Optional[np.ndarray] = None,
    incoming_y: Optional[np.ndarray] = None,
    incoming_z: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Upper-triangular sweep of one block (high corner towards low corner)."""
    return _sweep_block(
        values,
        rhs,
        params,
        reverse=True,
        incoming_x=incoming_x,
        incoming_y=incoming_y,
        incoming_z=incoming_z,
    )


def ssor_iteration(
    values: np.ndarray,
    rhs: np.ndarray,
    params: SsorParameters = SsorParameters(),
) -> np.ndarray:
    """One full SSOR iteration (lower then upper sweep) over a whole grid.

    Reference implementation used to verify the decomposed, per-processor
    execution: because the second sweep reads values produced by the first
    everywhere, it cannot begin until the first has fully completed - the
    ``nfull = 2`` precedence structure of Table 3.
    """
    lower, _, _, _ = lower_sweep_block(values, rhs, params)
    upper, _, _, _ = upper_sweep_block(lower, rhs, params)
    return upper
