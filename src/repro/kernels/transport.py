"""Discrete-ordinates transport sweep kernel (the Sweep3D / Chimaera work).

This is a small but genuine implementation of the per-cell computation that
particle-transport wavefront codes perform: a diamond-difference update of
the angular flux, swept across the grid in the direction of particle travel.
For each angle ``a`` with direction cosines ``(mu, eta, xi)`` and each cell:

``psi = (q + 2 mu psi_x_in / dx + 2 eta psi_y_in / dy + 2 xi psi_z_in / dz)
        / (sigma + 2 mu / dx + 2 eta / dy + 2 xi / dz)``

``psi_*_out = 2 psi - psi_*_in``  (negative fluxes clipped to zero)

and the scalar flux accumulates ``w_a * psi``.  The recurrence makes every
cell depend on its three upstream neighbours - exactly the dependency that
creates the pipelined wavefront across processors.

The module provides

* :class:`AngleSet` - a quadrature set (``mmo`` angles per octant);
* :func:`sweep_cell_block` - sweep one rectangular block given incoming
  boundary fluxes (the unit executed per tile by a processor);
* :func:`sweep_full_grid` - a reference whole-domain sweep used by the tests
  to check that the distributed/tile-by-tile execution reproduces the same
  numbers bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["AngleSet", "SweepResult", "sweep_cell_block", "sweep_full_grid"]


@dataclass(frozen=True)
class AngleSet:
    """A set of discrete ordinates for one octant.

    ``mu``, ``eta``, ``xi`` are the direction cosines along x, y, z (all
    positive; the sweep direction handles the octant's signs) and ``weights``
    the quadrature weights.
    """

    mu: np.ndarray
    eta: np.ndarray
    xi: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        arrays = (self.mu, self.eta, self.xi, self.weights)
        if not all(a.ndim == 1 and a.shape == self.mu.shape for a in arrays):
            raise ValueError("angle arrays must be 1-D and of equal length")
        if np.any(self.mu <= 0) or np.any(self.eta <= 0) or np.any(self.xi <= 0):
            raise ValueError("direction cosines must be positive")

    @property
    def count(self) -> int:
        return int(self.mu.shape[0])

    @classmethod
    def uniform(cls, angles: int) -> "AngleSet":
        """A simple normalised quadrature with ``angles`` ordinates.

        Not a physical level-symmetric set, but adequate for exercising the
        sweep dependency structure and for work-rate measurement.
        """
        if angles < 1:
            raise ValueError("angles must be >= 1")
        thetas = (np.arange(angles) + 0.5) * (np.pi / 2.0) / angles
        mu = np.cos(thetas) * 0.9 + 0.05
        eta = np.sin(thetas) * 0.9 + 0.05
        xi = np.full(angles, 0.5)
        norm = np.sqrt(mu**2 + eta**2 + xi**2)
        weights = np.full(angles, 1.0 / angles)
        return cls(mu=mu / norm, eta=eta / norm, xi=xi / norm, weights=weights)


@dataclass
class SweepResult:
    """Outputs of sweeping one block of cells.

    ``scalar_flux`` has the block's spatial shape; the ``outgoing_*`` faces
    are the boundary angular fluxes to hand to the downstream neighbours
    (shape: the respective face  x angles).
    """

    scalar_flux: np.ndarray
    outgoing_x: np.ndarray
    outgoing_y: np.ndarray
    outgoing_z: np.ndarray


def _default_incoming(shape: Tuple[int, ...], angles: int) -> np.ndarray:
    return np.zeros(shape + (angles,), dtype=np.float64)


def sweep_cell_block(
    source: np.ndarray,
    sigma: np.ndarray,
    angles: AngleSet,
    *,
    incoming_x: Optional[np.ndarray] = None,
    incoming_y: Optional[np.ndarray] = None,
    incoming_z: Optional[np.ndarray] = None,
    cell_size: Tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> SweepResult:
    """Sweep one ``nx x ny x nz`` block of cells for one octant.

    ``source`` and ``sigma`` are the per-cell emission density and total
    cross-section.  ``incoming_x`` (shape ``(ny, nz, angles)``),
    ``incoming_y`` (``(nx, nz, angles)``) and ``incoming_z``
    (``(nx, ny, angles)``) are the boundary angular fluxes entering the block
    on its upstream faces; they default to vacuum (zero).

    The sweep proceeds in the +x, +y, +z direction of the *local* block; the
    caller is responsible for orienting data according to the octant (the
    shared-memory executor and the tests only exercise the canonical
    orientation, which is sufficient because the other octants are
    reflections).
    """
    if source.ndim != 3 or sigma.shape != source.shape:
        raise ValueError("source and sigma must be 3-D arrays of equal shape")
    nx, ny, nz = source.shape
    nang = angles.count
    if incoming_x is None:
        incoming_x = _default_incoming((ny, nz), nang)
    if incoming_y is None:
        incoming_y = _default_incoming((nx, nz), nang)
    if incoming_z is None:
        incoming_z = _default_incoming((nx, ny), nang)
    if incoming_x.shape != (ny, nz, nang):
        raise ValueError(f"incoming_x must have shape {(ny, nz, nang)}")
    if incoming_y.shape != (nx, nz, nang):
        raise ValueError(f"incoming_y must have shape {(nx, nz, nang)}")
    if incoming_z.shape != (nx, ny, nang):
        raise ValueError(f"incoming_z must have shape {(nx, ny, nang)}")

    dx, dy, dz = cell_size
    cx = 2.0 * angles.mu / dx
    cy = 2.0 * angles.eta / dy
    cz = 2.0 * angles.xi / dz

    scalar_flux = np.zeros_like(source)
    # psi_x[y, z, a]: flux entering the current x-column from the west.
    psi_x = incoming_x.copy()
    # psi_y[x, z, a] is rebuilt column by column; psi_z[x, y, a] plane by plane.
    psi_z = incoming_z.copy()

    outgoing_y = np.empty((nx, nz, nang))
    # Sweep plane-by-plane in z is not possible because psi_x/psi_y couple
    # columns within a plane; instead sweep x outermost so that psi_x can be
    # carried as a (ny, nz, angles) slab.
    psi_y_slab = incoming_y.copy()  # (nx, nz, a): entering each x-column from the south
    for x in range(nx):
        psi_y = psi_y_slab[x]  # (nz, a)
        for y in range(ny):
            psi_zcol = psi_z[x, y]  # (a,) per z step, updated in the loop below
            for z in range(nz):
                denom = sigma[x, y, z] + cx + cy + cz
                numer = (
                    source[x, y, z]
                    + cx * psi_x[y, z]
                    + cy * psi_y[z]
                    + cz * psi_zcol
                )
                psi = numer / denom
                scalar_flux[x, y, z] = float(np.dot(angles.weights, psi))
                psi_x[y, z] = np.maximum(2.0 * psi - psi_x[y, z], 0.0)
                psi_y[z] = np.maximum(2.0 * psi - psi_y[z], 0.0)
                psi_zcol = np.maximum(2.0 * psi - psi_zcol, 0.0)
            psi_z[x, y] = psi_zcol
        outgoing_y[x] = psi_y
    return SweepResult(
        scalar_flux=scalar_flux,
        outgoing_x=psi_x,
        outgoing_y=outgoing_y,
        outgoing_z=psi_z,
    )


def sweep_full_grid(
    source: np.ndarray,
    sigma: np.ndarray,
    angles: AngleSet,
    *,
    cell_size: Tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> SweepResult:
    """Reference sweep of a whole grid with vacuum boundaries.

    Used by the tests as the ground truth against which the decomposed
    (tile-by-tile, processor-by-processor) execution is compared.
    """
    return sweep_cell_block(source, sigma, angles, cell_size=cell_size)
