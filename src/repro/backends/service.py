"""Batch prediction service: one call, many configurations, any backend.

:func:`predict_many` is the library's unified evaluation entry point.  It
fuses three mechanisms that previously lived in separate layers:

* **request deduplication** - repeated configurations in the request list
  (common in partition/throughput sweeps) are evaluated once
  (:func:`repro.util.sweep.unique_map`);
* **result caching** - the analytic backends share :func:`repro.core
  .predictor.predict`'s memo and the simulator backend memoises on the full
  configuration, so repeats *across* calls are also free (within a
  process);
* **parallel fan-out** - distinct configurations are mapped over an optional
  ``concurrent.futures`` pool (``executor="process"`` for the pure-Python
  engines, which hold the GIL).

>>> from repro.apps.workloads import lu_class
>>> from repro.platforms import cray_xt4
>>> from repro.backends import PredictionRequest, predict_many
>>> requests = [PredictionRequest(lu_class("A"), cray_xt4(), total_cores=c)
...             for c in (4, 16, 64)]
>>> analytic = predict_many(requests, backend="analytic-fast")
>>> [result.total_cores for result in analytic]
[4, 16, 64]
>>> measured = predict_many(requests, backend="simulator")  # the "measurement"
>>> all(m.time_per_iteration_us > 0 for m in measured)
True

Because both calls return :class:`~repro.backends.base.BackendResult` lists
in request order, validation is literally "run the same matrix on two
backends and diff" - see :func:`repro.validation.compare.validate_matrix`.
"""

from __future__ import annotations

from functools import partial
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult, PredictionBackend, PredictionRequest
from repro.backends.registry import BackendSpec, get_backend
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.loggp import Platform
from repro.util.sweep import unique_map

__all__ = ["RequestLike", "as_request", "predict_many", "predict_one"]

#: Accepted request forms: a :class:`PredictionRequest` or a
#: ``(spec, platform, total_cores)`` triple (the validation matrix's shape).
RequestLike = Union[PredictionRequest, Tuple[WavefrontSpec, Platform, int]]


def as_request(request: RequestLike) -> PredictionRequest:
    """Coerce a request-like value into a :class:`PredictionRequest`.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> as_request((lu_class("A"), cray_xt4(), 16)).total_cores
    16
    """
    if isinstance(request, PredictionRequest):
        return request
    spec, platform, total_cores = request
    return PredictionRequest(spec, platform, total_cores=total_cores)


def _evaluate_resolved(backend: PredictionBackend, resolved) -> BackendResult:
    """Module-level worker so process pools can pickle the call."""
    spec, platform, grid, mapping = resolved
    return backend.evaluate(spec, platform, grid, mapping)


def _predict_batch(backend, resolved) -> List[BackendResult]:
    """Route a request list through a backend's ``evaluate_batch``.

    Mirrors :func:`repro.util.sweep.unique_map`'s deduplication: repeated
    configurations are evaluated once and the batch result is expanded back
    to request order.  Unhashable configurations degrade to the undeduplicated
    full list, exactly like ``unique_map``.
    """
    try:
        seen: dict = {}
        positions = []
        distinct = []
        for config in resolved:
            # setdefault keeps this to one hash per configuration - config
            # hashing is a measurable cost at design-matrix scale.
            index = seen.setdefault(config, len(distinct))
            if index == len(distinct):
                distinct.append(config)
            positions.append(index)
    except TypeError:
        return list(backend.evaluate_batch(resolved))
    results = list(backend.evaluate_batch(distinct))
    if len(results) != len(distinct):
        raise ValueError(
            f"backend {backend.name!r} returned {len(results)} results "
            f"for a batch of {len(distinct)} configurations"
        )
    return [results[position] for position in positions]


def predict_many(
    requests: Iterable[RequestLike],
    *,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> List[BackendResult]:
    """Evaluate every request on ``backend``, returning results in order.

    ``backend`` is a registered name (``"analytic-fast"``,
    ``"analytic-exact"``, ``"analytic-vec"``, ``"simulator"``, or anything
    added with :func:`repro.backends.register_backend`) or a backend
    instance.  Backends implementing the optional batch protocol
    (:class:`~repro.backends.base.BatchPredictionBackend`, e.g.
    ``analytic-vec``) receive the whole deduplicated batch in one
    ``evaluate_batch`` call - ``workers``/``executor`` are irrelevant there
    (the batch already amortises the per-point overhead).  Other backends
    fan the distinct configurations out over an optional pool (see
    :func:`repro.util.sweep.parallel_map`); with ``executor="process"`` the
    per-process caches start cold, so prefer threads when the request list
    is dominated by duplicates.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> requests = [(lu_class("A"), cray_xt4(), c) for c in (4, 16, 4)]
    >>> results = predict_many(requests)          # the duplicate is free
    >>> results[0].time_per_iteration_us == results[2].time_per_iteration_us
    True
    >>> batched = predict_many(requests, backend="analytic-vec")
    >>> [abs(b.time_per_iteration_us - r.time_per_iteration_us) <= 1e-9
    ...  for b, r in zip(batched, results)]
    [True, True, True]
    """
    backend_obj = get_backend(backend)
    resolved = [as_request(request).resolve() for request in requests]
    if callable(getattr(backend_obj, "evaluate_batch", None)):
        return _predict_batch(backend_obj, resolved)
    return unique_map(
        partial(_evaluate_resolved, backend_obj), resolved, workers, executor
    )


def predict_one(
    spec: WavefrontSpec,
    platform: Platform,
    *,
    total_cores: Optional[int] = None,
    grid: Optional[ProcessorGrid] = None,
    core_mapping: Optional[CoreMapping] = None,
    backend: BackendSpec = "analytic-fast",
) -> BackendResult:
    """Evaluate a single configuration on any backend.

    The single-request convenience form of :func:`predict_many` (and the
    backend-agnostic counterpart of :func:`repro.core.predictor.predict`).

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> result = predict_one(lu_class("A"), cray_xt4(), total_cores=16)
    >>> result.backend, result.total_cores
    ('analytic-fast', 16)
    """
    request = PredictionRequest(
        spec, platform, total_cores=total_cores, grid=grid, core_mapping=core_mapping
    )
    return predict_many([request], backend=backend)[0]
