"""Core types of the prediction-backend architecture.

A *prediction backend* is any engine that can estimate the per-iteration
execution time of a wavefront configuration: the analytic plug-and-play
model (fast or exact ``StartP`` evaluator) and the discrete-event simulator
are the built-ins.  Every backend consumes the same resolved configuration -
``(spec, platform, grid, core_mapping)`` - and produces a
:class:`BackendResult`, so studies and validation harnesses can swap engines
(or diff two of them) without touching their own code.

:class:`PredictionRequest` is the unresolved form (``total_cores`` *or*
``grid``) used by the batch service layer
(:func:`repro.backends.service.predict_many`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.apps.base import WavefrontSpec
from repro.core.decomposition import CoreMapping, ProcessorGrid, decompose
from repro.core.loggp import Platform
from repro.core.multicore import resolve_core_mapping
from repro.core.predictor import Prediction
from repro.simulator.wavefront import WavefrontSimulationResult
from repro.util.units import safe_ratio, seconds_to_days, us_to_seconds

__all__ = [
    "BackendResult",
    "BatchPredictionBackend",
    "PredictionBackend",
    "PredictionRequest",
]


@runtime_checkable
class PredictionBackend(Protocol):
    """The engine interface: evaluate one resolved configuration.

    Implementations must be cheap to construct, hashable and picklable
    (frozen dataclasses work well): the batch service layer deduplicates on
    them and ships them to process pools.

    The protocol is ``runtime_checkable``, so conformance is testable:

    >>> from repro.backends.analytic import AnalyticBackend
    >>> isinstance(AnalyticBackend(), PredictionBackend)
    True
    """

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``"analytic-fast"`` or ``"simulator"``."""
        ...

    def evaluate(
        self,
        spec: WavefrontSpec,
        platform: Platform,
        grid: ProcessorGrid,
        core_mapping: Optional[CoreMapping] = None,
    ) -> "BackendResult":
        """Predict one iteration of ``spec`` on ``platform`` over ``grid``."""
        ...


@runtime_checkable
class BatchPredictionBackend(PredictionBackend, Protocol):
    """Optional extension: evaluate a whole batch of configurations at once.

    Backends that can amortise work across configurations (struct-of-arrays
    evaluation, shared setup) additionally implement ``evaluate_batch``;
    the service layer (:func:`repro.backends.service.predict_many`) detects
    the method and hands over whole deduplicated batches instead of mapping
    ``evaluate`` point by point.  Implementations must return one
    :class:`BackendResult` per input configuration, in input order.

    >>> from repro.backends.vectorized import VectorizedAnalyticBackend
    >>> from repro.backends.analytic import AnalyticBackend
    >>> isinstance(VectorizedAnalyticBackend(), BatchPredictionBackend)
    True
    >>> isinstance(AnalyticBackend(), BatchPredictionBackend)
    False
    """

    def evaluate_batch(
        self,
        resolved: Sequence[
            Tuple[WavefrontSpec, Platform, ProcessorGrid, CoreMapping]
        ],
    ) -> List["BackendResult"]:
        """Evaluate every resolved configuration, results in input order."""
        ...


@dataclass(frozen=True)
class PredictionRequest:
    """One configuration to evaluate: spec + platform + machine shape.

    Exactly one of ``total_cores`` or ``grid`` must be given (the former is
    decomposed into a near-square array, the paper's convention);
    ``core_mapping`` optionally overrides the platform's default ``Cx x Cy``
    core rectangle.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> request = PredictionRequest(lu_class("A"), cray_xt4(), total_cores=16)
    >>> _spec, _platform, grid, mapping = request.resolve()
    >>> (grid.n, grid.m), mapping.cores_per_node
    ((4, 4), 2)
    """

    spec: WavefrontSpec
    platform: Platform
    total_cores: Optional[int] = None
    grid: Optional[ProcessorGrid] = None
    core_mapping: Optional[CoreMapping] = None

    def __post_init__(self) -> None:
        if (self.total_cores is None) == (self.grid is None):
            raise ValueError("specify exactly one of total_cores or grid")
        if self.total_cores is not None and self.total_cores < 1:
            raise ValueError("total_cores must be positive")

    def resolve(self) -> Tuple[WavefrontSpec, Platform, ProcessorGrid, CoreMapping]:
        """The fully-determined configuration every backend consumes."""
        grid = self.grid if self.grid is not None else decompose(self.total_cores)
        mapping = resolve_core_mapping(self.platform, self.core_mapping)
        return (self.spec, self.platform, grid, mapping)


@dataclass(frozen=True)
class BackendResult:
    """A backend's per-iteration prediction plus run-length aggregates.

    The per-iteration quantities are the common currency of all backends;
    the run-length aggregates (time per time step, total run time) are
    derived from the spec exactly as :class:`~repro.core.predictor
    .Prediction` derives them, so analysis studies read the same numbers
    whichever engine produced them.

    ``phases`` is the backend's own named breakdown of the iteration time
    (e.g. the analytic model's fill/stack/non-wavefront terms, or the
    simulator's critical-rank compute/send/recv/barrier split).
    ``pipeline_fill_per_iteration_us`` is ``None`` for backends that cannot
    separate the fill component (the simulator measures only total time,
    like the paper's wall-clock runs).

    ``prediction`` / ``simulation`` carry the engine-specific detail object
    when available.

    >>> from repro.backends.service import predict_one
    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> result = predict_one(lu_class("A"), cray_xt4(), total_cores=16)
    >>> comm = result.communication_per_iteration_us
    >>> abs(result.time_per_iteration_us
    ...     - result.computation_per_iteration_us - comm) < 1e-9
    True
    >>> sorted(result.summary())[:3]
    ['application', 'backend', 'communication_fraction']
    """

    backend: str
    spec: WavefrontSpec
    platform: Platform
    grid: ProcessorGrid
    core_mapping: CoreMapping
    time_per_iteration_us: float
    computation_per_iteration_us: float
    pipeline_fill_per_iteration_us: Optional[float]
    phases: Tuple[Tuple[str, float], ...] = ()
    prediction: Optional[Prediction] = None
    simulation: Optional[WavefrontSimulationResult] = None

    # -- per-iteration quantities ----------------------------------------------------

    @property
    def communication_per_iteration_us(self) -> float:
        """Everything that is not computation, the paper's convention."""
        return self.time_per_iteration_us - self.computation_per_iteration_us

    @property
    def computation_fraction(self) -> float:
        return safe_ratio(self.computation_per_iteration_us, self.time_per_iteration_us)

    @property
    def communication_fraction(self) -> float:
        return 1.0 - self.computation_fraction

    @property
    def pipeline_fill_fraction(self) -> Optional[float]:
        if self.pipeline_fill_per_iteration_us is None:
            return None
        return safe_ratio(self.pipeline_fill_per_iteration_us, self.time_per_iteration_us)

    # -- run-length aggregates -------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.grid.total_processors

    @property
    def iterations_per_time_step(self) -> int:
        return self.spec.iterations * self.spec.energy_groups

    @property
    def time_per_time_step_us(self) -> float:
        return self.time_per_iteration_us * self.iterations_per_time_step

    @property
    def time_per_time_step_s(self) -> float:
        return us_to_seconds(self.time_per_time_step_us)

    @property
    def total_time_us(self) -> float:
        return self.time_per_time_step_us * self.spec.time_steps

    @property
    def total_time_s(self) -> float:
        return us_to_seconds(self.total_time_us)

    @property
    def total_time_days(self) -> float:
        return seconds_to_days(self.total_time_s)

    def summary(self) -> dict[str, object]:
        """A flat dictionary of the headline numbers, for reports and JSON."""
        fill = self.pipeline_fill_fraction
        return {
            "backend": self.backend,
            "application": self.spec.name,
            "platform": self.platform.name,
            "processors": self.grid.total_processors,
            "grid": f"{self.grid.n}x{self.grid.m}",
            "cores_per_node": self.core_mapping.cores_per_node,
            "time_per_iteration_s": us_to_seconds(self.time_per_iteration_us),
            "time_per_time_step_s": self.time_per_time_step_s,
            "total_time_s": self.total_time_s,
            "total_time_days": self.total_time_days,
            "computation_fraction": self.computation_fraction,
            "communication_fraction": self.communication_fraction,
            "pipeline_fill_fraction": fill,
        }
