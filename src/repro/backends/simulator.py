"""The discrete-event simulator as a prediction backend.

Registered as ``"simulator"``: it plays the role of the paper's wall-clock
measurements, so running a study or a validation matrix against this backend
is the reproduction's analogue of "measure it on the Cray".

The backend returns the same :class:`~repro.backends.base.BackendResult` as
the analytic engines.  Per-iteration computation is taken from the critical
rank (the one that finishes last); like a real measurement the simulator
cannot separate the pipeline-fill component, so
``pipeline_fill_per_iteration_us`` is ``None``.

Evaluations are memoised on the full configuration (spec, platform, grid,
mapping, backend options) - the batch service layer's deduplication plus
this cache make repeated matrix entries free, mirroring the analytic
prediction cache.  Scale comes from the diagonal-aggregated engine
(:mod:`repro.simulator.fastpath`), selected automatically for noise-free
homogeneous configurations (``engine="auto"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.hetero import NoiseModel
from repro.core.loggp import Platform
from repro.simulator.wavefront import (
    SIMULATOR_ENGINES,
    WavefrontSimulationResult,
    simulate_wavefront,
)
from repro.util.caching import call_with_unhashable_fallback, register_cache_clearer

__all__ = [
    "SimulatorBackend",
    "clear_simulation_cache",
    "simulation_cache_info",
]


@dataclass(frozen=True)
class SimulatorBackend:
    """Wavefront simulation as a :class:`PredictionBackend`.

    Parameters mirror :func:`repro.simulator.wavefront.simulate_wavefront`;
    the defaults (one iteration, non-wavefront phase included, contention
    on, no noise, automatic engine choice) reproduce the validation
    harness's measurement configuration.  Heterogeneous platform features -
    per-node speed profiles, hierarchical interconnects and platform-level
    noise models, and fault/checkpoint models - are honoured automatically
    from the platform description; ``noise_model`` overrides the platform's
    own noise field for ablations, ``fault_seed`` selects the per-rank
    failure streams, and ``link_contention`` serialises overlapping
    off-node payloads on per-link FIFO queues.

    >>> SimulatorBackend().name
    'simulator'
    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> from repro.core.decomposition import decompose
    >>> result = SimulatorBackend().evaluate(
    ...     lu_class("A"), cray_xt4(), decompose(16))
    >>> result.pipeline_fill_per_iteration_us is None   # a "measurement"
    True
    """

    iterations: int = 1
    simulate_nonwavefront: bool = True
    enable_contention: bool = True
    compute_noise: float = 0.0
    noise_model: Optional[NoiseModel] = None
    noise_seed: int = 0
    fault_seed: int = 0
    link_contention: bool = False
    engine: str = "auto"
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.engine not in SIMULATOR_ENGINES:
            raise ValueError(
                f"engine must be one of {SIMULATOR_ENGINES}, got {self.engine!r}"
            )

    @property
    def name(self) -> str:
        return "simulator"

    def evaluate(
        self,
        spec: WavefrontSpec,
        platform: Platform,
        grid: ProcessorGrid,
        core_mapping: Optional[CoreMapping] = None,
    ) -> BackendResult:
        simulation = call_with_unhashable_fallback(
            _simulate_cached, _simulate_uncached, self, spec, platform, grid, core_mapping
        )
        return self._wrap(spec, platform, simulation)

    def _wrap(
        self,
        spec: WavefrontSpec,
        platform: Platform,
        simulation: WavefrontSimulationResult,
    ) -> BackendResult:
        iterations = simulation.iterations
        critical = max(simulation.stats.ranks, key=lambda r: r.finish_time)
        compute = critical.compute_time / iterations
        send = critical.send_time / iterations
        recv = critical.recv_time / iterations
        barrier = critical.barrier_time / iterations
        time_per_iteration = simulation.time_per_iteration_us
        phases = (
            ("compute", compute),
            ("send", send),
            ("recv", recv),
            ("barrier", barrier),
            ("idle", time_per_iteration - compute - send - recv - barrier),
        )
        return BackendResult(
            backend=self.name,
            spec=spec,
            platform=platform,
            grid=simulation.grid,
            core_mapping=simulation.core_mapping,
            time_per_iteration_us=time_per_iteration,
            computation_per_iteration_us=compute,
            pipeline_fill_per_iteration_us=None,
            phases=phases,
            simulation=simulation,
        )


def _simulate_uncached(
    backend: SimulatorBackend,
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    core_mapping: Optional[CoreMapping],
) -> WavefrontSimulationResult:
    return simulate_wavefront(
        spec,
        platform,
        grid=grid,
        core_mapping=core_mapping,
        iterations=backend.iterations,
        simulate_nonwavefront=backend.simulate_nonwavefront,
        enable_contention=backend.enable_contention,
        compute_noise=backend.compute_noise,
        noise_model=backend.noise_model,
        noise_seed=backend.noise_seed,
        fault_seed=backend.fault_seed,
        link_contention=backend.link_contention,
        engine=backend.engine,
        max_events=backend.max_events,
    )


# A simulation result holds O(ranks) per-rank statistics (megabytes at 4096+
# cores), so the memo is kept small: it exists to make repeated matrix
# entries free within a study, not to retain whole sweeps indefinitely.
_simulate_cached = lru_cache(maxsize=32)(_simulate_uncached)


@register_cache_clearer
def clear_simulation_cache() -> None:
    """Drop all memoised simulator-backend results.

    Also registered with :mod:`repro.util.caching`, so the library-wide
    :func:`repro.core.predictor.clear_prediction_cache` clears this memo
    too.

    >>> clear_simulation_cache()
    >>> simulation_cache_info().currsize
    0
    """
    _simulate_cached.cache_clear()


def simulation_cache_info():
    """Hit/miss statistics of the simulator-backend memo (``functools`` format).

    >>> info = simulation_cache_info()
    >>> info.hits >= 0 and info.maxsize == 32
    True
    """
    return _simulate_cached.cache_info()
