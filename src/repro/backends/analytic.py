"""Analytic prediction backends: the Table 5 / Table 6 plug-and-play model.

Two registered variants share one implementation:

* ``analytic-fast`` - the closed-form / period-folded ``StartP`` engine
  (``method="fast"``), ~100-1000x faster than the grid walk at scale;
* ``analytic-exact`` - the reference full-grid recurrence
  (``method="exact"``), kept for cross-checking the fast engine.

Both go through :func:`repro.core.predictor.predict`, so they share its
memoisation: re-evaluating a configuration anywhere in the process is free.

Heterogeneous platform descriptions (:mod:`repro.core.hetero`) are handled
inside the model itself: per-node speed profiles enter the ``StartP``
recurrence through the bounded slowest-rank-per-diagonal correction,
hierarchical interconnects through the three-level hop classification of
the communication-cost tables, and noise models through the mean compute
inflation - so every analytic variant prices the same degraded machines the
simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.loggp import Platform
from repro.core.model import FILL_METHODS
from repro.core.predictor import Prediction, predict

__all__ = ["AnalyticBackend"]


@dataclass(frozen=True)
class AnalyticBackend:
    """The plug-and-play model as a :class:`PredictionBackend`.

    ``method`` selects the ``StartP`` evaluator (``"auto"``/``"fast"``/
    ``"exact"``, see :func:`repro.core.model.fill_times`).

    >>> AnalyticBackend(method="exact").name
    'analytic-exact'
    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> from repro.core.decomposition import decompose
    >>> result = AnalyticBackend().evaluate(
    ...     lu_class("A"), cray_xt4(), decompose(16))
    >>> [name for name, _time in result.phases]
    ['pipeline_fill', 'stack', 'nonwavefront']
    """

    method: str = "fast"

    def __post_init__(self) -> None:
        if self.method not in FILL_METHODS:
            raise ValueError(f"method must be one of {FILL_METHODS}, got {self.method!r}")

    @property
    def name(self) -> str:
        return f"analytic-{'fast' if self.method == 'auto' else self.method}"

    def evaluate(
        self,
        spec: WavefrontSpec,
        platform: Platform,
        grid: ProcessorGrid,
        core_mapping: Optional[CoreMapping] = None,
    ) -> BackendResult:
        prediction = predict(
            spec, platform, grid=grid, core_mapping=core_mapping, method=self.method
        )
        return self._wrap(prediction)

    def _wrap(self, prediction: Prediction) -> BackendResult:
        iteration = prediction.iteration
        phases = (
            ("pipeline_fill", iteration.pipeline_fill_time),
            ("stack", iteration.nsweeps * iteration.stack.total),
            ("nonwavefront", iteration.tnonwavefront),
        )
        if iteration.trework != 0.0:  # repro: noqa[RPR004] fault-free predictions carry exactly 0.0 and keep the three-phase breakdown
            phases = phases + (("rework", iteration.trework),)
        return BackendResult(
            backend=self.name,
            spec=prediction.spec,
            platform=prediction.platform,
            grid=prediction.grid,
            core_mapping=prediction.core_mapping,
            time_per_iteration_us=iteration.time_per_iteration,
            computation_per_iteration_us=iteration.computation_per_iteration,
            pipeline_fill_per_iteration_us=iteration.pipeline_fill_time,
            phases=phases,
            prediction=prediction,
        )
