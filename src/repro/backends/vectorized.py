"""``analytic-vec``: the plug-and-play model over whole design matrices.

:class:`VectorizedAnalyticBackend` implements the optional batch protocol
(``evaluate_batch``) on top of :func:`repro.core.model_vec
.batch_point_values`: the service layer (:func:`repro.backends.service
.predict_many`) hands it whole lists of resolved configurations, which it
prices as struct-of-arrays operations - numpy when importable, a pure-stdlib
vector fallback otherwise (a one-line warning notes the fallback, see the
README's optional-numpy policy).  Results match ``analytic-fast`` within
1e-9 relative (bit-identical on homogeneous platforms), so it is a drop-in
replacement wherever throughput matters: exhaustive optimisation, Pareto
fronts, campaigns.

Single-point ``evaluate`` calls also work (they are one-element batches), so
the backend satisfies :class:`~repro.backends.base.PredictionBackend` and
every existing consumer - CLI, validation, studies - accepts
``backend="analytic-vec"`` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.loggp import Platform
from repro.core.model_vec import (
    PointValues,
    batch_point_values,
    have_numpy,
    reset_fallback_warning,
    warn_on_fallback,
)
from repro.core.multicore import resolve_core_mapping
from repro.util.caching import register_cache_clearer

__all__ = ["VectorizedAnalyticBackend", "clear_vectorized_cache"]

_Config = Tuple[WavefrontSpec, Platform, ProcessorGrid, CoreMapping]

#: Per-configuration result memo, the vec counterpart of
#: :mod:`repro.core.predictor`'s prediction memo (shared across instances;
#: the backend is a stateless frozen dataclass).
_BATCH_MEMO: Dict[_Config, PointValues] = {}
_BATCH_MEMO_LIMIT = 65536


@register_cache_clearer
def clear_vectorized_cache() -> None:
    """Drop the batch memo (hooked into ``clear_prediction_cache``)."""
    _BATCH_MEMO.clear()
    reset_fallback_warning()


@dataclass(frozen=True)
class VectorizedAnalyticBackend:
    """The ``analytic-vec`` engine: batches through ``core.model_vec``.

    >>> backend = VectorizedAnalyticBackend()
    >>> backend.name
    'analytic-vec'
    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> from repro.core.decomposition import decompose
    >>> result = backend.evaluate(lu_class("A"), cray_xt4(), decompose(16))
    >>> [name for name, _time in result.phases]
    ['pipeline_fill', 'stack', 'nonwavefront']
    """

    @property
    def name(self) -> str:
        return "analytic-vec"

    def evaluate(
        self,
        spec: WavefrontSpec,
        platform: Platform,
        grid: ProcessorGrid,
        core_mapping: Optional[CoreMapping] = None,
    ) -> BackendResult:
        """Evaluate one configuration (a one-element batch)."""
        mapping = resolve_core_mapping(platform, core_mapping)
        return self.evaluate_batch([(spec, platform, grid, mapping)])[0]

    def evaluate_batch(self, resolved: Sequence[_Config]) -> List[BackendResult]:
        """Evaluate resolved configurations in one pass, in input order.

        This is the batch-protocol entry point :func:`repro.backends
        .service.predict_many` discovers; configurations already priced in
        this process are served from the memo and only the remainder hits
        the vector evaluator.
        """
        resolved = list(resolved)
        if resolved and not have_numpy():
            warn_on_fallback()
        cached: Dict[int, PointValues] = {}
        pending: List[int] = []
        memo_get = _BATCH_MEMO.get
        for index, config in enumerate(resolved):
            try:
                point = memo_get(config)
            except TypeError:  # unhashable spec/platform subclasses
                point = None
            if point is None:
                pending.append(index)
            else:
                cached[index] = point
        if pending:
            fresh = batch_point_values([resolved[i] for i in pending])
            for index, point in zip(pending, fresh):
                cached[index] = point
                if len(_BATCH_MEMO) < _BATCH_MEMO_LIMIT:
                    try:
                        _BATCH_MEMO[resolved[index]] = point
                    except TypeError:
                        pass
        return [
            _wrap(self.name, resolved[index], cached[index])
            for index in range(len(resolved))
        ]


def _wrap(name: str, config: _Config, point: PointValues) -> BackendResult:
    """Shape one point's values like ``AnalyticBackend._wrap`` does."""
    spec, platform, grid, mapping = config
    phases = (
        ("pipeline_fill", point.pipeline_fill),
        ("stack", point.stack_phase),
        ("nonwavefront", point.nonwavefront_phase),
    )
    if point.rework != 0.0:  # repro: noqa[RPR004] fault-free points carry exactly 0.0 and keep the three-phase breakdown
        phases = phases + (("rework", point.rework),)
    return BackendResult(
        backend=name,
        spec=spec,
        platform=platform,
        grid=grid,
        core_mapping=mapping,
        time_per_iteration_us=point.time_per_iteration,
        computation_per_iteration_us=point.computation_per_iteration,
        pipeline_fill_per_iteration_us=point.pipeline_fill,
        phases=phases,
    )
