"""Unified prediction-backend architecture.

The paper's central exercise is comparing an *analytic* plug-and-play model
against *measured* wavefront runs; in this reproduction the discrete-event
simulator plays the measurement role.  This package makes the two sides of
that comparison (and any future engine) interchangeable:

**Backend protocol** (:mod:`repro.backends.base`)
    A :class:`PredictionBackend` evaluates one resolved configuration -
    ``evaluate(spec, platform, grid, core_mapping)`` - and returns a
    :class:`BackendResult` carrying the per-iteration time, the
    computation/communication split, an optional pipeline-fill component, a
    named per-phase breakdown, and the run-length aggregates (time per time
    step, total days) derived the same way for every engine.

**Registry** (:mod:`repro.backends.registry`)
    String-keyed factories resolved by :func:`get_backend`.  Built-ins:

    * ``"analytic-fast"`` - the closed-form / period-folded ``StartP``
      engine (the default everywhere);
    * ``"analytic-exact"`` - the reference full-grid recurrence;
    * ``"analytic-vec"`` - the same fast-path equations evaluated as
      struct-of-arrays batches (numpy when importable, a stdlib vector
      fallback otherwise) through the batch protocol below;
    * ``"simulator"`` - the discrete-event simulator, using the
      diagonal-aggregated fast path on noise-free homogeneous
      configurations and the per-rank event engine otherwise.

    Register your own engine and every study / CLI command can use it::

        from repro.backends import register_backend
        from repro.backends.analytic import AnalyticBackend

        register_backend("analytic-auto", lambda: AnalyticBackend(method="auto"))

    Any object implementing the protocol may also be passed directly as a
    ``backend=`` argument (e.g. a configured ``SimulatorBackend(iterations=3,
    compute_noise=0.05)``).

**Batch service** (:mod:`repro.backends.service`)
    :func:`predict_many` evaluates a list of
    :class:`PredictionRequest` objects on one backend, fusing request
    deduplication, the per-backend result caches and optional
    process/thread-pool fan-out.  Backends that additionally implement the
    optional :class:`BatchPredictionBackend` protocol (``evaluate_batch``,
    e.g. ``analytic-vec``) receive whole deduplicated batches in one call.
    :func:`predict_one` is the single-request
    form.  The analysis studies (:mod:`repro.analysis`), the validation
    harness (:mod:`repro.validation`) and the CLI's ``--backend`` flag all
    go through this layer, so validation is literally "run the same matrix
    on two backends and diff".

End to end:

>>> from repro.apps.workloads import lu_class
>>> from repro.platforms import cray_xt4
>>> predict_one(lu_class("A"), cray_xt4(), total_cores=16).backend
'analytic-fast'
"""

from repro.backends.analytic import AnalyticBackend
from repro.backends.base import (
    BackendResult,
    BatchPredictionBackend,
    PredictionBackend,
    PredictionRequest,
)
from repro.backends.registry import (
    BackendSpec,
    available_backends,
    get_backend,
    register_backend,
)
from repro.backends.service import as_request, predict_many, predict_one
from repro.backends.simulator import (
    SimulatorBackend,
    clear_simulation_cache,
    simulation_cache_info,
)
from repro.backends.vectorized import VectorizedAnalyticBackend, clear_vectorized_cache

__all__ = [
    "AnalyticBackend",
    "BackendResult",
    "BackendSpec",
    "BatchPredictionBackend",
    "PredictionBackend",
    "PredictionRequest",
    "SimulatorBackend",
    "VectorizedAnalyticBackend",
    "as_request",
    "available_backends",
    "clear_simulation_cache",
    "clear_vectorized_cache",
    "get_backend",
    "predict_many",
    "predict_one",
    "register_backend",
    "simulation_cache_info",
]
