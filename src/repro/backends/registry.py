"""String-keyed registry of prediction backends.

Built-in engines (``analytic-fast``, ``analytic-exact``, ``simulator``) are
registered lazily on first use; libraries and applications can add their own
with :func:`register_backend`:

>>> from repro.backends import register_backend, get_backend
>>> from repro.backends.analytic import AnalyticBackend
>>> register_backend("analytic-auto", lambda: AnalyticBackend(method="auto"),
...                  replace=True)
>>> get_backend("analytic-auto").method
'auto'

Everywhere the library accepts a ``backend=`` argument it resolves it with
:func:`get_backend`, so both registered names and ad-hoc backend instances
(anything implementing :class:`~repro.backends.base.PredictionBackend`) are
accepted.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.backends.base import PredictionBackend

__all__ = ["BackendSpec", "available_backends", "get_backend", "register_backend"]

#: What ``backend=`` arguments accept: a registered name or a backend instance.
BackendSpec = Union[str, PredictionBackend]

_FACTORIES: Dict[str, Callable[[], PredictionBackend]] = {}
_builtins_registered = False


def _ensure_builtins() -> None:
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    # Imported here (not at module scope) to keep the registry free of
    # circular imports: the backend modules import backends.base too.
    from repro.backends.analytic import AnalyticBackend
    from repro.backends.simulator import SimulatorBackend
    from repro.backends.vectorized import VectorizedAnalyticBackend

    _FACTORIES.setdefault("analytic-fast", lambda: AnalyticBackend(method="fast"))
    _FACTORIES.setdefault("analytic-exact", lambda: AnalyticBackend(method="exact"))
    _FACTORIES.setdefault("analytic-vec", lambda: VectorizedAnalyticBackend())
    _FACTORIES.setdefault("simulator", lambda: SimulatorBackend())


def register_backend(
    name: str, factory: Callable[[], PredictionBackend], *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    ``factory`` is called each time the backend is resolved (backends are
    cheap frozen dataclasses; their caches live at module level).  Re-using
    a name raises unless ``replace=True``.

    >>> from repro.backends.simulator import SimulatorBackend
    >>> register_backend("noisy-sim",
    ...                  lambda: SimulatorBackend(compute_noise=0.05),
    ...                  replace=True)
    >>> get_backend("noisy-sim").compute_noise
    0.05
    """
    _ensure_builtins()
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"backend {name!r} is already registered (pass replace=True to override)"
        )
    _FACTORIES[name] = factory


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends.

    >>> {"analytic-fast", "analytic-exact", "simulator"} <= set(available_backends())
    True
    """
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))


def get_backend(spec: BackendSpec) -> PredictionBackend:
    """Resolve a ``backend=`` argument to a backend instance.

    Strings are looked up in the registry; objects implementing the
    :class:`PredictionBackend` protocol pass through unchanged.

    >>> get_backend("analytic-exact").name
    'analytic-exact'
    >>> from repro.backends.simulator import SimulatorBackend
    >>> instance = SimulatorBackend(iterations=2)
    >>> get_backend(instance) is instance
    True
    """
    _ensure_builtins()
    if isinstance(spec, str):
        try:
            factory = _FACTORIES[spec]
        except KeyError:
            known = ", ".join(available_backends())
            raise KeyError(f"unknown backend {spec!r}; available: {known}") from None
        return factory()
    if callable(getattr(spec, "evaluate", None)) and hasattr(spec, "name"):
        return spec
    raise TypeError(
        f"backend must be a registered name or a PredictionBackend, got {spec!r}"
    )
