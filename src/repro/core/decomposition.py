"""Data decomposition and processor-grid mapping.

Pipelined wavefront codes partition a 3-D ``Nx x Ny x Nz`` cell grid over a
2-D ``n x m`` logical processor array (Figure 1(a) of the paper): processor
``(i, j)`` (column ``i`` in ``1..n``, row ``j`` in ``1..m``) owns a stack of
``Nx/n x Ny/m x Nz`` cells which it processes tile by tile.

On a multi-core machine, the cores of one node occupy a ``Cx x Cy`` rectangle
of the processor array (Section 4.3), which determines which of a core's four
neighbours are reached on-chip and which off-node.

This module provides:

* :class:`ProblemSize` - the global cell grid;
* :class:`ProcessorGrid` - the ``n x m`` logical processor array with helpers
  for corners, diagonals and neighbour positions;
* :class:`CoreMapping` - the ``Cx x Cy`` core rectangle per node;
* :func:`decompose` - choose a near-square ``n x m`` factorisation of ``P``;
* :func:`default_core_mapping` - the paper's core rectangles (1x1, 1x2, 2x2,
  2x4, 4x4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Iterator, Optional, Tuple

from repro.util.caching import register_cache_clearer

__all__ = [
    "ProblemSize",
    "ProcessorGrid",
    "CoreMapping",
    "Corner",
    "clear_decomposition_cache",
    "decompose",
    "default_core_mapping",
]


@dataclass(frozen=True)
class ProblemSize:
    """The global 3-D data grid, ``Nx x Ny x Nz`` cells."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("problem dimensions must be positive")

    @property
    def total_cells(self) -> int:
        return self.nx * self.ny * self.nz

    @classmethod
    def cube(cls, edge: int) -> "ProblemSize":
        """A cubic problem, ``edge**3`` cells (e.g. the Chimaera 240^3 case)."""
        return cls(edge, edge, edge)

    @classmethod
    def of_total(cls, total_cells: float) -> "ProblemSize":
        """The cubic problem whose total cell count is closest to ``total_cells``.

        Used for the paper's "10^9 cells" and "20 million cells" Sweep3D
        problem sizes, which the paper treats as cubes.
        """
        edge = max(1, round(float(total_cells) ** (1.0 / 3.0)))
        return cls.cube(edge)

    def cells_per_processor(self, grid: "ProcessorGrid") -> float:
        """Average number of cells owned by one processor."""
        return self.total_cells / grid.total_processors

    def subdomain(self, grid: "ProcessorGrid") -> Tuple[float, float, float]:
        """Per-processor subdomain dimensions ``(Nx/n, Ny/m, Nz)``.

        Fractional values are allowed: the analytic model works with average
        per-processor cell counts, exactly as the paper's equations do.
        """
        return (self.nx / grid.n, self.ny / grid.m, float(self.nz))


class Corner(Enum):
    """The four corners of the logical processor array.

    Named by compass direction with ``(1, 1)`` at the north-west, matching
    Figure 1(b): columns ``i`` grow eastward, rows ``j`` grow southward.
    """

    NORTH_WEST = "NW"
    NORTH_EAST = "NE"
    SOUTH_WEST = "SW"
    SOUTH_EAST = "SE"

    def opposite(self) -> "Corner":
        return _OPPOSITE[self]

    def adjacent(self) -> tuple["Corner", "Corner"]:
        """The two corners sharing an edge of the processor array with this one."""
        return _ADJACENT[self]


_OPPOSITE = {
    Corner.NORTH_WEST: Corner.SOUTH_EAST,
    Corner.SOUTH_EAST: Corner.NORTH_WEST,
    Corner.NORTH_EAST: Corner.SOUTH_WEST,
    Corner.SOUTH_WEST: Corner.NORTH_EAST,
}

_ADJACENT = {
    Corner.NORTH_WEST: (Corner.NORTH_EAST, Corner.SOUTH_WEST),
    Corner.NORTH_EAST: (Corner.NORTH_WEST, Corner.SOUTH_EAST),
    Corner.SOUTH_WEST: (Corner.NORTH_WEST, Corner.SOUTH_EAST),
    Corner.SOUTH_EAST: (Corner.NORTH_EAST, Corner.SOUTH_WEST),
}


@dataclass(frozen=True)
class ProcessorGrid:
    """The logical ``n x m`` processor array (n columns, m rows)."""

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 1:
            raise ValueError("processor grid dimensions must be positive")

    @property
    def total_processors(self) -> int:
        return self.n * self.m

    def positions(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(i, j)`` positions, 1-based, row-major."""
        for j in range(1, self.m + 1):
            for i in range(1, self.n + 1):
                yield (i, j)

    def contains(self, i: int, j: int) -> bool:
        return 1 <= i <= self.n and 1 <= j <= self.m

    def rank_of(self, i: int, j: int) -> int:
        """Flatten ``(i, j)`` (1-based) into a 0-based rank, row-major."""
        if not self.contains(i, j):
            raise ValueError(f"position ({i}, {j}) outside {self.n}x{self.m} grid")
        return (j - 1) * self.n + (i - 1)

    def position_of(self, rank: int) -> Tuple[int, int]:
        """Inverse of :meth:`rank_of`."""
        if not 0 <= rank < self.total_processors:
            raise ValueError(f"rank {rank} outside grid of {self.total_processors}")
        return (rank % self.n + 1, rank // self.n + 1)

    def corner_position(self, corner: Corner) -> Tuple[int, int]:
        """The ``(i, j)`` coordinates of a corner of the array."""
        if corner is Corner.NORTH_WEST:
            return (1, 1)
        if corner is Corner.NORTH_EAST:
            return (self.n, 1)
        if corner is Corner.SOUTH_WEST:
            return (1, self.m)
        return (self.n, self.m)

    def corner_of(self, i: int, j: int) -> Corner | None:
        """Return the corner at ``(i, j)`` or ``None`` if not a corner."""
        for corner in Corner:
            if self.corner_position(corner) == (i, j):
                return corner
        return None

    def manhattan_distance(self, a: Corner, b: Corner) -> int:
        """Hop distance between two corners of the array."""
        (ia, ja) = self.corner_position(a)
        (ib, jb) = self.corner_position(b)
        return abs(ia - ib) + abs(ja - jb)

    def sweep_directions(self, origin: Corner) -> Tuple[int, int, int, int]:
        """``(oi, oj, dx, dy)``: origin coordinates and per-axis sweep direction.

        ``dx``/``dy`` are +1 when the sweep moves toward larger ``i``/``j``
        and -1 otherwise.  This is the single definition of the sweep
        convention shared by the event-driven rank programs and the
        diagonal-aggregated fast path, which must agree bit-for-bit.
        """
        oi, oj = self.corner_position(origin)
        dx = 1 if oi == 1 else -1
        dy = 1 if oj == 1 else -1
        return oi, oj, dx, dy

    def sweep_steps(self, i: int, j: int, origin: Corner) -> int:
        """Wavefront step at which processor ``(i, j)`` is first reached.

        For a sweep originating at ``origin``, this is the Manhattan distance
        from the origin corner, i.e. the number of pipeline stages before the
        processor receives its first boundary values.
        """
        (oi, oj) = self.corner_position(origin)
        return abs(i - oi) + abs(j - oj)


@dataclass(frozen=True)
class CoreMapping:
    """The ``Cx x Cy`` rectangle that one node's cores occupy in the grid.

    ``cx`` is the extent in the ``i`` (east-west) direction and ``cy`` in the
    ``j`` (north-south) direction.  Table 6 of the paper classifies each of a
    core's four communications as on-chip or off-node from its position
    inside this rectangle.

    Hierarchical platforms additionally subdivide the node rectangle into
    chip rectangles ``chip_cx x chip_cy`` (each dimension dividing the node
    dimension, so the combined cost field stays periodic with the node
    rectangle).  Each communication then resolves to one of three hop
    *levels* - ``"chip"`` (same chip), ``"node"`` (same node, different
    chip) or ``"machine"`` (different nodes) - via the ``*_level`` methods;
    when no chip subdivision is given the chip rectangle equals the node
    rectangle and the classification collapses to the paper's two-level
    on-chip / off-node rule.
    """

    cx: int
    cy: int
    chip_cx: Optional[int] = None
    chip_cy: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cx < 1 or self.cy < 1:
            raise ValueError("core mapping dimensions must be positive")
        if (self.chip_cx is None) != (self.chip_cy is None):
            raise ValueError("chip_cx and chip_cy must be given together")
        if self.chip_cx is not None:
            assert self.chip_cy is not None
            if self.chip_cx < 1 or self.chip_cy < 1:
                raise ValueError("chip mapping dimensions must be positive")
            if self.cx % self.chip_cx != 0 or self.cy % self.chip_cy != 0:
                raise ValueError(
                    "the chip rectangle must divide the node rectangle "
                    f"({self.chip_cx}x{self.chip_cy} vs {self.cx}x{self.cy})"
                )

    @property
    def cores_per_node(self) -> int:
        return self.cx * self.cy

    @property
    def effective_chip_cx(self) -> int:
        """Chip extent in ``i``; the node extent when no chips are defined."""
        return self.chip_cx if self.chip_cx is not None else self.cx

    @property
    def effective_chip_cy(self) -> int:
        """Chip extent in ``j``; the node extent when no chips are defined."""
        return self.chip_cy if self.chip_cy is not None else self.cy

    @property
    def cores_per_chip(self) -> int:
        return self.effective_chip_cx * self.effective_chip_cy

    @property
    def has_chip_subdivision(self) -> bool:
        return self.cores_per_chip < self.cores_per_node

    def with_chip(self, chip_cx: int, chip_cy: int) -> "CoreMapping":
        """A copy with the given chip sub-rectangle."""
        return CoreMapping(cx=self.cx, cy=self.cy, chip_cx=chip_cx, chip_cy=chip_cy)

    def send_east_on_chip(self, i: int, j: int) -> bool:
        """Table 6: SendE is on-chip iff ``i mod Cx != 0`` and ``Cx != 1``."""
        return self.cx != 1 and i % self.cx != 0

    def comm_from_west_on_chip(self, i: int, j: int) -> bool:
        """Table 6: Total_commE (message arriving from the west) is on-chip
        iff ``i mod Cx != 1`` and ``Cx != 1``."""
        return self.cx != 1 and i % self.cx != 1

    def receive_north_on_chip(self, i: int, j: int) -> bool:
        """Table 6: ReceiveN is on-chip iff ``j mod Cy != 1`` and ``Cy != 1``."""
        return self.cy != 1 and j % self.cy != 1

    def send_south_on_chip(self, i: int, j: int) -> bool:
        """Table 6: Total_commS (message sent to the south neighbour) is
        on-chip iff ``j mod Cy != 0`` and ``Cy != 1``."""
        return self.cy != 1 and j % self.cy != 0

    def node_of(self, i: int, j: int) -> Tuple[int, int]:
        """The (node-column, node-row) containing processor ``(i, j)``."""
        return ((i - 1) // self.cx, (j - 1) // self.cy)

    def chip_of(self, i: int, j: int) -> Tuple[int, int]:
        """The (chip-column, chip-row) containing processor ``(i, j)``."""
        return ((i - 1) // self.effective_chip_cx, (j - 1) // self.effective_chip_cy)

    # -- three-level hop classification (hierarchical platforms) ---------------------
    #
    # The chip rectangle divides the node rectangle, so "same chip" implies
    # "same node" and each rule below refines the Table 6 on-chip rule: a
    # hop is "chip" when it stays inside the chip rectangle, "node" when it
    # stays inside the node rectangle but crosses a chip boundary, and
    # "machine" otherwise.  With no chip subdivision the "node" level is
    # unreachable and the classification equals the legacy booleans.

    def send_east_level(self, i: int, j: int) -> str:
        ccx = self.effective_chip_cx
        if ccx != 1 and i % ccx != 0:
            return "chip"
        if self.cx != 1 and i % self.cx != 0:
            return "node"
        return "machine"

    def comm_from_west_level(self, i: int, j: int) -> str:
        ccx = self.effective_chip_cx
        if ccx != 1 and i % ccx != 1:
            return "chip"
        if self.cx != 1 and i % self.cx != 1:
            return "node"
        return "machine"

    def receive_north_level(self, i: int, j: int) -> str:
        ccy = self.effective_chip_cy
        if ccy != 1 and j % ccy != 1:
            return "chip"
        if self.cy != 1 and j % self.cy != 1:
            return "node"
        return "machine"

    def send_south_level(self, i: int, j: int) -> str:
        ccy = self.effective_chip_cy
        if ccy != 1 and j % ccy != 0:
            return "chip"
        if self.cy != 1 and j % self.cy != 0:
            return "node"
        return "machine"


def _decompose_uncached(total_processors: int) -> ProcessorGrid:
    if total_processors < 1:
        raise ValueError("total_processors must be positive")
    best: Tuple[int, int] | None = None
    for m in range(int(math.isqrt(total_processors)), 0, -1):
        if total_processors % m == 0:
            best = (total_processors // m, m)
            break
    assert best is not None
    n, m = best
    return ProcessorGrid(n=n, m=m)


_decompose_cached = lru_cache(maxsize=4096)(_decompose_uncached)


@register_cache_clearer
def clear_decomposition_cache() -> None:
    """Drop all memoised :func:`decompose` factorisations."""
    _decompose_cached.cache_clear()


def decompose(total_processors: int) -> ProcessorGrid:
    """Choose a near-square ``n x m`` factorisation of ``total_processors``.

    Wavefront codes are conventionally run on (near-)square processor arrays;
    both the paper's benchmarks and its Section 5 studies use power-of-two
    processor counts, for which this returns either a square or a 2:1
    rectangle (e.g. 8192 -> 128 x 64).  The trial division is memoised
    (:class:`ProcessorGrid` is immutable); design-matrix batches repeat a
    handful of processor counts thousands of times.
    """
    return _decompose_cached(total_processors)


def default_core_mapping(cores_per_node: int) -> CoreMapping:
    """The core rectangle the paper uses for each node size (Table 6).

    1 core -> 1x1, 2 cores -> 1x2, 4 -> 2x2, 8 -> 2x4, 16 -> 4x4.  Other
    core counts fall back to the most square factorisation with ``cx <= cy``.
    """
    known = {1: (1, 1), 2: (1, 2), 4: (2, 2), 8: (2, 4), 16: (4, 4)}
    if cores_per_node in known:
        cx, cy = known[cores_per_node]
        return CoreMapping(cx=cx, cy=cy)
    if cores_per_node < 1:
        raise ValueError("cores_per_node must be positive")
    cx = int(math.isqrt(cores_per_node))
    while cores_per_node % cx != 0:
        cx -= 1
    return CoreMapping(cx=cx, cy=cores_per_node // cx)
